package segdiff

// Concurrency coverage for the batched write path: AppendAll fanout
// identity and stress tests that must pass under -race, plus the ingest
// throughput benchmarks quoted in PR descriptions.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestAppendAllMatchesSequential ingests the same multi-sensor workload
// through AppendAll (parallel, with split and duplicate sensor batches)
// and through per-sensor AppendPoints, and requires identical search
// results.
func TestAppendAllMatchesSequential(t *testing.T) {
	const sensors = 5
	opts := Options{Epsilon: 0.2, Window: 8 * time.Hour, IngestConcurrency: 4}

	// Parallel: two half-batches per sensor, interleaved across sensors, so
	// grouping and order preservation are both exercised.
	par := NewMemoryCollection(opts)
	defer par.Close()
	var batches []SensorBatch
	for s := 0; s < sensors; s++ {
		pts := points(int64(s+1), 1200)
		batches = append(batches, SensorBatch{Sensor: fmt.Sprintf("s%02d", s), Points: pts[:600]})
	}
	for s := 0; s < sensors; s++ {
		pts := points(int64(s+1), 1200)
		batches = append(batches, SensorBatch{Sensor: fmt.Sprintf("s%02d", s), Points: pts[600:]})
	}
	if err := par.AppendAll(batches); err != nil {
		t.Fatal(err)
	}
	if err := par.Finish(); err != nil {
		t.Fatal(err)
	}

	// Sequential reference.
	seq := NewMemoryCollection(Options{Epsilon: 0.2, Window: 8 * time.Hour})
	defer seq.Close()
	for s := 0; s < sensors; s++ {
		ix, err := seq.Sensor(fmt.Sprintf("s%02d", s))
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.AppendPoints(points(int64(s+1), 1200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seq.Finish(); err != nil {
		t.Fatal(err)
	}

	for _, q := range []struct {
		span time.Duration
		v    float64
	}{{30 * time.Minute, -4}, {time.Hour, -2}} {
		a, err := par.Drops(q.span, q.v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := seq.Drops(q.span, q.v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Drops(%v, %v): AppendAll and sequential ingest diverge", q.span, q.v)
		}
	}
}

// TestAppendAllError: a bad batch fails its own sensor only; the other
// sensors commit and stay searchable.
func TestAppendAllError(t *testing.T) {
	c := NewMemoryCollection(Options{Epsilon: 0.2, Window: 8 * time.Hour, IngestConcurrency: 2})
	defer c.Close()
	good := points(3, 500)
	bad := []Point{{Time: 100, Value: 1}, {Time: 50, Value: 2}} // time going backwards
	err := c.AppendAll([]SensorBatch{
		{Sensor: "good", Points: good},
		{Sensor: "bad", Points: bad},
	})
	if err == nil {
		t.Fatal("non-monotonic batch accepted")
	}
	ix, err := c.Sensor("good")
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := ix.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 {
		t.Fatal("good sensor lost its batch")
	}
}

// TestIngestConcurrentWithSearchStress runs AppendAll ingest rounds while
// a crowd of goroutines searches the same collection. Run with -race.
func TestIngestConcurrentWithSearchStress(t *testing.T) {
	const sensors = 4
	c := NewMemoryCollection(Options{Epsilon: 0.2, Window: 8 * time.Hour, IngestConcurrency: 2, SearchConcurrency: 2})
	defer c.Close()

	// Seed every sensor so searches have work from the start.
	all := make([][]Point, sensors)
	var seed []SensorBatch
	for s := 0; s < sensors; s++ {
		all[s] = points(int64(s+11), 1200)
		seed = append(seed, SensorBatch{Sensor: fmt.Sprintf("s%02d", s), Points: all[s][:400]})
	}
	if err := c.AppendAll(seed); err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				res, err := c.Drops(30*time.Minute, -4)
				if err != nil {
					errCh <- fmt.Errorf("reader: %w", err)
					return
				}
				for _, sm := range res {
					for _, m := range sm.Matches {
						if m.From.Start > m.From.End || m.To.Start > m.To.End {
							errCh <- fmt.Errorf("reader: malformed match %+v on %s", m, sm.Sensor)
							return
						}
					}
				}
			}
		}()
	}

	// Ingest the remainder in rounds while the readers run.
	for lo := 400; lo < 1200; lo += 400 {
		var round []SensorBatch
		for s := 0; s < sensors; s++ {
			round = append(round, SensorBatch{Sensor: fmt.Sprintf("s%02d", s), Points: all[s][lo : lo+400]})
		}
		if err := c.AppendAll(round); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	res, err := c.Drops(time.Hour, -3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sm := range res {
		total += len(sm.Matches)
	}
	if total == 0 {
		t.Fatal("no drops after concurrent multi-sensor ingest")
	}
}

// BenchmarkCollectionAppendAll measures multi-sensor ingest throughput
// through the bounded AppendAll pool.
func BenchmarkCollectionAppendAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := NewMemoryCollection(Options{Epsilon: 0.2, Window: 8 * time.Hour})
		var batches []SensorBatch
		for s := 0; s < 6; s++ {
			batches = append(batches, SensorBatch{Sensor: fmt.Sprintf("s%02d", s), Points: points(int64(s+1), 2000)})
		}
		b.StartTimer()
		if err := c.AppendAll(batches); err != nil {
			b.Fatal(err)
		}
		if err := c.Finish(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
}
