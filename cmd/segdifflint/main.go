// Command segdifflint runs the project's invariant analyzers (DESIGN.md §7)
// over the packages matched by the given go-list patterns:
//
//	go run ./cmd/segdifflint ./...
//
// It prints one line per finding, file:line:col: [analyzer] message, and
// exits 1 when anything is reported, 2 on load failure. Individual
// analyzers can be switched off with -disable:
//
//	go run ./cmd/segdifflint -disable lockcheck,syncerr ./internal/core
//
// With -json the findings are emitted as a single JSON array on stdout —
// one object per finding with file, line, column, analyzer, message, and
// whether an ignore directive suppressed it (suppressed findings are
// included in the array for auditability but do not affect the exit
// status). The array is emitted even when empty, so CI can always parse
// the artifact.
//
// Findings are suppressed per line with a justified directive comment:
//
//	//segdifflint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/loader"
	"segdiff/internal/analysis/suite"
)

func main() {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (suppressed findings included, marked ignored)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: segdifflint [-disable name,...] [-json] packages...\n\nanalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	analyzers := suite.Analyzers()
	if *disable != "" {
		off := map[string]bool{}
		for _, name := range strings.Split(*disable, ",") {
			off[strings.TrimSpace(name)] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if !off[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	n, err := run(analyzers, flag.Args(), *jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "segdifflint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "segdifflint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// finding is one diagnostic in the -json output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Ignored is true when a //segdifflint:ignore directive suppressed
	// the finding; ignored findings do not affect the exit status.
	Ignored bool `json:"ignored"`
}

// run loads the packages, runs the analyzers module-wide (so
// interprocedural facts cross package boundaries), and prints findings.
// The returned count includes only non-ignored findings.
func run(analyzers []*analysis.Analyzer, patterns []string, jsonOut bool) (int, error) {
	moduleDir, err := loader.ModuleDir()
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(moduleDir, patterns...)
	if err != nil {
		return 0, err
	}
	results, err := analysis.RunModule(&analysis.Module{Packages: pkgs}, analyzers)
	if err != nil {
		return 0, err
	}

	total := 0
	findings := []finding{} // non-nil so -json always emits an array
	for _, res := range results {
		emit := func(d analysis.Diagnostic, ignored bool) {
			pos := res.Pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			if jsonOut {
				findings = append(findings, finding{
					File: file, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message, Ignored: ignored,
				})
			} else if !ignored {
				fmt.Printf("%s:%d:%d: [%s] %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
			}
			if !ignored {
				total++
			}
		}
		for _, d := range res.Diags {
			emit(d, false)
		}
		if jsonOut {
			for _, d := range res.Suppressed {
				emit(d, true)
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return total, err
		}
	}
	return total, nil
}
