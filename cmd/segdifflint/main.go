// Command segdifflint runs the project's invariant analyzers (DESIGN.md §7)
// over the packages matched by the given go-list patterns:
//
//	go run ./cmd/segdifflint ./...
//
// It prints one line per finding, file:line:col: [analyzer] message, and
// exits 1 when anything is reported, 2 on load failure. Individual
// analyzers can be switched off with -disable:
//
//	go run ./cmd/segdifflint -disable lockcheck,syncerr ./internal/core
//
// Findings are suppressed per line with a justified directive comment:
//
//	//segdifflint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/loader"
	"segdiff/internal/analysis/suite"
)

func main() {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: segdifflint [-disable name,...] packages...\n\nanalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	analyzers := suite.Analyzers()
	if *disable != "" {
		off := map[string]bool{}
		for _, name := range strings.Split(*disable, ",") {
			off[strings.TrimSpace(name)] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if !off[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	n, err := run(analyzers, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "segdifflint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "segdifflint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func run(analyzers []*analysis.Analyzer, patterns []string) (int, error) {
	moduleDir, err := loader.ModuleDir()
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(moduleDir, patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
			total++
		}
	}
	return total, nil
}
