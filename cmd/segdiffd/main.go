// Command segdiffd serves a SegDiff collection over HTTP: many
// concurrent exploratory clients running the paper's ad-hoc (V, T)
// drop and jump searches against a shared, continuously ingesting
// store (see internal/server for the endpoint list).
//
//	segdiffd -db DIR [-addr :8080] [-epsilon 0.2] [-window 8h]
//	         [-read-slots N] [-write-slots N] [-timeout 30s]
//	         [-max-timeout 2m] [-slow 200ms] [-debug]
//
// With no -db the collection lives in memory: useful for demos and
// smoke tests, gone on exit. On SIGINT/SIGTERM the server drains
// gracefully — the listener closes, in-flight requests finish (bounded
// by -drain), the collection checkpoints, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"segdiff"
	"segdiff/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "segdiffd:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("segdiffd", flag.ExitOnError)
	var (
		db         = fs.String("db", "", "collection directory (empty: in-memory)")
		addr       = fs.String("addr", ":8080", "listen address")
		epsilon    = fs.Float64("epsilon", 0.2, "approximation tolerance ε")
		window     = fs.Duration("window", 8*time.Hour, "longest searchable span")
		readSlots  = fs.Int("read-slots", 0, "read-lane admission bound (0: 4×GOMAXPROCS)")
		writeSlots = fs.Int("write-slots", 0, "write-lane admission bound (0: 2)")
		timeout    = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
		slow       = fs.Duration("slow", 200*time.Millisecond, "slow-request log threshold")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-shutdown bound for in-flight requests")
		debug      = fs.Bool("debug", false, "mount /debug (pprof, expvar) on the listener")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	opts := segdiff.Options{Epsilon: *epsilon, Window: *window}
	var (
		col *segdiff.Collection
		err error
	)
	if *db == "" {
		col = segdiff.NewMemoryCollection(opts)
		log.Printf("segdiffd: serving an in-memory collection (no -db; data is not persisted)")
	} else {
		col, err = segdiff.OpenCollection(*db, opts)
		if err != nil {
			return err
		}
	}

	srv := server.New(col, server.Config{
		ReadSlots:      *readSlots,
		WriteSlots:     *writeSlots,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SlowThreshold:  *slow,
		Debug:          *debug,
	})
	if err := srv.Start(*addr); err != nil {
		return errors.Join(err, col.Close())
	}
	log.Printf("segdiffd: listening on %s", srv.Addr())

	// The SIGTERM sequence: stop accepting, finish in-flight requests,
	// checkpoint, close. signal.NotifyContext restores default handling
	// after the first signal, so a second Ctrl-C kills a stuck drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("segdiffd: draining (bound %v)", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("segdiffd: drain: %v", err)
	}
	if err := col.Finish(); err != nil {
		return errors.Join(fmt.Errorf("checkpoint: %w", err), col.Close())
	}
	if err := col.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	log.Printf("segdiffd: drained and checkpointed, bye")
	return nil
}
