package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"segdiff/internal/naive"
	"segdiff/internal/timeseries"
)

// verifyCmd checks the Theorem 1 guarantees of an index against the
// series it was built from: (1) every true event among the CSV's sampled
// observations is covered by a returned period, and (2) every returned
// period contains an event within 2ε of the threshold (verified exactly
// under the linear-interpolation model). It is the paper's proof turned
// into an operational check.
//
// The CSV must be exactly what was ingested: if the index was built with
// -denoise, verify against the denoised data (the guarantees are relative
// to the signal the index saw, not to anomalies the preprocessing
// removed).
func verifyCmd(args []string) (err error) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	db := fs.String("db", "", "index directory")
	csvPath := fs.String("csv", "", "the raw CSV the index was built from")
	span := fs.Duration("span", time.Hour, "time span threshold T")
	v := fs.Float64("v", -3, "drop threshold V (negative)")
	fs.Parse(args)

	if *csvPath == "" {
		return fmt.Errorf("missing -csv")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer joinClose(&err, f)
	series, err := timeseries.ReadCSV(f)
	if err != nil {
		return err
	}

	st, err := openStore(*db, 0, 0)
	if err != nil {
		return err
	}
	defer joinClose(&err, st)
	eps := st.Epsilon()
	T := int64(*span / time.Second)

	matches, err := st.SearchDrops(T, *v)
	if err != nil {
		return err
	}
	events, err := naive.Drops(series, T, *v)
	if err != nil {
		return err
	}

	// (1) No false negatives.
	misses := 0
	for _, e := range events {
		covered := false
		for _, m := range matches {
			if m.TD <= e.T1 && e.T1 <= m.TC && m.TB <= e.T2 && e.T2 <= m.TA {
				covered = true
				break
			}
		}
		if !covered {
			misses++
			if misses <= 5 {
				fmt.Printf("MISSED: true event (%d → %d, Δv=%.3f)\n", e.T1, e.T2, e.Dv)
			}
		}
	}

	// (2) False positives bounded by 2ε (plus slope slack for the
	// integer-grid verification).
	segs, err := st.Segments()
	if err != nil {
		return err
	}
	maxSlope := 0.0
	for _, g := range segs {
		if s := math.Abs(g.Slope()); s > maxSlope {
			maxSlope = s
		}
	}
	slack := 2*maxSlope + 1e-9
	loose := 0
	for _, m := range matches {
		lo := max64(m.TD, series.Start())
		hi := min64(m.TA, series.End())
		if lo > hi {
			loose++
			continue
		}
		d, ok, err := naive.ExtremeChange(series,
			max64(m.TD, series.Start()), min64(m.TC, series.End()),
			max64(m.TB, series.Start()), min64(m.TA, series.End()), T, true)
		if err != nil || !ok || d > *v+2*eps+slack {
			loose++
			if loose <= 5 {
				fmt.Printf("LOOSE: match (%d,%d,%d,%d) best drop %.3f vs bound %.3f (ok=%v err=%v)\n",
					m.TD, m.TC, m.TB, m.TA, d, *v+2*eps, ok, err)
			}
		}
	}

	fmt.Printf("query: drop ≥ %.3g within %v, ε = %.3g\n", -*v, *span, eps)
	fmt.Printf("true events (sampled pairs): %d; matches returned: %d\n", len(events), len(matches))
	fmt.Printf("false negatives: %d (guarantee: 0)\n", misses)
	fmt.Printf("matches beyond the V+2ε tolerance: %d (guarantee: 0)\n", loose)
	if misses > 0 || loose > 0 {
		return fmt.Errorf("verification FAILED")
	}
	fmt.Println("verification PASSED: Theorem 1 holds on this data")
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
