package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinaries compiles cadgen and segdiff once per test binary.
func buildBinaries(t *testing.T) (cadgen, segdiff string) {
	t.Helper()
	dir := t.TempDir()
	cadgen = filepath.Join(dir, "cadgen")
	segdiff = filepath.Join(dir, "segdiff")
	for _, b := range []struct{ out, pkg string }{
		{cadgen, "segdiff/cmd/cadgen"},
		{segdiff, "segdiff/cmd/segdiff"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}
	return cadgen, segdiff
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/segdiff -> repo root
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// End-to-end: generate a dataset, ingest it, search it, inspect it.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cadgen, segdiff := buildBinaries(t)
	work := t.TempDir()
	data := filepath.Join(work, "data")
	db := filepath.Join(work, "idx")

	run(t, cadgen, "-out", data, "-sensors", "3", "-days", "2", "-seed", "9", "-events")
	if _, err := os.Stat(filepath.Join(data, "sensor01.csv")); err != nil {
		t.Fatalf("dataset missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(data, "events.csv")); err != nil {
		t.Fatalf("events schedule missing: %v", err)
	}

	out := run(t, segdiff, "ingest", "-db", db, "-csv", filepath.Join(data, "sensor01.csv"), "-denoise")
	if !strings.Contains(out, "ingested 576 points") {
		t.Fatalf("ingest output: %s", out)
	}

	out = run(t, segdiff, "search", "-db", db, "-span", "1h", "-v", "-2")
	if !strings.Contains(out, "periods in") {
		t.Fatalf("search output: %s", out)
	}

	out = run(t, segdiff, "stats", "-db", db)
	for _, want := range []string{"epsilon:", "window:", "feature rows:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}

	out = run(t, segdiff, "sql", "-db", db, "-q", "SELECT COUNT(*) FROM segs")
	if !strings.Contains(out, "COUNT(*)") {
		t.Fatalf("sql output: %s", out)
	}

	out = run(t, segdiff, "plot", "-db", db, "-width", "60", "-height", "10", "-v", "-2")
	if !strings.Contains(out, "drop search") {
		t.Fatalf("plot output: %s", out)
	}

	// Error paths surface as non-zero exits.
	cmd := exec.Command(segdiff, "search", "-db", db, "-span", "48h", "-v", "-2")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("T > w accepted by CLI: %s", out)
	}
	cmd = exec.Command(segdiff, "bogus")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

// verify must pass on an index built from the same CSV, and fail when the
// index was built from different (denoised) data.
func TestCLIVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cadgen, segdiff := buildBinaries(t)
	work := t.TempDir()
	data := filepath.Join(work, "data")
	run(t, cadgen, "-out", data, "-sensors", "1", "-days", "2", "-seed", "3")
	csv := filepath.Join(data, "sensor00.csv")

	db := filepath.Join(work, "idx")
	run(t, segdiff, "ingest", "-db", db, "-csv", csv)
	out := run(t, segdiff, "verify", "-db", db, "-csv", csv, "-span", "1h", "-v", "-2")
	if !strings.Contains(out, "PASSED") {
		t.Fatalf("verify output: %s", out)
	}
}
