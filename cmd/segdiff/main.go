// Command segdiff is the exploration CLI around the SegDiff index: it
// ingests CSV sensor data into an on-disk index and answers ad-hoc drop
// and jump searches, the workflow the paper's biologists use.
//
// Subcommands:
//
//	segdiff ingest -db DIR -csv FILE [-epsilon 0.2] [-window 8h] [-denoise]
//	segdiff search -db DIR [-kind drop] [-span 1h] [-v -3] [-plan auto]
//	segdiff trace  -db DIR [-kind drop] [-span 1h] [-v -3] [-plan auto] [-json]
//	segdiff stats  -db DIR [-v]
//	segdiff sql    -db DIR -q "SELECT COUNT(*) FROM dropf2"
//	segdiff plot   -db DIR -span 1h -v -3
//	segdiff verify -db DIR -csv FILE -span 1h -v -3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/feature"
	"segdiff/internal/obs"
	"segdiff/internal/smooth"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "ingest":
		err = ingest(os.Args[2:])
	case "search":
		err = search(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "sql":
		err = sqlCmd(os.Args[2:])
	case "plot":
		err = plotCmd(os.Args[2:])
	case "verify":
		err = verifyCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "segdiff:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: segdiff <ingest|search|trace|stats|sql> [flags]
  ingest -db DIR -csv FILE [-epsilon 0.2] [-window 8h] [-denoise]
  search -db DIR [-kind drop|jump] [-span 1h] [-v -3] [-plan auto|scan|index]
  trace  -db DIR [-kind drop|jump] [-span 1h] [-v -3] [-plan auto|scan|index] [-json] [-debug ADDR]
  stats  -db DIR [-v]
  sql    -db DIR -q "SELECT ..."
  plot   -db DIR [-from T0 -to T1] [-span 1h] [-v -3] [-width 100 -height 20]
  verify -db DIR -csv FILE [-span 1h] [-v -3]   (check the Theorem 1 guarantees)`)
	os.Exit(2)
}

func openStore(db string, eps float64, window time.Duration) (*core.Store, error) {
	if db == "" {
		return nil, fmt.Errorf("missing -db")
	}
	return core.Open(db, core.Options{Epsilon: eps, Window: int64(window / time.Second)})
}

func ingest(args []string) (err error) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	db := fs.String("db", "", "index directory")
	csvPath := fs.String("csv", "", "input CSV of t,v rows ('-' for stdin)")
	eps := fs.Float64("epsilon", 0.2, "segmentation error tolerance ε")
	window := fs.Duration("window", 8*time.Hour, "largest supported time span w")
	denoise := fs.Bool("denoise", false, "apply robust smoothing before ingest (removes anomaly spikes)")
	fs.Parse(args)

	in := os.Stdin
	if *csvPath != "-" && *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			return err
		}
		defer joinClose(&err, f)
		in = f
	} else if *csvPath == "" {
		return fmt.Errorf("missing -csv")
	}
	series, err := timeseries.ReadCSV(in)
	if err != nil {
		return err
	}
	if *denoise {
		series, err = smooth.Robust(series, smooth.Config{})
		if err != nil {
			return err
		}
	}
	st, err := openStore(*db, *eps, *window)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := st.AppendSeries(series); err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Printf("ingested %d points in %v\n", series.Len(), time.Since(start).Round(time.Millisecond))
	return nil
}

// parseKind maps a -kind flag value to a feature kind.
func parseKind(s string) feature.Kind {
	if strings.EqualFold(s, "jump") {
		return feature.Jump
	}
	return feature.Drop
}

// parsePlan maps a -plan flag value to an access-path mode.
func parsePlan(s string) (sqlmini.PlanMode, error) {
	switch s {
	case "auto":
		return sqlmini.PlanAuto, nil
	case "scan":
		return sqlmini.PlanForceScan, nil
	case "index":
		return sqlmini.PlanForceIndex, nil
	default:
		return sqlmini.PlanAuto, fmt.Errorf("unknown -plan %q", s)
	}
}

func search(args []string) (err error) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	db := fs.String("db", "", "index directory")
	kindStr := fs.String("kind", "drop", "drop or jump")
	span := fs.Duration("span", time.Hour, "time span threshold T")
	v := fs.Float64("v", -3, "change threshold V (negative for drops, positive for jumps)")
	planStr := fs.String("plan", "auto", "auto, scan or index")
	fs.Parse(args)

	kind := parseKind(*kindStr)
	mode, err := parsePlan(*planStr)
	if err != nil {
		return err
	}

	st, err := openStore(*db, 0, 0)
	if err != nil {
		return err
	}
	defer joinClose(&err, st)
	start := time.Now()
	matches, err := st.SearchMode(kind, int64(*span/time.Second), *v, mode)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	for _, m := range matches {
		fmt.Printf("%s starts in [%d, %d], ends in [%d, %d]\n", kind, m.TD, m.TC, m.TB, m.TA)
	}
	fmt.Printf("%d periods in %v (ε=%.3g: every result contains an event within 2ε of V)\n",
		len(matches), elapsed.Round(time.Microsecond), st.Epsilon())
	return nil
}

// traceCmd runs one drop/jump search under EXPLAIN ANALYZE and prints
// the annotated plan: per-node actual rows, page I/O, zone-map skips,
// and wall time next to the planner's estimates. With -debug ADDR it
// also serves the engine's expvar/pprof/metrics endpoint for the
// lifetime of the command (useful together with -iters for profiling).
func traceCmd(args []string) (err error) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	db := fs.String("db", "", "index directory")
	kindStr := fs.String("kind", "drop", "drop or jump")
	span := fs.Duration("span", time.Hour, "time span threshold T")
	v := fs.Float64("v", -3, "change threshold V (negative for drops, positive for jumps)")
	planStr := fs.String("plan", "auto", "auto, scan or index")
	jsonOut := fs.Bool("json", false, "emit the trace as JSON instead of text")
	iters := fs.Int("iters", 1, "number of traced executions (last trace is reported)")
	debugAddr := fs.String("debug", "", "serve the expvar/pprof/metrics debug endpoint on this address")
	fs.Parse(args)

	kind := parseKind(*kindStr)
	mode, err := parsePlan(*planStr)
	if err != nil {
		return err
	}
	st, err := openStore(*db, 0, 0)
	if err != nil {
		return err
	}
	defer joinClose(&err, st)

	if *debugAddr != "" {
		d, derr := obs.ServeDebug(*debugAddr, st.DB().Registry(), st.DB().SlowLog())
		if derr != nil {
			return derr
		}
		defer joinClose(&err, d)
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s (expvar, pprof, /metrics, /slow)\n", d.Addr())
	}

	var tr *obs.Trace
	for i := 0; i < *iters; i++ {
		tr, err = st.TraceSearch(kind, int64(*span/time.Second), *v, mode)
		if err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tr)
	}
	for _, line := range tr.Lines() {
		fmt.Println(line)
	}
	fmt.Printf("%d rows in %v (kind=%s plan=%s)\n",
		tr.Rows, time.Duration(tr.WallNS).Round(time.Microsecond), kind, tr.Mode)
	return nil
}

func stats(args []string) (err error) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	db := fs.String("db", "", "index directory")
	verbose := fs.Bool("v", false, "also print the engine metrics registry")
	fs.Parse(args)
	st, err := openStore(*db, 0, 0)
	if err != nil {
		return err
	}
	defer joinClose(&err, st)
	s, err := st.Stats()
	if err != nil {
		return err
	}
	segs, err := st.Segments()
	if err != nil {
		return err
	}
	fmt.Printf("epsilon:        %g\n", s.Epsilon)
	fmt.Printf("window:         %s\n", time.Duration(s.Window)*time.Second)
	fmt.Printf("segments:       %d\n", len(segs))
	fmt.Printf("feature rows:   %d\n", s.FeatureRows)
	fmt.Printf("feature bytes:  %d\n", s.FeatureBytes)
	fmt.Printf("index bytes:    %d\n", s.IndexBytes)
	fmt.Printf("disk bytes:     %d\n", s.DiskBytes())
	fmt.Printf("cache:          %d hits, %d misses, %d reads, %d writes (this session)\n",
		s.Cache.Hits, s.Cache.Misses, s.Cache.Reads, s.Cache.Writes)
	fmt.Printf("prefetch:       %d reads, %d hits, %d wasted\n",
		s.Cache.PrefetchReads, s.Cache.PrefetchHits, s.Cache.PrefetchWasted)
	fmt.Printf("zone-skipped:   %d pages\n", s.ZoneSkippedPages)
	if *verbose {
		snap := st.Metrics()
		fmt.Println("engine metrics (this session):")
		for _, name := range snap.Names() {
			fmt.Printf("  %-28s %d\n", name, snap.Counters[name])
		}
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Printf("  %-28s %d (gauge)\n", name, snap.Gauges[name])
		}
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Printf("  %-28s count=%d mean=%.0f max<%d\n", name, h.Count, h.Mean(), h.Max())
		}
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order for stable output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func sqlCmd(args []string) (err error) {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	db := fs.String("db", "", "index directory")
	q := fs.String("q", "", "SELECT or EXPLAIN statement")
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("missing -q")
	}
	st, err := openStore(*db, 0, 0)
	if err != nil {
		return err
	}
	defer joinClose(&err, st)
	rows, err := st.DB().Query(*q)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(rows.Columns, "\t"))
	for _, r := range rows.Data {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	return nil
}

// joinClose closes c when the surrounding command returns, folding a close
// failure into the command's named error unless one is already set. Store
// Close commits pending state, so the error is a real data-loss signal.
func joinClose(err *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}
