package main

import (
	"flag"
	"fmt"
	"math"
	"strings"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/segment"
)

// plotCmd renders the stored piecewise linear approximation as an ASCII
// chart with matched drop periods marked underneath — a terminal version
// of the paper's Figure 1 (data, segments, and a search result overlay).
func plotCmd(args []string) (err error) {
	fs := flag.NewFlagSet("plot", flag.ExitOnError)
	db := fs.String("db", "", "index directory")
	from := fs.Int64("from", 0, "start timestamp (0 = series start)")
	to := fs.Int64("to", 0, "end timestamp (0 = series end)")
	width := fs.Int("width", 100, "chart width in columns")
	height := fs.Int("height", 20, "chart height in rows")
	span := fs.Duration("span", time.Hour, "drop search span T")
	v := fs.Float64("v", -3, "drop search threshold V")
	fs.Parse(args)

	if *width < 10 || *height < 4 {
		return fmt.Errorf("chart too small (%dx%d)", *width, *height)
	}
	st, err := openStore(*db, 0, 0)
	if err != nil {
		return err
	}
	defer joinClose(&err, st)

	segs, err := st.Segments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("index holds no data")
	}
	lo, hi := segs[0].Ts, segs[len(segs)-1].Te
	if *from != 0 {
		lo = *from
	}
	if *to != 0 {
		hi = *to
	}
	if hi <= lo {
		return fmt.Errorf("empty time range [%d, %d]", lo, hi)
	}

	matches, err := st.SearchDrops(int64(*span/time.Second), *v)
	if err != nil {
		return err
	}

	fmt.Print(renderChart(segs, matches, lo, hi, *width, *height))
	fmt.Printf("drop search: ≥%.1f within %v → %d periods total; ▓ marks matched periods in range\n",
		-*v, *span, len(matches))
	return nil
}

// renderChart draws the approximation over [lo, hi] in a width×height
// character grid plus a match gutter.
func renderChart(segs []segment.Segment, matches []core.Match, lo, hi int64, width, height int) string {
	// Sample the approximation at each column midpoint.
	vals := make([]float64, width)
	ok := make([]bool, width)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	colTime := func(c int) int64 {
		return lo + int64(float64(c)/float64(width)*float64(hi-lo))
	}
	for c := 0; c < width; c++ {
		t := colTime(c)
		for _, g := range segs {
			if t >= g.Ts && t <= g.Te {
				vals[c] = g.Value(t)
				ok[c] = true
				break
			}
		}
		if ok[c] {
			vMin = math.Min(vMin, vals[c])
			vMax = math.Max(vMax, vals[c])
		}
	}
	if vMax <= vMin {
		vMax = vMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		r := int((vMax - v) / (vMax - vMin) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	prev := -1
	for c := 0; c < width; c++ {
		if !ok[c] {
			prev = -1
			continue
		}
		r := row(vals[c])
		grid[r][c] = '*'
		// Connect vertically to the previous column for steep slopes.
		if prev >= 0 && r != prev {
			stepDown := 1
			if r < prev {
				stepDown = -1
			}
			for rr := prev + stepDown; rr != r; rr += stepDown {
				if grid[rr][c] == ' ' {
					grid[rr][c] = '|'
				}
			}
		}
		prev = r
	}

	gutter := []byte(strings.Repeat(" ", width))
	for _, m := range matches {
		if m.TA < lo || m.TD > hi {
			continue
		}
		for c := 0; c < width; c++ {
			t := colTime(c)
			if t >= m.TD && t <= m.TA {
				gutter[c] = '#'
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%8.2f ┤%s\n", vMax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&sb, "         │%s\n", string(grid[r]))
	}
	fmt.Fprintf(&sb, "%8.2f ┤%s\n", vMin, string(grid[height-1]))
	fmt.Fprintf(&sb, "   drops  %s\n", strings.ReplaceAll(string(gutter), "#", "▓"))
	fmt.Fprintf(&sb, "          t=%d%st=%d\n", lo, strings.Repeat(" ", max(1, width-len(fmt.Sprint(lo))-len(fmt.Sprint(hi))-4)), hi)
	return sb.String()
}
