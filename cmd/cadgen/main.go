// Command cadgen generates a synthetic Cold-Air-Drainage-style dataset:
// per-sensor CSV files of air temperature sampled every five minutes, with
// seasonal and diurnal cycles, autocorrelated weather noise, injected
// early-morning CAD drop events, and occasional sensor anomalies — a
// stand-in for the James Reserve transect data used in the paper.
//
// Usage:
//
//	cadgen -out data/ -sensors 25 -days 365 -seed 7
//	cadgen -days 30 > sensor.csv     # single sensor to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"segdiff/internal/synth"
	"segdiff/internal/timeseries"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory (one CSV per sensor); empty writes a single sensor to stdout")
		sensors  = flag.Int("sensors", 25, "number of sensors across the transect")
		days     = flag.Int64("days", 365, "days of data")
		seed     = flag.Int64("seed", 1, "random seed (same seed, same data)")
		interval = flag.Int64("interval", synth.DefaultSampleInterval, "sampling interval in seconds")
		events   = flag.Bool("events", false, "also write the injected event schedule (events.csv)")
	)
	flag.Parse()

	cfg := synth.Config{Seed: *seed, Duration: *days * synth.SecondsPerDay, SampleInterval: *interval}

	if *out == "" {
		series, _, err := synth.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		if err := timeseries.WriteCSV(os.Stdout, series); err != nil {
			fatal(err)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	series, evs, err := synth.GenerateTransect(cfg, *sensors)
	if err != nil {
		fatal(err)
	}
	for i, s := range series {
		path := filepath.Join(*out, fmt.Sprintf("sensor%02d.csv", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := timeseries.WriteCSV(f, s); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d points)\n", path, s.Len())
	}
	if *events {
		f, err := os.Create(filepath.Join(*out, "events.csv"))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "start,drop_len,drop,recovery")
		for _, e := range evs {
			fmt.Fprintf(f, "%d,%d,%.3f,%d\n", e.Start, e.DropLen, e.Drop, e.Recovery)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", filepath.Join(*out, "events.csv"), len(evs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cadgen:", err)
	os.Exit(1)
}
