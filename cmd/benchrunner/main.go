// Command benchrunner reproduces the paper's full evaluation (Section 6):
// it runs every experiment of DESIGN.md's per-experiment index — Tables
// 3–7 and Figures 7–24 plus the ablations — and renders the results as
// markdown tables suitable for EXPERIMENTS.md.
//
//	benchrunner                       # default scaled-down run to stdout
//	benchrunner -days 30 -sensors 3   # bigger workload
//	benchrunner -out EXPERIMENTS.md   # write the report file
//	benchrunner -perf BENCH_PR2.json  # read- and write-path perf comparison only
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"segdiff/internal/bench"
)

func main() {
	var (
		out     = flag.String("out", "", "output file (default stdout)")
		days    = flag.Int64("days", 10, "days per sensor in the subset workload")
		sensors = flag.Int("sensors", 1, "sensors in the subset workload")
		full    = flag.Int("fullsensors", 5, "sensors in the scalability workload")
		repeats = flag.Int("repeats", 3, "timing repetitions per query")
		queries = flag.Int("queries", 25, "random queries for the query-region experiments")
		seed    = flag.Int64("seed", 20080325, "workload seed")
		skipAbl = flag.Bool("skip-ablations", false, "skip the ablation experiments")
		perf    = flag.String("perf", "", "run only the sequential-vs-parallel read-path comparison and write JSON to this file")
		iters   = flag.Int("perf-iters", 20, "queries per client in the -perf comparison")
		smoke   = flag.Bool("fusion-smoke", false, "run only the fused-vs-branch comparison; exit nonzero unless results are identical and fusion is not slower")
		ccSmoke = flag.Bool("coldcache-smoke", false, "run only the cold-cache comparison; exit nonzero unless results are identical and readahead+zone maps are not slower")
		ccRA    = flag.Int("coldcache-readahead", 16, "readahead depth for the cold-cache comparison")
		toSmoke = flag.Bool("trace-smoke", false, "run only the metrics-on vs metrics-off comparison; exit nonzero unless results are identical and the overhead stays under -trace-max-pct")
		toMax   = flag.Float64("trace-max-pct", 2.0, "maximum tolerated metrics overhead percentage for -trace-smoke")
		svSmoke = flag.Bool("serve-smoke", false, "run only the end-to-end serving check: boot segdiffd, ingest and query over HTTP, verify responses match direct searches, drain")

		// Cross-commit go test -bench numbers (ms/op) to embed in the -perf
		// report; the single-lock baseline cannot be linked into this build,
		// so its measurements are supplied by whoever ran both commits.
		benchSource       = flag.String("bench-source", "", "description of how the -bench-* numbers were measured")
		benchBaseSerial   = flag.Float64("bench-baseline-serial-ms", 0, "BenchmarkIndexDropsSerial ms/op on the single-lock baseline commit")
		benchBaseParallel = flag.Float64("bench-baseline-parallel-ms", 0, "BenchmarkIndexDropsParallel ms/op on the single-lock baseline commit")
		benchCurSerial    = flag.Float64("bench-serial-ms", 0, "BenchmarkIndexDropsSerial ms/op on this commit")
		benchCurParallel  = flag.Float64("bench-parallel-ms", 0, "BenchmarkIndexDropsParallel ms/op on this commit")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Days = *days
	cfg.FullDays = *days
	cfg.Sensors = *sensors
	cfg.FullSensors = *full
	cfg.Repeats = *repeats
	cfg.RandomQs = *queries
	cfg.Seed = *seed

	if *smoke {
		runFusionSmoke(cfg, *iters)
		return
	}

	if *ccSmoke {
		runColdCacheSmoke(cfg, *iters, *ccRA)
		return
	}

	if *toSmoke {
		runTraceSmoke(cfg, *iters, *toMax)
		return
	}

	if *svSmoke {
		runServeSmoke(cfg)
		return
	}

	if *perf != "" {
		var gb *bench.GoBench
		if *benchBaseParallel > 0 && *benchCurParallel > 0 {
			gb = &bench.GoBench{
				Source:             *benchSource,
				BaselineSerialMS:   *benchBaseSerial,
				BaselineParallelMS: *benchBaseParallel,
				CurrentSerialMS:    *benchCurSerial,
				CurrentParallelMS:  *benchCurParallel,
				ParallelSpeedup:    *benchBaseParallel / *benchCurParallel,
			}
		}
		runPerf(cfg, *perf, *iters, *ccRA, gb)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer func() {
			if err := bw.Flush(); err != nil {
				fatal(err)
			}
		}()
		w = bw
	}

	fmt.Fprintf(w, "# EXPERIMENTS — paper vs measured\n\n")
	fmt.Fprintf(w, "Reproduction of the evaluation of *On the brink: Searching for drops in sensor data* (EDBT 2008).\n\n")
	fmt.Fprintf(w, "Workload: synthetic CAD transect (see DESIGN.md §2), %d sensor(s) × %d days at 5-min sampling, robust-smoothed; scalability runs use %d sensors. Seed %d. Host: %s/%s, %d CPUs. Generated %s by `cmd/benchrunner`.\n\n",
		cfg.Sensors, cfg.Days, cfg.FullSensors, cfg.Seed, runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), time.Now().UTC().Format(time.RFC3339))
	fmt.Fprintf(w, "Absolute numbers differ from the paper (different data scale, hardware, and a from-scratch storage engine instead of MySQL 5.0); the claims being checked are the *shapes*: who wins, by what factor, and how each knob (ε, w, n, cache) moves the result.\n\n")

	step := func(name string, run func() error) {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s...", name)
		if err := run(); err != nil {
			fmt.Fprintln(os.Stderr)
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	step("E00 naive comparison", func() error {
		t, err := bench.NaiveComparison(cfg)
		if err != nil {
			return err
		}
		return t.Render(w)
	})

	var sweep *bench.EpsilonSweep
	step("E01-E09 epsilon sweep", func() error {
		var err error
		sweep, err = bench.RunEpsilonSweep(cfg)
		if err != nil {
			return err
		}
		for _, t := range []*bench.Table{
			sweep.Table3(), sweep.Figures7to9(), sweep.Table4(),
			sweep.Figures10and11(), sweep.Tables5and6(),
		} {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		return nil
	})

	step("E10-E12 window sweep", func() error {
		rows, err := bench.RunWindowSweep(cfg)
		if err != nil {
			return err
		}
		return bench.WindowTable(rows).Render(w)
	})

	step("E13-E14 scalability", func() error {
		rows, err := bench.RunGrowth(cfg)
		if err != nil {
			return err
		}
		return bench.GrowthTable(rows).Render(w)
	})

	step("E15-E19 query regions", func() error {
		rows, err := bench.RunQueryRegions(cfg)
		if err != nil {
			return err
		}
		for _, t := range bench.QueryRegionTables(rows) {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		return nil
	})

	if !*skipAbl {
		step("A1 corner-reduction ablation", func() error {
			t, err := bench.RunAblationCorners(cfg)
			if err != nil {
				return err
			}
			return t.Render(w)
		})
		dir, err := os.MkdirTemp("", "segdiff-bench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		step("A3 buffer-pool ablation", func() error {
			t, err := bench.RunAblationPool(cfg, dir)
			if err != nil {
				return err
			}
			return t.Render(w)
		})
		step("A4 ingest ablation", func() error {
			t, err := bench.RunAblationIngest(cfg, dir)
			if err != nil {
				return err
			}
			return t.Render(w)
		})
	}
}

// runPerf runs the sequential-vs-parallel read-path comparison plus the
// row-at-a-time-vs-batched durable-ingest comparison and writes the
// report as indented JSON (the BENCH_PR1.json / BENCH_PR2.json artifacts).
func runPerf(cfg bench.Config, path string, iters, readAhead int, gb *bench.GoBench) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "running read-path perf comparison (%d iters/client, GOMAXPROCS=%d)...",
		iters, runtime.GOMAXPROCS(0))
	rep, err := bench.RunPerf(cfg, iters)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	rep.Bench = gb
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	fmt.Fprintf(os.Stderr, "running write-path ingest comparison...")
	dir, err := os.MkdirTemp("", "segdiff-perf-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	rep.Ingest, err = bench.RunIngestPerf(cfg, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	fmt.Fprintf(os.Stderr, "running fused-vs-branch comparison...")
	rep.Fusion, err = bench.RunFusionPerf(cfg, iters)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	fmt.Fprintf(os.Stderr, "running cold-cache comparison...")
	rep.ColdCache, err = bench.RunColdCachePerf(cfg, dir, iters, readAhead)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	fmt.Fprintf(os.Stderr, "running trace-overhead comparison...")
	rep.TraceOverhead, err = bench.RunTraceOverhead(cfg, dir, iters, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	fmt.Fprintf(os.Stderr, "running direct-vs-HTTP serving comparison...")
	rep.Serve, err = bench.RunServePerf(cfg, iters)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	for _, sc := range rep.Scenarios {
		fmt.Fprintf(os.Stderr, "  %-17s clients=%d workers=%d  mean %.1f ms/query  %.1f queries/s\n",
			sc.Name, sc.Clients, sc.UnionWorkers, sc.MeanLatMS, sc.Throughput)
	}
	fmt.Fprintf(os.Stderr, "  throughput speedup %.2fx, results identical: %v\n", rep.Speedup, rep.Identical)
	if rep.Bench != nil {
		fmt.Fprintf(os.Stderr, "  go-bench parallel: baseline %.1f ms/op -> current %.1f ms/op (%.2fx)\n",
			rep.Bench.BaselineParallelMS, rep.Bench.CurrentParallelMS, rep.Bench.ParallelSpeedup)
	}
	if ing := rep.Ingest; ing != nil {
		for _, sc := range []bench.IngestScenario{ing.RowAtATime, ing.Batched} {
			fmt.Fprintf(os.Stderr, "  ingest %-14s %d pts in %.0f ms  %.0f pts/s\n",
				sc.Name, sc.Points, sc.WallMS, sc.Throughput)
		}
		fmt.Fprintf(os.Stderr, "  ingest speedup %.2fx, search identical: %v, tables identical: %v\n",
			ing.Speedup, ing.SearchIdentical, ing.TablesIdentical)
	}
	if fu := rep.Fusion; fu != nil {
		for _, sc := range []bench.PerfScenario{fu.Fused, fu.Unfused} {
			fmt.Fprintf(os.Stderr, "  %-17s clients=%d  mean %.1f ms/query  %.1f queries/s\n",
				sc.Name, sc.Clients, sc.MeanLatMS, sc.Throughput)
		}
		fmt.Fprintf(os.Stderr, "  fusion speedup %.2fx, results identical: %v\n", fu.Speedup, fu.Identical)
	}
	if cc := rep.ColdCache; cc != nil {
		printColdCache(cc)
	}
	if to := rep.TraceOverhead; to != nil {
		printTraceOverhead(to)
	}
	if sv := rep.Serve; sv != nil {
		printServe(sv)
	}
}

// printServe renders the serving comparison for stderr.
func printServe(sv *bench.ServeReport) {
	for _, sc := range []bench.ServeScenario{sv.Direct, sv.HTTP} {
		fmt.Fprintf(os.Stderr, "  serve %-12s clients=%d  mean %.1f ms/query  %.1f queries/s\n",
			sc.Name, sc.Clients, sc.MeanLatMS, sc.Throughput)
	}
	fmt.Fprintf(os.Stderr, "  serve wire overhead %.2fx, results identical: %v, lane admitted %d rejected %d\n",
		sv.WireOverhead, sv.Identical, sv.Admitted, sv.Rejected)
}

// printTraceOverhead renders the metrics-overhead comparison for stderr.
func printTraceOverhead(to *bench.TraceOverheadReport) {
	for _, sec := range []bench.TraceOverheadSection{to.Fused, to.Cold} {
		fmt.Fprintf(os.Stderr, "  trace %-17s on %.1f ms  off %.1f ms  overhead %+.2f%%\n",
			sec.Name, sec.OnMS, sec.OffMS, sec.OverheadPct)
	}
	fmt.Fprintf(os.Stderr, "  trace max overhead %+.2f%%, results identical: %v\n",
		to.MaxOverheadPct, to.Identical)
}

// printColdCache renders the cold-cache comparison for stderr.
func printColdCache(cc *bench.ColdCacheReport) {
	for _, sc := range []bench.ColdScenario{cc.Baseline, cc.Tuned} {
		fmt.Fprintf(os.Stderr, "  cold %-18s %d trials  %.1f queries/s  %d pages read (%d prefetched, %d hits, %d wasted), %d zone-skipped\n",
			sc.Name, sc.Trials, sc.Throughput, sc.PagesRead, sc.PrefetchReads, sc.PrefetchHits, sc.PrefetchWasted, sc.ZoneSkipped)
	}
	fmt.Fprintf(os.Stderr, "  cold-cache speedup %.2fx, results identical: %v\n", cc.Speedup, cc.Identical)
}

// runFusionSmoke is the CI gate: fused and branch-at-a-time execution must
// return identical matches, and the fused path must not be slower.
func runFusionSmoke(cfg bench.Config, iters int) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "running fusion smoke (%d iters/client, GOMAXPROCS=%d)...",
		iters, runtime.GOMAXPROCS(0))
	rep, err := bench.RunFusionPerf(cfg, iters)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "  fused   %.1f queries/s\n  unfused %.1f queries/s\n  speedup %.2fx, results identical: %v\n",
		rep.Fused.Throughput, rep.Unfused.Throughput, rep.Speedup, rep.Identical)
	if !rep.Identical {
		fatal(fmt.Errorf("fusion smoke: fused and branch-at-a-time results differ"))
	}
	if rep.Speedup < 1.0 {
		fatal(fmt.Errorf("fusion smoke: fused path is slower than branch-at-a-time (%.2fx)", rep.Speedup))
	}
}

// runColdCacheSmoke is the CI gate for the buffer-pool I/O work: zone-map
// pruning plus readahead must return matches identical to demand paging
// (forced scan and index path both) and must not be slower cold.
func runColdCacheSmoke(cfg bench.Config, iters, readAhead int) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "running cold-cache smoke (%d trials, readahead %d)...", iters, readAhead)
	dir, err := os.MkdirTemp("", "segdiff-coldcache-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	rep, err := bench.RunColdCachePerf(cfg, dir, iters, readAhead)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))
	printColdCache(rep)
	if !rep.Identical {
		fatal(fmt.Errorf("cold-cache smoke: pruned and demand-paging results differ"))
	}
	if rep.Speedup < 1.0 {
		fatal(fmt.Errorf("cold-cache smoke: readahead+zone maps slower than demand paging (%.2fx)", rep.Speedup))
	}
}

// runTraceSmoke is the CI gate for the observability work: metrics on
// and off must return identical results, and the metrics-on engine must
// stay within maxPct of the metrics-off wall time on both the warm
// fused search and the cold region scan. The measurement is retried to
// ride out CI scheduler noise; the best (lowest-overhead) attempt is
// judged, since a genuine regression shows up in every attempt.
func runTraceSmoke(cfg bench.Config, iters int, maxPct float64) {
	const attempts = 3
	var rep *bench.TraceOverheadReport
	for a := 1; a <= attempts; a++ {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running trace smoke %d/%d (%d queries/round, GOMAXPROCS=%d)...",
			a, attempts, iters, runtime.GOMAXPROCS(0))
		dir, err := os.MkdirTemp("", "segdiff-trace-*")
		if err != nil {
			fatal(err)
		}
		r, err := bench.RunTraceOverhead(cfg, dir, iters, 0)
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr)
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))
		printTraceOverhead(r)
		if rep == nil || r.MaxOverheadPct < rep.MaxOverheadPct {
			rep = r
		}
		if rep.MaxOverheadPct < maxPct {
			break
		}
	}
	if !rep.Identical {
		fatal(fmt.Errorf("trace smoke: metrics-on and metrics-off results differ"))
	}
	if rep.MaxOverheadPct >= maxPct {
		fatal(fmt.Errorf("trace smoke: metrics overhead %.2f%% exceeds the %.1f%% budget (fused %+.2f%%, cold %+.2f%%)",
			rep.MaxOverheadPct, maxPct, rep.Fused.OverheadPct, rep.Cold.OverheadPct))
	}
}

// runServeSmoke is the CI gate for the serving layer: a full pass over
// the HTTP stack (boot, ingest, identical search, explain, drain) must
// succeed end to end.
func runServeSmoke(cfg bench.Config) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "running serve smoke (GOMAXPROCS=%d)...", runtime.GOMAXPROCS(0))
	if err := bench.RunServeSmoke(cfg); err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
