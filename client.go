package segdiff

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a segdiffd server (cmd/segdiffd, internal/server).
// It mirrors the Collection API over HTTP: Append ingests batches,
// Drops/Jumps run the paper's (V, T) searches across sensors, Sensors
// lists them, and Explain fetches an EXPLAIN ANALYZE trace. All calls
// take a context; its deadline is also forwarded to the server as the
// request's query deadline, so client and server give up together.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the server at baseURL (for example
// "http://127.0.0.1:8080"). httpClient may be nil for
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string // response body, trimmed
	RequestID  string // X-Request-Id echoed by the server, when present
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("segdiff: server returned %d (%s): %s", e.StatusCode, e.RequestID, e.Message)
	}
	return fmt.Sprintf("segdiff: server returned %d: %s", e.StatusCode, e.Message)
}

// do issues one request and returns the response, converting non-2xx
// statuses to *APIError. The caller closes the body on success.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, &APIError{
			StatusCode: resp.StatusCode,
			Message:    strings.TrimSpace(string(body)),
			RequestID:  resp.Header.Get("X-Request-Id"),
		}
	}
	return resp, nil
}

// queryURL builds base+path?q, forwarding the context deadline (if any)
// as the server-side timeout parameter.
func (c *Client) queryURL(ctx context.Context, path string, q url.Values) string {
	if dl, ok := ctx.Deadline(); ok {
		if left := time.Until(dl); left > 0 {
			q.Set("timeout", left.Round(time.Millisecond).String())
		}
	}
	u := c.base + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

func formatV(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Append ingests batches via POST /v1/append and reports how many
// sensors and points the server accepted.
func (c *Client) Append(ctx context.Context, batches []SensorBatch) (sensors, points int, err error) {
	body, err := json.Marshal(batches)
	if err != nil {
		return 0, 0, err
	}
	u := c.queryURL(ctx, "/v1/append", url.Values{})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Sensors int `json:"sensors"`
		Points  int `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, fmt.Errorf("segdiff: decoding append response: %w", err)
	}
	return out.Sensors, out.Points, nil
}

// Drops runs GET /v1/drops: every drop of at least |v| (v < 0) within
// span, across all sensors or just the named ones. The result is
// ordered by sensor name, one element per sensor, exactly as
// Collection.DropsContext returns it.
func (c *Client) Drops(ctx context.Context, span time.Duration, v float64, sensors ...string) ([]SensorMatches, error) {
	return c.search(ctx, "/v1/drops", span, v, sensors)
}

// Jumps is the symmetric search (v > 0) via GET /v1/jumps.
func (c *Client) Jumps(ctx context.Context, span time.Duration, v float64, sensors ...string) ([]SensorMatches, error) {
	return c.search(ctx, "/v1/jumps", span, v, sensors)
}

func (c *Client) search(ctx context.Context, path string, span time.Duration, v float64, sensors []string) ([]SensorMatches, error) {
	q := url.Values{}
	q.Set("span", span.String())
	q.Set("v", formatV(v))
	if len(sensors) > 0 {
		q.Set("sensors", strings.Join(sensors, ","))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.queryURL(ctx, path, q), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	// The response is NDJSON, one SensorMatches per line; decoding with
	// a stream decoder keeps memory at one line rather than one body.
	results := []SensorMatches{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sm SensorMatches
		if err := json.Unmarshal(line, &sm); err != nil {
			return nil, fmt.Errorf("segdiff: decoding %s line %d: %w", path, len(results)+1, err)
		}
		results = append(results, sm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Sensors lists the collection's sensors via GET /v1/sensors.
func (c *Client) Sensors(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.queryURL(ctx, "/v1/sensors", url.Values{}), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Sensors []string `json:"sensors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("segdiff: decoding sensors response: %w", err)
	}
	return out.Sensors, nil
}

// Explain fetches an EXPLAIN ANALYZE trace for one sensor's search via
// GET /v1/explain. jump selects the search kind.
func (c *Client) Explain(ctx context.Context, sensor string, jump bool, span time.Duration, v float64) (QueryTrace, error) {
	q := url.Values{}
	q.Set("sensor", sensor)
	q.Set("span", span.String())
	q.Set("v", formatV(v))
	if jump {
		q.Set("kind", "jump")
	}
	var tr QueryTrace
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.queryURL(ctx, "/v1/explain", q), nil)
	if err != nil {
		return tr, err
	}
	resp, err := c.do(req)
	if err != nil {
		return tr, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return tr, fmt.Errorf("segdiff: decoding explain response: %w", err)
	}
	return tr, nil
}

// Health probes GET /healthz; nil means the server is up and not
// draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
