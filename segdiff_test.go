package segdiff

import (
	"math/rand"
	"testing"
	"time"

	"segdiff/internal/synth"
)

func points(seed int64, n int) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	v := 10.0
	tt := int64(0)
	for i := range pts {
		tt += 300
		v += rng.NormFloat64() * 0.3
		if rng.Intn(20) == 0 {
			v -= rng.Float64() * 5
		}
		pts[i] = Point{Time: tt, Value: v}
	}
	return pts
}

func TestQuickstartFlow(t *testing.T) {
	ix, err := NewMemory(Options{Epsilon: 0.2, Window: 8 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.AppendPoints(points(1, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Finish(); err != nil {
		t.Fatal(err)
	}
	matches, err := ix.Drops(time.Hour, -3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no drops found in a series with injected 5-unit falls")
	}
	for _, m := range matches {
		if m.From.Start > m.From.End || m.To.Start > m.To.End {
			t.Fatalf("malformed match %+v", m)
		}
		if !m.From.Contains(m.From.Start) || m.From.Contains(m.From.End+1) {
			t.Fatal("Interval.Contains wrong")
		}
	}
	st, err := ix.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 2000 || st.CompressionRate <= 1 || st.DiskBytes() == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Epsilon != 0.2 || st.Window != 8*time.Hour {
		t.Fatalf("options in stats = %+v", st)
	}
	segs, err := ix.Segments()
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %d, %v", len(segs), err)
	}
}

func TestJumpsAPI(t *testing.T) {
	ix, err := NewMemory(Options{Window: 4 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	pts := []Point{}
	for i := 0; i < 100; i++ {
		v := 0.0
		if i >= 50 && i < 55 {
			v = float64(i-49) * 2 // sharp rise of 10 over 25 min
		} else if i >= 55 {
			v = 10
		}
		pts = append(pts, Point{Time: int64(i) * 300, Value: v})
	}
	if err := ix.AppendPoints(pts); err != nil {
		t.Fatal(err)
	}
	if err := ix.Finish(); err != nil {
		t.Fatal(err)
	}
	jumps, err := ix.Jumps(time.Hour, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(jumps) == 0 {
		t.Fatal("sharp rise not found")
	}
	if _, err := ix.Jumps(time.Hour, -1); err == nil {
		t.Fatal("negative V accepted for jumps")
	}
	if _, err := ix.Drops(time.Millisecond, -1); err == nil {
		t.Fatal("sub-second span accepted")
	}
}

func TestOnDiskIndex(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, Options{Epsilon: 0.3, Window: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AppendPoints(points(9, 500)); err != nil {
		t.Fatal(err)
	}
	want, err := ix.Drops(time.Hour, -2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	got, err := ix2.Drops(time.Hour, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < len(want) {
		t.Fatalf("matches lost across reopen: %d -> %d", len(want), len(got))
	}
}

func TestDenoise(t *testing.T) {
	pts := points(3, 300)
	pts[100].Value += 25 // isolated anomaly
	clean, err := Denoise(pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != len(pts) {
		t.Fatalf("length changed: %d", len(clean))
	}
	if d := clean[100].Value - pts[100].Value; d > -15 {
		t.Fatalf("anomaly not removed: delta %.1f", d)
	}
	if _, err := Denoise([]Point{{Time: 2}, {Time: 1}}, 0); err == nil {
		t.Fatal("out-of-order input accepted")
	}
}

func TestCollection(t *testing.T) {
	c := NewMemoryCollection(Options{Epsilon: 0.2, Window: 8 * time.Hour})
	defer c.Close()
	series, _, err := synth.GenerateTransect(synth.Config{
		Seed: 2, Duration: 3 * synth.SecondsPerDay, CADPerWeek: 10, AnomalyRate: -1,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range series {
		ix, err := c.Sensor(sensorName(i))
		if err != nil {
			t.Fatal(err)
		}
		pts := make([]Point, s.Len())
		for j, p := range s.Points() {
			pts[j] = Point{Time: p.T, Value: p.V}
		}
		if err := ix.AppendPoints(pts); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	names, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	res, err := c.Drops(time.Hour, -3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results for %d sensors", len(res))
	}
	total := 0
	for _, r := range res {
		total += len(r.Matches)
	}
	if total == 0 {
		t.Fatal("no CAD drops found across the transect")
	}
	if _, err := c.Jumps(time.Hour, 3); err != nil {
		t.Fatal(err)
	}
}

func sensorName(i int) string {
	return string(rune('a'+i)) + "-node"
}

func TestCollectionOnDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCollection(dir, Options{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.Sensor("n1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AppendPoints(points(4, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the sensor is discoverable without being explicitly opened.
	c2, err := OpenCollection(dir, Options{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	names, err := c2.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "n1" {
		t.Fatalf("names after reopen = %v", names)
	}
	res, err := c2.Drops(30*time.Minute, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Sensor != "n1" {
		t.Fatalf("results = %+v", res)
	}
}

func TestCollectionValidation(t *testing.T) {
	c := NewMemoryCollection(Options{})
	if _, err := c.Sensor("../evil"); err == nil {
		t.Fatal("path traversal sensor name accepted")
	}
	if _, err := c.Sensor(""); err == nil {
		t.Fatal("empty sensor name accepted")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sensor("ok"); err == nil {
		t.Fatal("sensor on closed collection accepted")
	}
	if err := c.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

func TestIndexPrune(t *testing.T) {
	ix, err := NewMemory(Options{Epsilon: 0.2, Window: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	pts := points(12, 1000)
	if err := ix.AppendPoints(pts); err != nil {
		t.Fatal(err)
	}
	if err := ix.Finish(); err != nil {
		t.Fatal(err)
	}
	before, err := ix.Drops(time.Hour, -2)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := pts[len(pts)/2].Time
	removed, err := ix.Prune(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("prune removed nothing")
	}
	after, err := ix.Drops(time.Hour, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("prune did not reduce matches: %d -> %d", len(before), len(after))
	}
	for _, m := range after {
		if m.To.End <= cutoff {
			t.Fatalf("pruned match survived: %+v", m)
		}
	}
}
