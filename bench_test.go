// Benchmarks reproducing every table and figure of the paper's evaluation
// (Section 6) at laptop scale, one benchmark per experiment of DESIGN.md's
// per-experiment index. Each reports the figure's key metric through
// b.ReportMetric; cmd/benchrunner runs the full-size versions and renders
// the complete tables into EXPERIMENTS.md.
package segdiff_test

import (
	"fmt"
	"testing"
	"time"

	"segdiff/internal/bench"
	"segdiff/internal/core"
	"segdiff/internal/feature"
	"segdiff/internal/segment"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// benchConfig is the scaled-down experiment configuration used by the
// testing.B targets.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Days = 3
	cfg.FullDays = 3
	cfg.FullSensors = 2
	cfg.Repeats = 1
	cfg.RandomQs = 8
	return cfg
}

func mustWorkload(b *testing.B, cfg bench.Config) []*timeseries.Series {
	b.Helper()
	series, err := bench.Workload(cfg, cfg.Sensors, cfg.Days)
	if err != nil {
		b.Fatal(err)
	}
	return series
}

func buildSets(b *testing.B, cfg bench.Config, eps float64) (*bench.SegDiffSet, *bench.ExhSet) {
	b.Helper()
	series := mustWorkload(b, cfg)
	w := cfg.DefaultWH * 3600
	set, err := bench.BuildSegDiff(cfg, series, eps, w)
	if err != nil {
		b.Fatal(err)
	}
	if err := set.Finish(); err != nil {
		b.Fatal(err)
	}
	ex, err := bench.BuildExh(cfg, series, w)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		set.Close()
		ex.Close()
	})
	return set, ex
}

// E01 — Table 3: segmentation compression rate r per ε. The measured
// operation is the online segmentation itself.
func BenchmarkTable3CompressionRate(b *testing.B) {
	cfg := benchConfig()
	series := mustWorkload(b, cfg)
	for _, eps := range cfg.Epsilons {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				segs, err := segment.Series(series[0], eps)
				if err != nil {
					b.Fatal(err)
				}
				r = float64(series[0].Len()) / float64(len(segs))
			}
			b.ReportMetric(r, "r")
		})
	}
}

// E02/E03 — Figures 7, 8: SegDiff feature size and the Exh/SegDiff size
// ratio. The measured operation is the full SegDiff build.
func BenchmarkFig7x8FeatureSize(b *testing.B) {
	cfg := benchConfig()
	series := mustWorkload(b, cfg)
	w := cfg.DefaultWH * 3600
	ex, err := bench.BuildExh(cfg, series, w)
	if err != nil {
		b.Fatal(err)
	}
	defer ex.Close()
	exhBytes, err := ex.FeatureBytes()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var segBytes int64
	for i := 0; i < b.N; i++ {
		set, err := bench.BuildSegDiff(cfg, series, cfg.DefaultEps, w)
		if err != nil {
			b.Fatal(err)
		}
		if err := set.Finish(); err != nil {
			b.Fatal(err)
		}
		if segBytes, err = set.FeatureBytes(); err != nil {
			b.Fatal(err)
		}
		if err := set.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(segBytes), "seg-bytes")
	b.ReportMetric(float64(exhBytes)/float64(segBytes), "size-ratio")
}

// E04 — Figure 9: disk size (features + indexes).
func BenchmarkFig9DiskSize(b *testing.B) {
	cfg := benchConfig()
	set, ex := buildSets(b, cfg, cfg.DefaultEps)
	b.ResetTimer()
	var segDisk, exhDisk int64
	var err error
	for i := 0; i < b.N; i++ {
		if segDisk, err = set.DiskBytes(); err != nil {
			b.Fatal(err)
		}
		if exhDisk, err = ex.DiskBytes(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(segDisk), "seg-disk-bytes")
	b.ReportMetric(float64(exhDisk)/float64(segDisk), "disk-ratio")
}

// E05 — Table 4: corner-case distribution.
func BenchmarkTable4CornerCases(b *testing.B) {
	cfg := benchConfig()
	set, _ := buildSets(b, cfg, cfg.DefaultEps)
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		hist, err := set.CornerHistogram()
		if err != nil {
			b.Fatal(err)
		}
		avg = hist.AverageCorners()
	}
	b.ReportMetric(avg, "avg-corners")
}

// E06 — Figure 10: sequential-scan query time (cold cache).
func BenchmarkFig10SeqScan(b *testing.B) {
	cfg := benchConfig()
	set, _ := buildSets(b, cfg, cfg.DefaultEps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := set.DropCache(); err != nil {
			b.Fatal(err)
		}
		if _, err := set.Search(feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan); err != nil {
			b.Fatal(err)
		}
	}
}

// E07 — Figure 11: index-plan query time (cold cache).
func BenchmarkFig11IndexScan(b *testing.B) {
	cfg := benchConfig()
	set, _ := buildSets(b, cfg, cfg.DefaultEps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := set.DropCache(); err != nil {
			b.Fatal(err)
		}
		if _, err := set.Search(feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceIndex); err != nil {
			b.Fatal(err)
		}
	}
}

// E08/E09 — Tables 5, 6: Exh/SegDiff time ratios on the default query.
func BenchmarkTable5x6Ratios(b *testing.B) {
	cfg := benchConfig()
	set, ex := buildSets(b, cfg, cfg.DefaultEps)
	b.ResetTimer()
	var segNS, exhNS int64
	for i := 0; i < b.N; i++ {
		segNS += timeOnce(b, set, cfg, sqlmini.PlanForceScan)
		exhNS += timeOnce(b, ex, cfg, sqlmini.PlanForceScan)
	}
	if segNS > 0 {
		b.ReportMetric(float64(exhNS)/float64(segNS), "r_st")
	}
}

type coldSearcher interface {
	Search(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) (int, error)
	DropCache() error
}

func timeOnce(b *testing.B, s coldSearcher, cfg bench.Config, mode sqlmini.PlanMode) int64 {
	b.Helper()
	if err := s.DropCache(); err != nil {
		b.Fatal(err)
	}
	start := nowNano()
	if _, err := s.Search(feature.Drop, cfg.QueryT, cfg.QueryV, mode); err != nil {
		b.Fatal(err)
	}
	return nowNano() - start
}

// E10/E11/E12 — Figures 12, 13 and Table 7: the w sweep.
func BenchmarkFig12x13WindowSweep(b *testing.B) {
	cfg := benchConfig()
	cfg.WindowsH = []int64{1, 4, 8}
	series := mustWorkload(b, cfg)
	for _, wh := range cfg.WindowsH {
		b.Run(fmt.Sprintf("w=%dh", wh), func(b *testing.B) {
			var ratioF float64
			for i := 0; i < b.N; i++ {
				set, err := bench.BuildSegDiff(cfg, series, cfg.DefaultEps, wh*3600)
				if err != nil {
					b.Fatal(err)
				}
				if err := set.Finish(); err != nil {
					b.Fatal(err)
				}
				ex, err := bench.BuildExh(cfg, series, wh*3600)
				if err != nil {
					b.Fatal(err)
				}
				sb, err := set.FeatureBytes()
				if err != nil {
					b.Fatal(err)
				}
				eb, err := ex.FeatureBytes()
				if err != nil {
					b.Fatal(err)
				}
				ratioF = float64(eb) / float64(sb)
				set.Close()
				ex.Close()
			}
			b.ReportMetric(ratioF, "r_f")
		})
	}
}

// E13/E14 — Figures 14, 15: scalability with n (incremental groups).
func BenchmarkFig14x15Growth(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunGrowth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.SegFeatBytes), "final-seg-bytes")
		b.ReportMetric(float64(last.SegSeqTime.Microseconds())/1000, "final-query-ms")
	}
}

// E15 — Figure 16: the random query set (coverage run, warm, seq scan).
func BenchmarkFig16QueryCoverage(b *testing.B) {
	cfg := benchConfig()
	set, _ := buildSets(b, cfg, cfg.DefaultEps)
	qs := bench.RandomQueries(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := set.Search(feature.Drop, q.T, q.V, sqlmini.PlanForceScan); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(qs)), "queries")
}

// E16 — Figures 17, 18: per-query seq scan, warm cache.
func BenchmarkFig17x18SeqScanWarm(b *testing.B) {
	benchQuerySet(b, sqlmini.PlanForceScan, false)
}

// E17 — Figures 19, 20: per-query index plan, warm cache.
func BenchmarkFig19x20IndexWarm(b *testing.B) {
	benchQuerySet(b, sqlmini.PlanForceIndex, false)
}

// E18 — Figures 21, 22: Exh/SegDiff ratios, warm cache.
func BenchmarkFig21x22RatiosWarm(b *testing.B) {
	benchQuerySetRatio(b, false)
}

// E19 — Figures 23, 24: Exh/SegDiff ratios, cold cache.
func BenchmarkFig23x24RatiosCold(b *testing.B) {
	benchQuerySetRatio(b, true)
}

func benchQuerySet(b *testing.B, mode sqlmini.PlanMode, cold bool) {
	cfg := benchConfig()
	set, _ := buildSets(b, cfg, cfg.DefaultEps)
	qs := bench.RandomQueries(cfg)
	// Warm up.
	for _, q := range qs {
		if _, err := set.Search(feature.Drop, q.T, q.V, mode); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if cold {
				if err := set.DropCache(); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := set.Search(feature.Drop, q.T, q.V, mode); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchQuerySetRatio(b *testing.B, cold bool) {
	cfg := benchConfig()
	set, ex := buildSets(b, cfg, cfg.DefaultEps)
	qs := bench.RandomQueries(cfg)
	b.ResetTimer()
	var segNS, exhNS int64
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if cold {
				if err := set.DropCache(); err != nil {
					b.Fatal(err)
				}
				if err := ex.DropCache(); err != nil {
					b.Fatal(err)
				}
			}
			s := nowNano()
			if _, err := set.Search(feature.Drop, q.T, q.V, sqlmini.PlanForceScan); err != nil {
				b.Fatal(err)
			}
			segNS += nowNano() - s
			s = nowNano()
			if _, err := ex.Search(feature.Drop, q.T, q.V, sqlmini.PlanForceScan); err != nil {
				b.Fatal(err)
			}
			exhNS += nowNano() - s
		}
	}
	if segNS > 0 {
		b.ReportMetric(float64(exhNS)/float64(segNS), "seq-ratio")
	}
}

// O1 — observability: steady-state price of the always-on metrics
// registry on the warm fused drop search. The metrics-off variant
// (Options.DisableMetrics) is the pre-observability query path; compare
// the two sub-benchmarks to see the per-query cost of the counters.
// CI gates the same comparison end to end via
// `benchrunner -trace-smoke` (< 2% overhead).
func BenchmarkTraceOff(b *testing.B) {
	cfg := benchConfig()
	for _, bc := range []struct {
		name string
		opts sqlmini.Options
	}{
		{"metrics-on", sqlmini.Options{}},
		{"metrics-off", sqlmini.Options{DisableMetrics: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			series := mustWorkload(b, cfg)
			st, err := core.OpenMemory(core.Options{
				Epsilon: cfg.DefaultEps,
				Window:  cfg.DefaultWH * 3600,
				DB:      bc.opts,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { st.Close() })
			if err := st.AppendSeries(series[0]); err != nil {
				b.Fatal(err)
			}
			if err := st.Finish(); err != nil {
				b.Fatal(err)
			}
			if _, err := st.SearchDrops(cfg.QueryT, cfg.QueryV); err != nil {
				b.Fatal(err) // warm the pool; the measurement targets CPU cost
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.SearchDrops(cfg.QueryT, cfg.QueryV); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A1 — ablation: Table-2 corner reduction vs all four corners.
func BenchmarkAblationAllCorners(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationCorners(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// A3 — ablation: buffer-pool size sweep.
func BenchmarkAblationBufferPool(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationPool(cfg, b.TempDir()); err != nil {
			b.Fatal(err)
		}
	}
}

// A4 — ablation: durable vs in-memory ingest.
func BenchmarkAblationIngest(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationIngest(cfg, b.TempDir()); err != nil {
			b.Fatal(err)
		}
	}
}

func nowNano() int64 { return time.Now().UnixNano() }
