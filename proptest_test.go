package segdiff

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/crashtest"
	"segdiff/internal/feature"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/synth"
)

// TestPropertyDifferentialOracle is the property-based differential test
// of the whole public stack: N seeded synthetic series are indexed under
// randomized (ε, w) and queried with randomized (T, V) drop AND jump
// searches, and every answer is checked against the naive
// quadratic-scan oracle for both halves of Theorem 1 —
//
//   - completeness: SegDiff's matches cover every oracle event
//     (no false negatives, the paper's hard guarantee);
//   - precision: every match contains an event with Δv beyond V ∓ 2ε
//     within a span in (0, T], exactly evaluated on the
//     linear-interpolation model.
//
// All randomness is seeded, so a failure reproduces deterministically.
func TestPropertyDifferentialOracle(t *testing.T) {
	nSeries, nQueries := 8, 6
	if testing.Short() {
		nSeries, nQueries = 3, 4
	}
	for i := 0; i < nSeries; i++ {
		seed := int64(100 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			eps := 0.05 + rng.Float64()*0.55              // ε ∈ [0.05, 0.6)
			w := time.Duration(1+rng.Intn(4)) * time.Hour // w ∈ {1h..4h}
			cadPerWeek := 20 + rng.Float64()*30           // event density
			series, _, err := synth.Generate(synth.Config{
				Seed:       seed,
				Duration:   43200,
				CADPerWeek: cadPerWeek,
			})
			if err != nil {
				t.Fatal(err)
			}

			ix, err := NewMemory(Options{Epsilon: eps, Window: w})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			for _, p := range series.Points() {
				if err := ix.Append(p.T, p.V); err != nil {
					t.Fatal(err)
				}
			}
			if err := ix.Finish(); err != nil {
				t.Fatal(err)
			}
			segs, err := ix.Segments()
			if err != nil {
				t.Fatal(err)
			}
			maxSlope := 0.0
			for _, g := range segs {
				if g.End.Time == g.Start.Time {
					continue
				}
				s := (g.End.Value - g.Start.Value) / float64(g.End.Time-g.Start.Time)
				if s < 0 {
					s = -s
				}
				if s > maxSlope {
					maxSlope = s
				}
			}

			wSec := int64(w / time.Second)
			for q := 0; q < nQueries; q++ {
				T := 600 + rng.Int63n(wSec-599) // T ∈ [600, w] seconds
				mag := 1 + rng.Float64()*5      // |V| ∈ [1, 6)
				span := time.Duration(T) * time.Second

				drops, err := ix.Drops(span, -mag)
				if err != nil {
					t.Fatalf("query %d: drops(T=%d, V=%.3f): %v", q, T, -mag, err)
				}
				if err := crashtest.VerifyTheorem1(
					series, feature.Drop, T, -mag, periods(drops), maxSlope, eps); err != nil {
					t.Fatalf("query %d: drops(T=%d, V=%.3f): %v", q, T, -mag, err)
				}

				jumps, err := ix.Jumps(span, mag)
				if err != nil {
					t.Fatalf("query %d: jumps(T=%d, V=%.3f): %v", q, T, mag, err)
				}
				if err := crashtest.VerifyTheorem1(
					series, feature.Jump, T, mag, periods(jumps), maxSlope, eps); err != nil {
					t.Fatalf("query %d: jumps(T=%d, V=%.3f): %v", q, T, mag, err)
				}
			}
		})
	}
}

// TestPropertyFusedScanIdentity is the property-based identity test for
// the fused shared-scan execution path: the same randomized workload and
// queries, answered by every engine configuration the planner can take —
// fusion on/off × every PlanMode × union pool sizes 1 and GOMAXPROCS —
// must produce identical matches. Fusion is a pure execution-strategy
// change; any divergence here is a correctness bug, so the reference
// configuration is the unfused branch-at-a-time path.
func TestPropertyFusedScanIdentity(t *testing.T) {
	nSeries, nQueries := 6, 5
	if testing.Short() {
		nSeries, nQueries = 2, 3
	}
	for i := 0; i < nSeries; i++ {
		seed := int64(900 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			eps := 0.05 + rng.Float64()*0.55
			w := time.Duration(1+rng.Intn(4)) * time.Hour
			series, _, err := synth.Generate(synth.Config{
				Seed:       seed,
				Duration:   43200,
				CADPerWeek: 20 + rng.Float64()*30,
			})
			if err != nil {
				t.Fatal(err)
			}

			type config struct {
				name string
				opts core.Options
			}
			base := core.Options{Epsilon: eps, Window: int64(w / time.Second)}
			configs := []config{
				{"branch-serial", base}, {"branch-pool", base},
				{"fused-serial", base}, {"fused-pool", base},
			}
			configs[0].opts.DB = sqlmini.Options{DisableFusion: true, UnionWorkers: 1}
			configs[1].opts.DB = sqlmini.Options{DisableFusion: true}
			configs[2].opts.DB = sqlmini.Options{UnionWorkers: 1}
			configs[3].opts.DB = sqlmini.Options{}

			stores := make([]*core.Store, len(configs))
			for ci, c := range configs {
				st, err := core.OpenMemory(c.opts)
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				if err := st.AppendSeries(series); err != nil {
					t.Fatal(err)
				}
				if err := st.Finish(); err != nil {
					t.Fatal(err)
				}
				stores[ci] = st
			}

			wSec := int64(w / time.Second)
			modes := []sqlmini.PlanMode{sqlmini.PlanAuto, sqlmini.PlanForceScan, sqlmini.PlanForceIndex}
			for q := 0; q < nQueries; q++ {
				T := 600 + rng.Int63n(wSec-599)
				mag := 1 + rng.Float64()*5
				for _, kind := range []feature.Kind{feature.Drop, feature.Jump} {
					V := mag
					if kind == feature.Drop {
						V = -mag
					}
					for _, mode := range modes {
						ref, err := stores[0].SearchMode(kind, T, V, mode)
						if err != nil {
							t.Fatalf("%s %v T=%d V=%.3f mode=%v: %v", configs[0].name, kind, T, V, mode, err)
						}
						for ci := 1; ci < len(stores); ci++ {
							got, err := stores[ci].SearchMode(kind, T, V, mode)
							if err != nil {
								t.Fatalf("%s %v T=%d V=%.3f mode=%v: %v", configs[ci].name, kind, T, V, mode, err)
							}
							if !reflect.DeepEqual(ref, got) {
								t.Errorf("%v T=%d V=%.3f mode=%v: %s returned %d matches, %s returned %d\nref: %v\ngot: %v",
									kind, T, V, mode, configs[0].name, len(ref), configs[ci].name, len(got), ref, got)
							}
						}
					}
				}
			}
		})
	}
}

func periods(ms []Match) []crashtest.Period {
	out := make([]crashtest.Period, len(ms))
	for i, m := range ms {
		out[i] = crashtest.Period{TD: m.From.Start, TC: m.From.End, TB: m.To.Start, TA: m.To.End}
	}
	return out
}
