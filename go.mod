module segdiff

go 1.22
