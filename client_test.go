package segdiff_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"segdiff"
	"segdiff/internal/server"
)

// clientFixture is a collection served over httptest plus a Client
// pointed at it — the round-trip rig for the public client API.
func clientFixture(t *testing.T) (*segdiff.Collection, *segdiff.Client) {
	t.Helper()
	col := segdiff.NewMemoryCollection(segdiff.Options{Epsilon: 0.2, Window: 8 * time.Hour})
	t.Cleanup(func() { col.Close() })

	pts := make([]segdiff.Point, 300)
	for i := range pts {
		v := 12.0
		if i >= 150 {
			v = 4.0
		}
		pts[i] = segdiff.Point{Time: int64(i * 60), Value: v}
	}
	if err := col.AppendAll([]segdiff.SensorBatch{{Sensor: "probe", Points: pts}}); err != nil {
		t.Fatal(err)
	}

	srv := server.New(col, server.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return col, segdiff.NewClient(hs.URL, hs.Client())
}

func TestClientRoundTrip(t *testing.T) {
	col, cl := clientFixture(t)
	ctx := context.Background()

	if err := cl.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	names, err := cl.Sensors(ctx)
	if err != nil || !reflect.DeepEqual(names, []string{"probe"}) {
		t.Fatalf("sensors = %v, %v", names, err)
	}

	got, err := cl.Drops(ctx, time.Hour, -3)
	if err != nil {
		t.Fatalf("drops: %v", err)
	}
	want, err := col.DropsContext(ctx, time.Hour, -3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drops over the wire differ:\n got %+v\nwant %+v", got, want)
	}
	if len(got) != 1 || len(got[0].Matches) == 0 {
		t.Fatalf("probe's drop went missing: %+v", got)
	}

	jumps, err := cl.Jumps(ctx, time.Hour, 3, "probe")
	if err != nil {
		t.Fatalf("jumps: %v", err)
	}
	wantJumps, err := col.JumpsContext(ctx, time.Hour, 3, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jumps, wantJumps) {
		t.Fatalf("jumps over the wire differ:\n got %+v\nwant %+v", jumps, wantJumps)
	}

	sensors, points, err := cl.Append(ctx, []segdiff.SensorBatch{
		{Sensor: "extra", Points: []segdiff.Point{{Time: 0, Value: 1}, {Time: 60, Value: 2}}},
	})
	if err != nil || sensors != 1 || points != 2 {
		t.Fatalf("append = (%d, %d, %v), want (1, 2, nil)", sensors, points, err)
	}

	tr, err := cl.Explain(ctx, "probe", false, time.Hour, -3)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if tr.SQL == "" || len(tr.Lines) == 0 {
		t.Fatalf("explain trace empty: %+v", tr)
	}
}

func TestClientErrors(t *testing.T) {
	_, cl := clientFixture(t)
	ctx := context.Background()

	var ae *segdiff.APIError
	if _, err := cl.Drops(ctx, time.Hour, -3, "ghost"); !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Fatalf("unknown sensor: %v", err)
	}
	if !strings.Contains(ae.Error(), "404") {
		t.Fatalf("APIError.Error() = %q, want the status in it", ae.Error())
	}
	if _, err := cl.Drops(ctx, time.Hour, 3); !errors.As(err, &ae) || ae.StatusCode != 400 {
		t.Fatalf("positive drop threshold: %v", err)
	}
	if _, err := cl.Jumps(ctx, 0, 3); !errors.As(err, &ae) || ae.StatusCode != 400 {
		t.Fatalf("zero span: %v", err)
	}
	if _, err := cl.Explain(ctx, "ghost", false, time.Hour, -3); !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Fatalf("explain unknown sensor: %v", err)
	}
	if _, _, err := cl.Append(ctx, []segdiff.SensorBatch{{Sensor: "bad name"}}); !errors.As(err, &ae) || ae.StatusCode != 400 {
		t.Fatalf("bad append: %v", err)
	}

	// A canceled context surfaces as a transport error, not a hang.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := cl.Sensors(canceled); err == nil {
		t.Fatal("canceled context did not error")
	}
}

func TestClientAgainstBrokenServer(t *testing.T) {
	// A server speaking garbage must yield decode errors, not panics.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json at all"))
	}))
	defer garbage.Close()
	cl := segdiff.NewClient(garbage.URL, nil)
	ctx := context.Background()
	if _, err := cl.Sensors(ctx); err == nil {
		t.Fatal("garbage sensors response did not error")
	}
	if _, err := cl.Drops(ctx, time.Hour, -3); err == nil {
		t.Fatal("garbage drops response did not error")
	}
	if _, _, err := cl.Append(ctx, nil); err == nil {
		t.Fatal("garbage append response did not error")
	}
	if _, err := cl.Explain(ctx, "x", true, time.Hour, 3); err == nil {
		t.Fatal("garbage explain response did not error")
	}
}

// TestContextSearchCancellation covers the new context plumbing from
// the public API down: an already-canceled context must stop both the
// single-index and collection search paths.
func TestContextSearchCancellation(t *testing.T) {
	col := segdiff.NewMemoryCollection(segdiff.Options{Epsilon: 0.2, Window: 8 * time.Hour})
	defer col.Close()
	pts := make([]segdiff.Point, 2000)
	for i := range pts {
		pts[i] = segdiff.Point{Time: int64(i * 60), Value: float64(i % 40)}
	}
	if err := col.AppendAll([]segdiff.SensorBatch{{Sensor: "s", Points: pts}}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := col.DropsContext(ctx, time.Hour, -3); !errors.Is(err, context.Canceled) {
		t.Fatalf("collection search under canceled ctx: %v", err)
	}
	ix, err := col.Sensor("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.JumpsContext(ctx, time.Hour, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("index search under canceled ctx: %v", err)
	}

	// An expired deadline maps to DeadlineExceeded, the 504 signal.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := ix.DropsContext(dctx, time.Hour, -3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("index search under expired deadline: %v", err)
	}

	// And a live context still answers, identically to the plain call.
	got, err := col.DropsContext(context.Background(), time.Hour, -3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := col.Drops(time.Hour, -3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DropsContext != Drops:\n got %+v\nwant %+v", got, want)
	}
}

func TestValidSensorName(t *testing.T) {
	for name, want := range map[string]bool{
		"alpha":    true,
		"a_b-c.9":  true,
		"":         false,
		"bad name": false,
		"semi;x":   false,
	} {
		if got := segdiff.ValidSensorName(name); got != want {
			t.Errorf("ValidSensorName(%q) = %v, want %v", name, got, want)
		}
	}
}
