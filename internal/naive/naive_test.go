package naive

import (
	"math"
	"math/rand"
	"testing"

	"segdiff/internal/timeseries"
)

func series(t *testing.T, pts []timeseries.Point) *timeseries.Series {
	t.Helper()
	s, err := timeseries.New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDropsBasic(t *testing.T) {
	s := series(t, []timeseries.Point{
		{T: 0, V: 10}, {T: 100, V: 9}, {T: 200, V: 4}, {T: 300, V: 5},
	})
	// Drop of ≥5 within 200: (0→200) = −6, (100→200) = −5.
	evs, err := Drops(s, 200, -5)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	for _, e := range evs {
		if e.Dv > -5 || e.T2-e.T1 > 200 || e.T2 <= e.T1 {
			t.Fatalf("bad event %+v", e)
		}
	}
	// With T=100 only (100→200) qualifies.
	evs, err = Drops(s, 100, -5)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].T1 != 100 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestJumpsBasic(t *testing.T) {
	s := series(t, []timeseries.Point{{T: 0, V: 0}, {T: 50, V: 4}, {T: 100, V: 1}})
	evs, err := Jumps(s, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].T2 != 50 || evs[0].Dv != 4 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestValidation(t *testing.T) {
	s := series(t, []timeseries.Point{{T: 0, V: 0}, {T: 10, V: 1}})
	if _, err := Drops(s, 0, -1); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, err := Drops(s, 10, 1); err == nil {
		t.Fatal("positive V accepted for drops")
	}
	if _, err := Jumps(s, 10, -1); err == nil {
		t.Fatal("negative V accepted for jumps")
	}
}

func TestExtremeChangeSimple(t *testing.T) {
	// V shape: 0 → −10 at t=100 → 0 at t=200.
	s := series(t, []timeseries.Point{{T: 0, V: 0}, {T: 100, V: -10}, {T: 200, V: 0}})
	// Biggest drop from [0,50] into [60,150] within T=150: from v(0)=0
	// down to v(100)=−10 ⇒ −10.
	d, ok, err := ExtremeChange(s, 0, 50, 60, 150, 150, true)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if d != -10 {
		t.Fatalf("extreme drop = %v", d)
	}
	// Biggest jump from [60,150] into [150,200] within T=200: from −10 up
	// to v(200)=0 ⇒ +10... t′ ∈ [60,150] lowest is −10 at 100; t″ up to 200.
	j, ok, err := ExtremeChange(s, 60, 150, 150, 200, 200, false)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if j != 10 {
		t.Fatalf("extreme jump = %v", j)
	}
}

func TestExtremeChangeRespectsT(t *testing.T) {
	// Linear fall of slope −0.1/unit: drop within T is exactly 0.1·T.
	s := series(t, []timeseries.Point{{T: 0, V: 100}, {T: 1000, V: 0}})
	d, ok, err := ExtremeChange(s, 0, 1000, 0, 1000, 200, true)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if math.Abs(d-(-20)) > 1e-9 {
		t.Fatalf("T-limited drop = %v, want -20", d)
	}
}

func TestExtremeChangeEmpty(t *testing.T) {
	s := series(t, []timeseries.Point{{T: 0, V: 0}, {T: 1000, V: 1}})
	// Second interval entirely more than T after the first.
	_, ok, err := ExtremeChange(s, 0, 10, 500, 600, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("infeasible constraint set reported ok")
	}
	if _, _, err := ExtremeChange(s, 10, 0, 0, 10, 100, true); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, _, err := ExtremeChange(s, -5, 10, 0, 10, 100, true); err == nil {
		t.Fatal("out-of-range interval accepted")
	}
	if _, _, err := ExtremeChange(s, 0, 10, 0, 10, 0, true); err == nil {
		t.Fatal("T=0 accepted")
	}
}

// Differential test: ExtremeChange must match a dense grid search.
func TestExtremeChangeAgainstGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		pts := make([]timeseries.Point, 12)
		tt := int64(0)
		for i := range pts {
			tt += 5 + rng.Int63n(20)
			pts[i] = timeseries.Point{T: tt, V: rng.NormFloat64() * 10}
		}
		s := series(t, pts)
		a1 := s.Start() + rng.Int63n(s.Span()/2)
		b1 := a1 + rng.Int63n(s.Span()/4)
		a2 := b1 + rng.Int63n(20)
		b2 := a2 + rng.Int63n(s.Span()/4)
		if b1 > s.End() || b2 > s.End() {
			continue
		}
		T := 10 + rng.Int63n(s.Span())
		got, ok, err := ExtremeChange(s, a1, b1, a2, b2, T, true)
		if err != nil {
			t.Fatal(err)
		}
		// Grid search at unit resolution.
		best := math.Inf(1)
		found := false
		for t1 := a1; t1 <= b1; t1++ {
			v1, err := s.Value(t1)
			if err != nil {
				t.Fatal(err)
			}
			for t2 := max64(a2, t1+1); t2 <= min64(b2, t1+T); t2++ {
				v2, err := s.Value(t2)
				if err != nil {
					t.Fatal(err)
				}
				if d := v2 - v1; d < best {
					best = d
				}
				found = true
			}
		}
		if ok != found {
			t.Fatalf("trial %d: feasibility mismatch (got %v, grid %v)", trial, ok, found)
		}
		if !ok {
			continue
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: extreme %v, grid %v", trial, got, best)
		}
	}
}

// The oracle scan itself: property that no qualifying pair is missed,
// cross-checked against an independent double loop.
func TestScanCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]timeseries.Point, 60)
	tt := int64(0)
	for i := range pts {
		tt += 1 + rng.Int63n(10)
		pts[i] = timeseries.Point{T: tt, V: rng.NormFloat64() * 4}
	}
	s := series(t, pts)
	const T, V = 50, -3.0
	evs, err := Drops(s, T, V)
	if err != nil {
		t.Fatal(err)
	}
	set := map[[2]int64]bool{}
	for _, e := range evs {
		set[[2]int64{e.T1, e.T2}] = true
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			dt := pts[j].T - pts[i].T
			dv := pts[j].V - pts[i].V
			want := dt > 0 && dt <= T && dv <= V
			if want != set[[2]int64{pts[i].T, pts[j].T}] {
				t.Fatalf("pair (%d,%d): want %v", pts[i].T, pts[j].T, want)
			}
		}
	}
}
