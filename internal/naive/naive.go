// Package naive implements the paper's "naive approach": direct search
// over the raw series by comparing pairs of observations. It serves two
// roles:
//
//   - the brute-force baseline the introduction dismisses as too slow, and
//   - the ground-truth oracle for the framework's quality guarantees
//     (Theorem 1): Events enumerates true events among sampled
//     observations, and ExtremeChange computes the exact extreme change
//     achievable between two time intervals under the data generating
//     model G — used to verify that every returned segment pair really
//     contains an event within the 2ε tolerance.
package naive

import (
	"fmt"
	"math"

	"segdiff/internal/timeseries"
)

// Event is a true event between two observation times: Δv = V2 − V1 over
// Δt = T2 − T1.
type Event struct {
	T1, T2 int64
	Dv     float64
}

// Drops scans the sampled observations of s and returns every event with
// 0 < Δt ≤ T and Δv ≤ V (V < 0). It is O(n·k) where k is the number of
// samples per T window.
func Drops(s *timeseries.Series, T int64, V float64) ([]Event, error) {
	if T <= 0 || V >= 0 {
		return nil, fmt.Errorf("naive: drop search requires T > 0 and V < 0 (got T=%d, V=%v)", T, V)
	}
	return scan(s, T, func(dv float64) bool { return dv <= V }), nil
}

// Jumps scans for events with 0 < Δt ≤ T and Δv ≥ V (V > 0).
func Jumps(s *timeseries.Series, T int64, V float64) ([]Event, error) {
	if T <= 0 || V <= 0 {
		return nil, fmt.Errorf("naive: jump search requires T > 0 and V > 0 (got T=%d, V=%v)", T, V)
	}
	return scan(s, T, func(dv float64) bool { return dv >= V }), nil
}

func scan(s *timeseries.Series, T int64, match func(float64) bool) []Event {
	pts := s.Points()
	var out []Event
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts) && pts[j].T-pts[i].T <= T; j++ {
			dv := pts[j].V - pts[i].V
			if match(dv) {
				out = append(out, Event{T1: pts[i].T, T2: pts[j].T, Dv: dv})
			}
		}
	}
	return out
}

// ExtremeChange computes, exactly under model G, the extreme value of
// v(t″) − v(t′) subject to t′ ∈ [a1, b1], t″ ∈ [a2, b2], 0 < t″ − t′ ≤ T.
// For drop (min=true) it returns the minimum change; for jump the maximum.
// ok is false when the constraint set is empty. The intervals must lie
// within the series' time range.
//
// Because v is piecewise linear, the objective restricted to the feasible
// polygon attains its extreme at a point where t′ and t″ are each at a
// breakpoint of v, an interval endpoint, or on the active constraint
// t″ − t′ = T with the other coordinate at such a point — exactly the
// candidate set enumerated here.
func ExtremeChange(s *timeseries.Series, a1, b1, a2, b2, T int64, min bool) (float64, bool, error) {
	if a1 > b1 || a2 > b2 {
		return 0, false, fmt.Errorf("naive: inverted interval")
	}
	if T <= 0 {
		return 0, false, fmt.Errorf("naive: non-positive T")
	}
	if a1 < s.Start() || b1 > s.End() || a2 < s.Start() || b2 > s.End() {
		return 0, false, fmt.Errorf("naive: interval outside series range")
	}

	// Candidate t′ values: breakpoints and endpoints of [a1,b1], plus
	// t″ − T for each candidate t″ in [a2,b2].
	cand1 := candidates(s, a1, b1)
	cand2 := candidates(s, a2, b2)
	for _, t2 := range cand2 {
		if c := t2 - T; c >= a1 && c <= b1 {
			cand1 = append(cand1, c)
		}
	}
	// And symmetric: t′ + T for each candidate t′.
	extra2 := make([]int64, 0, len(cand1))
	for _, t1 := range cand1 {
		if c := t1 + T; c >= a2 && c <= b2 {
			extra2 = append(extra2, c)
		}
	}
	cand2 = append(cand2, extra2...)

	best := math.Inf(1)
	if !min {
		best = math.Inf(-1)
	}
	found := false
	for _, t1 := range cand1 {
		v1, err := s.Value(t1)
		if err != nil {
			return 0, false, err
		}
		// For fixed t1 the feasible t2 range is [max(a2, t1+1), min(b2, t1+T)]
		// (Δt > 0 means t2 > t1; timestamps are integral so t2 ≥ t1+1).
		lo := max64(a2, t1+1)
		hi := min64(b2, t1+T)
		if lo > hi {
			continue
		}
		v2, err := extremeValue(s, lo, hi, min)
		if err != nil {
			return 0, false, err
		}
		d := v2 - v1
		if min && d < best || !min && d > best {
			best = d
		}
		found = true
	}
	// Also evaluate with t2 fixed at its candidates (t1 optimized), to
	// cover extremes where t2 is at a vertex.
	for _, t2 := range cand2 {
		v2, err := s.Value(t2)
		if err != nil {
			return 0, false, err
		}
		lo := max64(a1, t2-T)
		hi := min64(b1, t2-1)
		if lo > hi {
			continue
		}
		// Extreme of v2 − v1: minimize d ⇒ maximize v1.
		v1, err := extremeValue(s, lo, hi, !min)
		if err != nil {
			return 0, false, err
		}
		d := v2 - v1
		if min && d < best || !min && d > best {
			best = d
		}
		found = true
	}
	return best, found, nil
}

// candidates returns the sample breakpoints within [lo, hi] plus the
// interval endpoints.
func candidates(s *timeseries.Series, lo, hi int64) []int64 {
	out := []int64{lo, hi}
	for _, p := range s.Slice(lo, hi).Points() {
		out = append(out, p.T)
	}
	return out
}

// extremeValue returns the exact min (or max) of model G over [lo, hi].
func extremeValue(s *timeseries.Series, lo, hi int64, min bool) (float64, error) {
	vLo, err := s.Value(lo)
	if err != nil {
		return 0, err
	}
	vHi, err := s.Value(hi)
	if err != nil {
		return 0, err
	}
	best := vLo
	better := func(v float64) bool {
		if min {
			return v < best
		}
		return v > best
	}
	if better(vHi) {
		best = vHi
	}
	for _, p := range s.Slice(lo, hi).Points() {
		if better(p.V) {
			best = p.V
		}
	}
	return best, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
