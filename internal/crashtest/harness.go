// Package crashtest is the crash-safety verification harness: it drives a
// deterministic synth-series batched ingest against a store whose every
// backing file (heap tables, B+tree indexes, write-ahead log) routes
// through the fault-injection layer (internal/storage/faultfs via
// sqlmini.Options.FileFactory), power-cuts the "machine" at a chosen
// write-class operation, reboots from the durable disk image, finishes the
// ingest, and checks the paper's Theorem 1 guarantees against the naive
// oracle on the full original series:
//
//   - no false negatives: every true event of the sampled series is
//     covered by a returned period, no matter where the crash hit;
//   - bounded false positives: every returned period contains an event
//     within 2ε of the threshold (plus integer-grid slope slack).
//
// The workload pins UnionWorkers and WriteWorkers to 1 so the engine's
// file-operation sequence is a pure function of the workload: crash point
// k in one run is crash point k in every run, and the recovered disk image
// is byte-identical across repetitions (see TestCrashDeterministicRecovery).
//
// A clean run counts the write-class operations of the whole ingest; the
// crash tests enumerate the fault-point space (setup excluded — a crash
// during initial schema creation just loses an empty store, which is not
// the recovery path under test). The survival policy and torn-write bit
// cycle deterministically with the crash point, so the enumeration covers
// the strict sync-barrier model, prefix-surviving OS write-back, lost
// fsync acknowledgements, and torn pages.
package crashtest

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/feature"
	"segdiff/internal/naive"
	"segdiff/internal/segment"
	"segdiff/internal/storage/faultfs"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/synth"
	"segdiff/internal/timeseries"
)

// Workload is one deterministic ingest scenario: a seeded synthetic
// series appended in batches with a Sync after each, then finished.
type Workload struct {
	Seed    int64
	Series  *timeseries.Series
	Batches int     // number of Sync'd ingest batches
	T       int64   // drop-search span (seconds)
	V       float64 // drop-search threshold (negative)
	// ReadAhead, when positive, turns on pager scan readahead for every
	// store the workload opens. Prefetch is strictly read-only, so the
	// write-class op census — and with it every crash point and every
	// recovered disk image — must be identical with the knob on or off
	// (TestCrashReadAheadNoDivergence pins this).
	ReadAhead int
	// Obs, when set, arms the observability layer as hard as a user can:
	// the slow-query log records every query (threshold 1 ns) on top of
	// the always-on metrics registry. Observability state is purely
	// volatile — counters, histograms, and the slow log never touch the
	// engine's files — so the op census and every recovered disk image
	// must be identical with the knob on or off
	// (TestCrashObsNoDivergence pins this).
	Obs bool
}

// NewWorkload builds the scenario for a seed: half a day of 5-minute
// samples with frequent cold-air-drainage events so drop searches have
// real matches to find and real events to miss. The span and window are
// deliberately small — every crash point replays the whole ingest twice,
// so workload size multiplies directly into enumeration time.
func NewWorkload(seed int64) (*Workload, error) {
	series, _, err := synth.Generate(synth.Config{
		Seed:       seed,
		Duration:   43200,
		CADPerWeek: 42, // ~3 events per simulated half-day
	})
	if err != nil {
		return nil, err
	}
	return &Workload{Seed: seed, Series: series, Batches: 4, T: 3600, V: -3}, nil
}

// options wires a store to the fault registry. Single-threaded workers
// make the engine's file-operation order deterministic.
func (w *Workload) options(reg *faultfs.Registry) core.Options {
	var slow time.Duration
	if w.Obs {
		slow = time.Nanosecond // every query lands in the slow log
	}
	return core.Options{
		// A 2 h window (vs the 8 h default) bounds how many prior segments
		// each new segment pairs with, keeping the feature volume — and the
		// per-trial cost — small without losing any crash-path coverage.
		Window: 7200,
		DB: sqlmini.Options{
			FileFactory:  reg.Open,
			UnionWorkers: 1,
			WriteWorkers: 1,
			ReadAhead:    w.ReadAhead,
			SlowQuery:    slow,
		},
	}
}

// appendBatches appends every series point with timestamp strictly after
// `after` in w.Batches equal batches, syncing after each. It does not
// Finish.
func (w *Workload) appendBatches(st *core.Store, after int64) error {
	pts := w.Series.Points()
	for len(pts) > 0 && pts[0].T <= after {
		pts = pts[1:]
	}
	if len(pts) == 0 {
		return nil
	}
	per := (len(pts) + w.Batches - 1) / w.Batches
	for len(pts) > 0 {
		n := per
		if n > len(pts) {
			n = len(pts)
		}
		for _, p := range pts[:n] {
			if err := st.Append(p); err != nil {
				return err
			}
		}
		if err := st.Sync(); err != nil {
			return err
		}
		pts = pts[n:]
	}
	return nil
}

// resume appends the not-yet-committed tail of the series to a reopened
// store and finishes it. The committed segment catalog partitions time up
// to its maximum end; a reopen behaves like a sensor gap there, so the
// feed resumes at the first point after it.
func (w *Workload) resume(st *core.Store) error {
	segs, err := st.Segments()
	if err != nil {
		return err
	}
	after := int64(-1)
	if w.Series.Len() > 0 {
		after = w.Series.Start() - 1
	}
	if len(segs) > 0 {
		after = segs[len(segs)-1].Te
	}
	if err := w.appendBatches(st, after); err != nil {
		return err
	}
	return st.Finish()
}

// CleanResult describes an uninterrupted run of the workload.
type CleanResult struct {
	// SetupOps is the write-class operation count consumed by schema
	// creation at open; FirstOp..TotalOps is the crash-point space.
	SetupOps int64
	// IngestOps is the count after the last batch Sync, before Finish;
	// transient-error tests stay at or below it (a fault during Finish
	// leaves the store read-only with the trailing segment lost, which
	// only a reopen — the crash path — can resume from).
	IngestOps int64
	// TotalOps is the count after Close (checkpoint included).
	TotalOps int64
	Matches  []core.Match
}

// FirstOp is the first enumerable crash point.
func (c *CleanResult) FirstOp() int64 { return c.SetupOps + 1 }

// CleanRun executes the workload without faults, verifies Theorem 1, and
// measures the fault-point space.
func (w *Workload) CleanRun(dir string) (*CleanResult, error) {
	reg := faultfs.New(w.Seed)
	st, err := core.Open(dir, w.options(reg))
	if err != nil {
		return nil, err
	}
	res := &CleanResult{SetupOps: reg.Ops()}
	if err := w.appendBatches(st, -1); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	res.IngestOps = reg.Ops()
	if err := st.Finish(); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	if res.Matches, err = w.verifyDrops(st); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	res.TotalOps = reg.Ops()
	if n := reg.OpenHandles(); n != 0 {
		return nil, fmt.Errorf("crashtest: clean run leaked %d file handles", n)
	}
	if res.TotalOps <= res.SetupOps {
		return nil, fmt.Errorf("crashtest: empty fault-point space (setup %d, total %d)",
			res.SetupOps, res.TotalOps)
	}
	return res, nil
}

// ScriptFor is the deterministic fault flavor of crash point k: the
// survival policy and torn-write bit cycle with k so enumerating points
// also enumerates the crash model.
func ScriptFor(k int64) faultfs.Script {
	return faultfs.Script{
		FailOp:   k,
		Mode:     faultfs.Crash,
		Survival: faultfs.Survival(k % 3),
		Torn:     k%2 == 0,
	}
}

// CrashResult is the outcome of one crash-point trial.
type CrashResult struct {
	CrashErr  error        // injected failure surfaced by the engine
	Recovered []core.Match // drop matches of the recovered store
	// Disk is the durable image after the recovered store closed, keyed
	// by file base name — the determinism witness: equal crash points
	// must yield byte-identical Disk maps.
	Disk map[string][]byte
}

// CrashAt runs the workload in dir, power-cuts at write-class operation k,
// reboots from the durable snapshot (driving WAL replay and recovery),
// resumes and finishes the ingest, and verifies Theorem 1 on the result.
func (w *Workload) CrashAt(dir string, k int64) (*CrashResult, error) {
	reg := faultfs.New(w.Seed)
	st, err := core.Open(dir, w.options(reg))
	if err != nil {
		return nil, fmt.Errorf("crashtest: setup open: %w", err)
	}
	reg.SetScript(ScriptFor(k))

	res := &CrashResult{}
	res.CrashErr = w.runToCrash(st)
	if res.CrashErr == nil {
		return nil, fmt.Errorf("crashtest: ingest survived scripted crash at op %d", k)
	}
	if !errors.Is(res.CrashErr, faultfs.ErrInjected) {
		return nil, fmt.Errorf("crashtest: non-injected failure at op %d: %w", k, res.CrashErr)
	}
	if !reg.Crashed() {
		return nil, fmt.Errorf("crashtest: op %d errored without power cut: %v", k, res.CrashErr)
	}
	// The process is dead: its store object and file handles are simply
	// abandoned, and recovery starts from the durable bytes alone.
	boot := faultfs.NewFromSnapshot(w.Seed, reg.Snapshot())
	st2, err := core.Open(dir, w.options(boot))
	if err != nil {
		return nil, fmt.Errorf("crashtest: recovery open after crash at op %d: %w", k, err)
	}
	if err := w.resume(st2); err != nil {
		return nil, errors.Join(
			fmt.Errorf("crashtest: resume after crash at op %d: %w", k, err), st2.Close())
	}
	if res.Recovered, err = w.verifyDrops(st2); err != nil {
		return nil, errors.Join(
			fmt.Errorf("crashtest: crash at op %d: %w", k, err), st2.Close())
	}
	if err := st2.Close(); err != nil {
		return nil, fmt.Errorf("crashtest: recovered close after crash at op %d: %w", k, err)
	}
	if n := boot.OpenHandles(); n != 0 {
		return nil, fmt.Errorf("crashtest: recovery after crash at op %d leaked %d file handles", k, n)
	}
	res.Disk = baseNames(boot.Snapshot())
	return res, nil
}

// runToCrash drives the full workload expecting the scripted fault to
// interrupt it; the first error is returned as the crash error.
func (w *Workload) runToCrash(st *core.Store) error {
	if err := w.appendBatches(st, -1); err != nil {
		return err
	}
	if err := st.Finish(); err != nil {
		return err
	}
	return st.Close()
}

// verifyDrops searches the store and checks Theorem 1 against the naive
// oracle over the full original series.
func (w *Workload) verifyDrops(st *core.Store) ([]core.Match, error) {
	matches, err := st.SearchDrops(w.T, w.V)
	if err != nil {
		return nil, err
	}
	segs, err := st.Segments()
	if err != nil {
		return nil, err
	}
	periods := make([]Period, len(matches))
	for i, m := range matches {
		periods[i] = Period{TD: m.TD, TC: m.TC, TB: m.TB, TA: m.TA}
	}
	if err := VerifyTheorem1(w.Series, feature.Drop, w.T, w.V, periods, MaxSlope(segs), st.Epsilon()); err != nil {
		return nil, err
	}
	return matches, nil
}

// baseNames rekeys a disk snapshot by file base name so images taken in
// different temporary directories compare equal.
func baseNames(snap map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(snap))
	for path, data := range snap {
		out[filepath.Base(path)] = data
	}
	return out
}

// Period is a returned search period ((t_D, t_C), (t_B, t_A)), decoupled
// from the core and public match types so both can be verified.
type Period struct {
	TD, TC, TB, TA int64
}

// MaxSlope returns the largest absolute segment slope — the verifier's
// slack for checking the continuous-model bound on the integer grid.
func MaxSlope(segs []segment.Segment) float64 {
	m := 0.0
	for _, g := range segs {
		if s := abs(g.Slope()); s > m {
			m = s
		}
	}
	return m
}

// VerifyTheorem1 checks both halves of the paper's Theorem 1 for a drop
// (kind == feature.Drop, V < 0) or jump (feature.Jump, V > 0) search:
//
//  1. completeness — every naive-oracle event over the sampled series is
//     covered by some returned period;
//  2. precision — every returned period contains an event with change
//     beyond V ∓ 2ε (checked exactly on the linear-interpolation model,
//     with slope slack for the integer time grid).
func VerifyTheorem1(s *timeseries.Series, kind feature.Kind, T int64, V float64,
	periods []Period, maxSlope, eps float64) error {
	var events []naive.Event
	var err error
	if kind == feature.Drop {
		events, err = naive.Drops(s, T, V)
	} else {
		events, err = naive.Jumps(s, T, V)
	}
	if err != nil {
		return err
	}
	for _, e := range events {
		covered := false
		for _, m := range periods {
			if m.TD <= e.T1 && e.T1 <= m.TC && m.TB <= e.T2 && e.T2 <= m.TA {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("crashtest: FALSE NEGATIVE: true event (%d → %d, Δv=%.4f) not covered by any of %d periods",
				e.T1, e.T2, e.Dv, len(periods))
		}
	}
	slack := 2*maxSlope + 1e-9
	for _, m := range periods {
		lo, hi := max64(m.TD, s.Start()), min64(m.TA, s.End())
		if lo > hi {
			return fmt.Errorf("crashtest: period (%d,%d,%d,%d) lies outside the series", m.TD, m.TC, m.TB, m.TA)
		}
		d, ok, err := naive.ExtremeChange(s,
			max64(m.TD, s.Start()), min64(m.TC, s.End()),
			max64(m.TB, s.Start()), min64(m.TA, s.End()), T, kind == feature.Drop)
		if err != nil {
			return fmt.Errorf("crashtest: period (%d,%d,%d,%d): %w", m.TD, m.TC, m.TB, m.TA, err)
		}
		loose := !ok
		if kind == feature.Drop {
			loose = loose || d > V+2*eps+slack
		} else {
			loose = loose || d < V-2*eps-slack
		}
		if loose {
			return fmt.Errorf("crashtest: period (%d,%d,%d,%d) beyond the V+2ε tolerance: best change %.4f vs bound %.4f (ok=%v)",
				m.TD, m.TC, m.TB, m.TA, d, V+2*eps, ok)
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
