package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"segdiff/internal/core"
	"segdiff/internal/naive"
	"segdiff/internal/storage/faultfs"
)

var matrixSeeds = []int64{1, 2, 3, 4, 5}

// crashPoints selects the crash points to enumerate for one seed. In
// -short mode every seed samples 25 evenly spaced points (125 distinct
// points across the matrix); the full mode additionally enumerates the
// entire fault-point space for the first two seeds.
func crashPoints(c *CleanResult, exhaustive bool) []int64 {
	first, last := c.FirstOp(), c.TotalOps
	if exhaustive {
		ks := make([]int64, 0, last-first+1)
		for k := first; k <= last; k++ {
			ks = append(ks, k)
		}
		return ks
	}
	const samples = 25
	n := last - first
	ks := make([]int64, 0, samples)
	prev := int64(-1)
	for i := int64(0); i < samples; i++ {
		k := first + i*n/(samples-1)
		if k != prev {
			ks = append(ks, k)
		}
		prev = k
	}
	return ks
}

// TestCrashMatrix is the exhaustive crash-point enumeration: every
// write-class operation (WriteAt, Sync, Truncate — across heap tables,
// B+tree indexes, and the WAL) of a batched synth-series ingest is a
// power-cut site; each trial reboots from the durable image, recovers
// through WAL replay, resumes the feed, and must satisfy Theorem 1 with
// zero false negatives and no file-handle leaks.
func TestCrashMatrix(t *testing.T) {
	for i, seed := range matrixSeeds {
		exhaustive := !testing.Short() && i < 2
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w, err := NewWorkload(seed)
			if err != nil {
				t.Fatal(err)
			}
			events, err := naive.Drops(w.Series, w.T, w.V)
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatalf("seed %d: oracle found no true events; the no-false-negative check would be vacuous", seed)
			}
			clean, err := w.CleanRun(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			ks := crashPoints(clean, exhaustive)
			if len(ks) < 25 {
				t.Fatalf("fault-point space too small: %d points in [%d, %d]", len(ks), clean.FirstOp(), clean.TotalOps)
			}
			t.Logf("seed %d: %d true events, %d clean matches, crash points %d..%d, enumerating %d",
				seed, len(events), len(clean.Matches), clean.FirstOp(), clean.TotalOps, len(ks))
			for _, k := range ks {
				if _, err := w.CrashAt(t.TempDir(), k); err != nil {
					t.Fatalf("crash point %d: %v", k, err)
				}
			}
		})
		_ = i
	}
}

// TestCrashDeterministicRecovery pins the reproducibility contract: the
// same (seed, crash point) yields a byte-identical recovered disk image
// and identical search results on every run.
func TestCrashDeterministicRecovery(t *testing.T) {
	w, err := NewWorkload(1)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := w.CleanRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, last := clean.FirstOp(), clean.TotalOps
	for _, k := range []int64{first, (first + last) / 2, last} {
		base := t.TempDir()
		dir := filepath.Join(base, "store")
		r1, err := w.CrashAt(dir, k)
		if err != nil {
			t.Fatalf("crash point %d, run 1: %v", k, err)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		r2, err := w.CrashAt(dir, k)
		if err != nil {
			t.Fatalf("crash point %d, run 2: %v", k, err)
		}
		if len(r1.Disk) != len(r2.Disk) {
			t.Fatalf("crash point %d: runs recovered different file sets (%d vs %d)", k, len(r1.Disk), len(r2.Disk))
		}
		for name, data := range r1.Disk {
			if !bytes.Equal(data, r2.Disk[name]) {
				t.Fatalf("crash point %d: file %s differs between identical runs", k, name)
			}
		}
		if len(r1.Recovered) != len(r2.Recovered) {
			t.Fatalf("crash point %d: match counts differ (%d vs %d)", k, len(r1.Recovered), len(r2.Recovered))
		}
		for i := range r1.Recovered {
			if r1.Recovered[i] != r2.Recovered[i] {
				t.Fatalf("crash point %d: match %d differs between identical runs", k, i)
			}
		}
	}
}

// TestCrashReadAheadNoDivergence pins the readahead crash-safety
// contract: prefetch is strictly read-only (it never dirties a frame and
// never logs to the WAL), so enabling it must leave the write-class op
// census — the crash-point space — and every recovered disk image
// byte-identical to a run without it.
func TestCrashReadAheadNoDivergence(t *testing.T) {
	w, err := NewWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	wra, err := NewWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	wra.ReadAhead = 8

	clean, err := w.CleanRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cleanRA, err := wra.CleanRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if clean.SetupOps != cleanRA.SetupOps || clean.IngestOps != cleanRA.IngestOps ||
		clean.TotalOps != cleanRA.TotalOps {
		t.Fatalf("readahead moved the op census: off (%d,%d,%d) vs on (%d,%d,%d)",
			clean.SetupOps, clean.IngestOps, clean.TotalOps,
			cleanRA.SetupOps, cleanRA.IngestOps, cleanRA.TotalOps)
	}
	if len(clean.Matches) != len(cleanRA.Matches) {
		t.Fatalf("readahead changed clean results: %d vs %d matches",
			len(clean.Matches), len(cleanRA.Matches))
	}
	for i := range clean.Matches {
		if clean.Matches[i] != cleanRA.Matches[i] {
			t.Fatalf("clean match %d differs with readahead on", i)
		}
	}

	// Sampled crash points: identical recovered images and results.
	first, last := clean.FirstOp(), clean.TotalOps
	for _, k := range []int64{first, (first + last) / 2, last} {
		r0, err := w.CrashAt(t.TempDir(), k)
		if err != nil {
			t.Fatalf("crash point %d (readahead off): %v", k, err)
		}
		r1, err := wra.CrashAt(t.TempDir(), k)
		if err != nil {
			t.Fatalf("crash point %d (readahead on): %v", k, err)
		}
		if len(r0.Disk) != len(r1.Disk) {
			t.Fatalf("crash point %d: recovered file sets differ (%d vs %d)",
				k, len(r0.Disk), len(r1.Disk))
		}
		for name, data := range r0.Disk {
			if !bytes.Equal(data, r1.Disk[name]) {
				t.Fatalf("crash point %d: file %s differs with readahead on", k, name)
			}
		}
		if len(r0.Recovered) != len(r1.Recovered) {
			t.Fatalf("crash point %d: match counts differ (%d vs %d)",
				k, len(r0.Recovered), len(r1.Recovered))
		}
		for i := range r0.Recovered {
			if r0.Recovered[i] != r1.Recovered[i] {
				t.Fatalf("crash point %d: match %d differs with readahead on", k, i)
			}
		}
	}
}

// TestCrashObsNoDivergence pins the observability crash-safety contract:
// metrics, per-query tracing, and the slow-query log are purely volatile
// — they never dirty a page, never log to the WAL, and never touch a
// file — so arming them as hard as a user can (slow log recording every
// query) must leave the write-class op census and every recovered disk
// image byte-identical to a run without them.
func TestCrashObsNoDivergence(t *testing.T) {
	w, err := NewWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	wobs, err := NewWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	wobs.Obs = true

	clean, err := w.CleanRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cleanObs, err := wobs.CleanRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if clean.SetupOps != cleanObs.SetupOps || clean.IngestOps != cleanObs.IngestOps ||
		clean.TotalOps != cleanObs.TotalOps {
		t.Fatalf("observability moved the op census: off (%d,%d,%d) vs on (%d,%d,%d)",
			clean.SetupOps, clean.IngestOps, clean.TotalOps,
			cleanObs.SetupOps, cleanObs.IngestOps, cleanObs.TotalOps)
	}
	if len(clean.Matches) != len(cleanObs.Matches) {
		t.Fatalf("observability changed clean results: %d vs %d matches",
			len(clean.Matches), len(cleanObs.Matches))
	}
	for i := range clean.Matches {
		if clean.Matches[i] != cleanObs.Matches[i] {
			t.Fatalf("clean match %d differs with observability armed", i)
		}
	}

	// Sampled crash points: identical recovered images and results.
	first, last := clean.FirstOp(), clean.TotalOps
	for _, k := range []int64{first, (first + last) / 2, last} {
		r0, err := w.CrashAt(t.TempDir(), k)
		if err != nil {
			t.Fatalf("crash point %d (obs off): %v", k, err)
		}
		r1, err := wobs.CrashAt(t.TempDir(), k)
		if err != nil {
			t.Fatalf("crash point %d (obs on): %v", k, err)
		}
		if len(r0.Disk) != len(r1.Disk) {
			t.Fatalf("crash point %d: recovered file sets differ (%d vs %d)",
				k, len(r0.Disk), len(r1.Disk))
		}
		for name, data := range r0.Disk {
			if !bytes.Equal(data, r1.Disk[name]) {
				t.Fatalf("crash point %d: file %s differs with observability armed", k, name)
			}
		}
		if len(r0.Recovered) != len(r1.Recovered) {
			t.Fatalf("crash point %d: match counts differ (%d vs %d)",
				k, len(r0.Recovered), len(r1.Recovered))
		}
		for i := range r0.Recovered {
			if r0.Recovered[i] != r1.Recovered[i] {
				t.Fatalf("crash point %d: match %d differs with observability armed", k, i)
			}
		}
	}
}

// TestCrashTransientWriteErrors injects error-once-then-recover faults
// (a failed write or fsync that does NOT kill the process) during the
// batched ingest: the store must roll back to its last committed state,
// accept the resumed feed in-process, and still satisfy Theorem 1.
func TestCrashTransientWriteErrors(t *testing.T) {
	w, err := NewWorkload(2)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := w.CleanRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Stay within the batch-Sync phase: a fault during Finish leaves the
	// store read-only with its trailing segment lost, which only the
	// reboot path (TestCrashMatrix) can resume from.
	first, last := clean.FirstOp(), clean.IngestOps
	n := last - first
	for i := int64(0); i < 10; i++ {
		k := first + i*n/9
		dir := t.TempDir()
		reg := faultfs.New(w.Seed)
		st, err := core.Open(dir, w.options(reg))
		if err != nil {
			t.Fatalf("op %d: open: %v", k, err)
		}
		reg.SetScript(faultfs.Script{FailOp: k, Mode: faultfs.ErrOnce})
		ingestErr := w.appendBatches(st, -1)
		if ingestErr == nil {
			t.Fatalf("op %d: ingest survived scripted fault", k)
		}
		if !errors.Is(ingestErr, faultfs.ErrInjected) {
			t.Fatalf("op %d: non-injected failure: %v", k, ingestErr)
		}
		if reg.Crashed() {
			t.Fatalf("op %d: transient fault crashed the registry", k)
		}
		if err := st.Abort(); err != nil {
			t.Fatalf("op %d: abort after transient fault: %v", k, err)
		}
		if err := w.resume(st); err != nil {
			t.Fatalf("op %d: resume after transient fault: %v", k, err)
		}
		if _, err := w.verifyDrops(st); err != nil {
			t.Fatalf("op %d: %v", k, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("op %d: close: %v", k, err)
		}
		if h := reg.OpenHandles(); h != 0 {
			t.Fatalf("op %d: leaked %d file handles", k, h)
		}
		// The store must also be durably intact: reboot it and search.
		boot := faultfs.NewFromSnapshot(w.Seed, reg.Snapshot())
		st2, err := core.Open(dir, w.options(boot))
		if err != nil {
			t.Fatalf("op %d: reboot: %v", k, err)
		}
		if _, err := w.verifyDrops(st2); err != nil {
			t.Fatalf("op %d: after reboot: %v", k, err)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("op %d: reboot close: %v", k, err)
		}
	}
}

// TestCrashRecoveryReadFaultFailsLoudly checks that a transient read
// error during recovery is reported, never silently treated as a torn WAL
// tail (which would drop committed batches): the faulted open must fail
// with the injected error, and a clean reopen of the same disk image must
// succeed with full Theorem 1 guarantees.
func TestCrashRecoveryReadFaultFailsLoudly(t *testing.T) {
	w, err := NewWorkload(3)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := w.CleanRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Crash at the last batch commit so the durable WAL holds several
	// committed batches for recovery to read.
	k := clean.IngestOps
	dir := t.TempDir()
	reg := faultfs.New(w.Seed)
	st, err := core.Open(dir, w.options(reg))
	if err != nil {
		t.Fatal(err)
	}
	reg.SetScript(ScriptFor(k))
	if err := w.runToCrash(st); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("crash run: %v", err)
	}
	snap := reg.Snapshot()

	// Count the reads of a clean recovery open.
	probe := faultfs.NewFromSnapshot(w.Seed, snap)
	st2, err := core.Open(dir, w.options(probe))
	if err != nil {
		t.Fatalf("clean recovery open: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	reads := probe.Reads()
	if reads == 0 {
		t.Fatal("recovery open issued no reads; the fault has nowhere to land")
	}
	for _, r := range []int64{1, (reads + 1) / 2, reads} {
		boot := faultfs.NewFromSnapshot(w.Seed, snap)
		boot.SetScript(faultfs.Script{FailReadOp: r})
		st3, err := core.Open(dir, w.options(boot))
		if err == nil {
			// The read fault landed after recovery finished its reads for
			// this open (read counts differ run to run only if the engine
			// changes); a successful open must still verify.
			if _, verr := w.verifyDrops(st3); verr != nil {
				t.Fatalf("read fault %d: open succeeded but store is damaged: %v", r, verr)
			}
			if cerr := st3.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			continue
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("read fault %d: open failed with a non-injected error: %v", r, err)
		}
		// Clean retry of the same disk image: nothing was lost.
		retry := faultfs.NewFromSnapshot(w.Seed, snap)
		st4, err := core.Open(dir, w.options(retry))
		if err != nil {
			t.Fatalf("read fault %d: clean reopen failed: %v", r, err)
		}
		if err := w.resume(st4); err != nil {
			t.Fatalf("read fault %d: resume: %v", r, err)
		}
		if _, err := w.verifyDrops(st4); err != nil {
			t.Fatalf("read fault %d: %v", r, err)
		}
		if err := st4.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
