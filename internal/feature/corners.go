package feature

import "fmt"

// Boundary is the stored feature for one (segment pair, search kind): the
// ε-shifted corner points of the parallelogram boundary that a query
// region of that kind must intersect if it intersects the parallelogram
// (lower-left boundary for drops shifted down by ε, upper-left boundary
// for jumps shifted up by ε — Table 2 plus Lemma 4).
//
// Corners holds 1 to 3 feature points ordered by ascending Δt. The four
// timestamps identify the two data segments so a search can report the
// paper's result tuple ((t_D, t_C), (t_B, t_A)).
type Boundary struct {
	Kind           Kind
	Case           Case
	Corners        []Point
	TD, TC, TB, TA int64
}

// shift returns p with Dv displaced by d.
func shift(p Point, d float64) Point { return Point{Dt: p.Dt, Dv: p.Dv + d} }

// identicalCorner reports whether two shifted corners are the same point.
// Bit-exact equality is intended: consecutive duplicates arise only when a
// degenerate parallelogram feeds the *same* corner through the *same*
// shift, so both values come from one computation and no independently
// rounded arithmetic is compared. Near-misses must NOT be merged — that
// would drop a genuinely distinct boundary corner and break Lemma 4's
// no-false-negative cover.
func identicalCorner(a, b Point) bool {
	//segdifflint:ignore floateq duplicate corners are bit-identical copies of one computation, not independently rounded values
	return a == b
}

// ExtractBoundaries applies the case analysis of Section 4.3.1 (Table 2 and
// the Appendix) to parallelogram p: it selects the necessary corner points
// for drop and jump detection, applies the ε-shift of Lemma 4 (down for
// drops, up for jumps), and applies the storage gates that skip boundaries
// which can never satisfy a drop (V < 0) or jump (V > 0) query. The result
// contains at most one Drop and one Jump boundary.
func ExtractBoundaries(p Parallelogram, epsilon float64) ([]Boundary, error) {
	if epsilon < 0 {
		return nil, fmt.Errorf("feature: negative epsilon %v", epsilon)
	}
	var out []Boundary

	add := func(kind Kind, d float64, corners ...Point) {
		b := Boundary{Kind: kind, Case: p.Case, TD: p.TD, TC: p.TC, TB: p.TB, TA: p.TA}
		for _, c := range corners {
			sc := shift(c, d)
			// Degenerate pairs (zero-length CD) repeat a corner; the
			// duplicate adds nothing to point or line queries.
			if n := len(b.Corners); n > 0 && identicalCorner(b.Corners[n-1], sc) {
				continue
			}
			b.Corners = append(b.Corners, sc)
		}
		out = append(out, b)
	}
	addDrop := func(corners ...Point) { add(Drop, -epsilon, corners...) }
	addJump := func(corners ...Point) { add(Jump, epsilon, corners...) }

	e := epsilon
	switch p.Case {
	case Case1: // k_CD ≥ 0, k_AB ≤ 0
		if p.AC.Dv-e <= 0 {
			addDrop(p.BC, p.AC)
		}
		if p.BD.Dv+e >= 0 {
			addJump(p.BC, p.BD)
		}
	case Case2: // k_CD ≥ 0, k_AB ≥ k_CD
		if p.BC.Dv-e <= 0 {
			addDrop(p.BC)
		}
		switch {
		case p.AC.Dv+e >= 0:
			addJump(p.BC, p.AC, p.AD)
		case p.AD.Dv+e >= 0:
			addJump(p.AC, p.AD)
		}
	case Case3: // k_CD ≥ 0, 0 < k_AB < k_CD — case 2 with AC ↔ BD
		if p.BC.Dv-e <= 0 {
			addDrop(p.BC)
		}
		switch {
		case p.BD.Dv+e >= 0:
			addJump(p.BC, p.BD, p.AD)
		case p.AD.Dv+e >= 0:
			addJump(p.BD, p.AD)
		}
	case Case4: // k_CD < 0, k_AB ≥ 0
		if p.BD.Dv-e <= 0 {
			addDrop(p.BC, p.BD)
		}
		if p.AC.Dv+e >= 0 {
			addJump(p.BC, p.AC)
		}
	case Case5: // k_CD < 0, k_AB ≤ k_CD
		switch {
		case p.AC.Dv-e <= 0:
			addDrop(p.BC, p.AC, p.AD)
		case p.AD.Dv-e <= 0:
			addDrop(p.AC, p.AD)
		}
		if p.BC.Dv+e >= 0 {
			addJump(p.BC)
		}
	case Case6: // k_CD < 0, k_CD < k_AB < 0 — case 5 with AC ↔ BD
		switch {
		case p.BD.Dv-e <= 0:
			addDrop(p.BC, p.BD, p.AD)
		case p.AD.Dv-e <= 0:
			addDrop(p.BD, p.AD)
		}
		if p.BC.Dv+e >= 0 {
			addJump(p.BC)
		}
	default:
		return nil, fmt.Errorf("feature: unknown case %v", p.Case)
	}
	return out, nil
}

// AllCornersBoundary returns the un-reduced alternative used by the A1
// ablation: the full perimeter walk BC→BD→AD→AC→BC (the first corner is
// repeated so the polyline's consecutive pairs cover all four parallelogram
// edges), ε-shifted for the given kind, with no storage gate. Storing the
// full perimeter supports the same point/line queries but costs more
// space — exactly the design choice Table 2 eliminates.
func AllCornersBoundary(p Parallelogram, epsilon float64, kind Kind) (Boundary, error) {
	if epsilon < 0 {
		return Boundary{}, fmt.Errorf("feature: negative epsilon %v", epsilon)
	}
	d := -epsilon
	if kind == Jump {
		d = epsilon
	}
	b := Boundary{Kind: kind, Case: p.Case, TD: p.TD, TC: p.TC, TB: p.TB, TA: p.TA}
	for _, c := range p.Corners() {
		b.Corners = append(b.Corners, shift(c, d))
	}
	b.Corners = append(b.Corners, b.Corners[0])
	return b, nil
}
