package feature

import (
	"testing"

	"segdiff/internal/segment"
	"segdiff/internal/timeseries"
)

// A2 ablation as a test: Lemma 4's ε-shift is what makes the framework
// lossless. With the shift disabled, a true event hidden by segmentation
// error is missed; with it, the event is found.
func TestNoFalseNegativesRequiresShift(t *testing.T) {
	// Segmentation with ε = 0.5 flattens this small bump into one segment
	// (max deviation 0.24 ≤ ε/2), so the true drop of 0.24 from the bump's
	// top to the end is invisible in the approximation itself.
	s := timeseries.MustNew([]timeseries.Point{
		{T: 0, V: 0}, {T: 10, V: 0.24}, {T: 20, V: 0},
	})
	const eps = 0.5
	segs, err := segment.Series(s, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected the bump to be flattened into 1 segment, got %d", len(segs))
	}

	region, err := NewRegion(Drop, 20, -0.2) // the true event: Δv = −0.24 ≤ −0.2
	if err != nil {
		t.Fatal(err)
	}
	matchesWith := func(shiftEps float64) bool {
		p, err := SelfPair(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		bs, err := ExtractBoundaries(p, shiftEps)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bs {
			if region.MatchesBoundary(b) {
				return true
			}
		}
		return false
	}

	if matchesWith(0) {
		t.Fatal("unshifted boundaries matched; the scenario no longer exercises the shift")
	}
	if !matchesWith(eps) {
		t.Fatal("ε-shifted boundaries missed a true event: Lemma 4 violated")
	}
}
