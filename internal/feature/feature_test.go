package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"segdiff/internal/segment"
)

func TestClassifyTable2(t *testing.T) {
	cases := []struct {
		kCD, kAB float64
		want     Case
	}{
		{1, -1, Case1},
		{0, 0, Case1}, // boundary: routed to case 1
		{1, 0, Case1}, // k_AB = 0
		{0.5, 2, Case2},
		{1, 1, Case2}, // k_AB = k_CD
		{0, 1, Case2},
		{2, 1, Case3}, // 0 < k_AB < k_CD
		{5, 0.1, Case3},
		{-1, 0, Case4},
		{-1, 3, Case4},
		{-1, -1, Case5}, // k_AB = k_CD < 0
		{-1, -2, Case5},
		{-2, -1, Case6}, // k_CD < k_AB < 0
		{-5, -0.1, Case6},
	}
	for _, tc := range cases {
		if got := Classify(tc.kCD, tc.kAB); got != tc.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tc.kCD, tc.kAB, got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Drop.String() != "drop" || Jump.String() != "jump" {
		t.Fatal("kind strings wrong")
	}
	if Case3.String() != "case3" {
		t.Fatalf("case string %v", Case3.String())
	}
}

func TestNewParallelogramCorners(t *testing.T) {
	// CD from (0,1) to (10,3); AB from (20,5) to (30,2).
	cd := segment.Segment{Ts: 0, Vs: 1, Te: 10, Ve: 3}
	ab := segment.Segment{Ts: 20, Vs: 5, Te: 30, Ve: 2}
	p, err := NewParallelogram(cd, ab)
	if err != nil {
		t.Fatal(err)
	}
	if p.BC != (Point{Dt: 10, Dv: 2}) { // t_B−t_C=10, v_B−v_C=2
		t.Errorf("BC = %v", p.BC)
	}
	if p.BD != (Point{Dt: 20, Dv: 4}) {
		t.Errorf("BD = %v", p.BD)
	}
	if p.AD != (Point{Dt: 30, Dv: 1}) {
		t.Errorf("AD = %v", p.AD)
	}
	if p.AC != (Point{Dt: 20, Dv: -1}) {
		t.Errorf("AC = %v", p.AC)
	}
	// k_CD = 0.2 ≥ 0, k_AB = −0.3 ≤ 0 → case 1.
	if p.Case != Case1 {
		t.Errorf("case = %v", p.Case)
	}
	if p.TD != 0 || p.TC != 10 || p.TB != 20 || p.TA != 30 {
		t.Errorf("timestamps %d %d %d %d", p.TD, p.TC, p.TB, p.TA)
	}
}

func TestNewParallelogramRejectsBadPairs(t *testing.T) {
	ab := segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 1}
	cd := segment.Segment{Ts: 5, Vs: 0, Te: 15, Ve: 1} // overlaps AB
	if _, err := NewParallelogram(cd, ab); err == nil {
		t.Fatal("overlapping pair accepted")
	}
	zeroAB := segment.Segment{Ts: 10, Vs: 0, Te: 10, Ve: 0}
	if _, err := NewParallelogram(segment.Segment{Ts: 0, Vs: 0, Te: 5, Ve: 0}, zeroAB); err == nil {
		t.Fatal("zero-length AB accepted")
	}
	negCD := segment.Segment{Ts: 8, Vs: 0, Te: 5, Ve: 0}
	if _, err := NewParallelogram(negCD, segment.Segment{Ts: 9, Vs: 0, Te: 12, Ve: 1}); err == nil {
		t.Fatal("negative-duration CD accepted")
	}
}

// randomPair generates a valid (cd, ab) pair with continuous random values.
func randomPair(rng *rand.Rand) (cd, ab segment.Segment) {
	tD := rng.Int63n(1000)
	lenCD := 1 + rng.Int63n(200)
	gap := rng.Int63n(100) // 0 means adjacent
	lenAB := 1 + rng.Int63n(200)
	cd = segment.Segment{
		Ts: tD, Vs: rng.NormFloat64() * 5,
		Te: tD + lenCD, Ve: rng.NormFloat64() * 5,
	}
	ab = segment.Segment{
		Ts: cd.Te + gap, Vs: rng.NormFloat64() * 5,
		Te: cd.Te + gap + lenAB, Ve: rng.NormFloat64() * 5,
	}
	return cd, ab
}

// Lemma 3: the feature point of an event with one end on CD and the other
// on AB lies inside the parallelogram.
func TestLemma3Containment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cd, ab := randomPair(rng)
		p, err := NewParallelogram(cd, ab)
		if err != nil {
			return false
		}
		for k := 0; k < 50; k++ {
			t1 := cd.Ts + rng.Int63n(cd.Te-cd.Ts+1)
			t2 := ab.Ts + rng.Int63n(ab.Te-ab.Ts+1)
			dv := ab.Value(t2) - cd.Value(t1)
			dt := t2 - t1
			if !p.Contains(float64(dt), dv, 1e-9) {
				t.Logf("seed %d: point (%d, %v) outside parallelogram %+v", seed, dt, dv, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The converse sanity check: points well outside the parallelogram's
// bounding box are not contained.
func TestContainsRejectsFarPoints(t *testing.T) {
	cd := segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 1}
	ab := segment.Segment{Ts: 15, Vs: 2, Te: 25, Ve: 0}
	p, err := NewParallelogram(cd, ab)
	if err != nil {
		t.Fatal(err)
	}
	if p.Contains(1000, 0, 1e-9) {
		t.Error("far Δt contained")
	}
	if p.Contains(10, 100, 1e-9) {
		t.Error("far Δv contained")
	}
	if p.Contains(-5, 0, 1e-9) {
		t.Error("negative Δt contained")
	}
}

// SelfPair must contain exactly the within-segment events and reject
// points off the feature segment.
func TestSelfPair(t *testing.T) {
	ab := segment.Segment{Ts: 100, Vs: 5, Te: 200, Ve: 1}
	p, err := SelfPair(ab)
	if err != nil {
		t.Fatal(err)
	}
	// Within-segment event from t1 to t2 (t2 > t1): Δv = slope·Δt.
	for _, dt := range []int64{0, 10, 50, 100} {
		dv := ab.Slope() * float64(dt)
		if !p.Contains(float64(dt), dv, 1e-9) {
			t.Errorf("within-segment event (%d, %v) not contained", dt, dv)
		}
	}
	if p.Contains(50, 0, 1e-9) {
		t.Error("off-line point contained in degenerate parallelogram")
	}
	if p.Contains(150, ab.Slope()*150, 1e-9) {
		t.Error("Δt beyond segment length contained")
	}
}

func TestSelfPairZeroLengthRejected(t *testing.T) {
	if _, err := SelfPair(segment.Segment{Ts: 5, Vs: 1, Te: 5, Ve: 1}); err == nil {
		t.Fatal("zero-length self pair accepted")
	}
}

// The perimeter walk BC→BD→AD→AC must form a parallelogram: BD−BC equals
// AD−AC (the CD vector) and AC−BC equals AD−BD (the AB vector).
func TestParallelogramShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cd, ab := randomPair(rng)
		p, err := NewParallelogram(cd, ab)
		if err != nil {
			return false
		}
		if p.BD.Dt-p.BC.Dt != p.AD.Dt-p.AC.Dt {
			return false
		}
		if math.Abs((p.BD.Dv-p.BC.Dv)-(p.AD.Dv-p.AC.Dv)) > 1e-9 {
			return false
		}
		if p.AC.Dt-p.BC.Dt != p.AD.Dt-p.BD.Dt {
			return false
		}
		if math.Abs((p.AC.Dv-p.BC.Dv)-(p.AD.Dv-p.BD.Dv)) > 1e-9 {
			return false
		}
		// Feature segment (BC,BD) has CD's time span and slope (Lemma 3).
		if p.BD.Dt-p.BC.Dt != cd.Duration() {
			return false
		}
		if cd.Duration() > 0 {
			slope := (p.BD.Dv - p.BC.Dv) / float64(p.BD.Dt-p.BC.Dt)
			if math.Abs(slope-cd.Slope()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
