package feature

import (
	"testing"

	"segdiff/internal/segment"
)

// wantBoundary is one expected stored boundary: the kind plus the exact
// ε-shifted corner points in ascending-Δt order.
type wantBoundary struct {
	kind    Kind
	corners []Point
}

// TestExtractBoundariesTable2 drives the full corner case analysis of
// Table 2 through ExtractBoundaries: one sub-test per slope configuration,
// including the zero-slope and equal-slope boundary configurations that
// Classify routes to the lower-numbered case, the storage gates that skip
// boundaries no query of the kind can ever match, and the degenerate
// self-pair whose duplicate corners must collapse. Expected corners are
// hand-derived from the segment geometry (Δ_ij = value_i − value_j over
// t_i − t_j) plus the Lemma 4 shift: −ε for drops, +ε for jumps.
func TestExtractBoundariesTable2(t *testing.T) {
	const eps = 0.5
	tests := []struct {
		name     string
		cd, ab   segment.Segment
		wantCase Case
		want     []wantBoundary
	}{
		{
			// k_CD = 1 ≥ 0, k_AB = −1 ≤ 0.
			name:     "case1 rise then fall",
			cd:       segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 10},
			ab:       segment.Segment{Ts: 20, Vs: 5, Te: 30, Ve: -5},
			wantCase: Case1,
			want: []wantBoundary{
				{Drop, []Point{{10, -5 - eps}, {20, -15 - eps}}}, // BC, AC
				{Jump, []Point{{10, -5 + eps}, {20, 5 + eps}}},   // BC, BD
			},
		},
		{
			// Zero-slope boundary: k_CD = 0 with k_AB = 0 routes to case 1
			// (both gates hold at Δv = 0 because of the ε slack).
			name:     "case1 both flat (zero-slope boundary)",
			cd:       segment.Segment{Ts: 0, Vs: 5, Te: 10, Ve: 5},
			ab:       segment.Segment{Ts: 20, Vs: 5, Te: 30, Ve: 5},
			wantCase: Case1,
			want: []wantBoundary{
				{Drop, []Point{{10, -eps}, {20, -eps}}}, // BC, AC — gate: Δv_AC − ε ≤ 0
				{Jump, []Point{{10, eps}, {20, eps}}},   // BC, BD — gate: Δv_BD + ε ≥ 0
			},
		},
		{
			// k_CD = 0.5 ≥ 0, k_AB = 2 ≥ k_CD.
			name:     "case2 shallow then steep rise",
			cd:       segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 5},
			ab:       segment.Segment{Ts: 20, Vs: 0, Te: 30, Ve: 20},
			wantCase: Case2,
			want: []wantBoundary{
				{Drop, []Point{{10, -5 - eps}}},                                 // BC
				{Jump, []Point{{10, -5 + eps}, {20, 15 + eps}, {30, 20 + eps}}}, // BC, AC, AD
			},
		},
		{
			// Equal-slope boundary: k_AB = k_CD = 1 routes to case 2, and
			// the drop gate (Δv_BC − ε ≤ 0) fails: a monotone rise this
			// steep can never satisfy a drop query.
			name:     "case2 equal slopes, drop gated out",
			cd:       segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 10},
			ab:       segment.Segment{Ts: 20, Vs: 20, Te: 30, Ve: 30},
			wantCase: Case2,
			want: []wantBoundary{
				{Jump, []Point{{10, 10 + eps}, {20, 20 + eps}, {30, 30 + eps}}}, // BC, AC, AD
			},
		},
		{
			// k_CD = 2 ≥ 0, 0 < k_AB = 0.5 < k_CD — case 2 with AC ↔ BD.
			name:     "case3 steep then shallow rise",
			cd:       segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 20},
			ab:       segment.Segment{Ts: 20, Vs: 25, Te: 30, Ve: 30},
			wantCase: Case3,
			want: []wantBoundary{
				{Jump, []Point{{10, 5 + eps}, {20, 25 + eps}, {30, 30 + eps}}}, // BC, BD, AD
			},
		},
		{
			// k_CD = −1 < 0, k_AB = 0 ≥ 0 (zero-slope boundary of case 4).
			// The jump gate fails: Δv_AC + ε = −5 + 0.5 < 0, so this pair
			// can never satisfy any jump query and only the drop boundary
			// is stored.
			name:     "case4 fall then flat",
			cd:       segment.Segment{Ts: 0, Vs: 10, Te: 10, Ve: 0},
			ab:       segment.Segment{Ts: 20, Vs: -5, Te: 30, Ve: -5},
			wantCase: Case4,
			want: []wantBoundary{
				{Drop, []Point{{10, -5 - eps}, {20, -15 - eps}}}, // BC, BD
			},
		},
		{
			// k_CD = −1 < 0, k_AB = −2 ≤ k_CD; Δv_BC = 0, so the jump gate
			// holds exactly through the ε slack.
			name:     "case5 accelerating fall",
			cd:       segment.Segment{Ts: 0, Vs: 10, Te: 10, Ve: 0},
			ab:       segment.Segment{Ts: 20, Vs: 0, Te: 30, Ve: -20},
			wantCase: Case5,
			want: []wantBoundary{
				{Drop, []Point{{10, -eps}, {20, -20 - eps}, {30, -30 - eps}}}, // BC, AC, AD
				{Jump, []Point{{10, eps}}},                                    // BC
			},
		},
		{
			// Equal negative slopes route to case 5; a deep fall with the
			// later segment far below gates the jump boundary out
			// (Δv_BC + ε < 0).
			name:     "case5 equal slopes, jump gated out",
			cd:       segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: -10},
			ab:       segment.Segment{Ts: 20, Vs: -15, Te: 30, Ve: -25},
			wantCase: Case5,
			want: []wantBoundary{
				{Drop, []Point{{10, -5 - eps}, {20, -15 - eps}, {30, -25 - eps}}}, // BC, AC, AD
			},
		},
		{
			// k_CD = −2 < 0, k_CD < k_AB = −0.5 < 0 — case 5 with AC ↔ BD.
			name:     "case6 decelerating fall",
			cd:       segment.Segment{Ts: 0, Vs: 20, Te: 10, Ve: 0},
			ab:       segment.Segment{Ts: 20, Vs: 0, Te: 30, Ve: -5},
			wantCase: Case6,
			want: []wantBoundary{
				{Drop, []Point{{10, -eps}, {20, -20 - eps}, {30, -25 - eps}}}, // BC, BD, AD
				{Jump, []Point{{10, eps}}},                                    // BC
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewParallelogram(tc.cd, tc.ab)
			if err != nil {
				t.Fatal(err)
			}
			if p.Case != tc.wantCase {
				t.Fatalf("case = %v, want %v", p.Case, tc.wantCase)
			}
			bs, err := ExtractBoundaries(p, eps)
			if err != nil {
				t.Fatal(err)
			}
			checkBoundaries(t, bs, tc.want)
		})
	}
}

// TestExtractBoundariesSelfPair checks the degenerate within-segment
// parallelogram: the zero-length CD collapses pairs of corners onto each
// other and ExtractBoundaries must deduplicate them, never storing two
// bit-identical corner points.
func TestExtractBoundariesSelfPair(t *testing.T) {
	const eps = 0.5
	p, err := SelfPair(segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: -5})
	if err != nil {
		t.Fatal(err)
	}
	// k_CD is taken as k_AB = −0.5, routing to case 5 (k_AB ≤ k_CD).
	if p.Case != Case5 {
		t.Fatalf("case = %v, want %v", p.Case, Case5)
	}
	bs, err := ExtractBoundaries(p, eps)
	if err != nil {
		t.Fatal(err)
	}
	checkBoundaries(t, bs, []wantBoundary{
		// BC, AC, AD with AC == AD collapsing: two corners survive.
		{Drop, []Point{{0, -eps}, {10, -5 - eps}}},
		{Jump, []Point{{0, eps}}},
	})
}

func TestExtractBoundariesNegativeEpsilon(t *testing.T) {
	p, err := SelfPair(segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractBoundaries(p, -0.1); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func checkBoundaries(t *testing.T, got []Boundary, want []wantBoundary) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d boundaries, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		b := got[i]
		if b.Kind != w.kind {
			t.Errorf("boundary %d: kind = %v, want %v", i, b.Kind, w.kind)
			continue
		}
		if len(b.Corners) != len(w.corners) {
			t.Errorf("%v boundary: got %d corners %v, want %d %v",
				w.kind, len(b.Corners), b.Corners, len(w.corners), w.corners)
			continue
		}
		for j, c := range w.corners {
			if b.Corners[j] != c {
				t.Errorf("%v boundary corner %d: got (%d, %v), want (%d, %v)",
					w.kind, j, b.Corners[j].Dt, b.Corners[j].Dv, c.Dt, c.Dv)
			}
		}
	}
}
