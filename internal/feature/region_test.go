package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"segdiff/internal/segment"
)

func TestNewRegionValidation(t *testing.T) {
	if _, err := NewRegion(Drop, 3600, -3); err != nil {
		t.Fatalf("valid drop region rejected: %v", err)
	}
	if _, err := NewRegion(Jump, 3600, 3); err != nil {
		t.Fatalf("valid jump region rejected: %v", err)
	}
	bad := []struct {
		kind Kind
		T    int64
		V    float64
	}{
		{Drop, 0, -3},
		{Drop, -5, -3},
		{Drop, 100, 3},
		{Drop, 100, 0},
		{Jump, 100, -3},
		{Jump, 100, 0},
		{Drop, 100, math.NaN()},
		{Kind(9), 100, -3},
	}
	for _, tc := range bad {
		if _, err := NewRegion(tc.kind, tc.T, tc.V); err == nil {
			t.Errorf("NewRegion(%v, %d, %v) accepted", tc.kind, tc.T, tc.V)
		}
	}
}

func TestContainsPoint(t *testing.T) {
	r, _ := NewRegion(Drop, 100, -3)
	if !r.ContainsPoint(Point{Dt: 50, Dv: -4}) {
		t.Error("interior drop point rejected")
	}
	if !r.ContainsPoint(Point{Dt: 100, Dv: -3}) {
		t.Error("boundary drop point rejected")
	}
	if !r.ContainsPoint(Point{Dt: 0, Dv: -5}) {
		t.Error("Δt=0 corner rejected (paper's point query has no Δt>0 clause)")
	}
	if r.ContainsPoint(Point{Dt: 101, Dv: -5}) {
		t.Error("Δt beyond T accepted")
	}
	if r.ContainsPoint(Point{Dt: 50, Dv: -2.9}) {
		t.Error("Δv above V accepted")
	}
	j, _ := NewRegion(Jump, 100, 3)
	if !j.ContainsPoint(Point{Dt: 50, Dv: 4}) || j.ContainsPoint(Point{Dt: 50, Dv: 2.9}) {
		t.Error("jump point query wrong")
	}
}

// CrossesEdge against a brute-force sampling of the edge.
func TestCrossesEdgeAgainstSampling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kind := Drop
		v := -(rng.Float64()*5 + 0.1)
		if seed%2 == 0 {
			kind = Jump
			v = -v
		}
		r, err := NewRegion(kind, 1+rng.Int63n(200), v)
		if err != nil {
			return false
		}
		p := Point{Dt: rng.Int63n(300), Dv: rng.NormFloat64() * 6}
		q := Point{Dt: p.Dt + 1 + rng.Int63n(300), Dv: rng.NormFloat64() * 6}
		// Skip configurations where an endpoint already satisfies the
		// point query: CrossesEdge only covers the neither-endpoint case.
		if r.ContainsPoint(p) || r.ContainsPoint(q) {
			return true
		}
		got := r.CrossesEdge(p, q)
		// Brute force: sample the edge at fine parameter resolution.
		brute := false
		for i := 0; i <= 5000; i++ {
			l := float64(i) / 5000
			dt := float64(p.Dt) + l*float64(q.Dt-p.Dt)
			dv := p.Dv + l*(q.Dv-p.Dv)
			if dt < 0 || dt > float64(r.T) {
				continue
			}
			if kind == Drop && dv <= r.V {
				brute = true
				break
			}
			if kind == Jump && dv >= r.V {
				brute = true
				break
			}
		}
		if got != brute {
			// Resolve near-boundary sampling noise: accept if the exact
			// crossing value at T is within a hair of V.
			if q.Dt != p.Dt {
				atT := p.Dv + (q.Dv-p.Dv)*float64(r.T-p.Dt)/float64(q.Dt-p.Dt)
				if math.Abs(atT-r.V) < 1e-6 {
					return true
				}
			}
			t.Logf("seed=%d kind=%v T=%d V=%v p=%v q=%v got=%v brute=%v", seed, kind, r.T, r.V, p, q, got, brute)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCrossesEdgeDegenerate(t *testing.T) {
	r, _ := NewRegion(Drop, 100, -3)
	p := Point{Dt: 50, Dv: -1}
	if r.CrossesEdge(p, p) {
		t.Error("degenerate edge crossed")
	}
	// Order of endpoints must not matter.
	a := Point{Dt: 80, Dv: -1}
	b := Point{Dt: 120, Dv: -10}
	if r.CrossesEdge(a, b) != r.CrossesEdge(b, a) {
		t.Error("edge crossing not symmetric in argument order")
	}
}

// The central Table-2 property: for random segment pairs, detection via
// the extracted (reduced, ε-shifted) boundary corners is exactly
// equivalent to exact intersection between the query region and the
// ε-shifted full parallelogram.
func TestTable2BoundaryEquivalence(t *testing.T) {
	checkOne := func(rng *rand.Rand, eps float64, self bool) bool {
		var p Parallelogram
		var err error
		if self {
			_, ab := randomPair(rng)
			p, err = SelfPair(ab)
		} else {
			cd, ab := randomPair(rng)
			p, err = NewParallelogram(cd, ab)
		}
		if err != nil {
			t.Fatal(err)
		}
		bounds, err := ExtractBoundaries(p, eps)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			kind := Drop
			v := -(rng.Float64()*8 + 0.01)
			shiftDir := -eps
			if trial%2 == 1 {
				kind = Jump
				v = -v
				shiftDir = eps
			}
			r, err := NewRegion(kind, 1+rng.Int63n(600), v)
			if err != nil {
				t.Fatal(err)
			}
			want := r.IntersectsParallelogram(p, shiftDir)
			got := false
			for _, b := range bounds {
				if r.MatchesBoundary(b) {
					got = true
					break
				}
			}
			if got != want {
				t.Logf("case=%v kind=%v T=%d V=%v eps=%v self=%v pgram=%+v bounds=%+v got=%v want=%v",
					p.Case, kind, r.T, r.V, eps, self, p, bounds, got, want)
				return false
			}
		}
		return true
	}
	rng := rand.New(rand.NewSource(12345))
	for i := 0; i < 600; i++ {
		eps := []float64{0, 0.1, 0.5}[i%3]
		if !checkOne(rng, eps, i%5 == 4) {
			t.Fatalf("boundary/exact mismatch at iteration %d", i)
		}
	}
}

// The un-reduced 4-corner ablation must also be exactly equivalent to the
// geometric intersection.
func TestAllCornersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 400; i++ {
		cd, ab := randomPair(rng)
		p, err := NewParallelogram(cd, ab)
		if err != nil {
			t.Fatal(err)
		}
		eps := []float64{0, 0.2}[i%2]
		kind := Drop
		v := -(rng.Float64()*8 + 0.01)
		shiftDir := -eps
		if i%2 == 1 {
			kind = Jump
			v = -v
			shiftDir = eps
		}
		b, err := AllCornersBoundary(p, eps, kind)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRegion(kind, 1+rng.Int63n(600), v)
		if err != nil {
			t.Fatal(err)
		}
		want := r.IntersectsParallelogram(p, shiftDir)
		if got := r.MatchesBoundary(b); got != want {
			t.Fatalf("iter %d: all-corners got %v want %v (case %v)", i, got, want, p.Case)
		}
	}
}

func TestExtractBoundariesValidation(t *testing.T) {
	cd := segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 1}
	ab := segment.Segment{Ts: 10, Vs: 1, Te: 20, Ve: 0}
	p, err := NewParallelogram(cd, ab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractBoundaries(p, -0.1); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := AllCornersBoundary(p, -0.1, Drop); err == nil {
		t.Fatal("negative epsilon accepted by AllCornersBoundary")
	}
	bad := p
	bad.Case = Case(42)
	if _, err := ExtractBoundaries(bad, 0.1); err == nil {
		t.Fatal("unknown case accepted")
	}
}

// Corner counts must follow Table 2: at most 3 stored per kind, and the
// storage gates must drop boundaries that can never match. Note the pairs
// here are separated by a gap with a value step across it: for *adjacent*
// segments Δv_BC = 0 and the paper's gate correctly keeps a degenerate
// (Δt=0, −ε) drop corner even on a rising pair.
func TestExtractBoundariesGates(t *testing.T) {
	// Steeply rising pair far above zero: no drop boundary should be kept.
	cd := segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 5}
	ab := segment.Segment{Ts: 12, Vs: 7, Te: 20, Ve: 12}
	p, err := NewParallelogram(cd, ab)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := ExtractBoundaries(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		if b.Kind == Drop {
			t.Fatalf("drop boundary stored for strictly rising pair: %+v", b)
		}
		if len(b.Corners) == 0 || len(b.Corners) > 3 {
			t.Fatalf("corner count %d outside 1..3", len(b.Corners))
		}
	}
	// Mirror: steeply falling pair — no jump boundary.
	cd2 := segment.Segment{Ts: 0, Vs: 12, Te: 10, Ve: 7}
	ab2 := segment.Segment{Ts: 12, Vs: 5, Te: 20, Ve: 0}
	p2, err := NewParallelogram(cd2, ab2)
	if err != nil {
		t.Fatal(err)
	}
	bs2, err := ExtractBoundaries(p2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs2 {
		if b.Kind == Jump {
			t.Fatalf("jump boundary stored for strictly falling pair: %+v", b)
		}
	}
}

// ε-shift direction: drop corners move down, jump corners move up.
func TestExtractBoundariesShiftDirection(t *testing.T) {
	cd := segment.Segment{Ts: 0, Vs: 0, Te: 10, Ve: 2}
	ab := segment.Segment{Ts: 15, Vs: 1, Te: 25, Ve: -2}
	p, err := NewParallelogram(cd, ab) // case 1: both kinds stored
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.25
	withShift, err := ExtractBoundaries(p, eps)
	if err != nil {
		t.Fatal(err)
	}
	noShift, err := ExtractBoundaries(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(withShift) != 2 || len(noShift) != 2 {
		t.Fatalf("expected drop+jump boundaries, got %d and %d", len(withShift), len(noShift))
	}
	for i, b := range withShift {
		for j, c := range b.Corners {
			want := noShift[i].Corners[j].Dv - eps
			if b.Kind == Jump {
				want = noShift[i].Corners[j].Dv + eps
			}
			if math.Abs(c.Dv-want) > 1e-12 {
				t.Fatalf("corner %d of %v boundary shifted wrong: %v want %v", j, b.Kind, c.Dv, want)
			}
			if c.Dt != noShift[i].Corners[j].Dt {
				t.Fatalf("corner %d Δt changed by shift", j)
			}
		}
	}
}

// Corners within a boundary must be ordered by ascending Δt, as the
// line-query storage layout requires.
func TestExtractedCornersOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		cd, ab := randomPair(rng)
		p, err := NewParallelogram(cd, ab)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := ExtractBoundaries(p, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bs {
			for j := 1; j < len(b.Corners); j++ {
				if b.Corners[j].Dt < b.Corners[j-1].Dt {
					t.Fatalf("corners out of Δt order: %+v (case %v)", b, p.Case)
				}
			}
		}
	}
}
