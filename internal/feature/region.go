package feature

import (
	"fmt"
	"math"
)

// Region is a query region in feature space (Section 3): for Drop it is
// {(Δt, Δv) : 0 < Δt ≤ T, Δv ≤ V} with V < 0; for Jump it is
// {(Δt, Δv) : 0 < Δt ≤ T, Δv ≥ V} with V > 0.
type Region struct {
	Kind Kind
	T    int64   // threshold for time span, T > 0
	V    float64 // threshold for change: V < 0 for Drop, V > 0 for Jump
}

// NewRegion validates the thresholds and returns the region.
func NewRegion(kind Kind, T int64, V float64) (Region, error) {
	if T <= 0 {
		return Region{}, fmt.Errorf("feature: non-positive time span threshold T=%d", T)
	}
	if math.IsNaN(V) || math.IsInf(V, 0) {
		return Region{}, fmt.Errorf("feature: non-finite V=%v", V)
	}
	switch kind {
	case Drop:
		if V >= 0 {
			return Region{}, fmt.Errorf("feature: drop search requires V < 0, got %v", V)
		}
	case Jump:
		if V <= 0 {
			return Region{}, fmt.Errorf("feature: jump search requires V > 0, got %v", V)
		}
	default:
		return Region{}, fmt.Errorf("feature: unknown kind %v", kind)
	}
	return Region{Kind: kind, T: T, V: V}, nil
}

// ContainsPoint is the point query of Section 4.4: Δt ≤ T and Δv ≤ V
// (drop) or Δv ≥ V (jump). Following the paper, the Δt > 0 constraint is
// not applied to stored corners: a corner at Δt = 0 inside the value range
// still witnesses events at arbitrarily small positive Δt on the adjacent
// boundary, so including it preserves the approximation guarantee.
func (r Region) ContainsPoint(p Point) bool {
	if p.Dt > r.T {
		return false
	}
	if r.Kind == Drop {
		return p.Dv <= r.V
	}
	return p.Dv >= r.V
}

// CrossesEdge is the line query of Section 4.4: it reports whether the
// feature segment (p, q) intersects the region while neither endpoint
// satisfies the point query — the only remaining way a straight edge can
// meet the region. The paper's printed predicate contains a typo (it
// evaluates the boundary at Δt = T starting from Δv” while multiplying by
// (T − Δt')); the corrected evaluation from the left endpoint is used here
// and is validated against exact geometry by the package tests.
func (r Region) CrossesEdge(p, q Point) bool {
	if p.Dt > q.Dt {
		p, q = q, p
	}
	if p.Dt == q.Dt {
		return false // vertical or degenerate edge: endpoints cover it
	}
	atT := p.Dv + (q.Dv-p.Dv)*float64(r.T-p.Dt)/float64(q.Dt-p.Dt)
	if r.Kind == Drop {
		return p.Dt <= r.T && p.Dv > r.V && q.Dt > r.T && q.Dv <= r.V && atT <= r.V
	}
	return p.Dt <= r.T && p.Dv < r.V && q.Dt > r.T && q.Dv >= r.V && atT >= r.V
}

// MatchesBoundary reports whether the stored boundary intersects the
// region: the union of point queries on its corners and line queries on
// its consecutive corner pairs. The boundary's kind must equal the
// region's kind.
func (r Region) MatchesBoundary(b Boundary) bool {
	if b.Kind != r.Kind {
		return false
	}
	for _, c := range b.Corners {
		if r.ContainsPoint(c) {
			return true
		}
	}
	for i := 0; i+1 < len(b.Corners); i++ {
		if r.CrossesEdge(b.Corners[i], b.Corners[i+1]) {
			return true
		}
	}
	return false
}

// IntersectsParallelogram is the exact geometric oracle: whether the
// region intersects the full parallelogram shifted by shift in Δv
// (shift = −ε for drop storage, +ε for jump storage, 0 for the unshifted
// parallelogram). It clips the parallelogram polygon against Δt ≤ T and
// Δt ≥ 0 and compares the extreme Δv of the clipped polygon against V.
// Used by tests to validate Table 2 and by the A1 ablation.
func (r Region) IntersectsParallelogram(p Parallelogram, shift float64) bool {
	poly := p.vertices()
	for i := range poly {
		poly[i][1] += shift
	}
	// Clip to 0 ≤ Δt ≤ T.
	poly = clip(poly, func(v [2]float64) float64 { return v[0] })                // Δt ≥ 0
	poly = clip(poly, func(v [2]float64) float64 { return float64(r.T) - v[0] }) // Δt ≤ T
	if len(poly) == 0 {
		return false
	}
	if r.Kind == Drop {
		lo := math.Inf(1)
		for _, v := range poly {
			lo = math.Min(lo, v[1])
		}
		return lo <= r.V
	}
	hi := math.Inf(-1)
	for _, v := range poly {
		hi = math.Max(hi, v[1])
	}
	return hi >= r.V
}

// clip performs one Sutherland–Hodgman half-plane clip of the polygon:
// keep(v) ≥ 0 means v is kept. Degenerate (collinear) polygons are
// handled because the algorithm operates purely on edges.
func clip(poly [][2]float64, keep func([2]float64) float64) [][2]float64 {
	if len(poly) == 0 {
		return nil
	}
	var out [][2]float64
	n := len(poly)
	for i := 0; i < n; i++ {
		cur, next := poly[i], poly[(i+1)%n]
		kc, kn := keep(cur), keep(next)
		if kc >= 0 {
			out = append(out, cur)
		}
		if (kc < 0) != (kn < 0) {
			// Edge crosses the boundary: add the intersection point.
			t := kc / (kc - kn)
			out = append(out, [2]float64{
				cur[0] + t*(next[0]-cur[0]),
				cur[1] + t*(next[1]-cur[1]),
			})
		}
	}
	return out
}
