// Package feature implements the feature-space machinery of the paper:
//
//   - feature space: a plane whose axes are Δt (time span) and Δv (value
//     change), in which every potential event is a point (Section 3);
//   - feature parallelograms: the convex region in feature space covering
//     all events occurring across two data segments (Lemma 3), degenerating
//     to a feature segment for within-segment events;
//   - the six-way corner case analysis (Table 2 and the Appendix) selecting
//     the boundary corners sufficient for intersection detection;
//   - the ε-shift of Lemma 4 that makes the stored boundaries capture every
//     true event despite segmentation error;
//   - query regions and the point/line query predicates of Section 4.4.
//
// Notation follows the paper: for a data segment AB, B is its start
// observation and A its end; for CD, D is the start and C the end. CD is
// the earlier segment (t_B ≥ t_C) and Δv_ij = v_i − v_j, Δt_ij = t_i − t_j
// with t_i ≥ t_j.
package feature

import (
	"fmt"

	"segdiff/internal/segment"
)

// Point is a feature point (Δt, Δv): a potential event with time span Dt
// and value change Dv.
type Point struct {
	Dt int64
	Dv float64
}

// Kind distinguishes drop search from jump search.
type Kind int8

const (
	// Drop searches for Δv ≤ V < 0 within 0 < Δt ≤ T.
	Drop Kind = iota
	// Jump searches for Δv ≥ V > 0 within 0 < Δt ≤ T.
	Jump
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Jump:
		return "jump"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

// Case identifies one of the six slope configurations of Table 2.
type Case int8

// The six cases of Table 2, keyed by the slopes k_CD (earlier segment) and
// k_AB (later segment).
const (
	Case1 Case = 1 + iota // k_CD ≥ 0, k_AB ≤ 0
	Case2                 // k_CD ≥ 0, k_AB ≥ k_CD
	Case3                 // k_CD ≥ 0, 0 < k_AB < k_CD
	Case4                 // k_CD < 0, k_AB ≥ 0
	Case5                 // k_CD < 0, k_AB ≤ k_CD
	Case6                 // k_CD < 0, k_CD < k_AB < 0
)

func (c Case) String() string { return fmt.Sprintf("case%d", int8(c)) }

// Classify returns the Table 2 case for slopes kCD and kAB. Boundary
// configurations that satisfy two cases are routed deterministically to the
// lower-numbered case; the resulting corner choice remains correct because
// at the shared boundary the corner sets describe the same geometry.
func Classify(kCD, kAB float64) Case {
	if kCD >= 0 {
		switch {
		case kAB <= 0:
			return Case1
		case kAB >= kCD:
			return Case2
		default:
			return Case3
		}
	}
	switch {
	case kAB >= 0:
		return Case4
	case kAB <= kCD:
		return Case5
	default:
		return Case6
	}
}

// Parallelogram is the feature-space parallelogram (BC, BD, AD, AC) built
// from the earlier data segment CD and the later data segment AB
// (Lemma 3). It captures every feature point of an event with one end on
// CD and the other on AB. If CD is zero-length (including the degenerate
// self-pair construction, where CD is taken as the zero-length segment at
// AB's start) the parallelogram collapses to a feature segment.
type Parallelogram struct {
	BC, BD, AD, AC Point
	// Identifying timestamps of the two data segments:
	// CD = ((TD, ·), (TC, ·)), AB = ((TB, ·), (TA, ·)).
	TD, TC, TB, TA int64
	Case           Case
}

// NewParallelogram builds the parallelogram for the pair (cd, ab). cd must
// end no later than ab starts (t_C ≤ t_B). cd may be zero-length; its
// slope is then taken to be ab's (the degenerate feature segment has ab's
// slope, which is what the case analysis needs).
func NewParallelogram(cd, ab segment.Segment) (Parallelogram, error) {
	if cd.Te > ab.Ts {
		return Parallelogram{}, fmt.Errorf("feature: CD ends at %d after AB starts at %d", cd.Te, ab.Ts)
	}
	if ab.Te <= ab.Ts {
		return Parallelogram{}, fmt.Errorf("feature: AB has non-positive duration [%d,%d]", ab.Ts, ab.Te)
	}
	if cd.Te < cd.Ts {
		return Parallelogram{}, fmt.Errorf("feature: CD has negative duration [%d,%d]", cd.Ts, cd.Te)
	}
	tD, vD := cd.Ts, cd.Vs
	tC, vC := cd.Te, cd.Ve
	tB, vB := ab.Ts, ab.Vs
	tA, vA := ab.Te, ab.Ve

	kAB := ab.Slope()
	kCD := kAB
	if cd.Te > cd.Ts {
		kCD = cd.Slope()
	}

	return Parallelogram{
		BC:   Point{Dt: tB - tC, Dv: vB - vC},
		BD:   Point{Dt: tB - tD, Dv: vB - vD},
		AD:   Point{Dt: tA - tD, Dv: vA - vD},
		AC:   Point{Dt: tA - tC, Dv: vA - vC},
		TD:   tD,
		TC:   tC,
		TB:   tB,
		TA:   tA,
		Case: Classify(kCD, kAB),
	}, nil
}

// SelfPair builds the degenerate parallelogram summarizing all events
// occurring within the single data segment ab: the feature segment from
// (0, 0) to (Δt_AB, Δv_AB), encoded as a parallelogram whose CD is the
// zero-length segment at ab's start. The identifying timestamps report
// both intervals as the whole segment — a within-segment event starts and
// ends anywhere on ab — matching the paper's result tuple for a pair of
// identical segments.
func SelfPair(ab segment.Segment) (Parallelogram, error) {
	zero := segment.Segment{Ts: ab.Ts, Vs: ab.Vs, Te: ab.Ts, Ve: ab.Vs}
	p, err := NewParallelogram(zero, ab)
	if err != nil {
		return Parallelogram{}, err
	}
	p.TD, p.TC, p.TB, p.TA = ab.Ts, ab.Te, ab.Ts, ab.Te
	return p, nil
}

// Corners returns the four corners in the conventional order BC, BD, AD, AC
// (a walk around the parallelogram's perimeter).
func (p Parallelogram) Corners() [4]Point { return [4]Point{p.BC, p.BD, p.AD, p.AC} }

// vertices returns the perimeter walk as float64 coordinates for the exact
// geometric tests.
func (p Parallelogram) vertices() [][2]float64 {
	cs := p.Corners()
	out := make([][2]float64, 0, 4)
	for _, c := range cs {
		out = append(out, [2]float64{float64(c.Dt), c.Dv})
	}
	return out
}

// Contains reports whether the feature point (dt, dv) lies inside the
// parallelogram (boundary inclusive, with tolerance tol on Δv to absorb
// floating-point error).
func (p Parallelogram) Contains(dt, dv, tol float64) bool {
	vs := p.vertices()
	// The quadrilateral BC→BD→AD→AC is convex (it is a parallelogram,
	// possibly degenerate). A point is inside iff it is on the same side
	// of every directed edge, allowing zero cross products.
	sign := 0
	for i := 0; i < 4; i++ {
		a, b := vs[i], vs[(i+1)%4]
		ex, ey := b[0]-a[0], b[1]-a[1]
		px, py := dt-a[0], dv-a[1]
		cross := ex*py - ey*px
		// Normalize tolerance by edge length scale.
		scale := abs(ex) + abs(ey) + 1
		switch {
		case cross > tol*scale:
			if sign < 0 {
				return false
			}
			sign = 1
		case cross < -tol*scale:
			if sign > 0 {
				return false
			}
			sign = -1
		}
	}
	if sign != 0 {
		return true
	}
	// All cross products vanished: the parallelogram is degenerate (a
	// feature segment or a point) and (dt, dv) is on its supporting line.
	// Require the point to lie within the bounding box of the vertices.
	minX, maxX := vs[0][0], vs[0][0]
	minY, maxY := vs[0][1], vs[0][1]
	for _, v := range vs[1:] {
		minX, maxX = min(minX, v[0]), max(maxX, v[0])
		minY, maxY = min(minY, v[1]), max(maxY, v[1])
	}
	return dt >= minX-tol && dt <= maxX+tol && dv >= minY-tol && dv <= maxY+tol
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
