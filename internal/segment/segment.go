// Package segment implements the online sliding-window piecewise linear
// segmentation the paper uses (Section 4.1): the generic online sliding
// window algorithm of Keogh, Chu, Hart and Pazzani (ICDM 2001, Section 2.1)
// with *linear interpolation* as the approximation and a maximum-error
// criterion of ε/2, so that the resulting piecewise linear function f
// satisfies |f(t) − v| ≤ ε/2 at every sample (and, by Lemma 1, at every
// point of the data generating model G).
//
// Consecutive output segments share endpoints: the end observation of one
// segment is the start observation of the next, as required by the feature
// extraction procedure (Algorithm 1).
package segment

import (
	"fmt"
	"math"

	"segdiff/internal/timeseries"
)

// Segment is a data segment ((Ts, Vs), (Te, Ve)): the piece of the
// piecewise linear approximation from its start observation to its end
// observation. In the paper's notation a segment AB has B = start and
// A = end (timestamps increase from B to A).
type Segment struct {
	Ts int64   // start timestamp
	Vs float64 // value at Ts
	Te int64   // end timestamp
	Ve float64 // value at Te
}

// Slope returns the segment's slope in value units per time unit.
func (g Segment) Slope() float64 {
	return (g.Ve - g.Vs) / float64(g.Te-g.Ts)
}

// Duration returns Te − Ts.
func (g Segment) Duration() int64 { return g.Te - g.Ts }

// Value evaluates the segment's line at time t (which should lie within
// [Ts, Te], though this is not enforced).
func (g Segment) Value(t int64) float64 {
	if g.Te == g.Ts {
		return g.Vs
	}
	return g.Vs + (g.Ve-g.Vs)*float64(t-g.Ts)/float64(g.Te-g.Ts)
}

func (g Segment) String() string {
	return fmt.Sprintf("seg[(%d,%.3f)->(%d,%.3f)]", g.Ts, g.Vs, g.Te, g.Ve)
}

// Segmenter consumes observations one at a time and emits data segments
// online. Emit is called with each finalized segment as soon as it is
// known; Close flushes the final partial segment.
type Segmenter struct {
	maxErr float64 // ε/2
	emit   func(Segment) error

	buf    []timeseries.Point // current window, buf[0] is the anchor
	closed bool

	// Stats.
	nPoints   int
	nSegments int
}

// NewSegmenter returns a Segmenter with error tolerance ε (the emitted
// piecewise linear approximation deviates from the input by at most ε/2).
// emit receives each finalized segment in temporal order.
func NewSegmenter(epsilon float64, emit func(Segment) error) (*Segmenter, error) {
	if epsilon < 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("segment: invalid epsilon %v", epsilon)
	}
	if emit == nil {
		return nil, fmt.Errorf("segment: nil emit callback")
	}
	return &Segmenter{maxErr: epsilon / 2, emit: emit}, nil
}

// Push adds one observation. Observations must arrive with strictly
// increasing timestamps.
func (sg *Segmenter) Push(p timeseries.Point) error {
	if sg.closed {
		return fmt.Errorf("segment: push after Close")
	}
	if n := len(sg.buf); n > 0 && p.T <= sg.buf[n-1].T {
		return fmt.Errorf("segment: out-of-order timestamp %d after %d", p.T, sg.buf[n-1].T)
	}
	if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
		return fmt.Errorf("segment: non-finite value at t=%d", p.T)
	}
	sg.nPoints++
	sg.buf = append(sg.buf, p)
	if len(sg.buf) <= 2 {
		return nil // a two-point window is always exact
	}
	if sg.fits(sg.buf) {
		return nil
	}
	// The window no longer fits: finalize the segment ending at the
	// previous point and restart the window there (shared endpoint).
	last := len(sg.buf) - 1
	if err := sg.finalize(sg.buf[0], sg.buf[last-1]); err != nil {
		return err
	}
	// Keep the new anchor and the point that broke the window.
	sg.buf[0] = sg.buf[last-1]
	sg.buf[1] = sg.buf[last]
	sg.buf = sg.buf[:2]
	return nil
}

// fits reports whether the line interpolating the first and last points of
// win approximates every interior point within maxErr.
func (sg *Segmenter) fits(win []timeseries.Point) bool {
	a, b := win[0], win[len(win)-1]
	seg := Segment{Ts: a.T, Vs: a.V, Te: b.T, Ve: b.V}
	for _, p := range win[1 : len(win)-1] {
		if math.Abs(seg.Value(p.T)-p.V) > sg.maxErr {
			return false
		}
	}
	return true
}

func (sg *Segmenter) finalize(a, b timeseries.Point) error {
	sg.nSegments++
	return sg.emit(Segment{Ts: a.T, Vs: a.V, Te: b.T, Ve: b.V})
}

// Close flushes the trailing partial segment (if the window holds at least
// two points) and marks the segmenter finished. Close is idempotent.
func (sg *Segmenter) Close() error {
	if sg.closed {
		return nil
	}
	sg.closed = true
	if len(sg.buf) >= 2 {
		if err := sg.finalize(sg.buf[0], sg.buf[len(sg.buf)-1]); err != nil {
			return err
		}
	}
	sg.buf = nil
	return nil
}

// Stats reports the number of observations consumed and segments emitted.
func (sg *Segmenter) Stats() (points, segments int) {
	return sg.nPoints, sg.nSegments
}

// CompressionRate returns r, the average number of observations represented
// by one data segment (paper Table 1). It is 0 before any segment is
// emitted.
func (sg *Segmenter) CompressionRate() float64 {
	if sg.nSegments == 0 {
		return 0
	}
	return float64(sg.nPoints) / float64(sg.nSegments)
}

// Series segments a whole series at once and returns the segment list.
func Series(s *timeseries.Series, epsilon float64) ([]Segment, error) {
	var out []Segment
	sg, err := NewSegmenter(epsilon, func(g Segment) error {
		out = append(out, g)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range s.Points() {
		if err := sg.Push(p); err != nil {
			return nil, err
		}
	}
	if err := sg.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Approximation evaluates the piecewise linear approximation defined by
// contiguous segments at time t. Segments must be in temporal order.
func Approximation(segs []Segment, t int64) (float64, error) {
	for _, g := range segs {
		if t >= g.Ts && t <= g.Te {
			return g.Value(t), nil
		}
	}
	return 0, fmt.Errorf("segment: t=%d outside approximation range", t)
}
