package segment

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"segdiff/internal/synth"
	"segdiff/internal/timeseries"
)

func mustSeries(t *testing.T, pts []timeseries.Point) *timeseries.Series {
	t.Helper()
	s, err := timeseries.New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSegmentValueAndSlope(t *testing.T) {
	g := Segment{Ts: 0, Vs: 0, Te: 10, Ve: 5}
	if g.Slope() != 0.5 {
		t.Fatalf("slope = %v", g.Slope())
	}
	if g.Value(4) != 2 {
		t.Fatalf("value(4) = %v", g.Value(4))
	}
	if g.Duration() != 10 {
		t.Fatalf("duration = %v", g.Duration())
	}
	zero := Segment{Ts: 5, Vs: 3, Te: 5, Ve: 3}
	if zero.Value(5) != 3 {
		t.Fatalf("degenerate value = %v", zero.Value(5))
	}
}

func TestLinearSeriesOneSegment(t *testing.T) {
	pts := make([]timeseries.Point, 100)
	for i := range pts {
		pts[i] = timeseries.Point{T: int64(i) * 10, V: float64(i) * 0.5}
	}
	segs, err := Series(mustSeries(t, pts), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("perfectly linear data produced %d segments", len(segs))
	}
	if segs[0].Ts != 0 || segs[0].Te != 990 {
		t.Fatalf("segment bounds %v", segs[0])
	}
}

func TestZeroEpsilonExactBreaks(t *testing.T) {
	// A V shape with zero tolerance must break exactly at the corner.
	pts := []timeseries.Point{{T: 0, V: 0}, {T: 10, V: -10}, {T: 20, V: 0}}
	segs, err := Series(mustSeries(t, pts), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("V shape with eps=0 produced %d segments: %v", len(segs), segs)
	}
	if segs[0].Te != 10 || segs[1].Ts != 10 {
		t.Fatalf("break point wrong: %v", segs)
	}
}

func TestSegmentsAreContiguous(t *testing.T) {
	s, _, err := synth.Generate(synth.Config{Seed: 4, Duration: 5 * synth.SecondsPerDay})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := Series(s, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("only %d segments", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Ts != segs[i-1].Te || segs[i].Vs != segs[i-1].Ve {
			t.Fatalf("segments %d,%d not contiguous: %v | %v", i-1, i, segs[i-1], segs[i])
		}
	}
	if segs[0].Ts != s.Start() || segs[len(segs)-1].Te != s.End() {
		t.Fatal("approximation does not span the series")
	}
}

// Lemma 1 (at samples): |f(t_i) − v_i| ≤ ε/2 for every observation.
func TestLemma1ErrorBoundAtSamples(t *testing.T) {
	for _, eps := range []float64{0.1, 0.2, 0.4, 0.8, 1.0} {
		s, _, err := synth.Generate(synth.Config{Seed: 17, Duration: 10 * synth.SecondsPerDay})
		if err != nil {
			t.Fatal(err)
		}
		segs, err := Series(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range s.Points() {
			f, err := Approximation(segs, p.T)
			if err != nil {
				t.Fatalf("eps=%v: %v", eps, err)
			}
			if math.Abs(f-p.V) > eps/2+1e-9 {
				t.Fatalf("eps=%v: |f-v|=%v at t=%d exceeds eps/2", eps, math.Abs(f-p.V), p.T)
			}
		}
	}
}

// Lemma 1 (full model G): sample G between observations too.
func TestLemma1ErrorBoundOnModelG(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := make([]timeseries.Point, 200)
	tt := int64(0)
	for i := range pts {
		tt += 1 + rng.Int63n(20)
		pts[i] = timeseries.Point{T: tt, V: rng.NormFloat64() * 3}
	}
	s := mustSeries(t, pts)
	const eps = 0.5
	segs, err := Series(s, eps)
	if err != nil {
		t.Fatal(err)
	}
	for tm := s.Start(); tm <= s.End(); tm++ {
		v, err := s.Value(tm)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Approximation(segs, tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-v) > eps/2+1e-9 {
			t.Fatalf("model G violated at t=%d: |f-v|=%v", tm, math.Abs(f-v))
		}
	}
}

func TestCompressionRateGrowsWithEpsilon(t *testing.T) {
	s, _, err := synth.Generate(synth.Config{Seed: 23, Duration: 20 * synth.SecondsPerDay})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, eps := range []float64{0.1, 0.4, 1.0} {
		segs, err := Series(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		r := float64(s.Len()) / float64(len(segs))
		if r <= prev {
			t.Fatalf("compression rate not increasing: r(%v)=%v <= %v", eps, r, prev)
		}
		prev = r
	}
	if prev < 2 {
		t.Fatalf("compression rate at eps=1.0 implausibly low: %v", prev)
	}
}

func TestSegmenterStats(t *testing.T) {
	var segs []Segment
	sg, err := NewSegmenter(0.5, func(g Segment) error { segs = append(segs, g); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v := 0.0
		if i >= 5 {
			v = float64(i-4) * 10
		}
		if err := sg.Push(timeseries.Point{T: int64(i), V: v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sg.Close(); err != nil {
		t.Fatal(err)
	}
	pN, sN := sg.Stats()
	if pN != 10 || sN != len(segs) || sN == 0 {
		t.Fatalf("stats = %d,%d segs=%d", pN, sN, len(segs))
	}
	if got := sg.CompressionRate(); got != float64(pN)/float64(sN) {
		t.Fatalf("compression rate %v", got)
	}
}

func TestSegmenterErrors(t *testing.T) {
	if _, err := NewSegmenter(-1, func(Segment) error { return nil }); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := NewSegmenter(math.NaN(), func(Segment) error { return nil }); err == nil {
		t.Fatal("NaN epsilon accepted")
	}
	if _, err := NewSegmenter(1, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
	sg, _ := NewSegmenter(1, func(Segment) error { return nil })
	if err := sg.Push(timeseries.Point{T: 5, V: 0}); err != nil {
		t.Fatal(err)
	}
	if err := sg.Push(timeseries.Point{T: 5, V: 1}); err == nil {
		t.Fatal("duplicate timestamp accepted")
	}
	if err := sg.Push(timeseries.Point{T: 6, V: math.NaN()}); err == nil {
		t.Fatal("NaN value accepted")
	}
	if err := sg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sg.Push(timeseries.Point{T: 7, V: 0}); err == nil {
		t.Fatal("push after close accepted")
	}
	if err := sg.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	sg, _ := NewSegmenter(0, func(Segment) error { return boom })
	_ = sg.Push(timeseries.Point{T: 0, V: 0})
	_ = sg.Push(timeseries.Point{T: 1, V: 0})
	if err := sg.Push(timeseries.Point{T: 2, V: 100}); !errors.Is(err, boom) {
		t.Fatalf("push err = %v", err)
	}
	sg2, _ := NewSegmenter(0, func(Segment) error { return boom })
	_ = sg2.Push(timeseries.Point{T: 0, V: 0})
	_ = sg2.Push(timeseries.Point{T: 1, V: 0})
	if err := sg2.Close(); !errors.Is(err, boom) {
		t.Fatalf("close err = %v", err)
	}
}

func TestShortInputs(t *testing.T) {
	if segs, err := Series(&timeseries.Series{}, 0.2); err != nil || len(segs) != 0 {
		t.Fatalf("empty: %v %v", segs, err)
	}
	one := mustSeries(t, []timeseries.Point{{T: 0, V: 1}})
	if segs, err := Series(one, 0.2); err != nil || len(segs) != 0 {
		t.Fatalf("single point: %v %v", segs, err)
	}
	two := mustSeries(t, []timeseries.Point{{T: 0, V: 1}, {T: 5, V: 2}})
	segs, err := Series(two, 0.2)
	if err != nil || len(segs) != 1 {
		t.Fatalf("two points: %v %v", segs, err)
	}
}

func TestApproximationOutOfRange(t *testing.T) {
	segs := []Segment{{Ts: 0, Vs: 0, Te: 10, Ve: 1}}
	if _, err := Approximation(segs, 11); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

// Property: for random series and random ε, the approximation error at all
// samples is within ε/2 and segments are contiguous.
func TestQuickSegmentationInvariants(t *testing.T) {
	f := func(seed int64, epsRaw uint8) bool {
		eps := float64(epsRaw%100)/50 + 0.01 // (0.01, 2.01)
		rng := rand.New(rand.NewSource(seed))
		pts := make([]timeseries.Point, 80)
		tt := int64(0)
		for i := range pts {
			tt += 1 + rng.Int63n(10)
			pts[i] = timeseries.Point{T: tt, V: rng.NormFloat64() * 5}
		}
		s, err := timeseries.New(pts)
		if err != nil {
			return false
		}
		segs, err := Series(s, eps)
		if err != nil {
			return false
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Ts != segs[i-1].Te {
				return false
			}
		}
		for _, p := range pts {
			f, err := Approximation(segs, p.T)
			if err != nil || math.Abs(f-p.V) > eps/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
