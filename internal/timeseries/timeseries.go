// Package timeseries provides the shared data model for the SegDiff
// framework: observation points, time series, and the data generating
// model G of the paper (Definition 1), which treats the unobserved signal
// between two consecutive samples as their linear interpolation.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is a single observation (t, v): a value v sampled at time t.
// Timestamps are int64 "time units"; the CAD workload uses seconds.
type Point struct {
	T int64
	V float64
}

// Series is a time-ordered sequence of observations with strictly
// increasing timestamps. The zero value is an empty, usable series.
type Series struct {
	pts []Point
}

// ErrOutOfOrder is returned when an appended point does not have a
// strictly greater timestamp than the last point in the series.
var ErrOutOfOrder = errors.New("timeseries: timestamps must be strictly increasing")

// ErrOutOfRange is returned by Value and At for a time outside the series.
var ErrOutOfRange = errors.New("timeseries: time outside series range")

// New returns a series built from pts. It returns an error if the
// timestamps are not strictly increasing or any value is not finite.
func New(pts []Point) (*Series, error) {
	s := &Series{}
	for _, p := range pts {
		if err := s.Append(p); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is like New but panics on error. It is intended for tests and
// for literals known to be valid.
func MustNew(pts []Point) *Series {
	s, err := New(pts)
	if err != nil {
		panic(err)
	}
	return s
}

// Append adds one observation to the end of the series.
func (s *Series) Append(p Point) error {
	if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
		return fmt.Errorf("timeseries: non-finite value %v at t=%d", p.V, p.T)
	}
	if n := len(s.pts); n > 0 && p.T <= s.pts[n-1].T {
		return fmt.Errorf("%w: t=%d after t=%d", ErrOutOfOrder, p.T, s.pts[n-1].T)
	}
	s.pts = append(s.pts, p)
	return nil
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.pts) }

// At returns the i-th observation.
func (s *Series) At(i int) Point { return s.pts[i] }

// Points returns the underlying observations. The returned slice must be
// treated as read-only.
func (s *Series) Points() []Point { return s.pts }

// Start returns the first timestamp. It panics on an empty series.
func (s *Series) Start() int64 { return s.pts[0].T }

// End returns the last timestamp. It panics on an empty series.
func (s *Series) End() int64 { return s.pts[len(s.pts)-1].T }

// Span returns End-Start, or 0 for a series with fewer than two points.
func (s *Series) Span() int64 {
	if len(s.pts) < 2 {
		return 0
	}
	return s.End() - s.Start()
}

// Value evaluates the data generating model G (Definition 1) at time t:
// the exact sample value at sample times, and the linear interpolation of
// the two surrounding samples otherwise.
func (s *Series) Value(t int64) (float64, error) {
	n := len(s.pts)
	if n == 0 || t < s.pts[0].T || t > s.pts[n-1].T {
		return 0, fmt.Errorf("%w: t=%d", ErrOutOfRange, t)
	}
	// Index of the first point with T >= t.
	i := sort.Search(n, func(i int) bool { return s.pts[i].T >= t })
	if s.pts[i].T == t {
		return s.pts[i].V, nil
	}
	a, b := s.pts[i-1], s.pts[i]
	return Interpolate(a, b, t), nil
}

// Interpolate evaluates the line through a and b at time t (model G on a
// single sampling interval). It requires a.T < b.T.
func Interpolate(a, b Point, t int64) float64 {
	return a.V + (b.V-a.V)*float64(t-a.T)/float64(b.T-a.T)
}

// Slice returns the sub-series of observations with from <= T <= to.
// The result shares storage with s.
func (s *Series) Slice(from, to int64) *Series {
	n := len(s.pts)
	lo := sort.Search(n, func(i int) bool { return s.pts[i].T >= from })
	hi := sort.Search(n, func(i int) bool { return s.pts[i].T > to })
	return &Series{pts: s.pts[lo:hi]}
}

// Head returns the sub-series of the first n observations (all of them if
// n exceeds the length). The result shares storage with s.
func (s *Series) Head(n int) *Series {
	if n > len(s.pts) {
		n = len(s.pts)
	}
	if n < 0 {
		n = 0
	}
	return &Series{pts: s.pts[:n]}
}

// MinMax returns the minimum and maximum observed values.
// It panics on an empty series.
func (s *Series) MinMax() (lo, hi float64) {
	lo, hi = s.pts[0].V, s.pts[0].V
	for _, p := range s.pts[1:] {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	return lo, hi
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	pts := make([]Point, len(s.pts))
	copy(pts, s.pts)
	return &Series{pts: pts}
}

// Map returns a new series with f applied to every value.
func (s *Series) Map(f func(Point) float64) *Series {
	out := make([]Point, len(s.pts))
	for i, p := range s.pts {
		out[i] = Point{T: p.T, V: f(p)}
	}
	return &Series{pts: out}
}

// Resample returns a new series sampled from model G at the given step,
// starting at the series start. Useful for building test oracles that probe
// unsampled instants.
func (s *Series) Resample(step int64) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive resample step %d", step)
	}
	if len(s.pts) == 0 {
		return &Series{}, nil
	}
	out := &Series{}
	for t := s.Start(); t <= s.End(); t += step {
		v, err := s.Value(t)
		if err != nil {
			return nil, err
		}
		if err := out.Append(Point{T: t, V: v}); err != nil {
			return nil, err
		}
	}
	return out, nil
}
