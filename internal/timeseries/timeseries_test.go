package timeseries

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendOrdering(t *testing.T) {
	s := &Series{}
	if err := s.Append(Point{T: 10, V: 1}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Append(Point{T: 20, V: 2}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Append(Point{T: 20, V: 3}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("equal timestamp: got %v, want ErrOutOfOrder", err)
	}
	if err := s.Append(Point{T: 5, V: 3}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("earlier timestamp: got %v, want ErrOutOfOrder", err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
}

func TestAppendRejectsNonFinite(t *testing.T) {
	s := &Series{}
	if err := s.Append(Point{T: 1, V: math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := s.Append(Point{T: 1, V: math.Inf(1)}); err == nil {
		t.Fatal("+Inf accepted")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New([]Point{{T: 2, V: 0}, {T: 1, V: 0}}); err == nil {
		t.Fatal("out-of-order input accepted")
	}
}

func TestValueAtSamples(t *testing.T) {
	s := MustNew([]Point{{0, 1}, {10, 5}, {20, -3}})
	for _, p := range s.Points() {
		v, err := s.Value(p.T)
		if err != nil {
			t.Fatalf("Value(%d): %v", p.T, err)
		}
		if v != p.V {
			t.Errorf("Value(%d) = %v, want %v", p.T, v, p.V)
		}
	}
}

func TestValueInterpolates(t *testing.T) {
	s := MustNew([]Point{{0, 0}, {10, 10}})
	for _, tc := range []struct {
		t    int64
		want float64
	}{{1, 1}, {5, 5}, {9, 9}} {
		v, err := s.Value(tc.t)
		if err != nil {
			t.Fatalf("Value(%d): %v", tc.t, err)
		}
		if math.Abs(v-tc.want) > 1e-12 {
			t.Errorf("Value(%d) = %v, want %v", tc.t, v, tc.want)
		}
	}
}

func TestValueOutOfRange(t *testing.T) {
	s := MustNew([]Point{{0, 0}, {10, 10}})
	if _, err := s.Value(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Value(-1): got %v", err)
	}
	if _, err := s.Value(11); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Value(11): got %v", err)
	}
	empty := &Series{}
	if _, err := empty.Value(0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("empty Value(0): got %v", err)
	}
}

// Model G must agree with the exact line between any two consecutive
// samples (Definition 1), at every intermediate integer instant.
func TestModelGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Series{}
		tt := int64(0)
		for i := 0; i < 20; i++ {
			tt += 1 + rng.Int63n(30)
			if err := s.Append(Point{T: tt, V: rng.NormFloat64() * 10}); err != nil {
				return false
			}
		}
		for i := 0; i < s.Len()-1; i++ {
			a, b := s.At(i), s.At(i+1)
			for tm := a.T; tm <= b.T; tm++ {
				got, err := s.Value(tm)
				if err != nil {
					return false
				}
				want := a.V + (b.V-a.V)*float64(tm-a.T)/float64(b.T-a.T)
				if math.Abs(got-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSlice(t *testing.T) {
	s := MustNew([]Point{{0, 0}, {10, 1}, {20, 2}, {30, 3}})
	sub := s.Slice(10, 20)
	if sub.Len() != 2 || sub.Start() != 10 || sub.End() != 20 {
		t.Fatalf("Slice(10,20) = %v", sub.Points())
	}
	if got := s.Slice(11, 19).Len(); got != 0 {
		t.Fatalf("empty slice has %d points", got)
	}
	if got := s.Slice(-100, 100).Len(); got != 4 {
		t.Fatalf("full slice has %d points", got)
	}
}

func TestHead(t *testing.T) {
	s := MustNew([]Point{{0, 0}, {10, 1}, {20, 2}})
	if got := s.Head(2).Len(); got != 2 {
		t.Fatalf("Head(2).Len() = %d", got)
	}
	if got := s.Head(99).Len(); got != 3 {
		t.Fatalf("Head(99).Len() = %d", got)
	}
	if got := s.Head(-1).Len(); got != 0 {
		t.Fatalf("Head(-1).Len() = %d", got)
	}
}

func TestMinMax(t *testing.T) {
	s := MustNew([]Point{{0, 3}, {10, -7}, {20, 5}})
	lo, hi := s.MinMax()
	if lo != -7 || hi != 5 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestSpan(t *testing.T) {
	if got := MustNew([]Point{{5, 0}, {25, 0}}).Span(); got != 20 {
		t.Fatalf("Span = %d", got)
	}
	if got := MustNew([]Point{{5, 0}}).Span(); got != 0 {
		t.Fatalf("single-point Span = %d", got)
	}
	if got := (&Series{}).Span(); got != 0 {
		t.Fatalf("empty Span = %d", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := MustNew([]Point{{0, 1}, {10, 2}})
	c := s.Clone()
	c.Points()[0].V = 99
	if s.At(0).V != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMap(t *testing.T) {
	s := MustNew([]Point{{0, 1}, {10, 2}})
	m := s.Map(func(p Point) float64 { return p.V * 2 })
	if m.At(0).V != 2 || m.At(1).V != 4 {
		t.Fatalf("Map result %v", m.Points())
	}
	if s.At(0).V != 1 {
		t.Fatal("Map mutated input")
	}
}

func TestResample(t *testing.T) {
	s := MustNew([]Point{{0, 0}, {10, 10}})
	r, err := s.Resample(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{{0, 0}, {2, 2}, {4, 4}, {6, 6}, {8, 8}, {10, 10}}
	if !reflect.DeepEqual(r.Points(), want) {
		t.Fatalf("Resample = %v", r.Points())
	}
	if _, err := s.Resample(0); err == nil {
		t.Fatal("Resample(0) accepted")
	}
	if e, err := (&Series{}).Resample(5); err != nil || e.Len() != 0 {
		t.Fatalf("empty Resample = %v, %v", e, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustNew([]Point{{0, 1.5}, {300, -2.25}, {600, 3.875}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points(), s.Points()) {
		t.Fatalf("round trip = %v, want %v", got.Points(), s.Points())
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	got, err := ReadCSV(bytes.NewBufferString("0,1\n10,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("t,v\n10,notafloat\n")); err == nil {
		t.Fatal("bad value accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("t,v\n10,1\nbadtime,2\n")); err == nil {
		t.Fatal("bad timestamp accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("10,1\n5,2\n")); err == nil {
		t.Fatal("out-of-order rows accepted")
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a, b := Point{0, -4}, Point{8, 4}
	if Interpolate(a, b, 0) != -4 || Interpolate(a, b, 8) != 4 {
		t.Fatal("endpoints wrong")
	}
	if Interpolate(a, b, 4) != 0 {
		t.Fatal("midpoint wrong")
	}
}
