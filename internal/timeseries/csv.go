package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the series as "t,v" rows with a header line.
func WriteCSV(w io.Writer, s *Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "v"}); err != nil {
		return err
	}
	for _, p := range s.Points() {
		rec := []string{
			strconv.FormatInt(p.T, 10),
			strconv.FormatFloat(p.V, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series from "t,v" rows. A first row that fails integer
// parsing is treated as a header and skipped.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	s := &Series{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		line++
		t, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("timeseries: line %d: bad timestamp %q: %w", line, rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: line %d: bad value %q: %w", line, rec[1], err)
		}
		if err := s.Append(Point{T: t, V: v}); err != nil {
			return nil, fmt.Errorf("timeseries: line %d: %w", line, err)
		}
	}
}
