package bench

// Trace-overhead comparison for the observability work: the same
// workloads as the PR 7 performance sections — the warm fused
// drop-search union and the cold region scan — measured once with the
// metrics registry on (the default) and once with Options.DisableMetrics
// set, which reduces the per-query observability cost to two nil checks
// (the PR 7 code path). EXPLAIN ANALYZE tracing is off in both runs; it
// only engages per plan when requested, so what this measures is the
// steady-state price of always-on metrics. cmd/benchrunner -perf embeds
// the report in BENCH_PR9.json; -trace-smoke is the CI gate (< 2%
// overhead on both sections).

import (
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/storage/sqlmini"
)

// TraceOverheadSection is one measured workload of the comparison.
// Wall times are best-of-rounds: each round interleaves the two
// configurations, and the minimum wall per configuration is kept, which
// suppresses scheduler and allocator noise better than averaging.
type TraceOverheadSection struct {
	Name        string  `json:"name"`
	Queries     int     `json:"queries"` // per round, per configuration
	Rounds      int     `json:"rounds"`
	OnMS        float64 `json:"metrics_on_ms"`  // best round, metrics enabled
	OffMS       float64 `json:"metrics_off_ms"` // best round, DisableMetrics
	OverheadPct float64 `json:"overhead_pct"`   // (on-off)/off*100; negative = on was faster
}

// TraceOverheadReport is the full metrics-on vs metrics-off comparison.
type TraceOverheadReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Days       int64   `json:"days"`
	QueryT     int64   `json:"query_t_seconds"`
	QueryV     float64 `json:"query_v"`
	Identical  bool    `json:"results_identical"`
	// Fused is the warm multi-branch search of the fusion perf section.
	Fused TraceOverheadSection `json:"fused"`
	// Cold is the cold-cache region scan (buffer pool dropped per query).
	Cold TraceOverheadSection `json:"cold"`
	// MaxOverheadPct is the larger of the two sections' overheads, the
	// number the CI gate checks.
	MaxOverheadPct float64 `json:"max_overhead_pct"`
}

// overheadPct is the relative cost of the metrics-on wall time.
func overheadPct(onMS, offMS float64) float64 {
	if offMS <= 0 {
		return 0
	}
	return (onMS - offMS) / offMS * 100
}

// bestRounds runs rounds interleaved executions of on() and off(),
// returning the minimum wall time of each in milliseconds.
func bestRounds(rounds int, on, off func() (time.Duration, error)) (onMS, offMS float64, err error) {
	best := func(prev float64, f func() (time.Duration, error)) (float64, error) {
		d, err := f()
		if err != nil {
			return 0, err
		}
		ms := float64(d.Microseconds()) / 1e3
		if prev == 0 || ms < prev {
			return ms, nil
		}
		return prev, nil
	}
	for r := 0; r < rounds; r++ {
		if onMS, err = best(onMS, on); err != nil {
			return 0, 0, err
		}
		if offMS, err = best(offMS, off); err != nil {
			return 0, 0, err
		}
	}
	return onMS, offMS, nil
}

// RunTraceOverhead measures the metrics registry's query overhead on the
// warm fused search and the cold region scan. dir receives the two
// on-disk stores of the cold section.
func RunTraceOverhead(cfg Config, dir string, iters, rounds int) (_ *TraceOverheadReport, err error) {
	if iters <= 0 {
		iters = 20
	}
	if rounds <= 0 {
		rounds = 5
	}
	rep := &TraceOverheadReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Days:       cfg.Days,
		QueryT:     cfg.QueryT,
		QueryV:     cfg.QueryV,
	}

	// Warm fused section: two identical in-memory stores, metrics on/off.
	onStore, err := perfStoreDB(cfg, sqlmini.Options{PoolPages: cfg.PoolPages})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, onStore)
	offStore, err := perfStoreDB(cfg, sqlmini.Options{PoolPages: cfg.PoolPages, DisableMetrics: true})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, offStore)

	onMatches, err := onStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	offMatches, err := offStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	rep.Identical = reflect.DeepEqual(onMatches, offMatches)
	if !rep.Identical {
		return nil, fmt.Errorf("bench: metrics-on found %d matches, metrics-off %d — observability changed results",
			len(onMatches), len(offMatches))
	}

	fusedRun := func(st *core.Store) func() (time.Duration, error) {
		return func() (time.Duration, error) {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := st.SearchDrops(cfg.QueryT, cfg.QueryV); err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
	}
	rep.Fused.Name, rep.Fused.Queries, rep.Fused.Rounds = "fused-warm", iters, rounds
	rep.Fused.OnMS, rep.Fused.OffMS, err = bestRounds(rounds, fusedRun(onStore), fusedRun(offStore))
	if err != nil {
		return nil, err
	}
	rep.Fused.OverheadPct = overheadPct(rep.Fused.OnMS, rep.Fused.OffMS)

	// Cold section: the PR 7 cold-cache region scan, pool dropped before
	// every query so each trial pays the full I/O path (where per-page
	// work could hide a registry cost).
	days := cfg.Days * coldDaysFactor
	series, err := Workload(cfg, 1, days)
	if err != nil {
		return nil, err
	}
	coldOn, err := coldStore(cfg, filepath.Join(dir, "trace-on"), series[0], sqlmini.Options{})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, coldOn)
	coldOff, err := coldStore(cfg, filepath.Join(dir, "trace-off"), series[0], sqlmini.Options{DisableMetrics: true})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, coldOff)

	t1 := series[0].End() + 1
	t0 := t1 - coldRegionSeconds
	sql := coldRegionSQL()
	args := coldRegionArgs(t0, t1, cfg.QueryT, cfg.QueryV)

	onRows, err := coldOn.DB().QueryMode(sqlmini.PlanForceScan, sql, args...)
	if err != nil {
		return nil, err
	}
	offRows, err := coldOff.DB().QueryMode(sqlmini.PlanForceScan, sql, args...)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(onRows, offRows) {
		rep.Identical = false
		return nil, fmt.Errorf("bench: cold region queries diverge: metrics-on %d rows, metrics-off %d",
			onRows.Len(), offRows.Len())
	}

	coldRun := func(st *core.Store) func() (time.Duration, error) {
		return func() (time.Duration, error) {
			var wall time.Duration
			for i := 0; i < iters; i++ {
				if err := st.DropCache(); err != nil {
					return 0, err
				}
				start := time.Now()
				if _, err := st.DB().QueryMode(sqlmini.PlanForceScan, sql, args...); err != nil {
					return 0, err
				}
				wall += time.Since(start)
			}
			return wall, nil
		}
	}
	rep.Cold.Name, rep.Cold.Queries, rep.Cold.Rounds = "cold-region-scan", iters, rounds
	rep.Cold.OnMS, rep.Cold.OffMS, err = bestRounds(rounds, coldRun(coldOn), coldRun(coldOff))
	if err != nil {
		return nil, err
	}
	rep.Cold.OverheadPct = overheadPct(rep.Cold.OnMS, rep.Cold.OffMS)

	rep.MaxOverheadPct = rep.Fused.OverheadPct
	if rep.Cold.OverheadPct > rep.MaxOverheadPct {
		rep.MaxOverheadPct = rep.Cold.OverheadPct
	}
	return rep, nil
}
