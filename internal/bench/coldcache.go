package bench

// Cold-cache comparison for the buffer-pool work: the same region-
// restricted drop search against one on-disk store running the PR 6 I/O
// configuration (demand paging, no zone maps) and one with scan readahead
// and zone-map page pruning on. Every trial starts from a dropped buffer
// pool — the paper's Sections 6.1–6.3 flush the cache before each query —
// so the comparison measures exactly what the new I/O layer buys: pages
// never read (zone maps) and pages read before they are demanded
// (readahead).
//
// The workload is the monitoring shape of the paper's Section 6.4 query
// regions: the point-query half of the drop search restricted to a recent
// time window ("which drops of at least V within T happened yesterday?").
// Features are ingested in arrival order, so the td column is monotone
// across heap pages and the region predicate gives zone maps real
// leverage; the full-history search union stays covered by the fusion
// smoke and the perf report's warm scenarios. Both stores must return
// identical rows under forced scan, and the pruned store must agree with
// its own index path, or pruning is rejecting live rows.
// cmd/benchrunner -perf embeds the report in BENCH_PR7.json;
// -coldcache-smoke is the CI gate.

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/feature"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// coldRegionSeconds is the time-region width of the benchmark query: one
// day out of the multi-week ingest.
const coldRegionSeconds = 86400

// coldDaysFactor scales the cold-cache ingest relative to cfg.Days so the
// region covers a small fraction of the heap even in -short CI runs.
const coldDaysFactor = 6

// ColdScenario is one measured cold-cache configuration.
type ColdScenario struct {
	Name           string  `json:"name"`
	Trials         int     `json:"trials"`
	WallMS         float64 `json:"wall_ms"` // query time only, cache drops excluded
	Throughput     float64 `json:"throughput_qps"`
	PagesRead      uint64  `json:"pages_read"` // demand + prefetch file reads
	PrefetchReads  uint64  `json:"prefetch_reads"`
	PrefetchHits   uint64  `json:"prefetch_hits"`
	PrefetchWasted uint64  `json:"prefetch_wasted"`
	ZoneSkipped    uint64  `json:"zone_skipped_pages"`
	Rows           int     `json:"rows"`
}

// ColdCacheReport is the baseline-vs-tuned cold-scan comparison.
type ColdCacheReport struct {
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Days          int64   `json:"days"`
	QueryT        int64   `json:"query_t_seconds"`
	QueryV        float64 `json:"query_v"`
	RegionSeconds int64   `json:"region_seconds"`
	ReadAhead     int     `json:"readahead"`
	// Baseline is the PR 6 configuration: demand paging only, no pruning.
	Baseline ColdScenario `json:"baseline"`
	// Tuned adds scan readahead and zone-map pruning.
	Tuned ColdScenario `json:"tuned"`
	// Speedup is tuned over baseline cold-scan throughput.
	Speedup   float64 `json:"throughput_speedup"`
	Identical bool    `json:"results_identical"`
}

// coldRegionSQL is the region-restricted drop search: one point-query
// branch per stored corner across the three corner-count tables, each
// bounded to the [t0, t1) drop-start window. Plain SELECTs throughout, so
// the engine fuses the branches that share a table into one scan.
func coldRegionSQL() string {
	var parts []string
	for nc := 1; nc <= 3; nc++ {
		for i := 1; i <= nc; i++ {
			parts = append(parts, fmt.Sprintf(
				"SELECT td, tc, tb, ta FROM dropf%d WHERE td >= ? AND td < ? AND dt%d <= ? AND dv%d <= ?",
				nc, i, i))
		}
	}
	return strings.Join(parts, " UNION ")
}

// coldRegionArgs binds one branch's (t0, t1, T, V) per placeholder group.
func coldRegionArgs(t0, t1, T int64, V float64) []sqlmini.Value {
	var out []sqlmini.Value
	for nc := 1; nc <= 3; nc++ {
		for i := 1; i <= nc; i++ {
			out = append(out, sqlmini.Int(t0), sqlmini.Int(t1), sqlmini.Int(T), sqlmini.Real(V))
		}
	}
	return out
}

// coldStore ingests the series into an on-disk store under dir.
func coldStore(cfg Config, dir string, series *timeseries.Series, dbo sqlmini.Options) (*core.Store, error) {
	dbo.PoolPages = cfg.PoolPages
	st, err := core.Open(dir, core.Options{
		Epsilon: cfg.DefaultEps,
		Window:  cfg.DefaultWH * 3600,
		DB:      dbo,
	})
	if err != nil {
		return nil, err
	}
	if err := st.AppendSeries(series); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	if err := st.Finish(); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	return st, nil
}

// runColdScenario times trials forced-scan region queries, dropping the
// buffer pool before each so every trial pays the full I/O cost.
func runColdScenario(st *core.Store, name, sql string, args []sqlmini.Value, trials int) (ColdScenario, *sqlmini.Rows, error) {
	var rows *sqlmini.Rows
	var err error
	db := st.DB()
	base := db.CacheStats()
	baseSkip := db.ZoneSkippedPages()
	var wall time.Duration
	for i := 0; i < trials; i++ {
		if err = st.DropCache(); err != nil {
			return ColdScenario{}, nil, err
		}
		start := time.Now()
		rows, err = db.QueryMode(sqlmini.PlanForceScan, sql, args...)
		wall += time.Since(start)
		if err != nil {
			return ColdScenario{}, nil, err
		}
	}
	cs := db.CacheStats()
	return ColdScenario{
		Name:           name,
		Trials:         trials,
		WallMS:         float64(wall.Microseconds()) / 1e3,
		Throughput:     float64(trials) / wall.Seconds(),
		PagesRead:      cs.Reads - base.Reads,
		PrefetchReads:  cs.PrefetchReads - base.PrefetchReads,
		PrefetchHits:   cs.PrefetchHits - base.PrefetchHits,
		PrefetchWasted: cs.PrefetchWasted - base.PrefetchWasted,
		ZoneSkipped:    db.ZoneSkippedPages() - baseSkip,
		Rows:           rows.Len(),
	}, rows, nil
}

// RunColdCachePerf builds the two stores in their own subdirectories of
// dir, verifies observational identity, and measures both cold.
func RunColdCachePerf(cfg Config, dir string, trials int, readAhead int) (_ *ColdCacheReport, err error) {
	if trials <= 0 {
		trials = 20
	}
	if readAhead <= 0 {
		readAhead = 16
	}
	days := cfg.Days * coldDaysFactor
	series, err := Workload(cfg, 1, days)
	if err != nil {
		return nil, err
	}
	baseStore, err := coldStore(cfg, filepath.Join(dir, "cold-baseline"), series[0], sqlmini.Options{
		DisableZoneMaps: true,
	})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, baseStore)
	tunedStore, err := coldStore(cfg, filepath.Join(dir, "cold-tuned"), series[0], sqlmini.Options{
		ReadAhead: readAhead,
	})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, tunedStore)

	rep := &ColdCacheReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Days:          days,
		QueryT:        cfg.QueryT,
		QueryV:        cfg.QueryV,
		RegionSeconds: coldRegionSeconds,
		ReadAhead:     readAhead,
	}
	t1 := series[0].End() + 1
	t0 := t1 - coldRegionSeconds
	sql := coldRegionSQL()
	args := coldRegionArgs(t0, t1, cfg.QueryT, cfg.QueryV)

	// The full-history search must still agree across the two stores
	// (zone maps may only change which pages are fetched, never which
	// rows are returned), and on the pruned store the forced-scan region
	// query must agree with its own index execution.
	baseFull, err := baseStore.SearchMode(feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan)
	if err != nil {
		return nil, err
	}
	tunedFull, err := tunedStore.SearchMode(feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan)
	if err != nil {
		return nil, err
	}
	tunedIdx, err := tunedStore.DB().QueryMode(sqlmini.PlanForceIndex, sql, args...)
	if err != nil {
		return nil, err
	}
	rep.Identical = reflect.DeepEqual(baseFull, tunedFull)
	if !rep.Identical {
		return nil, fmt.Errorf("bench: full-history scans diverge: baseline %d, pruned %d matches",
			len(baseFull), len(tunedFull))
	}

	var baseRows, tunedRows *sqlmini.Rows
	rep.Baseline, baseRows, err = runColdScenario(baseStore, "demand-paging", sql, args, trials)
	if err != nil {
		return nil, err
	}
	rep.Tuned, tunedRows, err = runColdScenario(tunedStore, "readahead+zonemap", sql, args, trials)
	if err != nil {
		return nil, err
	}
	rep.Identical = rep.Identical &&
		reflect.DeepEqual(baseRows, tunedRows) &&
		reflect.DeepEqual(tunedRows.Data, tunedIdx.Data)
	if !rep.Identical {
		return nil, fmt.Errorf("bench: region queries diverge: baseline %d, pruned %d, index %d rows",
			baseRows.Len(), tunedRows.Len(), tunedIdx.Len())
	}
	rep.Speedup = rep.Tuned.Throughput / rep.Baseline.Throughput
	if rep.Tuned.ZoneSkipped == 0 {
		return nil, fmt.Errorf("bench: cold-cache tuned run skipped no pages; zone maps are not engaged")
	}
	return rep, nil
}
