// Package bench is the experiment harness reproducing Section 6 of the
// paper: it generates the CAD workload, builds SegDiff and Exh stores,
// runs the measured queries cold- and warm-cache, and renders every table
// and figure of the evaluation as a text/markdown table. The cmd/benchrunner
// binary drives full-size runs; bench_test.go runs scaled-down versions
// under testing.B.
package bench

import (
	"fmt"
	"io"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/exh"
	"segdiff/internal/extract"
	"segdiff/internal/feature"
	"segdiff/internal/smooth"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/synth"
	"segdiff/internal/timeseries"
)

// Config scales the experiments. The paper's full dataset is 25 sensors ×
// 12 months at 5-minute sampling; the defaults here are sized for minutes,
// not hours, of wall time while preserving every trend.
type Config struct {
	Seed        int64
	Days        int64     // length of the "subset" workload (Sections 6.1/6.2/6.4)
	Sensors     int       // sensors in the subset
	FullDays    int64     // length of the "all data" workload (Section 6.3)
	FullSensors int       // sensors in the full workload
	Epsilons    []float64 // ε sweep (Table 3, ...)
	WindowsH    []int64   // w sweep in hours (Figure 12, ...)
	DefaultEps  float64
	DefaultWH   int64 // default w in hours
	QueryT      int64 // default T in seconds (1 hour)
	QueryV      float64
	Repeats     int // timing repetitions, averaged
	PoolPages   int // buffer pool pages per file
	RandomQs    int // number of random queries (Figure 16 onwards)
}

// DefaultConfig returns the scaled-down default configuration with the
// paper's parameter values (ε=0.2, w=8h, T=1h, V=−3).
func DefaultConfig() Config {
	return Config{
		Seed:        20080325, // EDBT'08 opening day
		Days:        10,
		Sensors:     1,
		FullDays:    10,
		FullSensors: 5,
		Epsilons:    []float64{0.1, 0.2, 0.4, 0.8, 1.0},
		WindowsH:    []int64{1, 4, 8, 12, 16},
		DefaultEps:  0.2,
		DefaultWH:   8,
		QueryT:      3600,
		QueryV:      -3,
		Repeats:     3,
		PoolPages:   256,
		RandomQs:    25,
	}
}

// Workload generates the smoothed multi-sensor CAD series (the paper's
// preprocessing applies robust smoothing before feature extraction). The
// requested sensors are taken from the centre of a slightly wider
// transect: canyon-floor sensors feel the full magnitude of the CAD
// events, so the default query (3 °C within 1 h) has real answers.
func Workload(cfg Config, sensors int, days int64) ([]*timeseries.Series, error) {
	raw, _, err := synth.GenerateTransect(synth.Config{
		Seed:     cfg.Seed,
		Duration: days * synth.SecondsPerDay,
	}, sensors+2)
	if err != nil {
		return nil, err
	}
	raw = raw[1 : 1+sensors]
	out := make([]*timeseries.Series, len(raw))
	for i, s := range raw {
		sm, err := smooth.Robust(s, smooth.Config{})
		if err != nil {
			return nil, err
		}
		out[i] = sm
	}
	return out, nil
}

// SegDiffSet is one SegDiff store per sensor plus aggregate metrics.
type SegDiffSet struct {
	Stores []*core.Store
}

// BuildSegDiff ingests the series into per-sensor in-memory SegDiff stores.
func BuildSegDiff(cfg Config, series []*timeseries.Series, eps float64, wSeconds int64) (*SegDiffSet, error) {
	set := &SegDiffSet{}
	for _, s := range series {
		st, err := core.OpenMemory(core.Options{
			Epsilon: eps,
			Window:  wSeconds,
			DB:      sqlmini.Options{PoolPages: cfg.PoolPages},
		})
		if err != nil {
			return nil, err
		}
		if err := st.AppendSeries(s); err != nil {
			return nil, err
		}
		set.Stores = append(set.Stores, st)
	}
	return set, nil
}

// Finish flushes each store's trailing partial segment; afterwards the
// set is read-only.
func (set *SegDiffSet) Finish() error {
	for _, st := range set.Stores {
		if err := st.Finish(); err != nil {
			return err
		}
	}
	return nil
}

// Append extends every store with more data (Section 6.3's incremental
// groups). series must have one entry per store.
func (set *SegDiffSet) Append(series []*timeseries.Series) error {
	if len(series) != len(set.Stores) {
		return fmt.Errorf("bench: %d series for %d stores", len(series), len(set.Stores))
	}
	for i, s := range series {
		if err := set.Stores[i].AppendSeries(s); err != nil {
			return err
		}
	}
	return nil
}

// Close releases all stores.
func (set *SegDiffSet) Close() error {
	for _, st := range set.Stores {
		if err := st.Close(); err != nil {
			return err
		}
	}
	return nil
}

// FeatureBytes sums feature-table bytes across sensors.
func (set *SegDiffSet) FeatureBytes() (int64, error) {
	var total int64
	for _, st := range set.Stores {
		s, err := st.Stats()
		if err != nil {
			return 0, err
		}
		total += s.FeatureBytes
	}
	return total, nil
}

// DiskBytes sums features + indexes across sensors.
func (set *SegDiffSet) DiskBytes() (int64, error) {
	var total int64
	for _, st := range set.Stores {
		s, err := st.Stats()
		if err != nil {
			return 0, err
		}
		total += s.DiskBytes()
	}
	return total, nil
}

// CompressionRate averages r across sensors.
func (set *SegDiffSet) CompressionRate() (float64, error) {
	var sum float64
	for _, st := range set.Stores {
		s, err := st.Stats()
		if err != nil {
			return 0, err
		}
		sum += s.CompressionRate
	}
	return sum / float64(len(set.Stores)), nil
}

// CornerHistogram sums the Table 4 corner-count distribution.
func (set *SegDiffSet) CornerHistogram() (extract.Stats, error) {
	var agg extract.Stats
	for _, st := range set.Stores {
		s, err := st.Stats()
		if err != nil {
			return agg, err
		}
		e := s.Extraction
		agg.Segments += e.Segments
		agg.Pairs += e.Pairs
		agg.Boundaries += e.Boundaries
		agg.CornersStored += e.CornersStored
		agg.DropBoundaries += e.DropBoundaries
		agg.JumpBoundaries += e.JumpBoundaries
		for i := range agg.CornerCount {
			agg.CornerCount[i] += e.CornerCount[i]
		}
	}
	return agg, nil
}

// DropCache flushes every store's buffer pools.
func (set *SegDiffSet) DropCache() error {
	for _, st := range set.Stores {
		if err := st.DropCache(); err != nil {
			return err
		}
	}
	return nil
}

// Search runs the drop search across all sensors under mode and returns
// the total number of matches.
func (set *SegDiffSet) Search(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) (int, error) {
	total := 0
	for _, st := range set.Stores {
		ms, err := st.SearchMode(kind, T, V, mode)
		if err != nil {
			return 0, err
		}
		total += len(ms)
	}
	return total, nil
}

// ExhSet is the exhaustive baseline across sensors.
type ExhSet struct {
	Stores []*exh.Store
}

// BuildExh ingests the series into per-sensor in-memory Exh stores.
func BuildExh(cfg Config, series []*timeseries.Series, wSeconds int64) (*ExhSet, error) {
	set := &ExhSet{}
	for _, s := range series {
		st, err := exh.OpenMemory(exh.Options{
			Window: wSeconds,
			DB:     sqlmini.Options{PoolPages: cfg.PoolPages},
		})
		if err != nil {
			return nil, err
		}
		if err := st.AppendSeries(s); err != nil {
			return nil, err
		}
		set.Stores = append(set.Stores, st)
	}
	return set, nil
}

// Append extends every store with more data.
func (set *ExhSet) Append(series []*timeseries.Series) error {
	if len(series) != len(set.Stores) {
		return fmt.Errorf("bench: %d series for %d stores", len(series), len(set.Stores))
	}
	for i, s := range series {
		if err := set.Stores[i].AppendSeries(s); err != nil {
			return err
		}
	}
	return nil
}

// Close releases all stores.
func (set *ExhSet) Close() error {
	for _, st := range set.Stores {
		if err := st.Close(); err != nil {
			return err
		}
	}
	return nil
}

// FeatureBytes sums the exh table bytes.
func (set *ExhSet) FeatureBytes() (int64, error) {
	var total int64
	for _, st := range set.Stores {
		s, err := st.Stats()
		if err != nil {
			return 0, err
		}
		total += s.FeatureBytes
	}
	return total, nil
}

// DiskBytes sums features + indexes.
func (set *ExhSet) DiskBytes() (int64, error) {
	var total int64
	for _, st := range set.Stores {
		s, err := st.Stats()
		if err != nil {
			return 0, err
		}
		total += s.DiskBytes()
	}
	return total, nil
}

// DropCache flushes every store's buffer pools.
func (set *ExhSet) DropCache() error {
	for _, st := range set.Stores {
		if err := st.DropCache(); err != nil {
			return err
		}
	}
	return nil
}

// Search runs the drop search across all sensors under mode.
func (set *ExhSet) Search(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) (int, error) {
	total := 0
	for _, st := range set.Stores {
		es, err := st.SearchMode(kind, T, V, mode)
		if err != nil {
			return 0, err
		}
		total += len(es)
	}
	return total, nil
}

// searcher abstracts the two systems for the timing helpers.
type searcher interface {
	Search(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) (int, error)
	DropCache() error
}

// timeQuery measures one query averaged over cfg.Repeats runs. cold drops
// all caches before every repetition (the paper's Sections 6.1–6.3 flush
// the OS cache before each query; 6.4 keeps it warm).
func timeQuery(cfg Config, s searcher, kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode, cold bool) (time.Duration, int, error) {
	reps := cfg.Repeats
	if reps <= 0 {
		reps = 1
	}
	var total time.Duration
	count := 0
	if !cold {
		// Warm the cache once before measuring.
		if _, err := s.Search(kind, T, V, mode); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < reps; i++ {
		if cold {
			if err := s.DropCache(); err != nil {
				return 0, 0, err
			}
		}
		start := time.Now()
		n, err := s.Search(kind, T, V, mode)
		if err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		count = n
	}
	return total / time.Duration(reps), count, nil
}

// RandomQuery is one random (T, V) drop query (Figure 16's query set).
type RandomQuery struct {
	T int64
	V float64
}

// RandomQueries generates the deterministic random query set covering the
// feature-space region the paper samples: T from 10 minutes to w, V from
// just below zero down to the data's observed drop range.
func RandomQueries(cfg Config) []RandomQuery {
	n := cfg.RandomQs
	if n <= 0 {
		n = 25
	}
	w := cfg.DefaultWH * 3600
	out := make([]RandomQuery, 0, n)
	// A low-discrepancy lattice rather than rand keeps the set reproducible
	// and spread, like the paper's Figure 16 scatter.
	for i := 0; i < n; i++ {
		fx := float64(i%5)/4.0 + float64(i)/(float64(n)*7)
		if fx > 1 {
			fx = 1
		}
		fy := float64((i*3)%n) / float64(n-1)
		T := 600 + int64(fx*float64(w-600))
		V := -0.5 - fy*12.0
		out = append(out, RandomQuery{T: T, V: V})
	}
	return out
}

// joinClose closes c when the surrounding function returns and folds a
// close failure into the function's named error result unless one is
// already set. A store Close commits pending state, so its error is a real
// measurement-validity signal, not cleanup noise:
//
//	func run(...) (_ *Table, err error) {
//		...
//		defer joinClose(&err, set)
func joinClose(err *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}
