package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps unit tests fast: 2 days, 1 sensor, fewer ε values.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 2
	cfg.FullDays = 2
	cfg.FullSensors = 2
	cfg.Epsilons = []float64{0.2, 1.0}
	cfg.WindowsH = []int64{1, 4}
	cfg.Repeats = 1
	cfg.RandomQs = 4
	return cfg
}

func TestWorkload(t *testing.T) {
	cfg := tinyConfig()
	series, err := Workload(cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("sensors = %d", len(series))
	}
	want := 2 * 86400 / 300
	if series[0].Len() != want {
		t.Fatalf("points = %d, want %d", series[0].Len(), want)
	}
	// Deterministic.
	again, err := Workload(cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if series[0].At(17) != again[0].At(17) {
		t.Fatal("workload not deterministic")
	}
}

func TestEpsilonSweepShape(t *testing.T) {
	cfg := tinyConfig()
	sweep, err := RunEpsilonSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 2 {
		t.Fatalf("rows = %d", len(sweep.Rows))
	}
	// Compression rate grows with ε; feature size shrinks.
	if sweep.Rows[1].R <= sweep.Rows[0].R {
		t.Fatalf("r not increasing: %v then %v", sweep.Rows[0].R, sweep.Rows[1].R)
	}
	if sweep.Rows[1].SegFeatBytes > sweep.Rows[0].SegFeatBytes {
		t.Fatalf("feature size grew with ε: %d -> %d",
			sweep.Rows[0].SegFeatBytes, sweep.Rows[1].SegFeatBytes)
	}
	// Exh must be bigger than SegDiff at every ε (the headline result).
	for _, r := range sweep.Rows {
		if sweep.ExhFeatBytes <= r.SegFeatBytes {
			t.Fatalf("Exh features (%d) not larger than SegDiff (%d) at ε=%v",
				sweep.ExhFeatBytes, r.SegFeatBytes, r.Eps)
		}
	}
	// Corner distribution sums to ~100%.
	for _, r := range sweep.Rows {
		sum := r.Corner1Pct + r.Corner2Pct + r.Corner3Pct
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("corner distribution sums to %v", sum)
		}
		if r.AvgCorners < 1 || r.AvgCorners > 3 {
			t.Fatalf("avg corners = %v", r.AvgCorners)
		}
	}
	// Tables render.
	for _, tab := range []*Table{sweep.Table3(), sweep.Figures7to9(), sweep.Table4(), sweep.Figures10and11(), sweep.Tables5and6()} {
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "|") {
			t.Fatalf("table %s rendered empty", tab.ID)
		}
	}
}

func TestWindowSweepShape(t *testing.T) {
	cfg := tinyConfig()
	rows, err := RunWindowSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both feature sizes grow with w; Exh grows faster (ratio increases).
	if rows[1].ExhFeatBytes <= rows[0].ExhFeatBytes {
		t.Fatal("Exh features did not grow with w")
	}
	r0 := float64(rows[0].ExhFeatBytes) / float64(rows[0].SegFeatBytes)
	r1 := float64(rows[1].ExhFeatBytes) / float64(rows[1].SegFeatBytes)
	if r1 <= r0 {
		t.Fatalf("feature ratio did not grow with w: %.2f then %.2f", r0, r1)
	}
	var buf bytes.Buffer
	if err := WindowTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthShape(t *testing.T) {
	cfg := tinyConfig()
	rows, err := RunGrowth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Points <= rows[i-1].Points {
			t.Fatal("points not increasing")
		}
		if rows[i].SegFeatBytes < rows[i-1].SegFeatBytes {
			t.Fatal("SegDiff features shrank")
		}
	}
	if rows[1].ExhEstimated || !rows[2].ExhEstimated {
		t.Fatal("Exh extrapolation should start at group 3")
	}
	var buf bytes.Buffer
	if err := GrowthTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRegions(t *testing.T) {
	cfg := tinyConfig()
	rows, err := RunQueryRegions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cfg.RandomQs {
		t.Fatalf("rows = %d", len(rows))
	}
	tables := QueryRegionTables(rows)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tab := range tables {
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomQueriesDeterministicAndInRange(t *testing.T) {
	cfg := tinyConfig()
	a := RandomQueries(cfg)
	b := RandomQueries(cfg)
	w := cfg.DefaultWH * 3600
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("query set not deterministic")
		}
		if a[i].T <= 0 || a[i].T > w {
			t.Fatalf("query T=%d outside (0, w]", a[i].T)
		}
		if a[i].V >= 0 {
			t.Fatalf("query V=%v not negative", a[i].V)
		}
	}
}

func TestNaiveComparison(t *testing.T) {
	tab, err := NaiveComparison(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationCorners(t *testing.T) {
	tab, err := RunAblationCorners(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationPoolAndIngest(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	tab, err := RunAblationPool(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("pool rows = %d", len(tab.Rows))
	}
	tab2, err := RunAblationIngest(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows) != 3 {
		t.Fatalf("ingest rows = %d", len(tab2.Rows))
	}
}

func TestIngestPerfIdentity(t *testing.T) {
	rep, err := RunIngestPerf(tinyConfig(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SearchIdentical || !rep.TablesIdentical {
		t.Fatalf("write paths diverge: search=%v tables=%v", rep.SearchIdentical, rep.TablesIdentical)
	}
	if rep.RowAtATime.Points == 0 || rep.RowAtATime.Points != rep.Batched.Points {
		t.Fatalf("points: row=%d batched=%d", rep.RowAtATime.Points, rep.Batched.Points)
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup = %v", rep.Speedup)
	}
}
