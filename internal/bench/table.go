package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string // experiment id, e.g. "E01"
	Title  string // e.g. "Table 3: compression rate r under different error tolerances"
	Paper  string // the paper's headline numbers, for side-by-side reading
	Header []string
	Rows   [][]string
}

// Render writes the table as GitHub-flavoured markdown.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Paper != "" {
		if _, err := fmt.Fprintf(w, "Paper: %s\n\n", t.Paper); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func mib(b int64) string  { return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20)) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000)
}
func ratio(a, b int64) string {
	if b == 0 {
		return "∞"
	}
	return f2(float64(a) / float64(b))
}
func ratioDur(a, b time.Duration) string {
	if b == 0 {
		return "∞"
	}
	return f2(float64(a) / float64(b))
}
