package bench

import (
	"fmt"
	"time"

	"segdiff/internal/feature"
	"segdiff/internal/naive"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// EpsilonRow holds every metric the ε-sweep experiments need (Sections
// 6.1: Tables 3–6, Figures 7–11).
type EpsilonRow struct {
	Eps           float64
	R             float64 // compression rate
	SegFeatBytes  int64
	SegDiskBytes  int64
	SegSeqTime    time.Duration
	SegIdxTime    time.Duration
	Corner1Pct    float64
	Corner2Pct    float64
	Corner3Pct    float64
	AvgCorners    float64
	SegSeqMatches int
}

// EpsilonSweep is the shared result of the ε experiments: one row per ε
// plus the ε-independent Exh measurements.
type EpsilonSweep struct {
	Rows         []EpsilonRow
	ExhFeatBytes int64
	ExhDiskBytes int64
	ExhSeqTime   time.Duration
	ExhIdxTime   time.Duration
	ExhMatches   int
}

// RunEpsilonSweep builds SegDiff at every ε (and Exh once) over the
// subset workload and measures size and the default query (T=1h, V=−3)
// cold-cache under both plans.
func RunEpsilonSweep(cfg Config) (_ *EpsilonSweep, err error) {
	series, err := Workload(cfg, cfg.Sensors, cfg.Days)
	if err != nil {
		return nil, err
	}
	w := cfg.DefaultWH * 3600
	out := &EpsilonSweep{}

	ex, err := BuildExh(cfg, series, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, ex)
	if out.ExhFeatBytes, err = ex.FeatureBytes(); err != nil {
		return nil, err
	}
	if out.ExhDiskBytes, err = ex.DiskBytes(); err != nil {
		return nil, err
	}
	if out.ExhSeqTime, out.ExhMatches, err = timeQuery(cfg, ex, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true); err != nil {
		return nil, err
	}
	if out.ExhIdxTime, _, err = timeQuery(cfg, ex, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceIndex, true); err != nil {
		return nil, err
	}

	for _, eps := range cfg.Epsilons {
		set, err := BuildSegDiff(cfg, series, eps, w)
		if err != nil {
			return nil, err
		}
		if err := set.Finish(); err != nil {
			return nil, err
		}
		row := EpsilonRow{Eps: eps}
		if row.R, err = set.CompressionRate(); err != nil {
			return nil, err
		}
		if row.SegFeatBytes, err = set.FeatureBytes(); err != nil {
			return nil, err
		}
		if row.SegDiskBytes, err = set.DiskBytes(); err != nil {
			return nil, err
		}
		hist, err := set.CornerHistogram()
		if err != nil {
			return nil, err
		}
		if hist.Boundaries > 0 {
			row.Corner1Pct = 100 * float64(hist.CornerCount[1]) / float64(hist.Boundaries)
			row.Corner2Pct = 100 * float64(hist.CornerCount[2]) / float64(hist.Boundaries)
			row.Corner3Pct = 100 * float64(hist.CornerCount[3]) / float64(hist.Boundaries)
			row.AvgCorners = hist.AverageCorners()
		}
		if row.SegSeqTime, row.SegSeqMatches, err = timeQuery(cfg, set, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true); err != nil {
			return nil, err
		}
		if row.SegIdxTime, _, err = timeQuery(cfg, set, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceIndex, true); err != nil {
			return nil, err
		}
		if err := set.Close(); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table3 renders E01: compression rate r under different ε.
func (s *EpsilonSweep) Table3() *Table {
	t := &Table{
		ID:     "E01",
		Title:  "Table 3: compression rate r under different segmentation error tolerances",
		Paper:  "r = 4.73, 7.03, 10.52, 16.10, 18.55 for ε = 0.1…1.0",
		Header: []string{"ε", "r"},
	}
	for _, r := range s.Rows {
		t.Rows = append(t.Rows, []string{f2(r.Eps), f2(r.R)})
	}
	return t
}

// Figures7to9 renders E02–E04: feature sizes, their ratio, and disk sizes
// against the compression rate.
func (s *EpsilonSweep) Figures7to9() *Table {
	t := &Table{
		ID:    "E02-E04",
		Title: "Figures 7, 8, 9: feature size, Exh/SegDiff size ratio, and disk size vs r",
		Paper: "feature size falls as r⁻¹; Exh ≈ 12× SegDiff features at ε=0.2; SegDiff index ≈ 1.1× its features",
		Header: []string{
			"ε", "r", "SegDiff features", "SegDiff disk", "Exh features", "Exh disk",
			"feature ratio (Fig 7)", "disk ratio",
		},
	}
	for _, r := range s.Rows {
		t.Rows = append(t.Rows, []string{
			f2(r.Eps), f2(r.R), mib(r.SegFeatBytes), mib(r.SegDiskBytes),
			mib(s.ExhFeatBytes), mib(s.ExhDiskBytes),
			ratio(s.ExhFeatBytes, r.SegFeatBytes), ratio(s.ExhDiskBytes, r.SegDiskBytes),
		})
	}
	return t
}

// Table4 renders E05: the corner-case distribution.
func (s *EpsilonSweep) Table4() *Table {
	t := &Table{
		ID:     "E05",
		Title:  "Table 4: percentage of 1/2/3-corner cases under different ε",
		Paper:  "ε=0.2: 19.83% / 46.79% / 33.37%, average ≈ 2.13 corners",
		Header: []string{"ε", "one corner %", "two corners %", "three corners %", "avg corners"},
	}
	for _, r := range s.Rows {
		t.Rows = append(t.Rows, []string{
			f2(r.Eps), f2(r.Corner1Pct), f2(r.Corner2Pct), f2(r.Corner3Pct), f2(r.AvgCorners),
		})
	}
	return t
}

// Figures10and11 renders E06–E07: query execution time vs r.
func (s *EpsilonSweep) Figures10and11() *Table {
	t := &Table{
		ID:    "E06-E07",
		Title: "Figures 10, 11: query time vs r (T=1h, V=−3, cold cache)",
		Paper: "seq time falls like feature size; indexes do NOT help this query for either system (the region is hard)",
		Header: []string{
			"ε", "r", "SegDiff seq", "SegDiff index", "Exh seq", "Exh index", "matches (SegDiff/Exh)",
		},
	}
	for _, r := range s.Rows {
		t.Rows = append(t.Rows, []string{
			f2(r.Eps), f2(r.R), ms(r.SegSeqTime), ms(r.SegIdxTime),
			ms(s.ExhSeqTime), ms(s.ExhIdxTime),
			fmt.Sprintf("%d / %d", r.SegSeqMatches, s.ExhMatches),
		})
	}
	return t
}

// Tables5and6 renders E08–E09: the ratio tables.
func (s *EpsilonSweep) Tables5and6() *Table {
	t := &Table{
		ID:    "E08-E09",
		Title: "Tables 5, 6: space and time ratios (Exh / SegDiff) vs ε",
		Paper: "ε=0.2: r_f=11.95, r_st=6.69, r_d=8.66, r_it=21.35; all grow with ε",
		Header: []string{
			"ε", "r_f (features)", "r_st (seq time)", "r_d (disk)", "r_it (index time)",
		},
	}
	for _, r := range s.Rows {
		t.Rows = append(t.Rows, []string{
			f2(r.Eps),
			ratio(s.ExhFeatBytes, r.SegFeatBytes),
			ratioDur(s.ExhSeqTime, r.SegSeqTime),
			ratio(s.ExhDiskBytes, r.SegDiskBytes),
			ratioDur(s.ExhIdxTime, r.SegIdxTime),
		})
	}
	return t
}

// WindowRow is one w of the window sweep (Section 6.2).
type WindowRow struct {
	WHours       int64
	SegFeatBytes int64
	SegDiskBytes int64
	ExhFeatBytes int64
	ExhDiskBytes int64
	SegSeqTime   time.Duration
	ExhSeqTime   time.Duration
}

// RunWindowSweep fixes ε=DefaultEps and varies w (E10–E12).
func RunWindowSweep(cfg Config) ([]WindowRow, error) {
	series, err := Workload(cfg, cfg.Sensors, cfg.Days)
	if err != nil {
		return nil, err
	}
	var out []WindowRow
	for _, wh := range cfg.WindowsH {
		w := wh * 3600
		row := WindowRow{WHours: wh}
		set, err := BuildSegDiff(cfg, series, cfg.DefaultEps, w)
		if err != nil {
			return nil, err
		}
		if err := set.Finish(); err != nil {
			return nil, err
		}
		ex, err := BuildExh(cfg, series, w)
		if err != nil {
			return nil, err
		}
		if row.SegFeatBytes, err = set.FeatureBytes(); err != nil {
			return nil, err
		}
		if row.SegDiskBytes, err = set.DiskBytes(); err != nil {
			return nil, err
		}
		if row.ExhFeatBytes, err = ex.FeatureBytes(); err != nil {
			return nil, err
		}
		if row.ExhDiskBytes, err = ex.DiskBytes(); err != nil {
			return nil, err
		}
		// T must stay within w: the default query has T=1h ≤ min(w)=1h.
		if row.SegSeqTime, _, err = timeQuery(cfg, set, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true); err != nil {
			return nil, err
		}
		if row.ExhSeqTime, _, err = timeQuery(cfg, ex, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true); err != nil {
			return nil, err
		}
		if err := set.Close(); err != nil {
			return nil, err
		}
		if err := ex.Close(); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// WindowTable renders E10–E12 (Figures 12, 13 and Table 7).
func WindowTable(rows []WindowRow) *Table {
	t := &Table{
		ID:    "E10-E12",
		Title: "Figures 12, 13 + Table 7: sizes and seq-scan time vs window w (ε=0.2)",
		Paper: "sizes grow ~linearly in w but the ratio r_f grows too (5.89→13.94 for w=1→16h); r_d 4.51→10.18",
		Header: []string{
			"w (h)", "SegDiff features", "Exh features", "r_f",
			"SegDiff disk", "Exh disk", "r_d", "SegDiff seq", "Exh seq",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.WHours),
			mib(r.SegFeatBytes), mib(r.ExhFeatBytes), ratio(r.ExhFeatBytes, r.SegFeatBytes),
			mib(r.SegDiskBytes), mib(r.ExhDiskBytes), ratio(r.ExhDiskBytes, r.SegDiskBytes),
			ms(r.SegSeqTime), ms(r.ExhSeqTime),
		})
	}
	return t
}

// GrowthRow is one incremental group of the scalability experiment
// (Section 6.3, Figures 14 and 15).
type GrowthRow struct {
	Group        int
	Points       int
	SegFeatBytes int64
	ExhFeatBytes int64 // measured for the first two groups, extrapolated after
	ExhEstimated bool
	SegSeqTime   time.Duration
}

// RunGrowth ingests the full workload in 5 incremental groups, measuring
// SegDiff after each and Exh only for the first two groups (the paper
// aborts Exh there too), extrapolating the rest linearly.
func RunGrowth(cfg Config) (_ []GrowthRow, err error) {
	series, err := Workload(cfg, cfg.FullSensors, cfg.FullDays)
	if err != nil {
		return nil, err
	}
	const groups = 5
	w := cfg.DefaultWH * 3600

	// Split every sensor's series into `groups` consecutive chunks.
	chunk := func(s *timeseries.Series, g int) *timeseries.Series {
		n := s.Len()
		lo, hi := g*n/groups, (g+1)*n/groups
		return timeseries.MustNew(append([]timeseries.Point(nil), s.Points()[lo:hi]...))
	}

	first := make([]*timeseries.Series, len(series))
	for i, s := range series {
		first[i] = chunk(s, 0)
	}
	set, err := BuildSegDiff(cfg, first, cfg.DefaultEps, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, set)
	ex, err := BuildExh(cfg, first, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, ex)

	var out []GrowthRow
	points := 0
	for _, s := range series {
		points += chunk(s, 0).Len()
	}
	var exhPerPoint float64
	for g := 0; g < groups; g++ {
		if g > 0 {
			next := make([]*timeseries.Series, len(series))
			for i, s := range series {
				next[i] = chunk(s, g)
			}
			if err := set.Append(next); err != nil {
				return nil, err
			}
			for _, s := range next {
				points += s.Len()
			}
			if g == 1 {
				if err := ex.Append(next); err != nil {
					return nil, err
				}
			}
		}
		row := GrowthRow{Group: g + 1, Points: points}
		if row.SegFeatBytes, err = set.FeatureBytes(); err != nil {
			return nil, err
		}
		if g <= 1 {
			if row.ExhFeatBytes, err = ex.FeatureBytes(); err != nil {
				return nil, err
			}
			exhPerPoint = float64(row.ExhFeatBytes) / float64(points)
		} else {
			row.ExhFeatBytes = int64(exhPerPoint * float64(points))
			row.ExhEstimated = true
		}
		if row.SegSeqTime, _, err = timeQuery(cfg, set, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// GrowthTable renders E13–E14 (Figures 14, 15).
func GrowthTable(rows []GrowthRow) *Table {
	t := &Table{
		ID:    "E13-E14",
		Title: "Figures 14, 15: feature size and seq-scan time vs number of observations n (5 incremental groups)",
		Paper: "both grow ~linearly in n; Exh aborted after 2 groups (features extrapolated); SegDiff answers all sensors in seconds",
		Header: []string{
			"group", "n (points)", "SegDiff features", "Exh features", "ratio", "SegDiff seq time",
		},
	}
	for _, r := range rows {
		exh := mib(r.ExhFeatBytes)
		if r.ExhEstimated {
			exh += " (est.)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Group), fmt.Sprintf("%d", r.Points),
			mib(r.SegFeatBytes), exh, ratio(r.ExhFeatBytes, r.SegFeatBytes), ms(r.SegSeqTime),
		})
	}
	return t
}

// QueryRegionRow is one random query's measurements (Section 6.4 and the
// cold-cache ratio figures).
type QueryRegionRow struct {
	Q          RandomQuery
	SegSeqWarm time.Duration
	ExhSeqWarm time.Duration
	SegIdxWarm time.Duration
	ExhIdxWarm time.Duration
	SegSeqCold time.Duration
	ExhSeqCold time.Duration
	SegIdxCold time.Duration
	ExhIdxCold time.Duration
	Matches    int
	ExhMatches int
}

// RunQueryRegions measures the random query set warm (Figures 17–22) and
// cold (Figures 23, 24) under both plans.
func RunQueryRegions(cfg Config) (_ []QueryRegionRow, err error) {
	series, err := Workload(cfg, cfg.Sensors, cfg.Days)
	if err != nil {
		return nil, err
	}
	w := cfg.DefaultWH * 3600
	set, err := BuildSegDiff(cfg, series, cfg.DefaultEps, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, set)
	if err := set.Finish(); err != nil {
		return nil, err
	}
	ex, err := BuildExh(cfg, series, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, ex)

	var out []QueryRegionRow
	for _, q := range RandomQueries(cfg) {
		row := QueryRegionRow{Q: q}
		if row.SegSeqWarm, row.Matches, err = timeQuery(cfg, set, feature.Drop, q.T, q.V, sqlmini.PlanForceScan, false); err != nil {
			return nil, err
		}
		if row.ExhSeqWarm, row.ExhMatches, err = timeQuery(cfg, ex, feature.Drop, q.T, q.V, sqlmini.PlanForceScan, false); err != nil {
			return nil, err
		}
		if row.SegIdxWarm, _, err = timeQuery(cfg, set, feature.Drop, q.T, q.V, sqlmini.PlanForceIndex, false); err != nil {
			return nil, err
		}
		if row.ExhIdxWarm, _, err = timeQuery(cfg, ex, feature.Drop, q.T, q.V, sqlmini.PlanForceIndex, false); err != nil {
			return nil, err
		}
		if row.SegSeqCold, _, err = timeQuery(cfg, set, feature.Drop, q.T, q.V, sqlmini.PlanForceScan, true); err != nil {
			return nil, err
		}
		if row.ExhSeqCold, _, err = timeQuery(cfg, ex, feature.Drop, q.T, q.V, sqlmini.PlanForceScan, true); err != nil {
			return nil, err
		}
		if row.SegIdxCold, _, err = timeQuery(cfg, set, feature.Drop, q.T, q.V, sqlmini.PlanForceIndex, true); err != nil {
			return nil, err
		}
		if row.ExhIdxCold, _, err = timeQuery(cfg, ex, feature.Drop, q.T, q.V, sqlmini.PlanForceIndex, true); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// QueryRegionTables renders E15–E19 from the random-query measurements:
// the coverage table (Figure 16), the per-query warm-cache times
// (Figures 17–20), and the aggregate ratios (Figures 21–24).
func QueryRegionTables(rows []QueryRegionRow) []*Table {
	coverage := &Table{
		ID:     "E15",
		Title:  "Figure 16: coverage of the random query set + per-query result counts",
		Paper:  "queries sample the (T, V) plane; the top-right region (large T, small |V|) is hard for both systems",
		Header: []string{"T (min)", "V", "SegDiff matches", "Exh matches"},
	}
	perQuery := &Table{
		ID:     "E16-E17",
		Title:  "Figures 17–20: per-query execution time, warm cache",
		Paper:  "same hard-region pattern in both systems; SegDiff shifted to a much lower level",
		Header: []string{"T (min)", "V", "Seg seq", "Exh seq", "Seg idx", "Exh idx"},
	}
	var segSeqW, exhSeqW, segIdxW, exhIdxW time.Duration
	var segSeqC, exhSeqC, segIdxC, exhIdxC time.Duration
	for _, r := range rows {
		coverage.Rows = append(coverage.Rows, []string{
			fmt.Sprintf("%d", r.Q.T/60), f1(r.Q.V),
			fmt.Sprintf("%d", r.Matches), fmt.Sprintf("%d", r.ExhMatches),
		})
		perQuery.Rows = append(perQuery.Rows, []string{
			fmt.Sprintf("%d", r.Q.T/60), f1(r.Q.V),
			ms(r.SegSeqWarm), ms(r.ExhSeqWarm), ms(r.SegIdxWarm), ms(r.ExhIdxWarm),
		})
		segSeqW += r.SegSeqWarm
		exhSeqW += r.ExhSeqWarm
		segIdxW += r.SegIdxWarm
		exhIdxW += r.ExhIdxWarm
		segSeqC += r.SegSeqCold
		exhSeqC += r.ExhSeqCold
		segIdxC += r.SegIdxCold
		exhIdxC += r.ExhIdxCold
	}
	ratios := &Table{
		ID:    "E18-E19",
		Title: "Figures 21–24: Exh/SegDiff time ratios over the random query set",
		Paper: "warm: ≈9× (seq) and ≈10× (idx); cold: ≈9× (seq) and ≈20× (idx) — big indexes hurt Exh when cold",
		Header: []string{
			"cache", "seq ratio", "index ratio",
		},
		Rows: [][]string{
			{"warm", ratioDur(exhSeqW, segSeqW), ratioDur(exhIdxW, segIdxW)},
			{"cold", ratioDur(exhSeqC, segSeqC), ratioDur(exhIdxC, segIdxC)},
		},
	}
	return []*Table{coverage, perQuery, ratios}
}

// NaiveComparison (E00) reproduces the introduction's motivation: the
// naive on-the-fly scan vs the two stores on the default query.
func NaiveComparison(cfg Config) (_ *Table, err error) {
	series, err := Workload(cfg, cfg.Sensors, cfg.Days)
	if err != nil {
		return nil, err
	}
	w := cfg.DefaultWH * 3600
	set, err := BuildSegDiff(cfg, series, cfg.DefaultEps, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, set)
	if err := set.Finish(); err != nil {
		return nil, err
	}
	ex, err := BuildExh(cfg, series, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, ex)

	start := time.Now()
	naiveEvents := 0
	for _, s := range series {
		evs, err := naive.Drops(s, cfg.QueryT, cfg.QueryV)
		if err != nil {
			return nil, err
		}
		naiveEvents += len(evs)
	}
	naiveTime := time.Since(start)

	segTime, segN, err := timeQuery(cfg, set, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true)
	if err != nil {
		return nil, err
	}
	exhTime, exhN, err := timeQuery(cfg, ex, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:     "E00",
		Title:  "Introduction: naive on-the-fly scan vs Exh vs SegDiff (T=1h, V=−3, cold)",
		Paper:  "the naive approach 'would take several hours' at the paper's full scale — its per-query cost grows with n while SegDiff scans only compressed features; at laptop scale the absolute naive time is small but Figure 15 tracks the scaling",
		Header: []string{"approach", "time", "results"},
		Rows: [][]string{
			{"naive scan", ms(naiveTime), fmt.Sprintf("%d events", naiveEvents)},
			{"Exh", ms(exhTime), fmt.Sprintf("%d events", exhN)},
			{"SegDiff", ms(segTime), fmt.Sprintf("%d segment pairs", segN)},
		},
	}, nil
}
