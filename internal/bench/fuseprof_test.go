package bench

import (
	"testing"

	"segdiff/internal/storage/sqlmini"
)

// BenchmarkFusedDropSearch times the paper's 9-branch drop search through
// the fused shared-scan path on the default workload; pair with
// -cpuprofile to see where fused query time goes.
func BenchmarkFusedDropSearch(b *testing.B) {
	cfg := DefaultConfig()
	st, err := perfStoreDB(cfg, sqlmini.Options{PoolPages: cfg.PoolPages})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.SearchDrops(cfg.QueryT, cfg.QueryV); err != nil {
			b.Fatal(err)
		}
	}
}
