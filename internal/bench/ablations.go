package bench

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/feature"
	"segdiff/internal/segment"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// RunAblationCorners (A1) compares the Table-2 corner reduction against
// storing the full parallelogram perimeter: feature size, query time, and
// a cross-check that both answer the default query identically.
func RunAblationCorners(cfg Config) (_ *Table, err error) {
	series, err := Workload(cfg, cfg.Sensors, cfg.Days)
	if err != nil {
		return nil, err
	}
	w := cfg.DefaultWH * 3600

	// Reduced scheme: the real SegDiff store.
	set, err := BuildSegDiff(cfg, series, cfg.DefaultEps, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, set)
	if err := set.Finish(); err != nil {
		return nil, err
	}
	// Compare like for like: only the drop-side feature tables (the
	// un-reduced store below holds drop features only).
	var redBytes int64
	for _, st := range set.Stores {
		for nc := 1; nc <= 3; nc++ {
			b, err := st.DB().TableSizeBytes(fmt.Sprintf("dropf%d", nc))
			if err != nil {
				return nil, err
			}
			redBytes += b
		}
	}
	redTime, redMatches, err := timeQuery(cfg, set, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true)
	if err != nil {
		return nil, err
	}

	// Un-reduced scheme: every parallelogram's full perimeter, no gates.
	all, err := buildAllCorners(cfg, series, cfg.DefaultEps, w)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, all.db)
	allBytes, err := all.db.TableSizeBytes("allc")
	if err != nil {
		return nil, err
	}
	allTime, allMatches, err := timeQuery(cfg, all, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true)
	if err != nil {
		return nil, err
	}
	if allMatches != redMatches {
		return nil, fmt.Errorf("bench: ablation mismatch: reduced %d matches, all-corners %d", redMatches, allMatches)
	}

	return &Table{
		ID:     "A1",
		Title:  "Ablation: Table-2 corner reduction vs storing all four corners (drop side, ε=0.2, w=8h)",
		Paper:  "the case analysis 'effectively reduces the storage of parallelograms' corners by half'",
		Header: []string{"scheme", "feature bytes", "seq query time", "matches"},
		Rows: [][]string{
			{"reduced (Table 2)", mib(redBytes), ms(redTime), fmt.Sprintf("%d", redMatches)},
			{"all four corners", mib(allBytes), ms(allTime), fmt.Sprintf("%d", allMatches)},
			{"saving", ratio(allBytes, redBytes) + "×", ratioDur(allTime, redTime) + "×", ""},
		},
	}, nil
}

// allCornerStore holds the un-reduced drop features: the full perimeter
// walk BC→BD→AD→AC stored as four corners; the closing edge is queried by
// pairing corner 1 with corner 4.
type allCornerStore struct {
	db *sqlmini.DB
}

func buildAllCorners(cfg Config, series []*timeseries.Series, eps float64, w int64) (*allCornerStore, error) {
	db := sqlmini.OpenMemory(sqlmini.Options{PoolPages: cfg.PoolPages})
	ddl := "CREATE TABLE allc (dt1 INT, dv1 REAL, dt2 INT, dv2 REAL, dt3 INT, dv3 REAL, dt4 INT, dv4 REAL, td INT, tc INT, tb INT, ta INT)"
	if _, err := db.Exec(ddl); err != nil {
		return nil, err
	}
	ins, err := db.Prepare("INSERT INTO allc VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)")
	if err != nil {
		return nil, err
	}
	store := func(p feature.Parallelogram) error {
		b, err := feature.AllCornersBoundary(p, eps, feature.Drop)
		if err != nil {
			return err
		}
		// b.Corners is the perimeter walk with the first corner repeated;
		// store the four distinct corners.
		args := make([]sqlmini.Value, 0, 12)
		for _, c := range b.Corners[:4] {
			args = append(args, sqlmini.Int(c.Dt), sqlmini.Real(c.Dv))
		}
		args = append(args, sqlmini.Int(b.TD), sqlmini.Int(b.TC), sqlmini.Int(b.TB), sqlmini.Int(b.TA))
		_, err = ins.Exec(args...)
		return err
	}

	ingest := func() error {
		for _, s := range series {
			segs, err := segment.Series(s, eps)
			if err != nil {
				return err
			}
			var window []segment.Segment
			for _, ab := range segs {
				self, err := feature.SelfPair(ab)
				if err != nil {
					return err
				}
				if err := store(self); err != nil {
					return err
				}
				winStart := ab.Ts - w
				keep := 0
				for _, cd := range window {
					if cd.Te > winStart {
						window[keep] = cd
						keep++
					}
				}
				window = window[:keep]
				for _, cd := range window {
					use := cd
					if use.Ts < winStart {
						use = segment.Segment{Ts: winStart, Vs: cd.Value(winStart), Te: cd.Te, Ve: cd.Ve}
					}
					if use.Te == use.Ts {
						continue
					}
					p, err := feature.NewParallelogram(use, ab)
					if err != nil {
						return err
					}
					if err := store(p); err != nil {
						return err
					}
				}
				window = append(window, ab)
			}
		}
		return nil
	}

	db.BeginBatch()
	if err := ingest(); err != nil {
		// Abort rather than leaving the engine wedged in batch mode with
		// staged pages it would never commit or discard.
		return nil, errors.Join(err, db.AbortBatch())
	}
	if err := db.CommitBatch(); err != nil {
		return nil, err
	}
	return &allCornerStore{db: db}, nil
}

// Search implements the searcher interface over the 4-corner layout: point
// queries on every corner plus line queries on the four perimeter edges
// (each phrased with its Δt-ascending endpoint first).
func (a *allCornerStore) Search(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) (int, error) {
	if kind != feature.Drop {
		return 0, fmt.Errorf("bench: ablation store holds drop features only")
	}
	seen := map[[4]int64]bool{}
	point := "SELECT td, tc, tb, ta FROM allc WHERE dt%d <= ? AND dv%d <= ?"
	line := "SELECT td, tc, tb, ta FROM allc WHERE dt%[1]d <= ? AND dv%[1]d > ? AND dt%[2]d > ? AND dv%[2]d <= ? " +
		"AND dv%[1]d + (dv%[2]d - dv%[1]d) / (dt%[2]d - dt%[1]d) * (? - dt%[1]d) <= ?"
	var queries []struct {
		sql   string
		nArgs int
	}
	for i := 1; i <= 4; i++ {
		queries = append(queries, struct {
			sql   string
			nArgs int
		}{fmt.Sprintf(point, i, i), 2})
	}
	// Perimeter edges BC→BD, BD→AD, AC→AD, BC→AC in Δt-ascending order.
	for _, e := range [][2]int{{1, 2}, {2, 3}, {4, 3}, {1, 4}} {
		queries = append(queries, struct {
			sql   string
			nArgs int
		}{fmt.Sprintf(line, e[0], e[1]), 6})
	}
	total := 0
	for _, q := range queries {
		args := make([]sqlmini.Value, 0, q.nArgs)
		for i := 0; i < q.nArgs; i += 2 {
			args = append(args, sqlmini.Int(T), sqlmini.Real(V))
		}
		rows, err := a.db.QueryMode(mode, q.sql, args...)
		if err != nil {
			return 0, err
		}
		for _, r := range rows.Data {
			key := [4]int64{r[0].I, r[1].I, r[2].I, r[3].I}
			if !seen[key] {
				seen[key] = true
				total++
			}
		}
	}
	return total, nil
}

// DropCache implements the searcher interface.
func (a *allCornerStore) DropCache() error { return a.db.DropCache() }

// RunAblationPool (A3) sweeps the buffer pool size on an on-disk store and
// measures cold vs warm query time, showing the cache crossover the
// warm/cold experiments depend on.
func RunAblationPool(cfg Config, dir string) (*Table, error) {
	series, err := Workload(cfg, cfg.Sensors, cfg.Days)
	if err != nil {
		return nil, err
	}
	w := cfg.DefaultWH * 3600
	t := &Table{
		ID:     "A3",
		Title:  "Ablation: buffer-pool size vs cold/warm seq query time (on disk)",
		Paper:  "(beyond the paper) the cold/warm split of Sections 6.1–6.4 presumes the working set exceeds the cache",
		Header: []string{"pool pages", "cold seq", "warm seq"},
	}
	for _, pool := range []int{16, 64, 256, 1024} {
		st, err := core.Open(filepath.Join(dir, fmt.Sprintf("pool%d", pool)), core.Options{
			Epsilon: cfg.DefaultEps,
			Window:  w,
			DB:      sqlmini.Options{PoolPages: pool},
		})
		if err != nil {
			return nil, err
		}
		for _, s := range series {
			if err := st.AppendSeries(s); err != nil {
				return nil, err
			}
		}
		if err := st.Finish(); err != nil {
			return nil, err
		}
		one := &SegDiffSet{Stores: []*core.Store{st}}
		cold, _, err := timeQuery(cfg, one, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, true)
		if err != nil {
			return nil, err
		}
		warm, _, err := timeQuery(cfg, one, feature.Drop, cfg.QueryT, cfg.QueryV, sqlmini.PlanForceScan, false)
		if err != nil {
			return nil, err
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", pool), ms(cold), ms(warm)})
	}
	return t, nil
}

// RunAblationIngest (A4) compares ingest throughput: in-memory vs durable
// on-disk with write-ahead logging, and on-disk with the batched write
// path (buffered rows, sorted per-index apply, WAL group commit) vs the
// row-at-a-time baseline.
func RunAblationIngest(cfg Config, dir string) (*Table, error) {
	series, err := Workload(cfg, 1, cfg.Days)
	if err != nil {
		return nil, err
	}
	w := cfg.DefaultWH * 3600
	n := series[0].Len()

	runOne := func(open func() (*core.Store, error)) (time.Duration, error) {
		st, err := open()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := st.AppendSeries(series[0]); err != nil {
			return 0, err
		}
		if err := st.Finish(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		return d, st.Close()
	}

	memT, err := runOne(func() (*core.Store, error) {
		return core.OpenMemory(core.Options{Epsilon: cfg.DefaultEps, Window: w,
			DB: sqlmini.Options{PoolPages: cfg.PoolPages}})
	})
	if err != nil {
		return nil, err
	}
	rowT, err := runOne(func() (*core.Store, error) {
		return core.Open(filepath.Join(dir, "ingest-row"), core.Options{Epsilon: cfg.DefaultEps, Window: w,
			RowAtATime: true, DB: sqlmini.Options{PoolPages: cfg.PoolPages}})
	})
	if err != nil {
		return nil, err
	}
	diskT, err := runOne(func() (*core.Store, error) {
		return core.Open(filepath.Join(dir, "ingest-batched"), core.Options{Epsilon: cfg.DefaultEps, Window: w,
			DB: sqlmini.Options{PoolPages: cfg.PoolPages}})
	})
	if err != nil {
		return nil, err
	}
	rate := func(d time.Duration) string {
		if d == 0 {
			return "∞"
		}
		return fmt.Sprintf("%.0f pts/s", float64(n)/d.Seconds())
	}
	return &Table{
		ID:     "A4",
		Title:  "Ablation: ingest throughput, in-memory vs durable (WAL + checkpointing)",
		Paper:  "(beyond the paper) durability cost of the online feature extraction path",
		Header: []string{"mode", "ingest time", "throughput"},
		Rows: [][]string{
			{"in-memory", ms(memT), rate(memT)},
			{"on-disk (row-at-a-time)", ms(rowT), rate(rowT)},
			{"on-disk (batched)", ms(diskT), rate(diskT)},
		},
	}, nil
}
