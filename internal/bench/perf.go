package bench

// Performance comparisons for the concurrency work. The read-path half
// pits the pre-parallel engine configuration (one client, union branches
// evaluated sequentially) against branch-level parallelism and against
// many clients sharing one index, and verifies all configurations return
// identical matches (BENCH_PR1.json). The write-path half pits durable
// row-at-a-time ingest against the batched path — buffered rows, sorted
// per-index apply, WAL group commit — and verifies both produce identical
// search results and byte-identical feature tables (BENCH_PR2.json).
// cmd/benchrunner -perf serializes the reports to JSON.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/storage/sqlmini"
)

// PerfScenario is one measured configuration of the read path.
type PerfScenario struct {
	Name         string  `json:"name"`
	Clients      int     `json:"clients"`       // concurrent searchers
	UnionWorkers int     `json:"union_workers"` // union-branch pool size (1 = sequential)
	Queries      int     `json:"queries"`       // total queries timed
	WallMS       float64 `json:"wall_ms"`       // wall time for all queries
	MeanLatMS    float64 `json:"mean_latency_ms"`
	Throughput   float64 `json:"throughput_qps"`
	Matches      int     `json:"matches"` // per-query match count (identical across scenarios)
}

// GoBench records `go test -bench` numbers for the shared-index drop
// search (BenchmarkIndexDrops*), measured once on the single-lock baseline
// commit and once on the current tree. They are passed in by the runner —
// the baseline engine cannot be linked into this build — and persisted so
// the cross-commit speedup travels with the report.
type GoBench struct {
	Source             string  `json:"source"` // how/where the numbers were measured
	BaselineSerialMS   float64 `json:"baseline_serial_ms"`
	BaselineParallelMS float64 `json:"baseline_parallel_ms"`
	CurrentSerialMS    float64 `json:"current_serial_ms"`
	CurrentParallelMS  float64 `json:"current_parallel_ms"`
	// ParallelSpeedup is baseline over current parallel ms/op: aggregate
	// throughput gain versus the single-lock engine.
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// PerfReport is the full sequential-vs-parallel comparison.
type PerfReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Days       int64   `json:"days"`
	QueryT     int64   `json:"query_t_seconds"`
	QueryV     float64 `json:"query_v"`
	// Speedup is parallel-clients throughput over the sequential baseline.
	Speedup       float64              `json:"throughput_speedup"`
	Identical     bool                 `json:"results_identical"`
	Scenarios     []PerfScenario       `json:"scenarios"`
	Bench         *GoBench             `json:"go_bench,omitempty"`
	Ingest        *IngestReport        `json:"ingest,omitempty"`
	Fusion        *FusionReport        `json:"fusion,omitempty"`
	ColdCache     *ColdCacheReport     `json:"cold_cache,omitempty"`
	TraceOverhead *TraceOverheadReport `json:"trace_overhead,omitempty"`
	Serve         *ServeReport         `json:"serve,omitempty"`
}

// FusionReport is the fused-vs-branch-at-a-time comparison: the same
// multi-client drop-search workload against one store running the fused
// shared-scan path (default) and one with Options.DisableFusion set —
// the branch-at-a-time execution of the PR 2 engine. Both must return
// identical matches; the speedup is what plan-level fusion plus the
// allocation-light union merge buy on the paper's 9-branch search.
type FusionReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Days       int64        `json:"days"`
	QueryT     int64        `json:"query_t_seconds"`
	QueryV     float64      `json:"query_v"`
	Fused      PerfScenario `json:"fused"`
	Unfused    PerfScenario `json:"unfused"`
	Speedup    float64      `json:"throughput_speedup"`
	Identical  bool         `json:"results_identical"`
}

// RunFusionPerf measures the default multi-client workload (GOMAXPROCS
// clients sharing one index) with fusion on and off and verifies the two
// executions return the same match set.
func RunFusionPerf(cfg Config, iters int) (_ *FusionReport, err error) {
	if iters <= 0 {
		iters = 20
	}
	procs := runtime.GOMAXPROCS(0)
	fusedStore, err := perfStoreDB(cfg, sqlmini.Options{PoolPages: cfg.PoolPages})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, fusedStore)
	unfusedStore, err := perfStoreDB(cfg, sqlmini.Options{PoolPages: cfg.PoolPages, DisableFusion: true})
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, unfusedStore)

	fusedMatches, err := fusedStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	unfusedMatches, err := unfusedStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	rep := &FusionReport{
		GOMAXPROCS: procs,
		Days:       cfg.Days,
		QueryT:     cfg.QueryT,
		QueryV:     cfg.QueryV,
		Identical:  reflect.DeepEqual(fusedMatches, unfusedMatches),
	}
	if !rep.Identical {
		return nil, fmt.Errorf("bench: fused found %d matches, branch-at-a-time %d — execution paths diverge",
			len(fusedMatches), len(unfusedMatches))
	}
	rep.Fused, err = runScenario(fusedStore, "fused", procs, procs, iters, cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	rep.Unfused, err = runScenario(unfusedStore, "unfused", procs, procs, iters, cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	rep.Speedup = rep.Fused.Throughput / rep.Unfused.Throughput
	return rep, nil
}

// IngestScenario is one measured configuration of the durable write path.
type IngestScenario struct {
	Name       string  `json:"name"`
	Points     int     `json:"points"`
	WallMS     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_pts_per_s"`
}

// IngestReport is the durable-ingest comparison: the same workload pushed
// through the row-at-a-time write path (one writer-lock acquisition and
// up to five index descents per feature row, one WAL image per dirty page
// per row batch) and through the batched path (rows buffered in core,
// flushed via ExecBatch with sorted per-index apply and one group
// commit). Both stores must answer the reference drop query identically
// and leave byte-identical feature tables on disk.
type IngestReport struct {
	GOMAXPROCS      int            `json:"gomaxprocs"`
	Days            int64          `json:"days"`
	RowAtATime      IngestScenario `json:"row_at_a_time"`
	Batched         IngestScenario `json:"batched"`
	Speedup         float64        `json:"throughput_speedup"`
	SearchIdentical bool           `json:"search_identical"`
	TablesIdentical bool           `json:"tables_identical"`
}

// ingestTables are the feature-table heap files byte-compared by the
// identity check (indexes are rebuilt structures, the heaps are the
// ground truth).
var ingestTables = []string{"t_segs.tbl",
	"t_dropf1.tbl", "t_dropf2.tbl", "t_dropf3.tbl",
	"t_jumpf1.tbl", "t_jumpf2.tbl", "t_jumpf3.tbl"}

// runIngestScenario builds one durable store in its own subdir, timing
// AppendSeries + Finish, and returns the store's drop matches for the
// identity check before closing it.
func runIngestScenario(cfg Config, dir, name string, rowAtATime bool) (IngestScenario, []core.Match, error) {
	series, err := Workload(cfg, 1, cfg.Days)
	if err != nil {
		return IngestScenario{}, nil, err
	}
	st, err := core.Open(dir, core.Options{
		Epsilon:    cfg.DefaultEps,
		Window:     cfg.DefaultWH * 3600,
		RowAtATime: rowAtATime,
		DB:         sqlmini.Options{PoolPages: cfg.PoolPages},
	})
	if err != nil {
		return IngestScenario{}, nil, err
	}
	start := time.Now()
	if err := st.AppendSeries(series[0]); err != nil {
		return IngestScenario{}, nil, errors.Join(err, st.Close())
	}
	if err := st.Finish(); err != nil {
		return IngestScenario{}, nil, errors.Join(err, st.Close())
	}
	wall := time.Since(start)
	matches, err := st.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return IngestScenario{}, nil, errors.Join(err, st.Close())
	}
	if err := st.Close(); err != nil {
		return IngestScenario{}, nil, err
	}
	n := series[0].Len()
	return IngestScenario{
		Name:       name,
		Points:     n,
		WallMS:     float64(wall.Microseconds()) / 1e3,
		Throughput: float64(n) / wall.Seconds(),
	}, matches, nil
}

// RunIngestPerf measures durable ingest throughput, row-at-a-time vs
// batched, over the same single-sensor workload, and verifies the two
// write paths are observationally identical: same drop matches and
// byte-identical feature-table files.
func RunIngestPerf(cfg Config, dir string) (*IngestReport, error) {
	rowDir := filepath.Join(dir, "ingest-row")
	batchDir := filepath.Join(dir, "ingest-batched")
	rowSc, rowMatches, err := runIngestScenario(cfg, rowDir, "row-at-a-time", true)
	if err != nil {
		return nil, err
	}
	batchSc, batchMatches, err := runIngestScenario(cfg, batchDir, "batched", false)
	if err != nil {
		return nil, err
	}

	rep := &IngestReport{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Days:            cfg.Days,
		RowAtATime:      rowSc,
		Batched:         batchSc,
		Speedup:         batchSc.Throughput / rowSc.Throughput,
		SearchIdentical: reflect.DeepEqual(rowMatches, batchMatches),
		TablesIdentical: true,
	}
	if !rep.SearchIdentical {
		return nil, fmt.Errorf("bench: row-at-a-time found %d matches, batched %d — write paths diverge",
			len(rowMatches), len(batchMatches))
	}
	for _, name := range ingestTables {
		a, err := os.ReadFile(filepath.Join(rowDir, name))
		if err != nil {
			return nil, err
		}
		b, err := os.ReadFile(filepath.Join(batchDir, name))
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(a, b) {
			rep.TablesIdentical = false
			return nil, fmt.Errorf("bench: %s differs between write paths: %d vs %d bytes", name, len(a), len(b))
		}
	}
	return rep, nil
}

// perfStore opens a single-sensor store with an explicit union pool size
// (0 = engine default, GOMAXPROCS) and ingests the workload.
func perfStore(cfg Config, unionWorkers int) (*core.Store, error) {
	return perfStoreDB(cfg, sqlmini.Options{PoolPages: cfg.PoolPages, UnionWorkers: unionWorkers})
}

// perfStoreDB is perfStore with full control over the engine options, for
// configurations beyond the pool size (DisableFusion, plan modes).
func perfStoreDB(cfg Config, dbo sqlmini.Options) (*core.Store, error) {
	series, err := Workload(cfg, 1, cfg.Days)
	if err != nil {
		return nil, err
	}
	st, err := core.OpenMemory(core.Options{
		Epsilon: cfg.DefaultEps,
		Window:  cfg.DefaultWH * 3600,
		DB:      dbo,
	})
	if err != nil {
		return nil, err
	}
	if err := st.AppendSeries(series[0]); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	if err := st.Finish(); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	return st, nil
}

// runScenario times iters drop queries per client against st.
func runScenario(st *core.Store, name string, clients, unionWorkers, iters int, T int64, V float64) (PerfScenario, error) {
	// Warm the buffer pool once; the comparison targets lock contention,
	// not cold I/O.
	if _, err := st.SearchDrops(T, V); err != nil {
		return PerfScenario{}, err
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := st.SearchDrops(T, V); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return PerfScenario{}, err
		}
	}
	matches, err := st.SearchDrops(T, V)
	if err != nil {
		return PerfScenario{}, err
	}
	total := clients * iters
	return PerfScenario{
		Name:         name,
		Clients:      clients,
		UnionWorkers: unionWorkers,
		Queries:      total,
		WallMS:       float64(wall.Microseconds()) / 1e3,
		MeanLatMS:    float64(wall.Microseconds()) / 1e3 * float64(clients) / float64(total),
		Throughput:   float64(total) / wall.Seconds(),
		Matches:      len(matches),
	}, nil
}

// RunPerf measures three read-path configurations over the same workload:
//
//   - sequential: one client, UnionWorkers 1 — the pre-parallel engine
//   - parallel-union: one client, default pool — branch-level parallelism
//   - parallel-clients: GOMAXPROCS clients sharing one index — the
//     workload a single-lock engine serializes completely
//
// and checks all three return the same match set.
func RunPerf(cfg Config, iters int) (_ *PerfReport, err error) {
	if iters <= 0 {
		iters = 20
	}
	procs := runtime.GOMAXPROCS(0)
	rep := &PerfReport{
		GOMAXPROCS: procs,
		Days:       cfg.Days,
		QueryT:     cfg.QueryT,
		QueryV:     cfg.QueryV,
	}

	seqStore, err := perfStore(cfg, 1)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, seqStore)
	parStore, err := perfStore(cfg, 0)
	if err != nil {
		return nil, err
	}
	defer joinClose(&err, parStore)

	seqMatches, err := seqStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	parMatches, err := parStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	rep.Identical = reflect.DeepEqual(seqMatches, parMatches)
	if !rep.Identical {
		return nil, fmt.Errorf("bench: sequential found %d matches, parallel %d — read paths diverge",
			len(seqMatches), len(parMatches))
	}

	type run struct {
		name         string
		store        *core.Store
		clients      int
		unionWorkers int
	}
	for _, r := range []run{
		{"sequential", seqStore, 1, 1},
		{"parallel-union", parStore, 1, procs},
		{"parallel-clients", parStore, procs, procs},
	} {
		sc, err := runScenario(r.store, r.name, r.clients, r.unionWorkers, iters, cfg.QueryT, cfg.QueryV)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	rep.Speedup = rep.Scenarios[2].Throughput / rep.Scenarios[0].Throughput
	return rep, nil
}
