package bench

// Read-path performance comparison for the concurrent-search work: it
// pits the pre-parallel engine configuration (one client, union branches
// evaluated sequentially) against branch-level parallelism and against
// many clients sharing one index, and verifies all configurations return
// identical matches. cmd/benchrunner -perf serializes the result to JSON
// (BENCH_PR1.json in the repository root).

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/storage/sqlmini"
)

// PerfScenario is one measured configuration of the read path.
type PerfScenario struct {
	Name         string  `json:"name"`
	Clients      int     `json:"clients"`       // concurrent searchers
	UnionWorkers int     `json:"union_workers"` // union-branch pool size (1 = sequential)
	Queries      int     `json:"queries"`       // total queries timed
	WallMS       float64 `json:"wall_ms"`       // wall time for all queries
	MeanLatMS    float64 `json:"mean_latency_ms"`
	Throughput   float64 `json:"throughput_qps"`
	Matches      int     `json:"matches"` // per-query match count (identical across scenarios)
}

// GoBench records `go test -bench` numbers for the shared-index drop
// search (BenchmarkIndexDrops*), measured once on the single-lock baseline
// commit and once on the current tree. They are passed in by the runner —
// the baseline engine cannot be linked into this build — and persisted so
// the cross-commit speedup travels with the report.
type GoBench struct {
	Source             string  `json:"source"` // how/where the numbers were measured
	BaselineSerialMS   float64 `json:"baseline_serial_ms"`
	BaselineParallelMS float64 `json:"baseline_parallel_ms"`
	CurrentSerialMS    float64 `json:"current_serial_ms"`
	CurrentParallelMS  float64 `json:"current_parallel_ms"`
	// ParallelSpeedup is baseline over current parallel ms/op: aggregate
	// throughput gain versus the single-lock engine.
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// PerfReport is the full sequential-vs-parallel comparison.
type PerfReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Days       int64   `json:"days"`
	QueryT     int64   `json:"query_t_seconds"`
	QueryV     float64 `json:"query_v"`
	// Speedup is parallel-clients throughput over the sequential baseline.
	Speedup   float64        `json:"throughput_speedup"`
	Identical bool           `json:"results_identical"`
	Scenarios []PerfScenario `json:"scenarios"`
	Bench     *GoBench       `json:"go_bench,omitempty"`
}

// perfStore opens a single-sensor store with an explicit union pool size
// (0 = engine default, GOMAXPROCS) and ingests the workload.
func perfStore(cfg Config, unionWorkers int) (*core.Store, error) {
	series, err := Workload(cfg, 1, cfg.Days)
	if err != nil {
		return nil, err
	}
	st, err := core.OpenMemory(core.Options{
		Epsilon: cfg.DefaultEps,
		Window:  cfg.DefaultWH * 3600,
		DB:      sqlmini.Options{PoolPages: cfg.PoolPages, UnionWorkers: unionWorkers},
	})
	if err != nil {
		return nil, err
	}
	if err := st.AppendSeries(series[0]); err != nil {
		st.Close()
		return nil, err
	}
	if err := st.Finish(); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// runScenario times iters drop queries per client against st.
func runScenario(st *core.Store, name string, clients, unionWorkers, iters int, T int64, V float64) (PerfScenario, error) {
	// Warm the buffer pool once; the comparison targets lock contention,
	// not cold I/O.
	if _, err := st.SearchDrops(T, V); err != nil {
		return PerfScenario{}, err
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := st.SearchDrops(T, V); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return PerfScenario{}, err
		}
	}
	matches, err := st.SearchDrops(T, V)
	if err != nil {
		return PerfScenario{}, err
	}
	total := clients * iters
	return PerfScenario{
		Name:         name,
		Clients:      clients,
		UnionWorkers: unionWorkers,
		Queries:      total,
		WallMS:       float64(wall.Microseconds()) / 1e3,
		MeanLatMS:    float64(wall.Microseconds()) / 1e3 * float64(clients) / float64(total),
		Throughput:   float64(total) / wall.Seconds(),
		Matches:      len(matches),
	}, nil
}

// RunPerf measures three read-path configurations over the same workload:
//
//   - sequential: one client, UnionWorkers 1 — the pre-parallel engine
//   - parallel-union: one client, default pool — branch-level parallelism
//   - parallel-clients: GOMAXPROCS clients sharing one index — the
//     workload a single-lock engine serializes completely
//
// and checks all three return the same match set.
func RunPerf(cfg Config, iters int) (*PerfReport, error) {
	if iters <= 0 {
		iters = 20
	}
	procs := runtime.GOMAXPROCS(0)
	rep := &PerfReport{
		GOMAXPROCS: procs,
		Days:       cfg.Days,
		QueryT:     cfg.QueryT,
		QueryV:     cfg.QueryV,
	}

	seqStore, err := perfStore(cfg, 1)
	if err != nil {
		return nil, err
	}
	defer seqStore.Close()
	parStore, err := perfStore(cfg, 0)
	if err != nil {
		return nil, err
	}
	defer parStore.Close()

	seqMatches, err := seqStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	parMatches, err := parStore.SearchDrops(cfg.QueryT, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	rep.Identical = reflect.DeepEqual(seqMatches, parMatches)
	if !rep.Identical {
		return nil, fmt.Errorf("bench: sequential found %d matches, parallel %d — read paths diverge",
			len(seqMatches), len(parMatches))
	}

	type run struct {
		name         string
		store        *core.Store
		clients      int
		unionWorkers int
	}
	for _, r := range []run{
		{"sequential", seqStore, 1, 1},
		{"parallel-union", parStore, 1, procs},
		{"parallel-clients", parStore, procs, procs},
	} {
		sc, err := runScenario(r.store, r.name, r.clients, r.unionWorkers, iters, cfg.QueryT, cfg.QueryV)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	rep.Speedup = rep.Scenarios[2].Throughput / rep.Scenarios[0].Throughput
	return rep, nil
}
