package bench

// Serving-layer benchmarks: the same multi-client drop-search workload
// run twice against one in-memory collection — once through direct
// Collection calls, once over loopback HTTP through segdiffd's handler
// stack (admission lane, deadline, NDJSON encode/decode) — with the
// responses checked element-identical. The ratio is the wire tax a
// client pays for the serving layer. cmd/benchrunner -perf persists the
// report; -serve-smoke runs the abbreviated identity check as a CI gate.

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"segdiff"
	"segdiff/internal/server"
)

// ServeScenario is one measured configuration of the serving
// comparison.
type ServeScenario struct {
	Name       string  `json:"name"`
	Clients    int     `json:"clients"`
	Queries    int     `json:"queries"`
	WallMS     float64 `json:"wall_ms"`
	MeanLatMS  float64 `json:"mean_latency_ms"`
	Throughput float64 `json:"throughput_qps"`
}

// ServeReport is the direct-vs-HTTP comparison for the query path.
type ServeReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Sensors    int     `json:"sensors"`
	Days       int64   `json:"days"`
	QueryT     int64   `json:"query_t_seconds"`
	QueryV     float64 `json:"query_v"`
	// Direct is Collection.DropsContext called in-process.
	Direct ServeScenario `json:"direct"`
	// HTTP is the same workload through segdiffd over loopback.
	HTTP ServeScenario `json:"http"`
	// WireOverhead is direct over HTTP throughput: how much the serving
	// layer costs per query (1.0 = free).
	WireOverhead float64 `json:"wire_overhead"`
	Identical    bool    `json:"results_identical"`
	// Admitted and Rejected are the read lane's counters after the run;
	// a sized lane admits everything, so Rejected must be 0 here.
	Admitted uint64 `json:"lane_admitted"`
	Rejected uint64 `json:"lane_rejected"`
}

// serveCollection builds an in-memory collection holding sensors
// bench-0..n-1 from the standard workload.
func serveCollection(cfg Config, sensors int) (*segdiff.Collection, error) {
	series, err := Workload(cfg, sensors, cfg.Days)
	if err != nil {
		return nil, err
	}
	col := segdiff.NewMemoryCollection(segdiff.Options{
		Epsilon: cfg.DefaultEps,
		Window:  time.Duration(cfg.DefaultWH) * time.Hour,
	})
	batches := make([]segdiff.SensorBatch, len(series))
	for i, s := range series {
		pts := make([]segdiff.Point, s.Len())
		for j, p := range s.Points() {
			pts[j] = segdiff.Point{Time: p.T, Value: p.V}
		}
		batches[i] = segdiff.SensorBatch{Sensor: fmt.Sprintf("bench-%d", i), Points: pts}
	}
	if err := col.AppendAll(batches); err != nil {
		return nil, joinErr(err, col.Close())
	}
	return col, nil
}

func joinErr(err, other error) error {
	if other != nil {
		return fmt.Errorf("%w (and: %v)", err, other)
	}
	return err
}

// runServeScenario times clients×iters drop searches through query.
func runServeScenario(name string, clients, iters int, query func() error) (ServeScenario, error) {
	// One warm call per scenario: the comparison targets the serving
	// layer, not cold caches.
	if err := query(); err != nil {
		return ServeScenario{}, err
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := query(); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServeScenario{}, err
		}
	}
	total := clients * iters
	return ServeScenario{
		Name:       name,
		Clients:    clients,
		Queries:    total,
		WallMS:     float64(wall.Microseconds()) / 1e3,
		MeanLatMS:  float64(wall.Microseconds()) / 1e3 * float64(clients) / float64(total),
		Throughput: float64(total) / wall.Seconds(),
	}, nil
}

// RunServePerf measures the serving layer's overhead: GOMAXPROCS
// concurrent clients running the reference drop search directly
// against the collection, then over loopback HTTP, with both response
// streams checked element-identical.
func RunServePerf(cfg Config, iters int) (_ *ServeReport, err error) {
	if iters <= 0 {
		iters = 20
	}
	procs := runtime.GOMAXPROCS(0)
	const sensors = 3
	col, err := serveCollection(cfg, sensors)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := col.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	srv := server.New(col, server.Config{ReadSlots: 4 * procs * 2})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := srv.Shutdown(sctx); serr != nil && err == nil {
			err = serr
		}
	}()
	cl := segdiff.NewClient(srv.URL(), nil)

	ctx := context.Background()
	span := time.Duration(cfg.QueryT) * time.Second
	direct, err := col.DropsContext(ctx, span, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	wire, err := cl.Drops(ctx, span, cfg.QueryV)
	if err != nil {
		return nil, err
	}
	rep := &ServeReport{
		GOMAXPROCS: procs,
		Sensors:    sensors,
		Days:       cfg.Days,
		QueryT:     cfg.QueryT,
		QueryV:     cfg.QueryV,
		Identical:  reflect.DeepEqual(direct, wire),
	}
	if !rep.Identical {
		return nil, fmt.Errorf("bench: direct search and HTTP response diverge (%d vs %d sensors)",
			len(direct), len(wire))
	}

	rep.Direct, err = runServeScenario("direct", procs, iters, func() error {
		_, err := col.DropsContext(ctx, span, cfg.QueryV)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.HTTP, err = runServeScenario("http", procs, iters, func() error {
		_, err := cl.Drops(ctx, span, cfg.QueryV)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.WireOverhead = rep.Direct.Throughput / rep.HTTP.Throughput

	snap := srv.Registry().Snapshot()
	rep.Admitted = snap.Counter("lane_read_admitted")
	rep.Rejected = snap.Counter("lane_read_rejected")
	if rep.Rejected != 0 {
		return nil, fmt.Errorf("bench: sized read lane rejected %d requests", rep.Rejected)
	}
	return rep, nil
}

// RunServeSmoke is the CI gate: a short end-to-end pass over the
// serving stack — boot, ingest over HTTP, search identical to direct,
// explain, drain — returning an error on any divergence.
func RunServeSmoke(cfg Config) (err error) {
	col, err := serveCollection(cfg, 2)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := col.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	srv := server.New(col, server.Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	cl := segdiff.NewClient(srv.URL(), nil)
	ctx := context.Background()
	span := time.Duration(cfg.QueryT) * time.Second

	names, err := cl.Sensors(ctx)
	if err != nil {
		return fmt.Errorf("serve-smoke: sensors: %w", err)
	}
	if len(names) != 2 {
		return fmt.Errorf("serve-smoke: %d sensors, want 2", len(names))
	}
	wire, err := cl.Drops(ctx, span, cfg.QueryV)
	if err != nil {
		return fmt.Errorf("serve-smoke: drops: %w", err)
	}
	direct, err := col.DropsContext(ctx, span, cfg.QueryV)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(wire, direct) {
		return fmt.Errorf("serve-smoke: HTTP response differs from direct search")
	}
	if _, _, err := cl.Append(ctx, []segdiff.SensorBatch{{
		Sensor: "smoke",
		Points: []segdiff.Point{{Time: 0, Value: 5}, {Time: 60, Value: 5.5}},
	}}); err != nil {
		return fmt.Errorf("serve-smoke: append: %w", err)
	}
	tr, err := cl.Explain(ctx, names[0], false, span, cfg.QueryV)
	if err != nil {
		return fmt.Errorf("serve-smoke: explain: %w", err)
	}
	if tr.SQL == "" || len(tr.Lines) == 0 {
		return fmt.Errorf("serve-smoke: explain returned an empty trace: %+v", tr)
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve-smoke: drain: %w", err)
	}
	if err := cl.Health(ctx); err == nil {
		return fmt.Errorf("serve-smoke: server still answering after drain")
	}
	return nil
}
