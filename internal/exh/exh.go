// Package exh implements the paper's comparison system Exh, the
// exhaustive search: it materializes the difference (Δt, Δv) between
// every pair of observations whose time span is within the window w and
// stores each as one relational row (Δt, Δv, t) — Δv the change, Δt the
// span, and t the later observation's timestamp, which uniquely identifies
// the event (c₁ = 3 columns, Section 5.2). A drop search is then the
// standard range query Δt ≤ T AND Δv ≤ V over this table, with a B-tree
// index on the concatenation (Δt, Δv) available for the index-plan
// experiments.
//
// Exh only considers sampled observations, so unlike SegDiff it can miss
// events of the data generating model G that occur between samples
// (Section 5.1); the tests document this difference.
package exh

import (
	"errors"
	"fmt"

	"segdiff/internal/feature"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// Options configures an Exh store.
type Options struct {
	// Window is w: pairs farther apart than this are not materialized
	// (default 8 hours in seconds).
	Window int64
	// DB tunes the underlying engine.
	DB sqlmini.Options
}

func (o Options) normalize() (Options, error) {
	if o.Window == 0 {
		o.Window = 8 * 3600
	}
	if o.Window < 0 {
		return o, fmt.Errorf("exh: negative window %d", o.Window)
	}
	return o, nil
}

// Event is a search result: the pair of observation timestamps and its
// change.
type Event struct {
	T1, T2 int64
	Dv     float64
}

// Store is the exhaustive feature store.
type Store struct {
	db   *sqlmini.DB
	opts Options

	ins     *sqlmini.Stmt
	recent  []timeseries.Point // observations within the window
	rows    [][]sqlmini.Value  // buffered feature rows awaiting Sync
	dirty   bool
	nPoints int
	nRows   int
}

// Open opens an on-disk Exh store.
func Open(dir string, opts Options) (*Store, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	db, err := sqlmini.Open(dir, opts.DB)
	if err != nil {
		return nil, err
	}
	s, err := initStore(db, opts)
	if err != nil {
		return nil, errors.Join(err, db.Close())
	}
	return s, nil
}

// OpenMemory opens an in-memory Exh store.
func OpenMemory(opts Options) (*Store, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	return initStore(sqlmini.OpenMemory(opts.DB), opts)
}

func initStore(db *sqlmini.DB, opts Options) (*Store, error) {
	s := &Store{db: db, opts: opts}
	has := false
	for _, t := range db.Tables() {
		if t == "exh" {
			has = true
		}
	}
	if !has {
		for _, ddl := range []string{
			"CREATE TABLE exh (dt INT, dv REAL, t INT)",
			"CREATE INDEX exh_dtdv ON exh (dt, dv)",
		} {
			if _, err := db.Exec(ddl); err != nil {
				return nil, err
			}
		}
	}
	var err error
	s.ins, err = db.Prepare("INSERT INTO exh VALUES (?, ?, ?)")
	if err != nil {
		return nil, err
	}
	n, err := db.RowCount("exh")
	if err != nil {
		return nil, err
	}
	s.nRows = n
	return s, nil
}

// Append materializes the differences between p and every retained
// earlier observation within the window. Rows are buffered in memory and
// pushed through the engine's batched write path at the next Sync.
func (s *Store) Append(p timeseries.Point) error {
	if n := len(s.recent); n > 0 && p.T <= s.recent[n-1].T {
		return fmt.Errorf("exh: out-of-order timestamp %d", p.T)
	}
	s.dirty = true
	// Evict observations outside the window.
	keep := 0
	for _, q := range s.recent {
		if p.T-q.T <= s.opts.Window {
			s.recent[keep] = q
			keep++
		}
	}
	s.recent = s.recent[:keep]

	for _, q := range s.recent {
		s.rows = append(s.rows, []sqlmini.Value{
			sqlmini.Int(p.T - q.T), sqlmini.Real(p.V - q.V), sqlmini.Int(p.T)})
		s.nRows++
	}
	s.recent = append(s.recent, p)
	s.nPoints++
	return nil
}

// AppendSeries appends a whole series and commits.
func (s *Store) AppendSeries(series *timeseries.Series) error {
	for _, p := range series.Points() {
		if err := s.Append(p); err != nil {
			return err
		}
	}
	return s.Sync()
}

// Sync flushes the buffered feature rows in one ExecBatch and commits:
// the whole batch costs a single writer-lock acquisition and one fsync.
func (s *Store) Sync() error {
	if !s.dirty {
		return nil
	}
	s.dirty = false
	if len(s.rows) == 0 {
		return nil
	}
	s.db.BeginBatch()
	if _, err := s.ins.ExecBatch(s.rows); err != nil {
		s.nRows -= len(s.rows)
		s.rows = s.rows[:0]
		// The flush error stays first; a rollback failure surfaces too.
		return errors.Join(err, s.db.AbortBatch())
	}
	s.rows = s.rows[:0]
	return s.db.CommitBatch()
}

// SearchDrops returns all events with 0 < Δt ≤ T and Δv ≤ V (V < 0) among
// sampled observations.
func (s *Store) SearchDrops(T int64, V float64) ([]Event, error) {
	return s.search(feature.Drop, T, V, sqlmini.PlanAuto)
}

// SearchJumps returns all events with 0 < Δt ≤ T and Δv ≥ V (V > 0).
func (s *Store) SearchJumps(T int64, V float64) ([]Event, error) {
	return s.search(feature.Jump, T, V, sqlmini.PlanAuto)
}

// SearchMode runs a search under an explicit plan mode.
func (s *Store) SearchMode(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) ([]Event, error) {
	return s.search(kind, T, V, mode)
}

func (s *Store) search(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) ([]Event, error) {
	if _, err := feature.NewRegion(kind, T, V); err != nil {
		return nil, err
	}
	if T > s.opts.Window {
		return nil, fmt.Errorf("exh: T=%d exceeds the window w=%d", T, s.opts.Window)
	}
	cmp := "<="
	if kind == feature.Jump {
		cmp = ">="
	}
	rows, err := s.db.QueryMode(mode,
		fmt.Sprintf("SELECT t, dt, dv FROM exh WHERE dt <= ? AND dv %s ?", cmp),
		sqlmini.Int(T), sqlmini.Real(V))
	if err != nil {
		return nil, err
	}
	out := make([]Event, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, Event{T2: r[0].I, T1: r[0].I - r[1].I, Dv: r[2].R})
	}
	return out, nil
}

// Stats describes the store's contents.
type Stats struct {
	Points       int   // observations consumed this session
	Rows         int   // feature rows stored
	FeatureBytes int64 // heap bytes of the exh table
	IndexBytes   int64 // index bytes
}

// DiskBytes is features plus indexes.
func (st Stats) DiskBytes() int64 { return st.FeatureBytes + st.IndexBytes }

// Stats gathers current statistics.
func (s *Store) Stats() (Stats, error) {
	st := Stats{Points: s.nPoints, Rows: s.nRows}
	var err error
	if st.FeatureBytes, err = s.db.TableSizeBytes("exh"); err != nil {
		return st, err
	}
	if st.IndexBytes, err = s.db.IndexSizeBytes("exh"); err != nil {
		return st, err
	}
	return st, nil
}

// DropCache simulates a cold cache.
func (s *Store) DropCache() error { return s.db.DropCache() }

// Close commits and closes the store.
func (s *Store) Close() error {
	if err := s.Sync(); err != nil {
		return err
	}
	return s.db.Close()
}
