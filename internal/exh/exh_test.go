package exh

import (
	"math/rand"
	"sort"
	"testing"

	"segdiff/internal/feature"
	"segdiff/internal/naive"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

func walk(seed int64, n int) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := &timeseries.Series{}
	v := 0.0
	tt := int64(0)
	for i := 0; i < n; i++ {
		tt += 30 + rng.Int63n(40)
		v += rng.NormFloat64()
		if err := s.Append(timeseries.Point{T: tt, V: v}); err != nil {
			panic(err)
		}
	}
	return s
}

func memStore(t *testing.T, w int64) *Store {
	t.Helper()
	s, err := OpenMemory(Options{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sortEvents(evs []naive.Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].T1 != evs[j].T1 {
			return evs[i].T1 < evs[j].T1
		}
		return evs[i].T2 < evs[j].T2
	})
}

func sortExh(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].T1 != evs[j].T1 {
			return evs[i].T1 < evs[j].T1
		}
		return evs[i].T2 < evs[j].T2
	})
}

// Exh over sampled observations must agree exactly with the naive oracle.
func TestMatchesNaiveOracle(t *testing.T) {
	series := walk(3, 300)
	st := memStore(t, 3000)
	if err := st.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		T int64
		V float64
	}{{500, -1}, {1500, -2}, {3000, -0.5}} {
		want, err := naive.Drops(series, q.T, q.V)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.SearchDrops(q.T, q.V)
		if err != nil {
			t.Fatal(err)
		}
		sortEvents(want)
		sortExh(got)
		if len(got) != len(want) {
			t.Fatalf("T=%d V=%v: %d events, oracle %d", q.T, q.V, len(got), len(want))
		}
		for i := range got {
			if got[i].T1 != want[i].T1 || got[i].T2 != want[i].T2 {
				t.Fatalf("event %d = %+v, oracle %+v", i, got[i], want[i])
			}
		}
	}
	// Jumps too.
	wantJ, err := naive.Jumps(series, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotJ, err := st.SearchJumps(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotJ) != len(wantJ) {
		t.Fatalf("jumps: %d vs oracle %d", len(gotJ), len(wantJ))
	}
}

func TestPlanModesAgree(t *testing.T) {
	series := walk(9, 400)
	st := memStore(t, 2000)
	if err := st.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	a, err := st.SearchMode(feature.Drop, 800, -1.5, sqlmini.PlanForceScan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.SearchMode(feature.Drop, 800, -1.5, sqlmini.PlanForceIndex)
	if err != nil {
		t.Fatal(err)
	}
	sortExh(a)
	sortExh(b)
	if len(a) != len(b) {
		t.Fatalf("scan %d vs index %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestRowCountQuadraticInWindow(t *testing.T) {
	series := walk(1, 200)
	small := memStore(t, 200)
	big := memStore(t, 2000)
	if err := small.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	if err := big.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	ss, err := small.Stats()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := big.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Rows <= ss.Rows*3 {
		t.Fatalf("larger window did not inflate rows: %d vs %d", bs.Rows, ss.Rows)
	}
	if ss.Points != 200 || bs.Points != 200 {
		t.Fatalf("points: %d, %d", ss.Points, bs.Points)
	}
	if bs.FeatureBytes == 0 || bs.IndexBytes == 0 {
		t.Fatalf("sizes empty: %+v", bs)
	}
	if bs.DiskBytes() != bs.FeatureBytes+bs.IndexBytes {
		t.Fatal("DiskBytes inconsistent")
	}
}

func TestValidation(t *testing.T) {
	st := memStore(t, 1000)
	if err := st.Append(timeseries.Point{T: 100, V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(timeseries.Point{T: 100, V: 2}); err == nil {
		t.Fatal("duplicate timestamp accepted")
	}
	if _, err := st.SearchDrops(2000, -1); err == nil {
		t.Fatal("T > w accepted")
	}
	if _, err := st.SearchDrops(100, 1); err == nil {
		t.Fatal("positive V accepted")
	}
	if _, err := OpenMemory(Options{Window: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	series := walk(4, 150)
	st, err := Open(dir, Options{Window: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	want, err := st.SearchDrops(1000, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Window: 1500})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.SearchDrops(1000, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("matches after reopen: %d vs %d", len(got), len(want))
	}
	stats, err := st2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows == 0 {
		t.Fatal("row count not recovered")
	}
}

func TestDropCache(t *testing.T) {
	series := walk(6, 200)
	st := memStore(t, 1000)
	if err := st.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	warm, err := st.SearchDrops(500, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DropCache(); err != nil {
		t.Fatal(err)
	}
	cold, err := st.SearchDrops(500, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("cold differs: %d vs %d", len(warm), len(cold))
	}
}
