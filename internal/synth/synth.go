// Package synth generates synthetic sensor data standing in for the James
// Reserve Cold Air Drainage (CAD) transect dataset used in the paper
// (25 sensors recording air temperature every 5 minutes, Dec 2005–Nov 2006).
//
// The real dataset is not publicly available, so this generator reproduces
// the characteristics the SegDiff evaluation depends on:
//
//   - a smooth seasonal + diurnal temperature cycle (highly compressible by
//     piecewise linear approximation, giving compression rates r in the
//     paper's 4–20 range for ε in [0.1, 1.0]);
//   - autocorrelated weather noise (AR(1));
//   - injected early-morning cold-air-drainage events: sharp drops of
//     3–10 °C over 20–60 minutes followed by slower recovery — the signal
//     the biologists search for;
//   - occasional sensor anomalies (spikes / dropouts to be removed by the
//     robust smoothing preprocessor).
//
// All output is deterministic given a Config seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"segdiff/internal/timeseries"
)

// Defaults matching the paper's setting.
const (
	DefaultSampleInterval = 300   // 5 minutes, in seconds
	SecondsPerDay         = 86400 // one day
	SecondsPerYear        = 365 * SecondsPerDay
)

// Config controls the generator.
type Config struct {
	Seed           int64   // RNG seed; same seed -> identical data
	Start          int64   // first timestamp (seconds)
	Duration       int64   // total span (seconds)
	SampleInterval int64   // sampling period (seconds); default 300
	BaseTemp       float64 // annual mean temperature (°C); default 10
	SeasonalAmp    float64 // seasonal swing amplitude (°C); default 8
	DiurnalAmp     float64 // day/night swing amplitude (°C); default 6
	NoiseStd       float64 // AR(1) innovation std dev (°C); default 0.3
	NoisePhi       float64 // AR(1) coefficient in [0,1); default 0.9
	CADPerWeek     float64 // expected cold-air-drainage events per week; default 2
	CADMinDrop     float64 // minimum event drop magnitude (°C); default 3
	CADMaxDrop     float64 // maximum event drop magnitude (°C); default 10
	AnomalyRate    float64 // probability a sample is an anomaly spike; default 0.0005
	AnomalyAmp     float64 // anomaly spike magnitude (°C); default 15
}

// Normalize fills zero fields with defaults and validates the config.
func (c Config) Normalize() (Config, error) {
	if c.SampleInterval == 0 {
		c.SampleInterval = DefaultSampleInterval
	}
	if c.SampleInterval <= 0 {
		return c, fmt.Errorf("synth: non-positive sample interval %d", c.SampleInterval)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("synth: non-positive duration %d", c.Duration)
	}
	if c.BaseTemp == 0 {
		c.BaseTemp = 10
	}
	if c.SeasonalAmp == 0 {
		c.SeasonalAmp = 8
	}
	if c.DiurnalAmp == 0 {
		c.DiurnalAmp = 6
	}
	if c.NoiseStd == 0 {
		// Calibrated so the robust-smoothed series segments at the paper's
		// compression rates (Table 3: r ≈ 4.7…18.6 for ε = 0.1…1.0).
		c.NoiseStd = 0.3
	}
	if c.NoisePhi == 0 {
		c.NoisePhi = 0.9
	}
	if c.NoisePhi < 0 || c.NoisePhi >= 1 {
		return c, fmt.Errorf("synth: NoisePhi %v outside [0,1)", c.NoisePhi)
	}
	if c.CADPerWeek == 0 {
		c.CADPerWeek = 2
	}
	if c.CADMinDrop == 0 {
		c.CADMinDrop = 3
	}
	if c.CADMaxDrop == 0 {
		c.CADMaxDrop = 10
	}
	if c.CADMaxDrop < c.CADMinDrop {
		return c, fmt.Errorf("synth: CADMaxDrop %v < CADMinDrop %v", c.CADMaxDrop, c.CADMinDrop)
	}
	if c.AnomalyRate == 0 {
		c.AnomalyRate = 0.0005
	}
	if c.AnomalyAmp == 0 {
		c.AnomalyAmp = 15
	}
	return c, nil
}

// Event records an injected cold-air-drainage event, used by tests to
// verify that searches recover the ground truth.
type Event struct {
	Start    int64   // onset of the drop
	DropLen  int64   // duration of the drop phase (seconds)
	Drop     float64 // total magnitude of the drop (°C, positive number)
	Recovery int64   // duration of the recovery phase (seconds)
}

// End returns the time at which the event's influence has fully decayed.
func (e Event) End() int64 { return e.Start + e.DropLen + e.Recovery }

// Generate produces one sensor's series plus the list of injected CAD
// events, deterministically from cfg.Seed.
func Generate(cfg Config) (*timeseries.Series, []Event, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	events := scheduleEvents(cfg, rng)
	s := &timeseries.Series{}
	ar := 0.0
	for t := cfg.Start; t < cfg.Start+cfg.Duration; t += cfg.SampleInterval {
		v := base(cfg, t)
		ar = cfg.NoisePhi*ar + rng.NormFloat64()*cfg.NoiseStd
		v += ar
		for _, e := range events {
			v += eventContribution(e, t)
		}
		if rng.Float64() < cfg.AnomalyRate {
			v += (rng.Float64()*2 - 1) * cfg.AnomalyAmp
		}
		if err := s.Append(timeseries.Point{T: t, V: v}); err != nil {
			return nil, nil, err
		}
	}
	return s, events, nil
}

// GenerateTransect produces n sensors' series, one per position across the
// canyon. Sensors share the event schedule (cold air drainage affects the
// whole transect) but have position-dependent magnitudes, offsets and
// independent noise, like the two parallel sensor lines at James Reserve.
func GenerateTransect(cfg Config, n int) ([]*timeseries.Series, []Event, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("synth: non-positive sensor count %d", n)
	}
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, nil, err
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	events := scheduleEvents(cfg, master)

	out := make([]*timeseries.Series, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
		// Sensors lower in the canyon (middle of the transect) feel CAD
		// events more strongly.
		pos := 0.0
		if n > 1 {
			pos = float64(i) / float64(n-1) // 0..1 across the canyon
		}
		depth := 1 - math.Abs(2*pos-1) // 0 at rims, 1 at canyon floor
		gain := 0.6 + 0.8*depth
		offset := (pos - 0.5) * 2 // elevation gradient, ±1 °C

		s := &timeseries.Series{}
		ar := 0.0
		for t := cfg.Start; t < cfg.Start+cfg.Duration; t += cfg.SampleInterval {
			v := base(cfg, t) + offset
			ar = cfg.NoisePhi*ar + rng.NormFloat64()*cfg.NoiseStd
			v += ar
			for _, e := range events {
				v += gain * eventContribution(e, t)
			}
			if rng.Float64() < cfg.AnomalyRate {
				v += (rng.Float64()*2 - 1) * cfg.AnomalyAmp
			}
			if err := s.Append(timeseries.Point{T: t, V: v}); err != nil {
				return nil, nil, err
			}
		}
		out[i] = s
	}
	return out, events, nil
}

// base is the deterministic seasonal + diurnal temperature signal.
func base(cfg Config, t int64) float64 {
	season := cfg.SeasonalAmp * math.Sin(2*math.Pi*float64(t)/float64(SecondsPerYear)-math.Pi/2)
	// Diurnal peak mid-afternoon (~15:00), trough pre-dawn.
	day := cfg.DiurnalAmp * math.Sin(2*math.Pi*(float64(t)/float64(SecondsPerDay)-0.375))
	return cfg.BaseTemp + season + day
}

// scheduleEvents places CAD events in early-morning hours (02:00–06:00)
// with an expected rate of CADPerWeek.
func scheduleEvents(cfg Config, rng *rand.Rand) []Event {
	var events []Event
	week := int64(7 * SecondsPerDay)
	for ws := cfg.Start; ws < cfg.Start+cfg.Duration; ws += week {
		k := poisson(rng, cfg.CADPerWeek)
		for j := 0; j < k; j++ {
			day := rng.Int63n(7)
			hour := 2*3600 + rng.Int63n(4*3600) // 02:00–06:00
			start := ws + day*SecondsPerDay + hour
			if start >= cfg.Start+cfg.Duration {
				continue
			}
			e := Event{
				Start:    start,
				DropLen:  20*60 + rng.Int63n(40*60), // 20–60 minutes
				Drop:     cfg.CADMinDrop + rng.Float64()*(cfg.CADMaxDrop-cfg.CADMinDrop),
				Recovery: 2*3600 + rng.Int63n(4*3600), // 2–6 hours
			}
			events = append(events, e)
		}
	}
	return events
}

// eventContribution is the (negative) temperature offset event e adds at
// time t: a linear ramp down during the drop phase and a linear recovery.
func eventContribution(e Event, t int64) float64 {
	switch {
	case t < e.Start || t >= e.End():
		return 0
	case t < e.Start+e.DropLen:
		frac := float64(t-e.Start) / float64(e.DropLen)
		return -e.Drop * frac
	default:
		frac := float64(t-e.Start-e.DropLen) / float64(e.Recovery)
		return -e.Drop * (1 - frac)
	}
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's method (fine for small means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// RandomWalk produces a finance-style random walk series (used by the jump
// search example): geometric steps with drift, deterministic from seed.
func RandomWalk(seed int64, n int, step int64, start, vol float64) (*timeseries.Series, error) {
	if n <= 0 || step <= 0 {
		return nil, fmt.Errorf("synth: invalid random walk params n=%d step=%d", n, step)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &timeseries.Series{}
	v := start
	for i := 0; i < n; i++ {
		if err := s.Append(timeseries.Point{T: int64(i) * step, V: v}); err != nil {
			return nil, err
		}
		v += rng.NormFloat64() * vol
	}
	return s, nil
}
