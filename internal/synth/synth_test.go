package synth

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func dayConfig(seed int64, days int64) Config {
	return Config{Seed: seed, Duration: days * SecondsPerDay}
}

func TestGenerateDeterministic(t *testing.T) {
	a, evA, err := Generate(dayConfig(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, evB, err := Generate(dayConfig(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Points(), b.Points()) {
		t.Fatal("same seed produced different series")
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Fatal("same seed produced different events")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _, _ := Generate(dayConfig(1, 2))
	b, _, _ := Generate(dayConfig(2, 2))
	if reflect.DeepEqual(a.Points(), b.Points()) {
		t.Fatal("different seeds produced identical series")
	}
}

func TestGenerateSampleCountAndSpacing(t *testing.T) {
	s, _, err := Generate(dayConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := SecondsPerDay / DefaultSampleInterval
	if s.Len() != want {
		t.Fatalf("len = %d, want %d", s.Len(), want)
	}
	for i := 1; i < s.Len(); i++ {
		if s.At(i).T-s.At(i-1).T != DefaultSampleInterval {
			t.Fatalf("irregular spacing at %d", i)
		}
	}
}

func TestGenerateTemperatureRange(t *testing.T) {
	s, _, err := Generate(Config{Seed: 5, Duration: 30 * SecondsPerDay, AnomalyRate: -1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.MinMax()
	if lo < -40 || hi > 50 {
		t.Fatalf("implausible temperature range [%v, %v]", lo, hi)
	}
	if hi-lo < 5 {
		t.Fatalf("range too narrow: [%v, %v]", lo, hi)
	}
}

// An injected CAD event must actually appear in the data: the value at the
// bottom of the drop must be close to Drop degrees below the onset value.
func TestEventsAppearInData(t *testing.T) {
	cfg := Config{Seed: 11, Duration: 60 * SecondsPerDay, CADPerWeek: 3, AnomalyRate: -1, NoiseStd: 0.01}
	s, events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events scheduled over 60 days at 3/week")
	}
	checked := 0
	for i, e := range events {
		bottom := e.Start + e.DropLen
		if bottom > s.End() || e.Start < s.Start() {
			continue
		}
		// Skip events whose window overlaps another event: their
		// contributions superpose and single-event accounting breaks.
		overlaps := false
		for j, o := range events {
			if i != j && e.Start < o.End() && o.Start < e.End() {
				overlaps = true
				break
			}
		}
		if overlaps {
			continue
		}
		// After removing the deterministic baseline, the deepest sample in
		// the event window must reach close to -Drop (sampling at 300 s can
		// miss the exact bottom of a >=20 min ramp by only a little).
		cfgN, _ := cfg.Normalize()
		deepest := math.Inf(1)
		for _, p := range s.Slice(e.Start, e.End()).Points() {
			if d := p.V - base(cfgN, p.T); d < deepest {
				deepest = d
			}
		}
		if math.Abs(deepest-(-e.Drop)) > 0.5 {
			t.Errorf("event at %d: deepest excursion %.2f, injected drop %.2f", e.Start, deepest, e.Drop)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no events were checkable")
	}
}

func TestEventContributionShape(t *testing.T) {
	e := Event{Start: 1000, DropLen: 100, Drop: 5, Recovery: 200}
	if got := eventContribution(e, 999); got != 0 {
		t.Fatalf("before event: %v", got)
	}
	if got := eventContribution(e, 1000); got != 0 {
		t.Fatalf("at onset: %v", got)
	}
	if got := eventContribution(e, 1100); got != -5 {
		t.Fatalf("at bottom: %v", got)
	}
	if got := eventContribution(e, 1200); got != -2.5 {
		t.Fatalf("mid recovery: %v", got)
	}
	if got := eventContribution(e, 1300); got != 0 {
		t.Fatalf("after end: %v", got)
	}
}

func TestGenerateTransect(t *testing.T) {
	cfg := Config{Seed: 21, Duration: 2 * SecondsPerDay}
	sensors, events, err := GenerateTransect(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sensors) != 5 {
		t.Fatalf("sensor count = %d", len(sensors))
	}
	for i, s := range sensors {
		if s.Len() == 0 {
			t.Fatalf("sensor %d empty", i)
		}
		if s.Len() != sensors[0].Len() {
			t.Fatalf("sensor %d length differs", i)
		}
	}
	if reflect.DeepEqual(sensors[0].Points(), sensors[1].Points()) {
		t.Fatal("adjacent sensors identical")
	}
	_ = events
	// Determinism across calls.
	again, _, err := GenerateTransect(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sensors {
		if !reflect.DeepEqual(sensors[i].Points(), again[i].Points()) {
			t.Fatalf("transect sensor %d not deterministic", i)
		}
	}
}

func TestGenerateTransectRejectsBadCount(t *testing.T) {
	if _, _, err := GenerateTransect(dayConfig(1, 1), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Generate(Config{Seed: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, _, err := Generate(Config{Seed: 1, Duration: 100, SampleInterval: -5}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, _, err := Generate(Config{Seed: 1, Duration: 100, NoisePhi: 1.5}); err == nil {
		t.Fatal("NoisePhi >= 1 accepted")
	}
	if _, _, err := Generate(Config{Seed: 1, Duration: 100, CADMinDrop: 5, CADMaxDrop: 3}); err == nil {
		t.Fatal("inverted drop range accepted")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	mean := 2.5
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("poisson mean = %v, want ~%v", got, mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
}

func TestRandomWalk(t *testing.T) {
	s, err := RandomWalk(9, 100, 60, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 || s.At(0).V != 50 || s.At(0).T != 0 || s.At(1).T != 60 {
		t.Fatalf("walk shape wrong: len=%d first=%v", s.Len(), s.At(0))
	}
	again, _ := RandomWalk(9, 100, 60, 50, 1)
	if !reflect.DeepEqual(s.Points(), again.Points()) {
		t.Fatal("random walk not deterministic")
	}
	if _, err := RandomWalk(9, 0, 60, 50, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestBaseSignalDiurnalCycle(t *testing.T) {
	cfg, _ := Config{Duration: 1}.Normalize()
	// Afternoon (15:00) should be warmer than pre-dawn (03:00) on the
	// same day.
	afternoon := base(cfg, 15*3600)
	predawn := base(cfg, 3*3600)
	if afternoon <= predawn {
		t.Fatalf("diurnal cycle inverted: 15:00=%v 03:00=%v", afternoon, predawn)
	}
}
