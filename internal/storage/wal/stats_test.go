package wal

import (
	"testing"

	"segdiff/internal/storage/pager"
)

// TestLogStats pins the counter semantics the metrics registry folds
// into engine snapshots: commits and fsyncs advance on Commit, fsyncs
// also on Truncate, and pagesLogged counts page images (deduplicated
// staging counts the final image only).
func TestLogStats(t *testing.T) {
	l, err := OpenFile(pager.NewMemFile())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := l.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	if got := l.Stats(); got != (Stats{}) {
		t.Fatalf("fresh log stats = %+v", got)
	}

	page := make([]byte, 8)
	if err := l.Stage(0, 1, page); err != nil {
		t.Fatal(err)
	}
	if err := l.Stage(0, 1, page); err != nil { // dedup: same page restaged
		t.Fatal(err)
	}
	if err := l.Stage(0, 2, page); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	want := Stats{Commits: 1, Fsyncs: 1, PagesLogged: 2}
	if got := l.Stats(); got != want {
		t.Fatalf("after commit: %+v, want %+v", got, want)
	}

	if err := l.AppendPage(0, 3, page); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	want = Stats{Commits: 2, Fsyncs: 3, PagesLogged: 3}
	if got := l.Stats(); got != want {
		t.Fatalf("after append+commit+truncate: %+v, want %+v", got, want)
	}

	// An aborted batch logs nothing.
	if err := l.Stage(0, 4, page); err != nil {
		t.Fatal(err)
	}
	l.DiscardStaged()
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().PagesLogged; got != 3 {
		t.Fatalf("discarded stage logged pages: %d", got)
	}
}
