package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"segdiff/internal/storage/pager"
)

// buildLog writes n committed batches through the production writer and
// returns the raw log bytes. Batch i stages pages i and i+1 of file 1 with
// recognizable payloads, so replayed images can be checked byte-for-byte.
func buildLog(tb testing.TB, n int) []byte {
	tb.Helper()
	f := pager.NewMemFile()
	l, err := OpenFile(f)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for p := i; p < i+2; p++ {
			data := bytes.Repeat([]byte{byte(0x10*i + p)}, 64)
			if err := l.Stage(1, uint32(p), data); err != nil {
				tb.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		tb.Fatal(err)
	}
	raw := make([]byte, size)
	if _, err := f.ReadAt(raw, 0); err != nil {
		tb.Fatal(err)
	}
	return raw
}

// replayBytes runs replay over raw bytes via the pager.File path recovery
// uses and collects the applied images.
func replayBytes(tb testing.TB, raw []byte) (int, []PageImage, error) {
	tb.Helper()
	f := pager.NewMemFile()
	if len(raw) > 0 {
		if _, err := f.WriteAt(raw, 0); err != nil {
			tb.Fatal(err)
		}
	}
	var images []PageImage
	batches, err := ReplayFile(f, func(img PageImage) error {
		images = append(images, img)
		return nil
	})
	return batches, images, err
}

// FuzzReplay feeds arbitrary byte tails to the replay path and checks the
// crash-recovery contract no input may break:
//
//   - replay never panics and, on a healthy medium, never reports an
//     error — every malformed input is classified as a torn tail, because
//     a "genuine read error" verdict aborts recovery;
//   - replay is deterministic: the same bytes yield the same batches and
//     the same images;
//   - a corrupt tail never destroys committed batches: prepending a valid
//     committed log to the fuzz input must replay at least those batches,
//     with their images intact;
//   - apply only ever sees images from complete batches, each within the
//     record length bound.
//
// The corpus is seeded with real logs produced by the production writer,
// plus truncated, bit-flipped, unknown-op and oversized-length variants.
func FuzzReplay(f *testing.F) {
	real3 := buildLog(f, 3)
	f.Add([]byte{})
	f.Add(buildLog(f, 1))
	f.Add(real3)
	f.Add(real3[:len(real3)-1]) // torn final commit marker
	f.Add(real3[:headerLen+7])  // torn payload of the first record
	f.Add(real3[:5])            // torn header
	flipped := append([]byte(nil), real3...)
	flipped[len(flipped)/2] ^= 0x40 // checksum mismatch mid-log
	f.Add(flipped)
	unknown := append([]byte(nil), real3...)
	unknown = append(unknown, makeRecord(0xEE, 9, 9, []byte("??"))...)
	f.Add(unknown) // unknown op after valid batches
	huge := make([]byte, headerLen)
	huge[0] = opPageImage
	binary.LittleEndian.PutUint32(huge[7:11], 1<<30) // implausible length
	f.Add(huge)

	prefix := buildLog(f, 2)
	prefixBatches, prefixImages, err := replayBytes(f, prefix)
	if err != nil || prefixBatches != 2 {
		f.Fatalf("bad seed prefix: %d batches, err %v", prefixBatches, err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		batches, images, err := replayBytes(t, data)
		if err != nil {
			t.Fatalf("replay error on healthy medium: %v", err)
		}
		for _, img := range images {
			if len(img.Data) > 1<<20 {
				t.Fatalf("image exceeds record length bound: %d", len(img.Data))
			}
		}
		batches2, images2, err := replayBytes(t, data)
		if err != nil || batches2 != batches || len(images2) != len(images) {
			t.Fatalf("replay not deterministic: (%d, %d, %v) vs (%d, %d, nil)",
				batches2, len(images2), err, batches, len(images))
		}
		for i := range images {
			if !sameImage(images[i], images2[i]) {
				t.Fatalf("image %d differs between replays", i)
			}
		}

		// Committed batches must survive any tail appended after them.
		withTail := append(append([]byte(nil), prefix...), data...)
		tb, timages, err := replayBytes(t, withTail)
		if err != nil {
			t.Fatalf("replay error on committed prefix + tail: %v", err)
		}
		if tb < prefixBatches || len(timages) < len(prefixImages) {
			t.Fatalf("tail destroyed committed batches: %d < %d", tb, prefixBatches)
		}
		for i, want := range prefixImages {
			if !sameImage(timages[i], want) {
				t.Fatalf("tail corrupted committed image %d", i)
			}
		}
	})
}

func sameImage(a, b PageImage) bool {
	return a.File == b.File && a.Page == b.Page && bytes.Equal(a.Data, b.Data)
}

// makeRecord assembles one wire-format record with a valid checksum.
func makeRecord(op byte, file uint16, page uint32, data []byte) []byte {
	rec := make([]byte, headerLen+len(data))
	rec[0] = op
	binary.LittleEndian.PutUint16(rec[1:3], file)
	binary.LittleEndian.PutUint32(rec[3:7], page)
	binary.LittleEndian.PutUint32(rec[7:11], uint32(len(data)))
	crc := crc32.NewIEEE()
	crc.Write(rec[:11])
	crc.Write(data)
	binary.LittleEndian.PutUint32(rec[11:15], crc.Sum32())
	copy(rec[headerLen:], data)
	return rec
}

// TestReplaySeedVariants pins the classification of each seed-corpus shape
// so the fuzz invariants stay anchored to concrete expectations: how many
// batches each variant must replay on every run, not just "no panic".
func TestReplaySeedVariants(t *testing.T) {
	real3 := buildLog(t, 3)
	flipped := append([]byte(nil), real3...)
	flipped[len(flipped)/2] ^= 0x40
	unknown := append(append([]byte(nil), real3...), makeRecord(0xEE, 9, 9, []byte("??"))...)
	for _, tc := range []struct {
		name        string
		raw         []byte
		wantBatches int
	}{
		{"empty", nil, 0},
		{"three committed batches", real3, 3},
		{"torn commit marker", real3[:len(real3)-1], 2},
		{"torn payload", real3[:headerLen+7], 0},
		{"torn header", real3[:5], 0},
		{"bit flip discards from corruption on", flipped, 1},
		{"unknown op stops after valid batches", unknown, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batches, images, err := replayBytes(t, tc.raw)
			if err != nil {
				t.Fatal(err)
			}
			if batches != tc.wantBatches {
				t.Fatalf("batches = %d, want %d", batches, tc.wantBatches)
			}
			if want := 2 * tc.wantBatches; len(images) != want {
				t.Fatalf("images = %d, want %d", len(images), want)
			}
		})
	}
}
