// Package wal implements a redo-only write-ahead log of page after-images
// with batch commit markers, paired with the pager's no-steal eviction
// policy:
//
//   - between commits, the pager never writes dirty unlogged pages to the
//     data files, so data files only ever contain committed page content;
//   - the engine stages the after-image of every dirty page (via
//     pager.LogDirty and Stage) into an in-memory buffer that keeps only
//     the last image per page — within one batch only the final image
//     matters for redo — and Commit appends the staged images plus a
//     commit marker with a single flush and fsync (group commit);
//   - recovery replays the page images of every complete batch in log
//     order, which is idempotent; a torn tail (missing commit marker or bad
//     checksum) is discarded, while a genuine read error during replay is
//     reported — silently treating a transient I/O fault as a torn tail
//     would drop committed batches;
//   - Checkpoint (performed by the engine) flushes all pagers to the data
//     files and truncates the log.
//
// Pages from multiple files share one log; records carry a small file
// number assigned by the engine's catalog.
//
// The log is written through the pager.File abstraction, so the engine can
// route it through the same injectable file layer as the data files (see
// sqlmini.Options.FileFactory and internal/storage/faultfs): crash
// simulation covers WAL writes and fsyncs exactly like page writes.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"segdiff/internal/storage/pager"
)

// Record types.
const (
	opPageImage = 1
	opCommit    = 2
)

const headerLen = 1 + 2 + 4 + 4 + 4 // op, file, page, len, crc

// flushThreshold is the write-buffer size above which appends spill to the
// file (without committing them).
const flushThreshold = 1 << 16

// Log is an append-only write-ahead log. Not safe for concurrent use,
// except for Stats, which may be called from any goroutine.
type Log struct {
	f      pager.File
	buf    []byte // appended records not yet written to f
	off    int64  // file offset where buf will be written
	closed bool

	// Group-commit staging area: page images buffered for the next Commit,
	// deduplicated by (file, page).
	staged    map[uint64]int // (file, page) -> index into stagedBuf
	stagedBuf []stagedPage

	// Cumulative counters. The log has a single writer, but metrics
	// snapshots read these from other goroutines, so they are atomics.
	commits     atomic.Uint64
	fsyncs      atomic.Uint64
	pagesLogged atomic.Uint64
}

// Stats are cumulative log counters; see Log.Stats.
type Stats struct {
	Commits     uint64 // committed batches (commit markers written and fsynced)
	Fsyncs      uint64 // fsyncs issued (commits plus truncations)
	PagesLogged uint64 // page images appended to the log
}

// Stats returns a snapshot of the log's cumulative counters. Safe to
// call concurrently with the (single) log writer.
func (l *Log) Stats() Stats {
	return Stats{
		Commits:     l.commits.Load(),
		Fsyncs:      l.fsyncs.Load(),
		PagesLogged: l.pagesLogged.Load(),
	}
}

type stagedPage struct {
	file uint16
	page uint32
	data []byte
}

// Open opens (creating if absent) the log at path, positioned for append.
func Open(path string) (*Log, error) {
	f, err := pager.OpenOSFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l, err := OpenFile(f)
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return l, nil
}

// OpenFile wraps an already-open file as a log positioned for append. The
// log takes ownership of f (Close closes it).
func OpenFile(f pager.File) (*Log, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("wal: size: %w", err)
	}
	return &Log{f: f, off: size}, nil
}

// spill writes the buffered records to the file without fsync.
func (l *Log) spill() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.WriteAt(l.buf, l.off); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	l.off += int64(len(l.buf))
	l.buf = l.buf[:0]
	return nil
}

func (l *Log) appendRecord(op byte, file uint16, page uint32, data []byte) error {
	if l.closed {
		return errors.New("wal: use after close")
	}
	var hdr [headerLen]byte
	hdr[0] = op
	binary.LittleEndian.PutUint16(hdr[1:3], file)
	binary.LittleEndian.PutUint32(hdr[3:7], page)
	binary.LittleEndian.PutUint32(hdr[7:11], uint32(len(data)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:11])
	crc.Write(data)
	binary.LittleEndian.PutUint32(hdr[11:15], crc.Sum32())
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, data...)
	if op == opPageImage {
		l.pagesLogged.Add(1)
	}
	if len(l.buf) >= flushThreshold {
		return l.spill()
	}
	return nil
}

// AppendPage logs the after-image of one page immediately. Most writers
// should prefer Stage, which deduplicates images within the batch; the two
// may be mixed (appended records always precede staged ones in the log).
func (l *Log) AppendPage(file uint16, page uint32, data []byte) error {
	return l.appendRecord(opPageImage, file, page, data)
}

// Stage buffers the after-image of one page for the next Commit (group
// commit). Staging the same (file, page) again replaces the earlier image:
// within one committed batch only the final image of a page matters for
// redo, so duplicates never reach the log. data is copied.
func (l *Log) Stage(file uint16, page uint32, data []byte) error {
	if l.closed {
		return errors.New("wal: use after close")
	}
	k := uint64(file)<<32 | uint64(page)
	if i, ok := l.staged[k]; ok {
		l.stagedBuf[i].data = append(l.stagedBuf[i].data[:0], data...)
		return nil
	}
	if l.staged == nil {
		l.staged = map[uint64]int{}
	}
	l.staged[k] = len(l.stagedBuf)
	l.stagedBuf = append(l.stagedBuf, stagedPage{
		file: file, page: page, data: append([]byte(nil), data...),
	})
	return nil
}

// StagedPages returns the number of distinct page images currently staged.
func (l *Log) StagedPages() int { return len(l.stagedBuf) }

// DiscardStaged drops all staged page images without logging them — the
// engine's batch-abort path.
func (l *Log) DiscardStaged() {
	l.stagedBuf = l.stagedBuf[:0]
	for k := range l.staged {
		delete(l.staged, k)
	}
}

// Commit writes the staged page images followed by a commit marker and
// durably flushes the log in a single flush + fsync. Images appended with
// AppendPage since the previous Commit are part of the same batch.
func (l *Log) Commit() error {
	for _, s := range l.stagedBuf {
		if err := l.appendRecord(opPageImage, s.file, s.page, s.data); err != nil {
			return err
		}
	}
	l.DiscardStaged()
	if err := l.appendRecord(opCommit, 0, 0, nil); err != nil {
		return err
	}
	if err := l.spill(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	l.commits.Add(1)
	return nil
}

// Flush pushes buffered records to the file without committing them.
// Staged images are not flushed — they only reach the file at Commit.
func (l *Log) Flush() error {
	if l.closed {
		return nil
	}
	return l.spill()
}

// Size returns the current log length in bytes (including buffered data).
func (l *Log) Size() (int64, error) {
	if err := l.spill(); err != nil {
		return 0, err
	}
	return l.off, nil
}

// Truncate discards the whole log; the engine calls it after a checkpoint
// has flushed all data files.
func (l *Log) Truncate() error {
	l.buf = l.buf[:0] // buffered records are part of the discarded log
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	l.off = 0
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// Close flushes and closes the log file. It does not commit: an open batch
// is intentionally discarded by recovery.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.spill(); err != nil {
		return err
	}
	return l.f.Close()
}

// PageImage is one replayed record.
type PageImage struct {
	File uint16
	Page uint32
	Data []byte
}

// errTorn marks record-read failures that recovery treats as a torn tail:
// the record was never acknowledged, so replay stops cleanly before it.
var errTorn = errors.New("wal: torn record")

// tornErr wraps a reason into a torn-tail error.
func tornErr(reason string) error { return fmt.Errorf("%w: %s", errTorn, reason) }

// Replay reads the log at path and calls apply for every page image that
// belongs to a complete (committed) batch, in log order. It returns the
// number of committed batches replayed. A missing file is zero batches. A
// torn or corrupt tail terminates replay silently (those records were
// never acknowledged); a genuine read error is reported — treating it as a
// torn tail would silently drop committed batches.
func Replay(path string, apply func(PageImage) error) (batches int, err error) {
	f, ferr := os.Open(path)
	if os.IsNotExist(ferr) {
		return 0, nil
	}
	if ferr != nil {
		return 0, fmt.Errorf("wal: replay open: %w", ferr)
	}
	// The file is read-only, but a close failure can still hide an I/O
	// problem on the very log we are recovering from — surface it unless
	// replay already failed for a better reason.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal: replay close: %w", cerr)
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: replay stat: %w", err)
	}
	return replay(io.NewSectionReader(f, 0, st.Size()), apply)
}

// ReplayFile replays the log stored in f (see Replay). It does not close
// f; an empty file is zero batches.
func ReplayFile(f pager.File, apply func(PageImage) error) (int, error) {
	size, err := f.Size()
	if err != nil {
		return 0, fmt.Errorf("wal: replay size: %w", err)
	}
	return replay(io.NewSectionReader(f, 0, size), apply)
}

// Replay re-reads this log's own file and applies every committed batch —
// the engine's batch-abort path, which restores committed page content
// after the buffer pools are discarded. Appended-but-uncommitted records
// are flushed first so the committed prefix on disk is complete; they are
// ignored by replay (no commit marker follows them).
func (l *Log) Replay(apply func(PageImage) error) (int, error) {
	if l.closed {
		return 0, errors.New("wal: use after close")
	}
	if err := l.spill(); err != nil {
		return 0, err
	}
	return ReplayFile(l.f, apply)
}

func replay(src io.Reader, apply func(PageImage) error) (batches int, err error) {
	r := bufio.NewReaderSize(src, 1<<16)
	var pending []PageImage
	for {
		rec, op, err := readRecord(r)
		if err == io.EOF {
			return batches, nil
		}
		if errors.Is(err, errTorn) {
			// Torn tail: the batch it belongs to was never committed.
			return batches, nil
		}
		if err != nil {
			return batches, fmt.Errorf("wal: replay read: %w", err)
		}
		switch op {
		case opPageImage:
			pending = append(pending, rec)
		case opCommit:
			for _, img := range pending {
				if err := apply(img); err != nil {
					return batches, fmt.Errorf("wal: apply page %d of file %d: %w", img.Page, img.File, err)
				}
			}
			pending = pending[:0]
			batches++
		default:
			return batches, nil // unknown record: treat as torn tail
		}
	}
}

func readRecord(r *bufio.Reader) (PageImage, byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		switch {
		case err == io.EOF:
			return PageImage{}, 0, io.EOF
		case err == io.ErrUnexpectedEOF:
			return PageImage{}, 0, tornErr("short header")
		default:
			return PageImage{}, 0, err
		}
	}
	op := hdr[0]
	file := binary.LittleEndian.Uint16(hdr[1:3])
	page := binary.LittleEndian.Uint32(hdr[3:7])
	n := binary.LittleEndian.Uint32(hdr[7:11])
	want := binary.LittleEndian.Uint32(hdr[11:15])
	if n > 1<<20 {
		return PageImage{}, 0, tornErr("implausible record length")
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return PageImage{}, 0, tornErr("short payload")
		}
		return PageImage{}, 0, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:11])
	crc.Write(data)
	if crc.Sum32() != want {
		return PageImage{}, 0, tornErr("checksum mismatch")
	}
	return PageImage{File: file, Page: page, Data: data}, op, nil
}
