package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"segdiff/internal/storage/pager"
)

func tmpLog(t *testing.T) (string, *Log) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, l
}

func TestCommitAndReplay(t *testing.T) {
	path, l := tmpLog(t)
	pageA := bytes.Repeat([]byte{1}, 64)
	pageB := bytes.Repeat([]byte{2}, 64)
	if err := l.AppendPage(0, 10, pageA); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPage(1, 20, pageB); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []PageImage
	batches, err := Replay(path, func(img PageImage) error {
		got = append(got, img)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 1 {
		t.Fatalf("batches = %d", batches)
	}
	if len(got) != 2 {
		t.Fatalf("images = %d", len(got))
	}
	if got[0].File != 0 || got[0].Page != 10 || !bytes.Equal(got[0].Data, pageA) {
		t.Fatalf("image 0 = %+v", got[0])
	}
	if got[1].File != 1 || got[1].Page != 20 || !bytes.Equal(got[1].Data, pageB) {
		t.Fatalf("image 1 = %+v", got[1])
	}
}

func TestUncommittedTailDiscarded(t *testing.T) {
	path, l := tmpLog(t)
	if err := l.AppendPage(0, 1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second batch without a commit marker.
	if err := l.AppendPage(0, 2, []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []PageImage
	batches, err := Replay(path, func(img PageImage) error {
		got = append(got, img)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 1 || len(got) != 1 || string(got[0].Data) != "committed" {
		t.Fatalf("replay = %d batches, %d images", batches, len(got))
	}
}

func TestTornTailDiscarded(t *testing.T) {
	path, l := tmpLog(t)
	if err := l.AppendPage(0, 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPage(0, 2, bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through the second batch.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-30); err != nil {
		t.Fatal(err)
	}

	batches, err := Replay(path, func(PageImage) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if batches != 1 {
		t.Fatalf("batches after tear = %d", batches)
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	path, l := tmpLog(t)
	if err := l.AppendPage(0, 1, bytes.Repeat([]byte{5}, 50)); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	batches, err := Replay(path, func(PageImage) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if batches != 0 {
		t.Fatalf("corrupt batch replayed: %d", batches)
	}
}

func TestReplayMissingFile(t *testing.T) {
	batches, err := Replay(filepath.Join(t.TempDir(), "absent.log"), func(PageImage) error { return nil })
	if err != nil || batches != 0 {
		t.Fatalf("missing file: %d, %v", batches, err)
	}
}

func TestTruncate(t *testing.T) {
	path, l := tmpLog(t)
	if err := l.AppendPage(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	sz, err := l.Size()
	if err != nil || sz != 0 {
		t.Fatalf("size after truncate = %d, %v", sz, err)
	}
	// Log must be reusable after truncation.
	if err := l.AppendPage(0, 2, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []PageImage
	if _, err := Replay(path, func(img PageImage) error {
		got = append(got, img)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Page != 2 {
		t.Fatalf("after truncate replay = %+v", got)
	}
}

func TestUseAfterClose(t *testing.T) {
	_, l := tmpLog(t)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPage(0, 1, nil); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

// End-to-end with the pager: simulate a crash after commit but before
// checkpoint; replay must restore the committed content.
func TestCrashRecoveryWithPager(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.db")
	logPath := filepath.Join(dir, "wal.log")

	f, err := pager.OpenOSFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pager.New(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	p.SetNoSteal(true)
	l, err := Open(logPath)
	if err != nil {
		t.Fatal(err)
	}

	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), "batch-one")
	pg.MarkDirty()
	pg.Release()

	// Commit: log dirty pages, then the marker.
	if err := p.LogDirty(func(id pager.PageID, data []byte) error {
		return l.AppendPage(0, uint32(id), data)
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	// Second, uncommitted batch.
	pg2, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg2.Data(), "batch-two")
	pg2.MarkDirty()
	pg2.Release()

	// "Crash": drop the pager without flushing; data file never saw any
	// page (no-steal and no checkpoint). Close the log abruptly.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: replay committed images into the data file.
	f2, err := pager.OpenOSFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Replay(logPath, func(img PageImage) error {
		_, werr := f2.WriteAt(img.Data, int64(img.Page)*pager.PageSize)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pager.New(f2, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data()[:9]) != "batch-one" {
		t.Fatalf("recovered %q, want committed batch-one", got.Data()[:9])
	}
	got.Release()
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}

// The pager must not evict dirty unlogged frames under no-steal, and must
// evict them once logged.
func TestNoStealEviction(t *testing.T) {
	f := pager.NewMemFile()
	p, err := pager.New(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.SetNoSteal(true)
	for i := 0; i < 4; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(i + 1)
		pg.MarkDirty()
		pg.Release()
	}
	// Nothing may have reached the file yet.
	sz, _ := f.Size()
	if sz != 0 {
		t.Fatalf("dirty unlogged pages written under no-steal: %d bytes", sz)
	}
	logged := 0
	if err := p.LogDirty(func(pager.PageID, []byte) error {
		logged++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if logged != 4 {
		t.Fatalf("logged %d frames", logged)
	}
	// Second LogDirty finds nothing new.
	again := 0
	if err := p.LogDirty(func(pager.PageID, []byte) error { again++; return nil }); err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("re-logged %d frames", again)
	}
	// Now eviction may proceed: allocating more pages shrinks the pool.
	for i := 0; i < 4; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.MarkDirty()
		pg.Release()
		if err := p.LogDirty(func(pager.PageID, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions after logging")
	}
}
