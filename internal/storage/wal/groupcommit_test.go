package wal

import (
	"bytes"
	"path/filepath"
	"testing"

	"segdiff/internal/storage/pager"
)

func TestStageDeduplicatesWithinBatch(t *testing.T) {
	path, l := tmpLog(t)
	if err := l.Stage(0, 7, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Stage(1, 7, []byte("other-file")); err != nil {
		t.Fatal(err)
	}
	if err := l.Stage(0, 7, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l.Stage(0, 7, []byte("final")); err != nil {
		t.Fatal(err)
	}
	if n := l.StagedPages(); n != 2 {
		t.Fatalf("staged pages = %d, want 2 after dedupe", n)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []PageImage
	batches, err := Replay(path, func(img PageImage) error {
		got = append(got, img)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the last image per (file, page) reaches the log.
	if batches != 1 || len(got) != 2 {
		t.Fatalf("replay = %d batches, %d images, want 1/2", batches, len(got))
	}
	if got[0].File != 0 || got[0].Page != 7 || string(got[0].Data) != "final" {
		t.Fatalf("image 0 = %+v", got[0])
	}
	if got[1].File != 1 || string(got[1].Data) != "other-file" {
		t.Fatalf("image 1 = %+v", got[1])
	}
}

func TestDiscardStaged(t *testing.T) {
	path, l := tmpLog(t)
	if err := l.Stage(0, 1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Stage(0, 2, []byte("aborted")); err != nil {
		t.Fatal(err)
	}
	l.DiscardStaged()
	if n := l.StagedPages(); n != 0 {
		t.Fatalf("staged pages after discard = %d", n)
	}
	// A later commit must not resurrect discarded images. The empty commit
	// writes only a marker.
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []PageImage
	if _, err := Replay(path, func(img PageImage) error {
		got = append(got, img)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Data) != "committed" {
		t.Fatalf("replay images = %+v", got)
	}
}

func TestStageAfterCloseRejected(t *testing.T) {
	_, l := tmpLog(t)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Stage(0, 1, []byte("x")); err == nil {
		t.Fatal("stage after close accepted")
	}
}

// Crash simulation under group commit, mirroring TestCrashRecoveryWithPager
// but with the staged write path: a committed batch whose pages were staged
// (with within-batch duplicates deduped) survives; a staged-but-uncommitted
// batch leaves no trace — staged images never touch the log file before
// Commit, so there is not even a torn tail to discard.
func TestCrashRecoveryWithStagedBatches(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.db")
	logPath := filepath.Join(dir, "wal.log")

	f, err := pager.OpenOSFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pager.New(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	p.SetNoSteal(true)
	l, err := Open(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Batch one: write page 0 twice before committing; only the final image
	// may reach the log.
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), "draft-one")
	pg.MarkDirty()
	pg.Release()
	if err := p.LogDirty(func(id pager.PageID, data []byte) error {
		return l.Stage(0, uint32(id), data)
	}); err != nil {
		t.Fatal(err)
	}
	pg, err = p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), "batch-one")
	pg.MarkDirty()
	pg.Release()
	if err := p.LogDirty(func(id pager.PageID, data []byte) error {
		return l.Stage(0, uint32(id), data)
	}); err != nil {
		t.Fatal(err)
	}
	if n := l.StagedPages(); n != 1 {
		t.Fatalf("staged = %d, want 1 (deduped)", n)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	// Batch two: staged but never committed.
	pg2, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg2.Data(), "batch-two")
	pg2.MarkDirty()
	pg2.Release()
	if err := p.LogDirty(func(id pager.PageID, data []byte) error {
		return l.Stage(0, uint32(id), data)
	}); err != nil {
		t.Fatal(err)
	}

	// "Crash": abandon pager and staged images; close log abruptly.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery.
	f2, err := pager.OpenOSFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	var images int
	batches, err := Replay(logPath, func(img PageImage) error {
		images++
		_, werr := f2.WriteAt(img.Data, int64(img.Page)*pager.PageSize)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 1 || images != 1 {
		t.Fatalf("replay = %d batches, %d images, want 1/1", batches, images)
	}
	p2, err := pager.New(f2, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data()[:9], []byte("batch-one")) {
		t.Fatalf("recovered %q, want committed batch-one", got.Data()[:9])
	}
	got.Release()
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}
