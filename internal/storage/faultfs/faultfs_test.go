package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"segdiff/internal/storage/pager"
)

func mustOpen(t *testing.T, r *Registry, name string) pager.File {
	t.Helper()
	f, err := r.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCleanRunBehavesLikeAFile(t *testing.T) {
	r := New(1)
	f := mustOpen(t, r, "a")
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("world"), 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "helloworld" {
		t.Fatalf("content = %q", buf)
	}
	if sz, _ := f.Size(); sz != 10 {
		t.Fatalf("size = %d", sz)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 5 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Ops: 2 writes + 1 truncate + 1 sync.
	if got := r.Ops(); got != 4 {
		t.Fatalf("ops = %d, want 4", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n := r.OpenHandles(); n != 0 {
		t.Fatalf("open handles = %d, want 0", n)
	}
	if got := r.Snapshot()["a"]; string(got) != "hello" {
		t.Fatalf("durable = %q, want %q", got, "hello")
	}
}

func TestNegativeOffsetsRejected(t *testing.T) {
	r := New(1)
	f := mustOpen(t, r, "a")
	if _, err := f.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write accepted")
	}
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read accepted")
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestSharedBackingAcrossHandles(t *testing.T) {
	r := New(1)
	f1 := mustOpen(t, r, "a")
	f2 := mustOpen(t, r, "a")
	if _, err := f1.WriteAt([]byte("shared"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "shared" {
		t.Fatalf("second handle sees %q", buf)
	}
	if n := r.OpenHandles(); n != 2 {
		t.Fatalf("open handles = %d, want 2", n)
	}
}

func TestErrOnceRecovers(t *testing.T) {
	r := New(1)
	r.SetScript(Script{FailOp: 2, Mode: ErrOnce})
	f := mustOpen(t, r, "a")
	if _, err := f.WriteAt([]byte("one"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("two"), 3); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 error = %v, want injected", err)
	}
	// The failed write wrote nothing; the next attempt succeeds.
	if sz, _ := f.Size(); sz != 3 {
		t.Fatalf("size after failed write = %d, want 3", sz)
	}
	if _, err := f.WriteAt([]byte("two"), 3); err != nil {
		t.Fatalf("retry after transient error: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after transient error: %v", err)
	}
	if got := r.Snapshot()["a"]; string(got) != "onetwo" {
		t.Fatalf("durable = %q", got)
	}
	if r.Crashed() {
		t.Fatal("ErrOnce must not crash the registry")
	}
}

func TestPowerCutStrictBarrier(t *testing.T) {
	r := New(7)
	r.SetScript(Script{FailOp: 4, Mode: Crash, Survival: SurviveNone})
	f := mustOpen(t, r, "a")
	if _, err := f.WriteAt([]byte("durable!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // barrier: "durable!" survives
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("lost"), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("lost"), 12); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash op error = %v", err)
	}
	if !r.Crashed() {
		t.Fatal("registry not crashed")
	}
	// Everything after the barrier is gone.
	if got := r.Snapshot()["a"]; string(got) != "durable!" {
		t.Fatalf("durable = %q, want %q", got, "durable!")
	}
	// All subsequent ops fail, including on other files and opens.
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after crash = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after crash = %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after crash = %v", err)
	}
	if _, err := r.Open("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("open after crash = %v", err)
	}
}

func TestPowerCutSurviveAllKeepsUnsynced(t *testing.T) {
	r := New(7)
	r.SetScript(Script{FailOp: 3, Mode: Crash, Survival: SurviveAll})
	f := mustOpen(t, r, "a")
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("def"), 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) { // crash on the fsync itself
		t.Fatalf("sync = %v", err)
	}
	// SurviveAll: both unsynced writes made it to the platter; only the
	// acknowledgement was lost.
	if got := r.Snapshot()["a"]; string(got) != "abcdef" {
		t.Fatalf("durable = %q, want %q", got, "abcdef")
	}
}

func TestPowerCutTornWrite(t *testing.T) {
	// SurviveNone + Torn: the crashing write itself is the first lost op,
	// so a strict prefix of it may reach the durable image.
	r := New(3)
	r.SetScript(Script{FailOp: 1, Mode: Crash, Survival: SurviveNone, Torn: true})
	f := mustOpen(t, r, "a")
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if _, err := f.WriteAt(data, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash write = %v", err)
	}
	got := r.Snapshot()["a"]
	if len(got) >= len(data) {
		t.Fatalf("torn write survived whole: %d bytes", len(got))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("torn prefix content mismatch")
	}
}

func TestShortReadInjection(t *testing.T) {
	r := New(5)
	r.SetScript(Script{FailReadOp: 2})
	f := mustOpen(t, r, "a")
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, 64), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	n, err := f.ReadAt(buf, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 = %v, want injected short read", err)
	}
	if n >= len(buf) {
		t.Fatalf("short read returned %d of %d bytes", n, len(buf))
	}
	// Recovers: the next read is fine.
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 3: %v", err)
	}
}

// The core reproducibility contract: the same seed and script over the
// same operation sequence produce byte-identical durable snapshots.
func TestDeterministicSnapshots(t *testing.T) {
	run := func() map[string][]byte {
		r := New(42)
		r.SetScript(Script{FailOp: 9, Mode: Crash, Survival: SurvivePrefix, Torn: true})
		a := mustOpen(t, r, "a")
		b := mustOpen(t, r, "b")
		for i := 0; i < 4; i++ {
			a.WriteAt(bytes.Repeat([]byte{byte(i)}, 100), int64(i)*100) // ops 1..4 interleaved
			b.WriteAt(bytes.Repeat([]byte{byte(0xF0 | i)}, 50), int64(i)*50)
		}
		a.Sync() // op 9 = crash here
		b.Sync()
		return r.Snapshot()
	}
	s1, s2 := run(), run()
	if len(s1) != len(s2) {
		t.Fatalf("snapshot file sets differ: %d vs %d", len(s1), len(s2))
	}
	for name, data := range s1 {
		if !bytes.Equal(data, s2[name]) {
			t.Fatalf("file %s differs between identical runs", name)
		}
	}
	// And the prefix policy actually kept a strict prefix of issue order:
	// file a's surviving bytes must be a prefix of what was written.
	if len(s1["a"]) > 400 || len(s1["b"]) > 200 {
		t.Fatalf("snapshot larger than writes: a=%d b=%d", len(s1["a"]), len(s1["b"]))
	}
}

func TestOpsCountStableAcrossRuns(t *testing.T) {
	count := func() int64 {
		r := New(1)
		f := mustOpen(t, r, "x")
		for i := 0; i < 10; i++ {
			f.WriteAt([]byte{byte(i)}, int64(i))
		}
		f.Sync()
		f.Truncate(4)
		f.Sync()
		return r.Ops()
	}
	if a, b := count(), count(); a != b {
		t.Fatalf("op counts differ: %d vs %d", a, b)
	} else if a != 13 {
		t.Fatalf("ops = %d, want 13", a)
	}
}

func TestClosedHandleRejected(t *testing.T) {
	r := New(1)
	f := mustOpen(t, r, "a")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("double close must be idempotent")
	}
	if n := r.OpenHandles(); n != 0 {
		t.Fatalf("open handles = %d after double close", n)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("write on closed handle accepted")
	}
}

// A pager over a faultfs file must work end to end (the integration the
// crash harness relies on).
func TestPagerOverFaultFile(t *testing.T) {
	r := New(1)
	f := mustOpen(t, r, "db")
	pg, err := pager.New(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p, err := pg.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i)
		p.MarkDirty()
		p.Release()
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Snapshot()["db"]); got != 8*pager.PageSize {
		t.Fatalf("durable size = %d, want %d", got, 8*pager.PageSize)
	}
	if n := r.OpenHandles(); n != 0 {
		t.Fatalf("open handles = %d, want 0", n)
	}
}
