// Package faultfs is a deterministic fault-injection file layer for crash
// testing the storage engine. A Registry hands out in-memory files
// implementing pager.File (inject it via sqlmini.Options.FileFactory so
// heap tables, B+tree indexes and the write-ahead log all route through
// it) and executes one scripted fault:
//
//   - fail the Nth write-class operation (WriteAt, Sync, Truncate — one
//     global counter across every file of the registry) either as a
//     transient error the caller can recover from (ErrOnce) or as a
//     simulated power cut (Crash);
//   - a power cut freezes each file at its durable image: data synced at
//     the last Sync barrier always survives, and the Survival policy
//     decides the fate of unsynced writes (none / an RNG-chosen prefix in
//     global issue order / all), optionally tearing the first lost write
//     so a partial page hits the "disk";
//   - fail the Nth ReadAt with a short read (transient, recovers);
//   - everything is driven by a seeded RNG, so a (seed, script) pair
//     reproduces the exact same post-crash state, byte for byte.
//
// After a crash every operation on every handle fails with ErrInjected,
// like file descriptors of a dead process. Recovery is modeled by taking
// Snapshot() — the durable images — and seeding a fresh Registry with
// NewFromSnapshot, through which the engine is reopened and WAL replay
// runs.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"segdiff/internal/storage/pager"
)

// ErrInjected is the root of every injected failure; test code can
// errors.Is against it to tell scripted faults from genuine bugs.
var ErrInjected = errors.New("faultfs: injected fault")

// Mode selects what happens at the scripted fault point.
type Mode int

const (
	// Crash simulates a power cut: the scripted operation fails, the
	// durable images are frozen per the Survival policy, and every later
	// operation on the registry fails.
	Crash Mode = iota
	// ErrOnce fails the scripted operation with a transient error and
	// recovers: later operations succeed. The failed write is not applied
	// (a failed WriteAt writes nothing).
	ErrOnce
)

// Survival selects how much unsynced data a power cut preserves.
type Survival int

const (
	// SurviveNone is the strict sync-barrier model: only data durably
	// synced before the cut survives.
	SurviveNone Survival = iota
	// SurvivePrefix keeps an RNG-chosen prefix of the unsynced writes in
	// global issue order — the realistic model where the OS had written
	// back part of its dirty buffers.
	SurvivePrefix
	// SurviveAll keeps every issued write (the cache made it to disk, only
	// the fsync acknowledgement was lost).
	SurviveAll
)

// Script is one scripted fault. The zero Script injects nothing.
type Script struct {
	// FailOp fires the fault when the registry's global write-class
	// operation counter (WriteAt, Sync, Truncate across all files) reaches
	// this 1-based value; 0 never fires.
	FailOp int64
	// Mode is what happens at FailOp.
	Mode Mode
	// Survival applies in Crash mode.
	Survival Survival
	// Torn, in Crash mode, applies an RNG-chosen strict prefix of the
	// first lost write to the durable image — a torn page.
	Torn bool
	// FailReadOp fails the Nth ReadAt (1-based, global) with a short
	// read, once; 0 never fires.
	FailReadOp int64
}

type writeOp struct {
	seq   int64
	off   int64 // write offset, or new size for a truncate
	data  []byte
	trunc bool
}

type state struct {
	name     string
	durable  []byte
	volatile []byte
	pending  []writeOp // unsynced writes in issue order
}

// Registry owns a set of fault-injected in-memory files and the script.
// It is safe for concurrent use (the engine syncs many files under one
// commit and the pager may fault pages from reader goroutines).
type Registry struct {
	mu      sync.Mutex
	rng     *rand.Rand
	script  Script
	ops     int64
	readOps int64
	seq     int64
	crashed bool
	files   map[string]*state
	handles int
}

// New returns a registry with no faults scripted; SetScript arms it.
func New(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		files: map[string]*state{},
	}
}

// NewFromSnapshot returns a registry whose files start at the given
// contents — the post-crash disk handed to recovery.
func NewFromSnapshot(seed int64, snap map[string][]byte) *Registry {
	r := New(seed)
	for name, data := range snap {
		r.files[name] = &state{
			name:     name,
			durable:  append([]byte(nil), data...),
			volatile: append([]byte(nil), data...),
		}
	}
	return r
}

// SetScript arms (or replaces) the fault script. Counters are not reset:
// scripting FailOp below the current op count never fires.
func (r *Registry) SetScript(s Script) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.script = s
}

// Ops returns the number of write-class operations (WriteAt, Sync,
// Truncate) issued so far; a clean run's total is the fault-point space
// the crash harness enumerates.
func (r *Registry) Ops() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops
}

// Reads returns the number of ReadAt operations issued so far.
func (r *Registry) Reads() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.readOps
}

// Crashed reports whether the scripted power cut has fired.
func (r *Registry) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}

// OpenHandles returns the number of handles opened and not yet closed —
// the harness's fd-leak check.
func (r *Registry) OpenHandles() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.handles
}

// Snapshot deep-copies the durable image of every file: exactly what a
// machine reboot would find on disk.
func (r *Registry) Snapshot() map[string][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte, len(r.files))
	for name, st := range r.files {
		out[name] = append([]byte(nil), st.durable...)
	}
	return out
}

// Open opens (creating if absent) the named file. It matches the
// sqlmini.Options.FileFactory signature. Handles of the same name share
// one backing file, like paths on a real filesystem.
func (r *Registry) Open(path string) (pager.File, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return nil, fmt.Errorf("%w: open %s after power cut", ErrInjected, path)
	}
	st, ok := r.files[path]
	if !ok {
		st = &state{name: path}
		r.files[path] = st
	}
	r.handles++
	return &File{r: r, st: st}, nil
}

// hit reports whether the current (just-incremented) write-class op is the
// scripted fault point.
//
// locks: r.mu
func (r *Registry) hit() bool {
	return r.script.FailOp != 0 && r.ops == r.script.FailOp
}

// powerCut freezes every file at its durable image per the Survival
// policy and marks the registry crashed.
//
// locks: r.mu
func (r *Registry) powerCut() {
	var lost []struct {
		st *state
		op writeOp
	}
	for _, st := range r.files {
		for _, op := range st.pending {
			lost = append(lost, struct {
				st *state
				op writeOp
			}{st, op})
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].op.seq < lost[j].op.seq })

	keep := 0
	switch r.script.Survival {
	case SurviveNone:
		keep = 0
	case SurviveAll:
		keep = len(lost)
	case SurvivePrefix:
		if len(lost) > 0 {
			keep = r.rng.Intn(len(lost) + 1)
		}
	}
	for i := 0; i < keep; i++ {
		lost[i].st.durable = applyOp(lost[i].st.durable, lost[i].op, -1)
	}
	if r.script.Torn && keep < len(lost) {
		// The first write that didn't fully make it is torn: a strict
		// prefix of its bytes reaches the durable image.
		op := lost[keep].op
		if !op.trunc && len(op.data) > 0 {
			lost[keep].st.durable = applyOp(lost[keep].st.durable, op, r.rng.Intn(len(op.data)))
		}
	}
	for _, st := range r.files {
		st.volatile = nil
		st.pending = nil
	}
	r.crashed = true
}

// applyOp applies one write to a durable image; tornLen >= 0 limits the
// write to its first tornLen bytes.
func applyOp(buf []byte, op writeOp, tornLen int) []byte {
	if op.trunc {
		if op.off <= int64(len(buf)) {
			return buf[:op.off]
		}
		grown := make([]byte, op.off)
		copy(grown, buf)
		return grown
	}
	data := op.data
	if tornLen >= 0 && tornLen < len(data) {
		data = data[:tornLen]
	}
	end := op.off + int64(len(data))
	if end > int64(len(buf)) {
		oldLen := int64(len(buf))
		if end <= int64(cap(buf)) {
			buf = buf[:end]
		} else {
			// Amortize append-style growth (the WAL and heap files grow one
			// write at a time): without doubling, every extension copies the
			// whole image and the workload turns quadratic.
			newCap := 2 * cap(buf)
			if int64(newCap) < end {
				newCap = int(end)
			}
			grown := make([]byte, end, newCap)
			copy(grown, buf)
			buf = grown
		}
		// A hole between the old end and the write offset reads as zeros,
		// even when the resliced capacity holds stale bytes from before a
		// truncate.
		for i := oldLen; i < op.off; i++ {
			buf[i] = 0
		}
	}
	copy(buf[op.off:end], data)
	return buf
}

// File is one fault-injected handle; all handles of a name share content.
type File struct {
	r      *Registry
	st     *state
	closed bool
}

var _ pager.File = (*File)(nil)

// ReadAt implements io.ReaderAt with MemFile semantics plus the scripted
// short read.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	r := f.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := f.usable("read"); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("faultfs: read %s at negative offset %d", f.st.name, off)
	}
	r.readOps++
	if r.script.FailReadOp != 0 && r.readOps == r.script.FailReadOp {
		n := 0
		if len(p) > 0 {
			n = r.rng.Intn(len(p)) // strict short read
			if off < int64(len(f.st.volatile)) {
				n = copy(p[:n], f.st.volatile[off:])
			} else {
				n = 0
			}
		}
		return n, fmt.Errorf("%w: short read of %s at op %d", ErrInjected, f.st.name, r.readOps)
	}
	if off >= int64(len(f.st.volatile)) {
		return 0, io.EOF
	}
	n := copy(p, f.st.volatile[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt and is a scripted fault point.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	r := f.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := f.usable("write"); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("faultfs: write %s at negative offset %d", f.st.name, off)
	}
	r.ops++
	if r.hit() {
		if r.script.Mode == ErrOnce {
			return 0, fmt.Errorf("%w: transient write error on %s (op %d)", ErrInjected, f.st.name, r.ops)
		}
		// The crashing write was in flight: Survival (and Torn) decide how
		// much of it the durable image keeps.
		f.st.addPending(r, p, off)
		r.powerCut()
		return 0, fmt.Errorf("%w: power cut at write op %d (%s)", ErrInjected, r.ops, f.st.name)
	}
	f.st.addPending(r, p, off)
	f.st.volatile = applyOp(f.st.volatile, f.st.pending[len(f.st.pending)-1], -1)
	return len(p), nil
}

// addPending records an unsynced write.
//
// locks: r.mu
func (st *state) addPending(r *Registry, p []byte, off int64) {
	r.seq++
	st.pending = append(st.pending, writeOp{
		seq: r.seq, off: off, data: append([]byte(nil), p...),
	})
}

// Size returns the current (volatile) length.
func (f *File) Size() (int64, error) {
	r := f.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := f.usable("size"); err != nil {
		return 0, err
	}
	return int64(len(f.st.volatile)), nil
}

// Truncate resizes the file and is a scripted (write-class) fault point.
func (f *File) Truncate(size int64) error {
	r := f.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := f.usable("truncate"); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("faultfs: truncate %s to negative size %d", f.st.name, size)
	}
	r.ops++
	op := writeOp{off: size, trunc: true}
	if r.hit() {
		if r.script.Mode == ErrOnce {
			return fmt.Errorf("%w: transient truncate error on %s (op %d)", ErrInjected, f.st.name, r.ops)
		}
		r.seq++
		op.seq = r.seq
		f.st.pending = append(f.st.pending, op)
		r.powerCut()
		return fmt.Errorf("%w: power cut at truncate op %d (%s)", ErrInjected, r.ops, f.st.name)
	}
	r.seq++
	op.seq = r.seq
	f.st.pending = append(f.st.pending, op)
	f.st.volatile = applyOp(f.st.volatile, op, -1)
	return nil
}

// Sync is the durability barrier and a scripted fault point: on success
// the durable image catches up with every write issued so far on this
// file.
func (f *File) Sync() error {
	r := f.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := f.usable("sync"); err != nil {
		return err
	}
	r.ops++
	if r.hit() {
		if r.script.Mode == ErrOnce {
			// A failed fsync leaves the data unsynced: pending stays.
			return fmt.Errorf("%w: transient sync error on %s (op %d)", ErrInjected, f.st.name, r.ops)
		}
		r.powerCut()
		return fmt.Errorf("%w: power cut at sync op %d (%s)", ErrInjected, r.ops, f.st.name)
	}
	f.st.durable = append(f.st.durable[:0], f.st.volatile...)
	f.st.pending = nil
	return nil
}

// Close releases the handle. Closing is never a fault point (a dying
// process cannot fail to close a descriptor) and is idempotent.
func (f *File) Close() error {
	r := f.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	r.handles--
	return nil
}

// usable rejects operations on closed handles or after the power cut.
//
// locks: f.r.mu
func (f *File) usable(what string) error {
	if f.closed {
		return fmt.Errorf("faultfs: %s on closed handle %s", what, f.st.name)
	}
	if f.r.crashed {
		return fmt.Errorf("%w: %s %s after power cut", ErrInjected, what, f.st.name)
	}
	return nil
}
