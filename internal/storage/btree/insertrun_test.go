package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"segdiff/internal/storage/pager"
)

func openBenchTree() (*Tree, error) {
	pg, err := pager.New(pager.NewMemFile(), 4096)
	if err != nil {
		return nil, err
	}
	return Open(pg)
}

// collect returns every entry of tr in key order.
func collect(t *testing.T, tr *Tree) ([][]byte, [][]byte) {
	t.Helper()
	var keys, vals [][]byte
	if err := tr.ScanRange(nil, nil, func(k, v []byte) (bool, error) {
		keys = append(keys, append([]byte(nil), k...))
		vals = append(vals, append([]byte(nil), v...))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	return keys, vals
}

func TestInsertRunAscending(t *testing.T) {
	// A purely ascending run exercises the right-edge fast path: every
	// entry after the first lands on the rightmost spine without
	// re-descending (except at splits).
	tr := newTree(t)
	const n = 5000
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = Entry{Key: k(i), Val: []byte(fmt.Sprintf("v%d", i))}
	}
	if err := tr.InsertRun(entries); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		v, err := tr.Get(k(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: got %q", i, v)
		}
	}
	keys, _ := collect(t, tr)
	if len(keys) != n {
		t.Fatalf("scan found %d entries", len(keys))
	}
}

func TestInsertRunMatchesInsert(t *testing.T) {
	// A sorted run of random keys applied by InsertRun must leave the tree
	// holding exactly the entries per-key Insert produces, including when
	// the run interleaves with keys already present.
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(4000)

	single := newTree(t)
	bulk := newTree(t)

	// Preload both trees with the odd keys one at a time.
	for _, i := range perm {
		if i%2 == 1 {
			if err := single.Insert(k(i), k(i)); err != nil {
				t.Fatal(err)
			}
			if err := bulk.Insert(k(i), k(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Apply the even keys: per-key vs one sorted run.
	var run []Entry
	for i := 0; i < 4000; i += 2 {
		run = append(run, Entry{Key: k(i), Val: k(i)})
		if err := single.Insert(k(i), k(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bulk.InsertRun(run); err != nil {
		t.Fatal(err)
	}

	if single.Len() != bulk.Len() {
		t.Fatalf("len: single %d, bulk %d", single.Len(), bulk.Len())
	}
	sk, sv := collect(t, single)
	bk, bv := collect(t, bulk)
	if len(sk) != len(bk) {
		t.Fatalf("entries: single %d, bulk %d", len(sk), len(bk))
	}
	for i := range sk {
		if !bytes.Equal(sk[i], bk[i]) || !bytes.Equal(sv[i], bv[i]) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestInsertRunValidation(t *testing.T) {
	tr := newTree(t)
	if err := tr.InsertRun(nil); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	err := tr.InsertRun([]Entry{{Key: k(2), Val: nil}, {Key: k(1), Val: nil}})
	if err == nil {
		t.Fatal("descending run accepted")
	}
	err = tr.InsertRun([]Entry{{Key: k(1), Val: nil}, {Key: k(1), Val: nil}})
	if err == nil {
		t.Fatal("duplicate keys within run accepted")
	}
	if tr.Len() != 0 {
		t.Fatalf("rejected runs changed the tree: len %d", tr.Len())
	}
	if err := tr.InsertRun([]Entry{{Key: nil, Val: nil}}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tr.InsertRun([]Entry{{Key: make([]byte, MaxKey+1)}}); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestInsertRunDuplicateAgainstTree(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(k(10), []byte("old")); err != nil {
		t.Fatal(err)
	}
	err := tr.InsertRun([]Entry{
		{Key: k(5), Val: []byte("a")},
		{Key: k(10), Val: []byte("dup")},
		{Key: k(15), Val: []byte("b")},
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	// Entries before the duplicate stay; the tree remains consistent.
	if v, err := tr.Get(k(5)); err != nil || string(v) != "a" {
		t.Fatalf("prefix entry lost: %q, %v", v, err)
	}
	if v, err := tr.Get(k(10)); err != nil || string(v) != "old" {
		t.Fatalf("existing entry clobbered: %q, %v", v, err)
	}
	if _, err := tr.Get(k(15)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("suffix entry applied: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestInsertRunChunkedInterleaved(t *testing.T) {
	// Many small runs in random chunk order, as the engine produces them
	// across batches; deep trees exercise split cascades above the leaf.
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(6000)
	tr := newTree(t)
	inserted := 0
	for len(perm) > 0 {
		n := 1 + rng.Intn(200)
		if n > len(perm) {
			n = len(perm)
		}
		chunk := perm[:n]
		perm = perm[n:]
		run := make([]Entry, 0, n)
		seen := map[int]bool{}
		for _, i := range chunk {
			if !seen[i] {
				seen[i] = true
				run = append(run, Entry{Key: k(i), Val: k(i)})
			}
		}
		sortEntries(run)
		if err := tr.InsertRun(run); err != nil {
			t.Fatal(err)
		}
		inserted += len(run)
	}
	if int(tr.Len()) != inserted {
		t.Fatalf("len = %d, want %d", tr.Len(), inserted)
	}
	keys, _ := collect(t, tr)
	if len(keys) != inserted {
		t.Fatalf("scan found %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("scan order broken at %d", i)
		}
	}
}

func sortEntries(run []Entry) {
	for i := 1; i < len(run); i++ {
		for j := i; j > 0 && bytes.Compare(run[j-1].Key, run[j].Key) > 0; j-- {
			run[j-1], run[j] = run[j], run[j-1]
		}
	}
}

func BenchmarkInsertSingle(b *testing.B) {
	pgTree := func() *Tree {
		tr, err := openBenchTree()
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	b.ReportAllocs()
	tr := pgTree()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(k(i), k(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertRun(b *testing.B) {
	tr, err := openBenchTree()
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 512
	b.ReportAllocs()
	run := make([]Entry, 0, chunk)
	next := 0
	for i := 0; i < b.N; i += chunk {
		run = run[:0]
		for j := 0; j < chunk && i+j < b.N; j++ {
			run = append(run, Entry{Key: k(next), Val: k(next)})
			next++
		}
		if err := tr.InsertRun(run); err != nil {
			b.Fatal(err)
		}
	}
}
