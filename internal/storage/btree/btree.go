// Package btree implements a disk-backed B+tree index over the pager:
// variable-length byte-string keys in order-preserving encoding (see
// keyenc), values stored only at the leaves, leaf pages chained for range
// scans. It backs CREATE INDEX in the sqlmini engine and is the analogue
// of the MySQL B-tree indexes of the paper's experiments.
//
// Keys must be unique. The engine guarantees this by appending the row's
// RID to every index key, the standard secondary-index construction; range
// scans over a key prefix are unaffected by the suffix.
//
// Deletion removes the leaf entry without rebalancing (lazy deletion),
// which is appropriate for the system's insert-dominated workload.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"segdiff/internal/storage/pager"
)

const (
	magic        = 0x53444254 // "SDBT"
	leafType     = 1
	internalType = 2

	// MaxKey and MaxVal bound entry sizes so a count-based node split
	// always produces halves that fit in a page.
	MaxKey = 512
	MaxVal = 512
)

// Tree is a B+tree. Reads (Get, Seek, ScanRange, Len, Height) touch no
// tree state, so any number of them may run concurrently on top of the
// pager's reader-friendly locking; Insert and Delete mutate the tree and
// must be serialized externally against all other calls (the engine's
// writer lock does this). Key and value slices handed out by reads alias
// buffer pool memory and are stable only until the next mutating call —
// callers that outlive the enclosing read-locked section must copy.
type Tree struct {
	pg   *pager.Pager
	root pager.PageID
	n    uint64 // entry count
}

// Open opens (or initializes) a tree on pg. A fresh pager gets a meta page
// and an empty root leaf.
func Open(pg *pager.Pager) (*Tree, error) {
	t := &Tree{pg: pg}
	if pg.NumPages() == 0 {
		meta, err := pg.Allocate()
		if err != nil {
			return nil, err
		}
		if meta.ID() != 0 {
			meta.Release()
			return nil, fmt.Errorf("btree: meta page allocated at %d", meta.ID())
		}
		rootPg, err := pg.Allocate()
		if err != nil {
			meta.Release()
			return nil, err
		}
		t.root = rootPg.ID()
		writeNode(rootPg.Data(), &node{leaf: true})
		rootPg.MarkDirty()
		rootPg.Release()
		t.n = 0
		t.writeMeta(&meta)
		meta.Release()
		return t, nil
	}
	meta, err := pg.Get(0)
	if err != nil {
		return nil, err
	}
	defer meta.Release()
	d := meta.Data()
	if binary.LittleEndian.Uint32(d[0:4]) != magic {
		return nil, fmt.Errorf("btree: bad magic in meta page")
	}
	t.root = pager.PageID(binary.LittleEndian.Uint32(d[4:8]))
	t.n = binary.LittleEndian.Uint64(d[8:16])
	return t, nil
}

func (t *Tree) writeMeta(meta *pager.Page) {
	d := meta.Data()
	binary.LittleEndian.PutUint32(d[0:4], magic)
	binary.LittleEndian.PutUint32(d[4:8], uint32(t.root))
	binary.LittleEndian.PutUint64(d[8:16], t.n)
	meta.MarkDirty()
}

func (t *Tree) syncMeta() error {
	meta, err := t.pg.Get(0)
	if err != nil {
		return err
	}
	t.writeMeta(&meta)
	meta.Release()
	return nil
}

// Len returns the number of entries.
func (t *Tree) Len() uint64 { return t.n }

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		nd, err := t.readNode(id)
		if err != nil {
			return 0, err
		}
		if nd.leaf {
			return h, nil
		}
		id = nd.children[0]
		h++
	}
}

// node is the decoded in-memory form of a tree page.
type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte       // leaf only, parallel to keys
	children []pager.PageID // internal only, len(keys)+1
	next     pager.PageID   // leaf only; 0 = none (page 0 is meta)
}

// readNode decodes page id for reading. The decoded keys and values alias
// the buffer pool frame directly (zero copy). This is safe because the
// pager never recycles a frame's buffer — eviction drops the reference and
// a re-read allocates fresh memory — and because page contents are only
// mutated under the engine's writer lock, which excludes every reader that
// could hold a decoded node.
func (t *Tree) readNode(id pager.PageID) (*node, error) {
	p, err := t.pg.Get(id)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	return decodeNode(p.Data(), false)
}

// readNodeMut decodes page id for a mutating caller. Keys and values are
// copied into a private arena: insert and delete rewrite the same page the
// node came from, and writeNode must not read key bytes that alias the
// region it is overwriting.
func (t *Tree) readNodeMut(id pager.PageID) (*node, error) {
	p, err := t.pg.Get(id)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	return decodeNode(p.Data(), true)
}

func (t *Tree) writeNodeTo(id pager.PageID, nd *node) error {
	p, err := t.pg.Get(id)
	if err != nil {
		return err
	}
	writeNode(p.Data(), nd)
	p.MarkDirty()
	p.Release()
	return nil
}

// decodeNode decodes a page image. With copyArena the key and value bytes
// are copied into a private buffer (needed by mutating callers); otherwise
// they alias d, keeping the read path at a handful of allocations instead
// of two per entry.
func decodeNode(d []byte, copyArena bool) (*node, error) {
	nd := &node{}
	switch d[0] {
	case leafType:
		nd.leaf = true
	case internalType:
	default:
		return nil, fmt.Errorf("btree: bad node type %d", d[0])
	}
	nKeys := int(binary.LittleEndian.Uint16(d[1:3]))
	off := 3
	buf := d
	if copyArena {
		buf = make([]byte, len(d))
		copy(buf, d)
	}
	if nd.leaf {
		nd.next = pager.PageID(binary.LittleEndian.Uint32(d[off:]))
		off += 4
		nd.keys = make([][]byte, 0, nKeys)
		nd.vals = make([][]byte, 0, nKeys)
		for i := 0; i < nKeys; i++ {
			kl := int(binary.LittleEndian.Uint16(d[off:]))
			vl := int(binary.LittleEndian.Uint16(d[off+2:]))
			off += 4
			nd.keys = append(nd.keys, buf[off:off+kl:off+kl])
			off += kl
			nd.vals = append(nd.vals, buf[off:off+vl:off+vl])
			off += vl
		}
		return nd, nil
	}
	nd.keys = make([][]byte, 0, nKeys)
	nd.children = make([]pager.PageID, 0, nKeys+1)
	nd.children = append(nd.children, pager.PageID(binary.LittleEndian.Uint32(d[off:])))
	off += 4
	for i := 0; i < nKeys; i++ {
		kl := int(binary.LittleEndian.Uint16(d[off:]))
		off += 2
		nd.keys = append(nd.keys, buf[off:off+kl:off+kl])
		off += kl
		nd.children = append(nd.children, pager.PageID(binary.LittleEndian.Uint32(d[off:])))
		off += 4
	}
	return nd, nil
}

func nodeSize(nd *node) int {
	if nd.leaf {
		s := 3 + 4
		for i, k := range nd.keys {
			s += 4 + len(k) + len(nd.vals[i])
		}
		return s
	}
	s := 3 + 4
	for _, k := range nd.keys {
		s += 2 + len(k) + 4
	}
	return s
}

func writeNode(d []byte, nd *node) {
	if nodeSize(nd) > pager.PageSize {
		panic(fmt.Sprintf("btree: node of %d bytes exceeds page", nodeSize(nd)))
	}
	if nd.leaf {
		d[0] = leafType
	} else {
		d[0] = internalType
	}
	binary.LittleEndian.PutUint16(d[1:3], uint16(len(nd.keys)))
	off := 3
	if nd.leaf {
		binary.LittleEndian.PutUint32(d[off:], uint32(nd.next))
		off += 4
		for i, k := range nd.keys {
			binary.LittleEndian.PutUint16(d[off:], uint16(len(k)))
			binary.LittleEndian.PutUint16(d[off+2:], uint16(len(nd.vals[i])))
			off += 4
			copy(d[off:], k)
			off += len(k)
			copy(d[off:], nd.vals[i])
			off += len(nd.vals[i])
		}
		return
	}
	binary.LittleEndian.PutUint32(d[off:], uint32(nd.children[0]))
	off += 4
	for i, k := range nd.keys {
		binary.LittleEndian.PutUint16(d[off:], uint16(len(k)))
		off += 2
		copy(d[off:], k)
		off += len(k)
		binary.LittleEndian.PutUint32(d[off:], uint32(nd.children[i+1]))
		off += 4
	}
}

// childIndex returns the index of the child to descend into for key.
func childIndex(nd *node, key []byte) int {
	i := 0
	for i < len(nd.keys) && bytes.Compare(key, nd.keys[i]) >= 0 {
		i++
	}
	return i
}

// ErrDuplicateKey is returned by Insert for an existing key.
var ErrDuplicateKey = fmt.Errorf("btree: duplicate key")

// ErrKeyNotFound is returned by Delete and Get for a missing key.
var ErrKeyNotFound = fmt.Errorf("btree: key not found")

// Insert adds a key/value entry. Keys must be unique.
func (t *Tree) Insert(key, val []byte) error {
	if len(key) == 0 || len(key) > MaxKey {
		return fmt.Errorf("btree: key length %d outside 1..%d", len(key), MaxKey)
	}
	if len(val) > MaxVal {
		return fmt.Errorf("btree: value length %d exceeds %d", len(val), MaxVal)
	}
	sepKey, newID, split, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if split {
		rootPg, err := t.pg.Allocate()
		if err != nil {
			return err
		}
		newRoot := &node{
			keys:     [][]byte{sepKey},
			children: []pager.PageID{t.root, newID},
		}
		writeNode(rootPg.Data(), newRoot)
		rootPg.MarkDirty()
		t.root = rootPg.ID()
		rootPg.Release()
	}
	t.n++
	return t.syncMeta()
}

// insert descends into page id. On split it returns the separator key and
// the new right sibling's page id.
func (t *Tree) insert(id pager.PageID, key, val []byte) (sep []byte, newID pager.PageID, split bool, err error) {
	nd, err := t.readNodeMut(id)
	if err != nil {
		return nil, 0, false, err
	}
	if nd.leaf {
		i := lowerBound(nd.keys, key)
		if i < len(nd.keys) && bytes.Equal(nd.keys[i], key) {
			return nil, 0, false, fmt.Errorf("%w: %x", ErrDuplicateKey, key)
		}
		nd.keys = insertAt(nd.keys, i, key)
		nd.vals = insertAt(nd.vals, i, val)
		return t.finishInsert(id, nd)
	}
	ci := childIndex(nd, key)
	childSep, childNew, childSplit, err := t.insert(nd.children[ci], key, val)
	if err != nil {
		return nil, 0, false, err
	}
	if !childSplit {
		return nil, 0, false, nil
	}
	nd.keys = insertAt(nd.keys, ci, childSep)
	nd.children = insertAt(nd.children, ci+1, childNew)
	return t.finishInsert(id, nd)
}

// finishInsert writes nd back to page id, splitting first if it overflows.
func (t *Tree) finishInsert(id pager.PageID, nd *node) (sep []byte, newID pager.PageID, split bool, err error) {
	if nodeSize(nd) <= pager.PageSize {
		return nil, 0, false, t.writeNodeTo(id, nd)
	}
	mid := len(nd.keys) / 2
	var right *node
	if nd.leaf {
		right = &node{
			leaf: true,
			keys: append([][]byte(nil), nd.keys[mid:]...),
			vals: append([][]byte(nil), nd.vals[mid:]...),
			next: nd.next,
		}
		sep = right.keys[0]
		nd.keys = nd.keys[:mid]
		nd.vals = nd.vals[:mid]
	} else {
		sep = nd.keys[mid]
		right = &node{
			keys:     append([][]byte(nil), nd.keys[mid+1:]...),
			children: append([]pager.PageID(nil), nd.children[mid+1:]...),
		}
		nd.keys = nd.keys[:mid]
		nd.children = nd.children[:mid+1]
	}
	rp, err := t.pg.Allocate()
	if err != nil {
		return nil, 0, false, err
	}
	newID = rp.ID()
	if nd.leaf {
		nd.next = newID
	}
	writeNode(rp.Data(), right)
	rp.MarkDirty()
	rp.Release()
	if err := t.writeNodeTo(id, nd); err != nil {
		return nil, 0, false, err
	}
	return sep, newID, true, nil
}

// Entry is one key/value pair of a sorted run passed to InsertRun.
type Entry struct {
	Key, Val []byte
}

// InsertRun adds a run of entries whose keys are strictly ascending. It is
// equivalent to calling Insert once per entry but amortizes the descent,
// the node decodes/encodes and the meta-page sync over the whole run: a
// cursor remembers the path to the current leaf and its exclusive upper
// bound, so consecutive entries that land in the same leaf mutate it in
// memory and the node is written back once, when the cursor moves on. A
// run appended at the right edge of the tree (e.g. a time-ordered index)
// never re-descends except when a node splits.
//
// Like Insert, InsertRun must be serialized externally against all other
// tree calls. If an entry duplicates an existing key the run stops there
// with ErrDuplicateKey: earlier entries remain inserted and the tree stays
// structurally consistent (the engine discards the enclosing batch).
func (t *Tree) InsertRun(entries []Entry) error {
	for i, e := range entries {
		if len(e.Key) == 0 || len(e.Key) > MaxKey {
			return fmt.Errorf("btree: key length %d outside 1..%d", len(e.Key), MaxKey)
		}
		if len(e.Val) > MaxVal {
			return fmt.Errorf("btree: value length %d exceeds %d", len(e.Val), MaxVal)
		}
		if i > 0 && bytes.Compare(entries[i-1].Key, e.Key) >= 0 {
			return fmt.Errorf("btree: run keys not strictly ascending at entry %d", i)
		}
	}
	if len(entries) == 0 {
		return nil
	}
	c := runCursor{t: t}
	var insErr error
	for i := range entries {
		if insErr = c.insertOne(entries[i].Key, entries[i].Val); insErr != nil {
			break
		}
	}
	if err := c.flush(); err != nil && insErr == nil {
		insErr = err
	}
	if err := t.syncMeta(); err != nil && insErr == nil {
		insErr = err
	}
	return insErr
}

// runLevel is one level of a runCursor's root-to-leaf path.
type runLevel struct {
	id       pager.PageID
	nd       *node
	hi       []byte // exclusive upper bound on keys reachable through nd; nil = +inf
	childIdx int    // child taken during descent (internal nodes; -1 for the leaf)
	dirty    bool   // nd mutated in memory, not yet written back
}

// runCursor holds the descent path of an InsertRun between entries.
type runCursor struct {
	t     *Tree
	path  []runLevel
	valid bool
}

// flush writes every dirty path node back to its page and invalidates the
// cursor.
func (c *runCursor) flush() error {
	for i := len(c.path) - 1; i >= 0; i-- {
		lvl := &c.path[i]
		if lvl.dirty {
			if err := c.t.writeNodeTo(lvl.id, lvl.nd); err != nil {
				return err
			}
			lvl.dirty = false
		}
	}
	c.path = c.path[:0]
	c.valid = false
	return nil
}

// descend rebuilds the path from the root to the leaf covering key,
// recording each level's exclusive upper bound.
func (c *runCursor) descend(key []byte) error {
	t := c.t
	c.path = c.path[:0]
	id := t.root
	var hi []byte
	for {
		nd, err := t.readNodeMut(id)
		if err != nil {
			return err
		}
		c.path = append(c.path, runLevel{id: id, nd: nd, hi: hi, childIdx: -1})
		if nd.leaf {
			c.valid = true
			return nil
		}
		ci := childIndex(nd, key)
		c.path[len(c.path)-1].childIdx = ci
		if ci < len(nd.keys) {
			hi = nd.keys[ci]
		}
		id = nd.children[ci]
	}
}

// insertOne places one entry of the run, reusing the cached leaf while the
// ascending key stays under its upper bound.
func (c *runCursor) insertOne(key, val []byte) error {
	if c.valid {
		// Keys equal to an internal separator belong to the right sibling.
		if hi := c.path[len(c.path)-1].hi; hi != nil && bytes.Compare(key, hi) >= 0 {
			if err := c.flush(); err != nil {
				return err
			}
		}
	}
	if !c.valid {
		if err := c.descend(key); err != nil {
			return err
		}
	}
	leaf := &c.path[len(c.path)-1]
	i := lowerBound(leaf.nd.keys, key)
	if i < len(leaf.nd.keys) && bytes.Equal(leaf.nd.keys[i], key) {
		return fmt.Errorf("%w: %x", ErrDuplicateKey, key)
	}
	leaf.nd.keys = insertAt(leaf.nd.keys, i, key)
	leaf.nd.vals = insertAt(leaf.nd.vals, i, val)
	leaf.dirty = true
	c.t.n++
	if nodeSize(leaf.nd) > pager.PageSize {
		return c.splitPath()
	}
	return nil
}

// splitPath resolves an overflowing leaf by the standard mid-split,
// cascading up the saved parent path (growing a new root if the cascade
// reaches it), then invalidates the cursor so the next entry re-descends.
func (c *runCursor) splitPath() error {
	t := c.t
	li := len(c.path) - 1
	for {
		lvl := &c.path[li]
		nd := lvl.nd
		mid := len(nd.keys) / 2
		var right *node
		var sep []byte
		if nd.leaf {
			right = &node{
				leaf: true,
				keys: append([][]byte(nil), nd.keys[mid:]...),
				vals: append([][]byte(nil), nd.vals[mid:]...),
				next: nd.next,
			}
			sep = right.keys[0]
			nd.keys = nd.keys[:mid]
			nd.vals = nd.vals[:mid]
		} else {
			sep = nd.keys[mid]
			right = &node{
				keys:     append([][]byte(nil), nd.keys[mid+1:]...),
				children: append([]pager.PageID(nil), nd.children[mid+1:]...),
			}
			nd.keys = nd.keys[:mid]
			nd.children = nd.children[:mid+1]
		}
		rp, err := t.pg.Allocate()
		if err != nil {
			return err
		}
		newID := rp.ID()
		if nd.leaf {
			nd.next = newID
		}
		writeNode(rp.Data(), right)
		rp.MarkDirty()
		rp.Release()
		if err := t.writeNodeTo(lvl.id, nd); err != nil {
			return err
		}
		lvl.dirty = false
		if li == 0 {
			rootPg, err := t.pg.Allocate()
			if err != nil {
				return err
			}
			writeNode(rootPg.Data(), &node{
				keys:     [][]byte{sep},
				children: []pager.PageID{lvl.id, newID},
			})
			rootPg.MarkDirty()
			t.root = rootPg.ID()
			rootPg.Release()
			break
		}
		parent := &c.path[li-1]
		ci := parent.childIdx
		parent.nd.keys = insertAt(parent.nd.keys, ci, sep)
		parent.nd.children = insertAt(parent.nd.children, ci+1, newID)
		parent.dirty = true
		if nodeSize(parent.nd) <= pager.PageSize {
			break
		}
		li--
	}
	return c.flush()
}

// Get returns the value for key, or ErrKeyNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) {
	id := t.root
	for {
		nd, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		if nd.leaf {
			i := lowerBound(nd.keys, key)
			if i < len(nd.keys) && bytes.Equal(nd.keys[i], key) {
				return nd.vals[i], nil
			}
			return nil, ErrKeyNotFound
		}
		id = nd.children[childIndex(nd, key)]
	}
}

// Delete removes key's entry (lazy: no rebalancing).
func (t *Tree) Delete(key []byte) error {
	id := t.root
	for {
		nd, err := t.readNodeMut(id)
		if err != nil {
			return err
		}
		if !nd.leaf {
			id = nd.children[childIndex(nd, key)]
			continue
		}
		i := lowerBound(nd.keys, key)
		if i >= len(nd.keys) || !bytes.Equal(nd.keys[i], key) {
			return ErrKeyNotFound
		}
		nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
		nd.vals = append(nd.vals[:i], nd.vals[i+1:]...)
		if err := t.writeNodeTo(id, nd); err != nil {
			return err
		}
		t.n--
		return t.syncMeta()
	}
}

// Iterator walks entries in key order. It must not be used across
// concurrent tree modifications.
type Iterator struct {
	t    *Tree
	nd   *node
	i    int
	err  error
	done bool
}

// Seek positions an iterator at the first entry with key >= lo.
func (t *Tree) Seek(lo []byte) *Iterator {
	it := &Iterator{t: t}
	t.SeekInto(it, lo)
	return it
}

// SeekInto repositions an existing iterator at the first entry with
// key >= lo, reusing its allocation. Callers that scan several disjoint
// ranges in one pass (the fused union executor) reposition one iterator
// per range instead of allocating a fresh one per descent.
func (t *Tree) SeekInto(it *Iterator, lo []byte) {
	it.t = t
	it.nd = nil
	it.err = nil
	it.done = false
	id := t.root
	for {
		nd, err := t.readNode(id)
		if err != nil {
			it.err = err
			it.done = true
			return
		}
		if nd.leaf {
			it.nd = nd
			it.i = lowerBound(nd.keys, lo)
			// Leaf-chain readahead: a range scan will walk the next
			// pointers, so announce the successor leaf to the prefetcher
			// (no-op unless the pager has readahead configured).
			if nd.next != 0 {
				t.pg.Prefetch(nd.next)
			}
			it.skipEmptyLeaves()
			return
		}
		id = nd.children[childIndex(nd, lo)]
	}
}

// skipEmptyLeaves advances across exhausted leaf nodes.
func (it *Iterator) skipEmptyLeaves() {
	for it.i >= len(it.nd.keys) {
		if it.nd.next == 0 {
			it.done = true
			return
		}
		nd, err := it.t.readNode(it.nd.next)
		if err != nil {
			it.err = err
			it.done = true
			return
		}
		if nd.next != 0 {
			it.t.pg.Prefetch(nd.next) // keep one leaf ahead of the walk
		}
		it.nd = nd
		it.i = 0
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return !it.done && it.err == nil }

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Key returns the current key; valid only while Valid().
func (it *Iterator) Key() []byte { return it.nd.keys[it.i] }

// Value returns the current value; valid only while Valid().
func (it *Iterator) Value() []byte { return it.nd.vals[it.i] }

// Next advances to the next entry.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.i++
	it.skipEmptyLeaves()
}

// ScanRange calls fn for every entry with lo <= key <= hi (inclusive
// bounds; hi nil means unbounded). fn returning false stops early.
func (t *Tree) ScanRange(lo, hi []byte, fn func(key, val []byte) (bool, error)) error {
	it := t.Seek(lo)
	for ; it.Valid(); it.Next() {
		if hi != nil && bytes.Compare(it.Key(), hi) > 0 {
			break
		}
		cont, err := fn(it.Key(), it.Value())
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return it.Err()
}

func lowerBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
