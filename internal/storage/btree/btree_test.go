package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"segdiff/internal/storage/keyenc"
	"segdiff/internal/storage/pager"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	pg, err := pager.New(pager.NewMemFile(), 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(pg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func k(i int) []byte { return keyenc.AppendInt64(nil, int64(i)) }

func TestInsertGet(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(k(5), []byte("five")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get(k(5))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "five" {
		t.Fatalf("got %q", got)
	}
	if _, err := tr.Get(k(6)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(k(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(k(1), []byte("b")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("len after rejected insert = %d", tr.Len())
	}
}

func TestKeySizeLimits(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(nil, nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tr.Insert(make([]byte, MaxKey+1), nil); err == nil {
		t.Fatal("oversize key accepted")
	}
	if err := tr.Insert(k(1), make([]byte, MaxVal+1)); err == nil {
		t.Fatal("oversize value accepted")
	}
	if err := tr.Insert(make([]byte, MaxKey), make([]byte, MaxVal)); err != nil {
		t.Fatalf("max sizes rejected: %v", err)
	}
}

func TestManyInsertsWithSplits(t *testing.T) {
	tr := newTree(t)
	const n = 20000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(k(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("height %d after %d inserts; expected splits", h, n)
	}
	for i := 0; i < n; i += 997 {
		got, err := tr.Get(k(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
	// Full scan must return all keys in order.
	prev := -1
	count := 0
	err = tr.ScanRange(k(0), nil, func(key, val []byte) (bool, error) {
		v, _, err := keyenc.DecodeInt64(key)
		if err != nil {
			return false, err
		}
		if int(v) <= prev {
			return false, fmt.Errorf("out of order: %d after %d", v, prev)
		}
		prev = int(v)
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d entries", count)
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(k(i*2), nil); err != nil { // even keys 0..198
			t.Fatal(err)
		}
	}
	var got []int64
	err := tr.ScanRange(k(10), k(20), func(key, _ []byte) (bool, error) {
		v, _, _ := keyenc.DecodeInt64(key)
		got = append(got, v)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 12, 14, 16, 18, 20}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	// Bounds not present in the tree.
	got = nil
	if err := tr.ScanRange(k(11), k(15), func(key, _ []byte) (bool, error) {
		v, _, _ := keyenc.DecodeInt64(key)
		got = append(got, v)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]int64{12, 14}) {
		t.Fatalf("open range = %v", got)
	}
}

func TestScanEarlyStopAndError(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(k(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := tr.ScanRange(k(0), nil, func(_, _ []byte) (bool, error) {
		count++
		return count < 7, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("early stop at %d", count)
	}
	boom := errors.New("boom")
	if err := tr.ScanRange(k(0), nil, func(_, _ []byte) (bool, error) {
		return true, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("scan error = %v", err)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(k(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 2 {
		if err := tr.Delete(k(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Delete(k(0)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	for i := 0; i < 1000; i++ {
		_, err := tr.Get(k(i))
		if i%2 == 0 && !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("deleted key %d still present: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept key %d lost: %v", i, err)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	f := pager.NewMemFile()
	pg, err := pager.New(f, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(pg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := tr.Insert(k(i), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Flush(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.New(f, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(pg2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 5000 {
		t.Fatalf("reopened len = %d", tr2.Len())
	}
	for i := 0; i < 5000; i += 493 {
		if _, err := tr2.Get(k(i)); err != nil {
			t.Fatalf("reopened get %d: %v", i, err)
		}
	}
}

func TestOpenRejectsCorruptMeta(t *testing.T) {
	f := pager.NewMemFile()
	garbage := make([]byte, pager.PageSize)
	for i := range garbage {
		garbage[i] = 0xAB
	}
	if _, err := f.WriteAt(garbage, 0); err != nil {
		t.Fatal(err)
	}
	pg, err := pager.New(f, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pg); err == nil {
		t.Fatal("corrupt meta accepted")
	}
}

// Randomized differential test against a sorted-slice oracle, with
// variable-length composite keys.
func TestRandomizedAgainstOracle(t *testing.T) {
	tr := newTree(t)
	rng := rand.New(rand.NewSource(42))
	type entry struct {
		k []byte
		v []byte
	}
	oracle := map[string][]byte{}
	for op := 0; op < 8000; op++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // insert
			key := keyenc.Encode(
				keyenc.FloatValue(rng.NormFloat64()*100),
				keyenc.IntValue(rng.Int63n(1000)),
			)
			if _, dup := oracle[string(key)]; dup {
				if err := tr.Insert(key, nil); !errors.Is(err, ErrDuplicateKey) {
					t.Fatalf("expected duplicate error, got %v", err)
				}
				continue
			}
			val := make([]byte, rng.Intn(20))
			rng.Read(val)
			if err := tr.Insert(key, val); err != nil {
				t.Fatal(err)
			}
			oracle[string(key)] = val
		case 3: // delete random known key
			for ks := range oracle {
				if err := tr.Delete([]byte(ks)); err != nil {
					t.Fatal(err)
				}
				delete(oracle, ks)
				break
			}
		case 4: // point lookup
			for ks, want := range oracle {
				got, err := tr.Get([]byte(ks))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("get mismatch: %v", err)
				}
				break
			}
		}
	}
	if tr.Len() != uint64(len(oracle)) {
		t.Fatalf("len=%d oracle=%d", tr.Len(), len(oracle))
	}
	// Full ordered scan must equal the sorted oracle.
	var keys []entry
	for ks, v := range oracle {
		keys = append(keys, entry{k: []byte(ks), v: v})
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i].k, keys[j].k) < 0 })
	i := 0
	err := tr.ScanRange([]byte{0}, nil, func(key, val []byte) (bool, error) {
		if i >= len(keys) {
			return false, fmt.Errorf("scan returned extra entries")
		}
		if !bytes.Equal(key, keys[i].k) || !bytes.Equal(val, keys[i].v) {
			return false, fmt.Errorf("scan mismatch at %d", i)
		}
		i++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("scan returned %d of %d entries", i, len(keys))
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := newTree(t)
	h0, _ := tr.Height()
	if h0 != 1 {
		t.Fatalf("empty height = %d", h0)
	}
	for i := 0; i < 30000; i++ {
		if err := tr.Insert(k(i), bytes.Repeat([]byte{7}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := tr.Height()
	if h < 3 {
		t.Fatalf("height after 30k sequential inserts = %d", h)
	}
}
