package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"segdiff/internal/storage/keyenc"
	"segdiff/internal/storage/pager"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	pg, err := pager.New(pager.NewMemFile(), 4096)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Open(pg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		key := keyenc.Encode(
			keyenc.IntValue(rng.Int63n(1_000_000)),
			keyenc.FloatValue(rng.NormFloat64()),
			keyenc.IntValue(int64(i)), // uniquifier
		)
		if err := tr.Insert(key, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func BenchmarkInsertRandom(b *testing.B) {
	pg, err := pager.New(pager.NewMemFile(), 4096)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Open(pg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keyenc.Encode(
			keyenc.IntValue(rng.Int63()),
			keyenc.IntValue(int64(i)),
		)
		if err := tr.Insert(key, []byte{0xAB}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keyenc.Encode(
			keyenc.IntValue(rng.Int63n(1_000_000)),
			keyenc.FloatValue(rng.NormFloat64()),
			keyenc.IntValue(rng.Int63n(100_000)),
		)
		_, _ = tr.Get(key)
	}
}

func BenchmarkRangeScan1000(b *testing.B) {
	tr := benchTree(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		err := tr.ScanRange(keyenc.Encode(keyenc.IntValue(500_000)), nil,
			func(_, _ []byte) (bool, error) {
				count++
				return count < 1000, nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeek(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := benchTree(b, n)
			rng := rand.New(rand.NewSource(4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := tr.Seek(keyenc.Encode(keyenc.IntValue(rng.Int63n(1_000_000))))
				if it.Err() != nil {
					b.Fatal(it.Err())
				}
			}
		})
	}
}
