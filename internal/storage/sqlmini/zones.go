package sqlmini

import (
	"math"

	"segdiff/internal/storage/heap"
	"segdiff/internal/storage/pager"
)

// Zone maps: per-heap-page min/max summaries of the numeric columns,
// maintained at insert time alongside the planner statistics and
// persisted with the catalog. The sequential and fused-sequential
// executors consult them to skip whole pages whose value ranges cannot
// intersect a query's column ranges — the paper's "SegDiff reads fewer
// pages" argument applied inside our own engine.
//
// Zone maps are advisory for correctness: a page summary may only ever
// OVER-approximate the live rows on the page (pruning skips a page only
// when no row can match; it may always admit too much, never too
// little). The maintenance rules keep that one-sided guarantee cheap:
//
//   - Tracking starts only for tables that are empty at first insert. A
//     database created before zone maps existed has rows no summary
//     covers; its tables simply never get zone entries and stay
//     unprunable (catalog.Zones is absent from its JSON).
//   - Deletes leave summaries untouched: stale-wide bounds admit pages
//     that no longer need visiting, which costs reads, not answers.
//   - A crash can persist summaries for rows the WAL replay discards
//     (the catalog is saved before the log commits) — again wider than
//     the data, never narrower.
//   - Pages without an entry (summaries shorter than the heap, or the
//     unset sentinel Min > Max) are always admitted.

// colZones holds one column's per-page bounds, indexed by heap PageID.
// A page with Min[p] > Max[p] is unset (no summarized rows) and is never
// pruned; fresh slots start at the extreme sentinel values so plain
// min/max folding initializes them.
type colZones struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// ensure grows the per-page arrays to cover page, filling new slots with
// the unset sentinel.
func (cz *colZones) ensure(page pager.PageID) {
	for int(page) >= len(cz.Min) {
		cz.Min = append(cz.Min, math.MaxFloat64)
		cz.Max = append(cz.Max, -math.MaxFloat64)
	}
}

// tableZones holds the zone maps of one table's numeric columns.
type tableZones struct {
	Cols map[string]*colZones `json:"cols"`
}

// pageMayMatch reports whether a page could hold a row satisfying every
// column range. Missing or unset summaries admit the page.
func (tz *tableZones) pageMayMatch(page pager.PageID, ranges []colRange) bool {
	for _, r := range ranges {
		cz := tz.Cols[r.col]
		if cz == nil || int(page) >= len(cz.Min) {
			continue // no summary for this column/page: cannot prune
		}
		zmin, zmax := cz.Min[page], cz.Max[page]
		if zmin > zmax {
			continue // unset sentinel
		}
		if zmax < r.lo || zmin > r.hi {
			return false // page range disjoint from query range
		}
	}
	return true
}

// zonesFor returns (creating if needed) the zone entry for a table.
func (c *catalog) zonesFor(table string) *tableZones {
	if c.Zones == nil {
		c.Zones = map[string]*tableZones{}
	}
	tz := c.Zones[table]
	if tz == nil {
		tz = &tableZones{Cols: map[string]*colZones{}}
		c.Zones[table] = tz
	}
	return tz
}

// noteZones folds freshly inserted rows into the table's zone maps.
// create controls whether a table without an entry starts tracking: it
// must only be true when the table held no live rows before the insert
// (otherwise the new summaries would be narrower than the page contents
// and pruning would drop rows). Callers hold the engine's writer lock;
// lockcheck cannot express that here (the guard is db.mu, not a field of
// catalog), so the checked annotation lives on DB.catalog instead and
// every path into this method goes through an annotated DB method.
func (c *catalog) noteZones(schema *tableSchema, rows [][]Value, rids []heap.RID, create bool) {
	if c.Zones[schema.Name] == nil && !create {
		return // pre-existing rows are not summarized: stay unprunable
	}
	tz := c.zonesFor(schema.Name)
	for ri, vals := range rows {
		page := rids[ri].Page
		for i, col := range schema.Cols {
			var v float64
			switch col.Type {
			case IntType:
				v = float64(vals[i].I)
			case RealType:
				v = vals[i].R
			default:
				continue // TEXT columns carry no zone maps
			}
			cz := tz.Cols[col.Name]
			if cz == nil {
				cz = &colZones{}
				tz.Cols[col.Name] = cz
			}
			cz.ensure(page)
			if v < cz.Min[page] {
				cz.Min[page] = v
			}
			if v > cz.Max[page] {
				cz.Max[page] = v
			}
		}
	}
}

// zoneMatcher returns the page-admission predicate implied by a table's
// zone maps and a plan's column ranges, or nil when nothing can be
// pruned (no zone entry, no estimable ranges).
func zoneMatcher(tz *tableZones, ranges []colRange) func(pager.PageID) bool {
	if tz == nil || len(ranges) == 0 {
		return nil
	}
	return func(id pager.PageID) bool { return tz.pageMayMatch(id, ranges) }
}

// zoneKeep builds the page-keep callback for a sequential scan serving
// the given plans (one for a plain scan, all members for a fused unit):
// a page is kept when ANY non-empty plan admits it, so pruning never
// drops a page some branch still needs. It returns nil — scan everything
// — when zone maps are disabled or any branch is unprunable. Skipped
// pages are counted on db.zoneSkipped.
//
// locks: db.mu (any)
func (db *DB) zoneKeep(plans ...*scanPlan) func(pager.PageID) bool {
	if db.opts.DisableZoneMaps {
		return nil
	}
	matchers := make([]func(pager.PageID) bool, 0, len(plans))
	for _, p := range plans {
		if p.empty {
			continue // statically empty branches admit no pages
		}
		m := zoneMatcher(db.catalog.Zones[p.schema.Name], p.ranges)
		if m == nil {
			return nil // one unprunable branch forces a full scan
		}
		matchers = append(matchers, m)
	}
	if len(matchers) == 0 {
		return nil
	}
	return func(id pager.PageID) bool {
		for _, m := range matchers {
			if m(id) {
				return true
			}
		}
		db.zoneSkipped.Add(1)
		return false
	}
}

// ZoneSkippedPages returns the cumulative number of heap pages skipped
// by zone-map pruning across all queries (monotonic; callers diff).
func (db *DB) ZoneSkippedPages() uint64 {
	return db.zoneSkipped.Load()
}
