package sqlmini

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	pos    int
	params int // placeholders assigned so far
}

// parse parses one SQL statement.
func parse(in string) (stmt, error) {
	toks, err := lex(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting at %q", p.cur().text)
	}
	return s, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errorf("expected %s, found %q", want, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlmini: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (stmt, error) {
	switch {
	case p.accept(tokKeyword, "CREATE"):
		return p.create()
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.accept(tokKeyword, "SELECT"):
		first, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if !p.at(tokKeyword, "UNION") {
			return first, nil
		}
		branches := []selectStmt{first.(selectStmt)}
		for p.accept(tokKeyword, "UNION") {
			if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
				return nil, err
			}
			next, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			branches = append(branches, next.(selectStmt))
		}
		for _, b := range branches {
			if len(b.orderBy) > 0 || b.limit >= 0 {
				return nil, p.errorf("ORDER BY and LIMIT are not supported with UNION")
			}
		}
		return unionStmt{branches: branches}, nil
	case p.accept(tokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.accept(tokKeyword, "EXPLAIN"):
		analyze := p.accept(tokKeyword, "ANALYZE")
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case selectStmt, unionStmt:
		case deleteStmt:
			// EXPLAIN ANALYZE runs under the shared read lock, which must
			// not execute a mutating statement.
			if analyze {
				return nil, p.errorf("EXPLAIN ANALYZE supports only SELECT")
			}
		default:
			return nil, p.errorf("EXPLAIN supports only SELECT and DELETE")
		}
		return explainStmt{inner: inner, analyze: analyze}, nil
	default:
		return nil, p.errorf("expected a statement, found %q", p.cur().text)
	}
}

func (p *parser) create() (stmt, error) {
	switch {
	case p.accept(tokKeyword, "TABLE"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			cn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			var ct ColType
			switch {
			case p.accept(tokKeyword, "INT"):
				ct = IntType
			case p.accept(tokKeyword, "REAL"):
				ct = RealType
			case p.accept(tokKeyword, "TEXT"):
				ct = TextType
			default:
				return nil, p.errorf("expected a column type after %q", cn.text)
			}
			cols = append(cols, ColumnDef{Name: cn.text, Type: ct})
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return createTableStmt{name: name.text, cols: cols}, nil

	case p.accept(tokKeyword, "INDEX"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			cols = append(cols, c.text)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return createIndexStmt{name: name.text, table: table.text, cols: cols}, nil

	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) insert() (stmt, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]expr
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var vals []expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		if len(rows) > 0 && len(vals) != len(rows[0]) {
			return nil, p.errorf("VALUES row %d has %d values, first row has %d", len(rows)+1, len(vals), len(rows[0]))
		}
		rows = append(rows, vals)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return insertStmt{table: table.text, rows: rows}, nil
}

func (p *parser) selectStmt() (stmt, error) {
	st := selectStmt{limit: -1}
	if p.accept(tokSymbol, "*") {
		st.star = true
	} else {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.exprs = append(st.exprs, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st.table = table.text
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			key := orderKey{col: c.text}
			if p.accept(tokKeyword, "DESC") {
				key.desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.orderBy = append(st.orderBy, key)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil || lim < 0 {
			return nil, p.errorf("bad LIMIT %q", n.text)
		}
		st.limit = lim
	}
	return st, nil
}

func (p *parser) deleteStmt() (stmt, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := deleteStmt{table: table.text}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	return st, nil
}

// Expression grammar (lowest to highest precedence):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmp
//	cmp     := add ((= != < <= > >=) add)?
//	add     := mul ((+ -) mul)*
//	mul     := unary ((* /) unary)*
//	unary   := - unary | primary
//	primary := literal | ? | ident | aggregate | ( expr )
func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) notExpr() (expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return unary{op: "NOT", x: x}, nil
	}
	return p.cmp()
}

func (p *parser) cmp() (expr, error) {
	l, err := p.add()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.add()
			if err != nil {
				return nil, err
			}
			return binExpr{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) add() (expr, error) {
	l, err := p.mul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "+", l: l, r: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mul() (expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "*", l: l, r: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "/", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return unary{op: "-", x: x}, nil
	}
	return p.primary()
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return literal{v: Int(v)}, nil
	case t.kind == tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return literal{v: Real(v)}, nil
	case t.kind == tokString:
		p.advance()
		return literal{v: Text(t.text)}, nil
	case t.kind == tokParam:
		p.advance()
		e := param{idx: p.params}
		p.params++
		return e, nil
	case t.kind == tokKeyword && aggNames[t.text]:
		p.advance()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if t.text == "COUNT" && p.accept(tokSymbol, "*") {
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return aggregate{fn: "COUNT"}, nil
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return aggregate{fn: t.text, x: x}, nil
	case t.kind == tokIdent:
		p.advance()
		return columnRef{name: t.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("expected an expression, found %q", t.text)
	}
}
