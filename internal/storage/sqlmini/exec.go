package sqlmini

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"segdiff/internal/storage/btree"
	"segdiff/internal/storage/heap"
	"segdiff/internal/storage/keyenc"
	"segdiff/internal/storage/pager"
)

// Rows is a materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

// ridToInt packs a heap RID into an int64 for index key suffixes.
func ridToInt(rid heap.RID) int64 {
	return int64(rid.Page)<<16 | int64(rid.Slot)
}

func intToRID(v int64) heap.RID {
	return heap.RID{Page: pager.PageID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

// packRID writes the 8-byte index value for a RID.
func packRID(dst []byte, rid heap.RID) {
	binary.LittleEndian.PutUint64(dst, uint64(ridToInt(rid)))
}

// indexKey builds the unique B+tree key for a row in index ix: the encoded
// index columns followed by the RID.
func indexKey(schema *tableSchema, ix *indexSchema, vals []Value, rid heap.RID) ([]byte, error) {
	parts := make([]keyenc.Value, 0, len(ix.Cols)+1)
	for _, cn := range ix.Cols {
		ci := schema.colIndex(cn)
		if ci < 0 {
			return nil, fmt.Errorf("sqlmini: index %s references unknown column %s", ix.Name, cn)
		}
		v := vals[ci]
		switch schema.Cols[ci].Type {
		case IntType:
			parts = append(parts, keyenc.IntValue(v.I))
		case RealType:
			parts = append(parts, keyenc.FloatValue(v.R))
		case TextType:
			parts = append(parts, keyenc.StringValue(v.S))
		}
	}
	parts = append(parts, keyenc.IntValue(ridToInt(rid)))
	return keyenc.Encode(parts...), nil
}

// scanRows drives the chosen access path, invoking fn with each row that
// passes the residual filter. fn returning false stops the scan. The vals
// slice passed to fn is reused between calls: callbacks that retain rows
// past their return must copy.
//
// locks: db.mu (any)
func (db *DB) scanRows(p *scanPlan, args []Value, fn func(rid heap.RID, vals []Value) (bool, error)) error {
	if p.empty {
		return nil
	}
	th := db.tables[p.schema.Name]
	b := &binding{schema: p.schema, args: args}

	rowBuf := make([]Value, len(p.schema.Cols))
	tr := p.trace
	visit := func(rid heap.RID, rec []byte) (bool, error) {
		// A sequential scan examines every row on the kept pages; an index
		// scan's examined count is taken at the B+tree entry level below.
		if tr != nil && p.index == nil {
			tr.rowsExamined++
		}
		vals, err := decodeRowInto(p.schema, rec, rowBuf)
		if err != nil {
			return false, err
		}
		if p.filter != nil {
			b.row = vals
			ok, err := evalExpr(p.filter, b)
			if err != nil {
				return false, err
			}
			if !ok.IsTrue() {
				return true, nil
			}
		}
		if tr != nil {
			tr.rowsReturned++
		}
		return fn(rid, vals)
	}

	if p.index == nil {
		// Zone-map pruning: skip heap pages whose per-page column bounds
		// cannot intersect the plan's ranges. Advisory only — the residual
		// filter above still decides row membership, so pruned and unpruned
		// scans return identical rows.
		return th.h.ScanPages(db.zoneKeep(p), visit)
	}
	ih := db.indexes[p.index.Name]

	// For covered conjuncts, filter on values decoded from the index key
	// and only fetch the heap row for survivors. kvals and krow are reused
	// across entries to keep the scan allocation-free.
	var (
		kb     *binding
		keyIdx []int
		kvals  []keyenc.Value
		krow   []Value
	)
	if p.keyFilter != nil {
		keyIdx = make([]int, len(p.index.Cols))
		for i, cn := range p.index.Cols {
			keyIdx[i] = p.schema.colIndex(cn)
		}
		krow = make([]Value, len(p.schema.Cols))
		kb = &binding{schema: p.schema, args: args}
	}

	return ih.tree.ScanRange(p.lo, p.hi, func(key, val []byte) (bool, error) {
		if tr != nil {
			tr.rowsExamined++ // every entry inside the scan bounds
		}
		if kb != nil {
			var err error
			kvals, err = keyenc.DecodeInto(key, kvals[:0])
			if err != nil {
				return false, err
			}
			if len(kvals) != len(keyIdx)+1 { // + trailing RID
				return false, fmt.Errorf("sqlmini: index %s key has %d parts, want %d", p.index.Name, len(kvals), len(keyIdx)+1)
			}
			for i, ci := range keyIdx {
				switch kvals[i].Kind {
				case keyenc.Int:
					krow[ci] = Int(kvals[i].I)
				case keyenc.Float:
					krow[ci] = Real(kvals[i].F)
				case keyenc.String:
					krow[ci] = Text(kvals[i].S)
				}
			}
			kb.row = krow
			ok, err := evalExpr(p.keyFilter, kb)
			if err != nil {
				return false, err
			}
			if !ok.IsTrue() {
				return true, nil
			}
		}
		rid := intToRID(int64(binary.LittleEndian.Uint64(val)))
		rec, err := th.h.View(rid)
		if err != nil {
			return false, err
		}
		return visit(rid, rec)
	})
}

// execSelect runs a SELECT.
//
// locks: db.mu (shared)
func (db *DB) execSelect(st selectStmt, args []Value, mode PlanMode) (*Rows, error) {
	plan, aggMode, err := db.planSelect(st, args, mode)
	if err != nil {
		return nil, err
	}
	return db.execSelectOn(st, plan, aggMode, args)
}

// planSelect validates a SELECT against the catalog and chooses its
// access path. aggMode reports a whole-table aggregate SELECT. Split
// from execSelect so EXPLAIN ANALYZE can attach a trace to the plan
// before execution.
//
// locks: db.mu (shared)
func (db *DB) planSelect(st selectStmt, args []Value, mode PlanMode) (plan *scanPlan, aggMode bool, err error) {
	schema, ok := db.catalog.Tables[st.table]
	if !ok {
		return nil, false, fmt.Errorf("sqlmini: no such table %s", st.table)
	}
	if st.where != nil {
		if err := validateExpr(st.where, schema, false); err != nil {
			return nil, false, err
		}
	}
	for _, k := range st.orderBy {
		if schema.colIndex(k.col) < 0 {
			return nil, false, fmt.Errorf("sqlmini: ORDER BY references unknown column %s", k.col)
		}
	}
	for _, e := range st.exprs {
		if err := validateExpr(e, schema, true); err != nil {
			return nil, false, err
		}
		if hasAggregate(e) {
			aggMode = true
		}
	}
	plan, err = buildPlan(db, schema, st.where, args, mode)
	if err != nil {
		return nil, false, err
	}
	return plan, aggMode, nil
}

// execSelectOn runs a planned SELECT.
//
// locks: db.mu (shared)
func (db *DB) execSelectOn(st selectStmt, plan *scanPlan, aggMode bool, args []Value) (*Rows, error) {
	schema := plan.schema
	if aggMode {
		return db.execAggregate(st, plan, args)
	}

	out := &Rows{}
	if st.star {
		for _, c := range schema.Cols {
			out.Columns = append(out.Columns, c.Name)
		}
	} else {
		for _, e := range st.exprs {
			out.Columns = append(out.Columns, e.String())
		}
	}

	type sortedRow struct {
		proj []Value
		keys []Value
	}
	var collected []sortedRow
	b := &binding{schema: schema, args: args}
	needSort := len(st.orderBy) > 0

	err := db.scanRows(plan, args, func(_ heap.RID, vals []Value) (bool, error) {
		if !needSort && st.limit >= 0 && int64(len(out.Data)) >= st.limit {
			return false, nil
		}
		var proj []Value
		if st.star {
			proj = append([]Value(nil), vals...)
		} else {
			b.row = vals
			proj = make([]Value, len(st.exprs))
			for i, e := range st.exprs {
				v, err := evalExpr(e, b)
				if err != nil {
					return false, err
				}
				proj[i] = v
			}
		}
		if !needSort {
			out.Data = append(out.Data, proj)
			return st.limit < 0 || int64(len(out.Data)) < st.limit, nil
		}
		keys := make([]Value, len(st.orderBy))
		for i, k := range st.orderBy {
			keys[i] = vals[schema.colIndex(k.col)]
		}
		collected = append(collected, sortedRow{proj: proj, keys: keys})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if needSort {
		var sortErr error
		sort.SliceStable(collected, func(i, j int) bool {
			for k, key := range st.orderBy {
				c, err := Compare(collected[i].keys[k], collected[j].keys[k])
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if key.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		for _, r := range collected {
			if st.limit >= 0 && int64(len(out.Data)) >= st.limit {
				break
			}
			out.Data = append(out.Data, r.proj)
		}
	}
	return out, nil
}

// execAggregate runs a whole-table aggregate SELECT (no GROUP BY).
func (db *DB) execAggregate(st selectStmt, plan *scanPlan, args []Value) (*Rows, error) {
	aggs := make([]aggregate, len(st.exprs))
	for i, e := range st.exprs {
		a, ok := e.(aggregate)
		if !ok {
			return nil, fmt.Errorf("sqlmini: cannot mix aggregates and plain expressions")
		}
		aggs[i] = a
	}
	if len(st.orderBy) > 0 {
		return nil, fmt.Errorf("sqlmini: ORDER BY is not supported with aggregates")
	}

	type acc struct {
		n     int64
		sum   float64
		first bool
		ext   Value // running MIN/MAX
	}
	accs := make([]acc, len(aggs))
	for i := range accs {
		accs[i].first = true
	}
	b := &binding{schema: plan.schema, args: args}

	err := db.scanRows(plan, args, func(_ heap.RID, vals []Value) (bool, error) {
		b.row = vals
		for i, a := range aggs {
			accs[i].n++
			if a.x == nil {
				continue // COUNT(*)
			}
			v, err := evalExpr(a.x, b)
			if err != nil {
				return false, err
			}
			switch a.fn {
			case "COUNT":
			case "SUM", "AVG":
				f, err := v.AsReal()
				if err != nil {
					return false, err
				}
				accs[i].sum += f
			case "MIN", "MAX":
				if accs[i].first {
					accs[i].ext = v
					accs[i].first = false
					break
				}
				c, err := Compare(v, accs[i].ext)
				if err != nil {
					return false, err
				}
				if (a.fn == "MIN" && c < 0) || (a.fn == "MAX" && c > 0) {
					accs[i].ext = v
				}
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}

	out := &Rows{}
	row := make([]Value, len(aggs))
	for i, a := range aggs {
		out.Columns = append(out.Columns, a.String())
		switch a.fn {
		case "COUNT":
			row[i] = Int(accs[i].n)
		case "SUM":
			row[i] = Real(accs[i].sum)
		case "AVG":
			if accs[i].n == 0 {
				row[i] = Real(0)
			} else {
				row[i] = Real(accs[i].sum / float64(accs[i].n))
			}
		case "MIN", "MAX":
			if accs[i].first {
				row[i] = Int(0) // empty input
			} else {
				row[i] = accs[i].ext
			}
		}
	}
	out.Data = append(out.Data, row)
	return out, nil
}

// validateInsert checks every VALUES row of st against the schema.
func validateInsert(schema *tableSchema, st insertStmt) error {
	for _, row := range st.rows {
		if len(row) != len(schema.Cols) {
			return fmt.Errorf("sqlmini: table %s has %d columns, INSERT supplies %d", st.table, len(schema.Cols), len(row))
		}
		for _, e := range row {
			if err := validateExpr(e, schema, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// evalInsertRow evaluates one validated VALUES group into a typed row.
func evalInsertRow(schema *tableSchema, exprs []expr, b *binding) ([]Value, error) {
	vals := make([]Value, len(exprs))
	for i, e := range exprs {
		v, err := evalExpr(e, b)
		if err != nil {
			return nil, err
		}
		c, err := coerce(v, schema.Cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: column %s: %w", schema.Cols[i].Name, err)
		}
		vals[i] = c
	}
	return vals, nil
}

// execInsert runs an INSERT and returns the number of rows inserted.
//
// locks: db.mu
func (db *DB) execInsert(st insertStmt, args []Value) (int, error) {
	schema, ok := db.catalog.Tables[st.table]
	if !ok {
		return 0, fmt.Errorf("sqlmini: no such table %s", st.table)
	}
	if err := validateInsert(schema, st); err != nil {
		return 0, err
	}
	b := &binding{args: args}
	if len(st.rows) == 1 {
		vals, err := evalInsertRow(schema, st.rows[0], b)
		if err != nil {
			return 0, err
		}
		return 1, db.insertRow(schema, vals)
	}
	rows := make([][]Value, len(st.rows))
	for i, rx := range st.rows {
		vals, err := evalInsertRow(schema, rx, b)
		if err != nil {
			return 0, err
		}
		rows[i] = vals
	}
	return len(rows), db.insertRows(schema, rows)
}

// insertRow writes a typed row into the heap and all indexes.
//
// locks: db.mu
func (db *DB) insertRow(schema *tableSchema, vals []Value) error {
	rec, err := encodeRow(schema, vals)
	if err != nil {
		return err
	}
	th := db.tables[schema.Name]
	fresh := th.h.Len() == 0 // no live rows: zone tracking may start here
	rid, err := th.h.Insert(rec)
	if err != nil {
		return err
	}
	for _, ix := range db.catalog.indexesOn(schema.Name) {
		key, err := indexKey(schema, ix, vals, rid)
		if err != nil {
			return err
		}
		var ridBytes [8]byte
		binary.LittleEndian.PutUint64(ridBytes[:], uint64(ridToInt(rid)))
		if err := db.indexes[ix.Name].tree.Insert(key, ridBytes[:]); err != nil {
			return fmt.Errorf("sqlmini: index %s: %w", ix.Name, err)
		}
	}
	oneRow := [1][]Value{vals}
	oneRID := [1]heap.RID{rid}
	db.noteInserted(schema, oneRow[:], oneRID[:], fresh)
	return nil
}

// noteInserted folds freshly written rows into the planner statistics and
// zone maps and marks them for persistence at the next commit. rids are
// the rows' heap locations; fresh reports whether the table held no live
// rows before the insert (which is when zone tracking may begin — see
// catalog.noteZones).
//
// locks: db.mu
func (db *DB) noteInserted(schema *tableSchema, rows [][]Value, rids []heap.RID, fresh bool) {
	db.catalog.noteInsert(schema, rows)
	db.catalog.noteZones(schema, rows, rids, fresh)
	db.statsDirty = true
}

// insertRows writes many typed rows at once: one heap batch under a single
// tail-page pin, then each secondary index applied as a sorted run on its
// own worker (Options.WriteWorkers). Sorting the per-index entries lets the
// B+tree take its right-edge fast path (btree.InsertRun), and distinct
// indexes live in distinct files with distinct pagers, so the workers share
// no mutable state. Row order in the heap — and therefore the table file's
// bytes — is identical to per-row insertion.
//
// locks: db.mu
func (db *DB) insertRows(schema *tableSchema, rows [][]Value) error {
	if len(rows) == 0 {
		return nil
	}
	recs := make([][]byte, len(rows))
	for i, vals := range rows {
		rec, err := encodeRow(schema, vals)
		if err != nil {
			return err
		}
		recs[i] = rec
	}
	th := db.tables[schema.Name]
	fresh := th.h.Len() == 0 // no live rows: zone tracking may start here
	rids, err := th.h.InsertBatch(recs)
	if err != nil {
		return err
	}
	// The rows are in the heap; account for them now. If an index apply
	// below fails, the caller aborts the batch, which restores the
	// statistics and zone maps from the last persisted catalog.
	db.noteInserted(schema, rows, rids, fresh)
	idxs := db.catalog.indexesOn(schema.Name)
	if len(idxs) == 0 {
		return nil
	}

	applyIndex := func(ix *indexSchema) error {
		entries := make([]btree.Entry, len(rows))
		ridBytes := make([]byte, 8*len(rows))
		for i, vals := range rows {
			key, err := indexKey(schema, ix, vals, rids[i])
			if err != nil {
				return err
			}
			val := ridBytes[8*i : 8*i+8]
			packRID(val, rids[i])
			entries[i] = btree.Entry{Key: key, Val: val}
		}
		// Keys are unique (RID suffix), so a plain byte sort yields the
		// strictly ascending run InsertRun requires.
		sort.Slice(entries, func(a, b int) bool {
			return bytes.Compare(entries[a].Key, entries[b].Key) < 0
		})
		if err := db.indexes[ix.Name].tree.InsertRun(entries); err != nil {
			return fmt.Errorf("sqlmini: index %s: %w", ix.Name, err)
		}
		return nil
	}

	workers := db.opts.WriteWorkers
	if workers > len(idxs) {
		workers = len(idxs)
	}
	if workers <= 1 {
		for _, ix := range idxs {
			if err := applyIndex(ix); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(idxs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = applyIndex(idxs[i])
			}
		}()
	}
	for i := range idxs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// execDelete runs a DELETE and returns the number of removed rows.
//
// locks: db.mu
func (db *DB) execDelete(st deleteStmt, args []Value, mode PlanMode) (int, error) {
	schema, ok := db.catalog.Tables[st.table]
	if !ok {
		return 0, fmt.Errorf("sqlmini: no such table %s", st.table)
	}
	if st.where != nil {
		if err := validateExpr(st.where, schema, false); err != nil {
			return 0, err
		}
	}
	plan, err := buildPlan(db, schema, st.where, args, mode)
	if err != nil {
		return 0, err
	}
	type victim struct {
		rid  heap.RID
		vals []Value
	}
	var victims []victim
	err = db.scanRows(plan, args, func(rid heap.RID, vals []Value) (bool, error) {
		// scanRows reuses vals; victims outlive the scan.
		victims = append(victims, victim{rid: rid, vals: append([]Value(nil), vals...)})
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	th := db.tables[schema.Name]
	for _, v := range victims {
		if err := th.h.Delete(v.rid); err != nil {
			return 0, err
		}
		for _, ix := range db.catalog.indexesOn(schema.Name) {
			key, err := indexKey(schema, ix, v.vals, v.rid)
			if err != nil {
				return 0, err
			}
			if err := db.indexes[ix.Name].tree.Delete(key); err != nil {
				return 0, fmt.Errorf("sqlmini: index %s: %w", ix.Name, err)
			}
		}
	}
	if len(victims) > 0 {
		db.catalog.noteDelete(schema.Name, len(victims))
		db.statsDirty = true
	}
	return len(victims), nil
}

// execUnion runs the UNION's scan units and merges the results with set
// semantics (duplicate rows removed), as the paper's search requires:
// "the union of the results of two point queries and one line query".
//
// The fusion pass (fuse.go) groups branches that target the same
// (table, index) into shared scan units, so a search that used to run ten
// index descents runs six or fewer. Units are independent read-only
// scans writing to disjoint branch slots, so they are evaluated on a
// bounded worker pool (Options.UnionWorkers goroutines; the caller
// already holds db.mu shared). The merge happens afterwards in branch
// order, so the result is byte-identical to sequential branch-at-a-time
// evaluation.
//
// locks: db.mu (shared)
func (db *DB) execUnion(ctx context.Context, st unionStmt, args []Value, mode PlanMode) (*Rows, error) {
	branchRows := make([]*Rows, len(st.branches))
	units, err := db.buildUnionUnits(st, args, mode)
	if err != nil {
		return nil, err
	}

	// Cancellation is checked once per scan unit: each unit is one
	// bounded index descent or heap pass, so an expired request context
	// stops the union within a unit of work instead of finishing the
	// whole statement.
	runUnit := func(u *scanUnit) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if u.solo {
			// Placeholder indices are assigned left to right across the
			// whole statement, so every branch evaluates against the full
			// args.
			rows, err := db.execSelect(u.stmts[0], args, mode)
			if err != nil {
				return err
			}
			branchRows[u.idxs[0]] = rows
			return nil
		}
		return db.execFusedUnit(u, args, branchRows)
	}

	workers := db.opts.UnionWorkers
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		for _, u := range units {
			if err := runUnit(u); err != nil {
				return nil, err
			}
		}
	} else {
		errs := make([]error, len(units))
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					errs[i] = runUnit(units[i])
				}
			}()
		}
		for i := range units {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return mergeUnion(branchRows)
}

// mergeUnion concatenates branch results in branch order, removing
// duplicates. The dedup key is an encoded byte string built in a reused
// buffer; the map lookup on a []byte-to-string conversion does not
// allocate, so only the first occurrence of each distinct row pays for a
// key allocation (the old implementation built a fresh string key per
// row via fmt-style formatting).
func mergeUnion(branchRows []*Rows) (*Rows, error) {
	out := &Rows{}
	total := 0
	for _, r := range branchRows {
		total += r.Len()
	}
	seen := make(map[string]struct{}, total)
	var keyBuf []byte
	for i, rows := range branchRows {
		if i == 0 {
			out.Columns = rows.Columns
		} else if len(rows.Columns) != len(out.Columns) {
			return nil, fmt.Errorf("sqlmini: UNION branches produce %d and %d columns",
				len(out.Columns), len(rows.Columns))
		}
		for _, row := range rows.Data {
			keyBuf = appendRowKey(keyBuf[:0], row)
			if _, dup := seen[string(keyBuf)]; dup {
				continue
			}
			seen[string(keyBuf)] = struct{}{}
			out.Data = append(out.Data, row)
		}
	}
	return out, nil
}

// appendRowKey appends a row's deduplication key: a type tag per value
// followed by its fixed-width binary encoding (length-prefixed bytes for
// TEXT). Values compare equal under UNION semantics iff their keys match.
func appendRowKey(dst []byte, row []Value) []byte {
	var b [8]byte
	for _, v := range row {
		dst = append(dst, byte(v.T))
		switch v.T {
		case IntType:
			binary.LittleEndian.PutUint64(b[:], uint64(v.I))
			dst = append(dst, b[:]...)
		case RealType:
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.R))
			dst = append(dst, b[:]...)
		default:
			binary.LittleEndian.PutUint32(b[:4], uint32(len(v.S)))
			dst = append(dst, b[:4]...)
			dst = append(dst, v.S...)
		}
	}
	return dst
}
