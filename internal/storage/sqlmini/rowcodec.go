package sqlmini

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Row encoding: values in schema order. INT and REAL are 8 bytes
// little-endian; TEXT is a uint16 length prefix plus bytes.

func encodeRow(schema *tableSchema, vals []Value) ([]byte, error) {
	if len(vals) != len(schema.Cols) {
		return nil, fmt.Errorf("sqlmini: %s has %d columns, got %d values", schema.Name, len(schema.Cols), len(vals))
	}
	var out []byte
	var b8 [8]byte
	for i, col := range schema.Cols {
		v, err := coerce(vals[i], col.Type)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: column %s: %w", col.Name, err)
		}
		switch col.Type {
		case IntType:
			binary.LittleEndian.PutUint64(b8[:], uint64(v.I))
			out = append(out, b8[:]...)
		case RealType:
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v.R))
			out = append(out, b8[:]...)
		case TextType:
			if len(v.S) > math.MaxUint16 {
				return nil, fmt.Errorf("sqlmini: column %s: TEXT value of %d bytes too long", col.Name, len(v.S))
			}
			binary.LittleEndian.PutUint16(b8[:2], uint16(len(v.S)))
			out = append(out, b8[:2]...)
			out = append(out, v.S...)
		}
	}
	return out, nil
}

func decodeRow(schema *tableSchema, rec []byte) ([]Value, error) {
	return decodeRowInto(schema, rec, make([]Value, len(schema.Cols)))
}

// decodeRowInto is decodeRow writing into out, which must have
// len(schema.Cols) elements. Scan loops pass a reused buffer to avoid one
// allocation per visited row.
func decodeRowInto(schema *tableSchema, rec []byte, out []Value) ([]Value, error) {
	off := 0
	for i, col := range schema.Cols {
		switch col.Type {
		case IntType:
			if off+8 > len(rec) {
				return nil, fmt.Errorf("sqlmini: truncated row in %s", schema.Name)
			}
			out[i] = Int(int64(binary.LittleEndian.Uint64(rec[off:])))
			off += 8
		case RealType:
			if off+8 > len(rec) {
				return nil, fmt.Errorf("sqlmini: truncated row in %s", schema.Name)
			}
			out[i] = Real(math.Float64frombits(binary.LittleEndian.Uint64(rec[off:])))
			off += 8
		case TextType:
			if off+2 > len(rec) {
				return nil, fmt.Errorf("sqlmini: truncated row in %s", schema.Name)
			}
			n := int(binary.LittleEndian.Uint16(rec[off:]))
			off += 2
			if off+n > len(rec) {
				return nil, fmt.Errorf("sqlmini: truncated TEXT in %s", schema.Name)
			}
			out[i] = Text(string(rec[off : off+n]))
			off += n
		}
	}
	if off != len(rec) {
		return nil, fmt.Errorf("sqlmini: %d trailing bytes in row of %s", len(rec)-off, schema.Name)
	}
	return out, nil
}
