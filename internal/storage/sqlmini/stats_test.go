package sqlmini

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestColHistSelectivity(t *testing.T) {
	var h colHist
	for i := 0; i < 1000; i++ {
		h.add(float64(i))
	}
	for _, tc := range []struct {
		v    float64
		want float64
	}{
		{-1, 0}, {0, 0}, {999, 1}, {500, 0.5}, {250, 0.25}, {750, 0.75},
	} {
		got := h.selLE(tc.v)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("selLE(%v) = %v, want %v ± 0.05", tc.v, got, tc.want)
		}
	}
	if s := h.selRange(250, 750); math.Abs(s-0.5) > 0.05 {
		t.Errorf("selRange(250, 750) = %v, want 0.5 ± 0.05", s)
	}
	if s := h.selRange(math.Inf(-1), 500); math.Abs(s-0.5) > 0.05 {
		t.Errorf("selRange(-inf, 500) = %v, want 0.5 ± 0.05", s)
	}
	if s := h.selRange(500, math.Inf(1)); math.Abs(s-0.5) > 0.05 {
		t.Errorf("selRange(500, +inf) = %v, want 0.5 ± 0.05", s)
	}
}

func TestColHistRescale(t *testing.T) {
	var h colHist
	// Start narrow, then widen by two orders of magnitude: counts must be
	// preserved exactly and estimates stay sane.
	for i := 0; i < 100; i++ {
		h.add(float64(i))
	}
	h.add(10000)
	if h.Total != 101 {
		t.Fatalf("Total = %d, want 101", h.Total)
	}
	var sum int64
	for _, c := range h.N {
		sum += c
	}
	if sum != 101 {
		t.Fatalf("bucket counts sum to %d after rescale, want 101", sum)
	}
	// ~100 of 101 values are below 5000.
	if s := h.selLE(5000); s < 0.9 {
		t.Errorf("selLE(5000) = %v after rescale, want >= 0.9", s)
	}
}

func TestColHistDegenerate(t *testing.T) {
	var h colHist
	for i := 0; i < 10; i++ {
		h.add(42)
	}
	if s := h.selLE(42); s != 1 {
		t.Errorf("single-value hist selLE(42) = %v, want 1", s)
	}
	if s := h.selLE(41); s != 0 {
		t.Errorf("single-value hist selLE(41) = %v, want 0", s)
	}
	h.add(100) // widen out of the degenerate range
	if h.Total != 11 {
		t.Fatalf("Total = %d", h.Total)
	}
	if s := h.selRange(0, 50); s < 0.8 {
		t.Errorf("selRange(0, 50) = %v after widening, want >= 0.8", s)
	}
}

func TestStatsMaintenance(t *testing.T) {
	db := OpenMemory(Options{})
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT, b REAL, s TEXT)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?, ?)",
			Int(int64(i)), Real(float64(i)/2), Text("x"))
	}
	ts := db.catalog.Stats["t"]
	if ts == nil || ts.Rows != 50 {
		t.Fatalf("stats rows = %+v, want 50", ts)
	}
	if cs := ts.Cols["a"]; cs == nil || cs.Min != 0 || cs.Max != 49 {
		t.Errorf("col a stats = %+v, want min 0 max 49", cs)
	}
	if cs := ts.Cols["s"]; cs != nil {
		t.Errorf("TEXT column carries numeric statistics: %+v", cs)
	}
	if _, err := db.Exec("DELETE FROM t WHERE a < ?", Int(10)); err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 40 {
		t.Errorf("rows after delete = %d, want 40", ts.Rows)
	}
}

// TestStatsCrossover pins the statistics-driven seq-vs-index decision: on
// a populated table an unselective range goes sequential, a selective one
// goes through the index — the crossover of the paper's Figures 17–24,
// chosen from data.
func TestStatsCrossover(t *testing.T) {
	db := OpenMemory(Options{})
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX t_a ON t (a, b)")
	for i := 0; i < 2000; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", Int(int64(i)), Real(float64(i)))
	}

	wide := mustQuery(t, db, "EXPLAIN SELECT a FROM t WHERE a >= ?", Int(0))
	if plan := wide.Data[0][0].S; !strings.HasPrefix(plan, "SEQ SCAN t") || !strings.Contains(plan, " EST ") {
		t.Errorf("unselective range should cost out to a sequential scan with estimates: %q", plan)
	}
	narrow := mustQuery(t, db, "EXPLAIN SELECT a FROM t WHERE a <= ?", Int(20))
	if plan := narrow.Data[0][0].S; !strings.HasPrefix(plan, "INDEX SCAN t_a ON t") || !strings.Contains(plan, " EST ") {
		t.Errorf("selective range should stay on the index: %q", plan)
	}
	// Forced modes still override the cost model.
	forced := mustQueryMode(t, db, PlanForceIndex, "EXPLAIN SELECT a FROM t WHERE a >= ?", Int(0))
	if plan := forced.Data[0][0].S; !strings.HasPrefix(plan, "INDEX SCAN t_a ON t") {
		t.Errorf("PlanForceIndex ignored: %q", plan)
	}
}

// TestExplainFusedGolden is the golden output test for fused union plans
// with statistics: two branches over the same (table, index) collapse
// into one fused scan with per-branch attribution and cost estimates.
func TestExplainFusedGolden(t *testing.T) {
	db := OpenMemory(Options{})
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX t_a ON t (a, b)")
	rows := make([][]Value, 0, 1024)
	for i := 0; i < 1024; i++ {
		rows = append(rows, []Value{Int(int64(i)), Real(float64(i % 128))})
	}
	st, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecBatch(rows); err != nil {
		t.Fatal(err)
	}

	got := mustQuery(t, db,
		"EXPLAIN SELECT a, b FROM t WHERE a <= ? AND b <= ? UNION SELECT a, b FROM t WHERE a <= ? AND b >= ?",
		Int(100), Real(4), Int(150), Real(120))
	var lines []string
	for _, row := range got.Data {
		lines = append(lines, row[0].S)
	}
	want := []string{
		"FUSED INDEX SCAN t_a ON t BRANCHES 2 EST sel=0.1474 rows~13",
		"  BRANCH 0: INDEX SCAN t_a ON t BOUNDS(a<~100) FILTER ((a <= ?1) AND (b <= ?2)) EST sel=0.0989 rows~4 cost=8.0",
		"  BRANCH 1: INDEX SCAN t_a ON t BOUNDS(a<~150) FILTER ((a <= ?3) AND (b >= ?4)) EST sel=0.1474 rows~9 cost=12.1",
	}
	if len(lines) != len(want) {
		t.Fatalf("EXPLAIN returned %d lines, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d:\n  got  %q\n  want %q", i, lines[i], want[i])
		}
	}
}

// TestFusedUnionIdentity checks, at the engine level, that fused
// execution returns byte-identical results to branch-at-a-time execution
// for unions whose branches overlap, nest, and miss entirely.
func TestFusedUnionIdentity(t *testing.T) {
	mk := func(opts Options) *DB {
		db := OpenMemory(opts)
		mustExec(t, db, "CREATE TABLE t (a INT, b REAL)")
		mustExec(t, db, "CREATE INDEX t_a ON t (a, b)")
		for i := 0; i < 300; i++ {
			mustExec(t, db, "INSERT INTO t VALUES (?, ?)", Int(int64(i%100)), Real(float64(i)/3))
		}
		return db
	}
	fused := mk(Options{})
	defer fused.Close()
	branch := mk(Options{DisableFusion: true})
	defer branch.Close()

	queries := []struct {
		sql  string
		args []Value
	}{
		{"SELECT a, b FROM t WHERE a <= ? UNION SELECT a, b FROM t WHERE a <= ? AND b >= ?",
			[]Value{Int(50), Int(80), Real(30)}},
		{"SELECT a FROM t WHERE a <= ? UNION SELECT a FROM t WHERE a >= ? UNION SELECT a FROM t WHERE a = ?",
			[]Value{Int(10), Int(90), Int(50)}},
		{"SELECT b FROM t WHERE a = ? UNION SELECT b FROM t WHERE a = ?",
			[]Value{Int(5), Int(500)}}, // second branch matches nothing
	}
	for _, mode := range []PlanMode{PlanAuto, PlanForceScan, PlanForceIndex} {
		for qi, q := range queries {
			a, err := fused.QueryMode(mode, q.sql, q.args...)
			if err != nil {
				t.Fatalf("mode %v query %d fused: %v", mode, qi, err)
			}
			b, err := branch.QueryMode(mode, q.sql, q.args...)
			if err != nil {
				t.Fatalf("mode %v query %d branch: %v", mode, qi, err)
			}
			if fmt.Sprintf("%v", a.Data) != fmt.Sprintf("%v", b.Data) {
				t.Errorf("mode %v query %d: fused and branch-at-a-time results differ\nfused:  %v\nbranch: %v",
					mode, qi, a.Data, b.Data)
			}
		}
	}
}

func mustQueryMode(t *testing.T, db *DB, mode PlanMode, sql string, args ...Value) *Rows {
	t.Helper()
	r, err := db.QueryMode(mode, sql, args...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return r
}
