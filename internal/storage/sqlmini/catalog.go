package sqlmini

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// tableSchema is the persistent description of a table.
type tableSchema struct {
	Name   string      `json:"name"`
	Cols   []ColumnDef `json:"cols"`
	FileID uint16      `json:"file_id"`
}

// colIndex returns the position of the named column, or -1.
func (t *tableSchema) colIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// indexSchema is the persistent description of a secondary index.
type indexSchema struct {
	Name   string   `json:"name"`
	Table  string   `json:"table"`
	Cols   []string `json:"cols"`
	FileID uint16   `json:"file_id"`
}

// catalog is the schema registry, persisted as JSON in on-disk databases.
// Stats carries the planner statistics (see stats.go): maintained
// incrementally by the write path under the engine's writer lock and
// persisted alongside the schema at batch commit. Advisory only — a stale
// or missing entry degrades plan quality, never correctness.
type catalog struct {
	Tables     map[string]*tableSchema `json:"tables"`
	Indexes    map[string]*indexSchema `json:"indexes"`
	NextFileID uint16                  `json:"next_file_id"`
	Stats      map[string]*tableStats  `json:"stats,omitempty"`
	// Zones are the per-heap-page min/max summaries (zones.go), maintained
	// and persisted like Stats. Advisory for cost, one-sided for
	// correctness: a summary may over-approximate a page's contents but
	// never under-approximate it — pruning relies on that.
	Zones map[string]*tableZones `json:"zones,omitempty"`
}

func newCatalog() *catalog {
	return &catalog{
		Tables:  map[string]*tableSchema{},
		Indexes: map[string]*indexSchema{},
	}
}

// indexesOn returns the indexes declared on the given table, in a
// deterministic order (by FileID, i.e. creation order).
func (c *catalog) indexesOn(table string) []*indexSchema {
	var out []*indexSchema
	for _, ix := range c.Indexes {
		if ix.Table == table {
			out = append(out, ix)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].FileID > out[j].FileID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

const catalogFile = "catalog.json"

// saveCatalog atomically writes the catalog JSON into dir.
func saveCatalog(dir string, c *catalog) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("sqlmini: marshal catalog: %w", err)
	}
	tmp := filepath.Join(dir, catalogFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, catalogFile)); err != nil {
		return err
	}
	return nil
}

// loadCatalog reads the catalog JSON from dir; a missing file yields an
// empty catalog.
func loadCatalog(dir string) (*catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if os.IsNotExist(err) {
		return newCatalog(), nil
	}
	if err != nil {
		return nil, err
	}
	c := newCatalog()
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("sqlmini: corrupt catalog: %w", err)
	}
	return c, nil
}
