package sqlmini

import (
	"fmt"
	"math"
)

// binding supplies the runtime environment of an expression: the current
// row (nil when evaluating row-independent expressions) and the statement
// arguments.
type binding struct {
	schema *tableSchema
	row    []Value
	args   []Value
}

// evalExpr evaluates e under b. Aggregates are rejected here; the executor
// handles them separately.
func evalExpr(e expr, b *binding) (Value, error) {
	switch x := e.(type) {
	case literal:
		return x.v, nil
	case param:
		if x.idx >= len(b.args) {
			return Value{}, fmt.Errorf("sqlmini: missing argument for placeholder %d (have %d)", x.idx+1, len(b.args))
		}
		return b.args[x.idx], nil
	case columnRef:
		if b.schema == nil || b.row == nil {
			return Value{}, fmt.Errorf("sqlmini: column %s referenced outside a row context", x.name)
		}
		i := b.schema.colIndex(x.name)
		if i < 0 {
			return Value{}, fmt.Errorf("sqlmini: unknown column %s in table %s", x.name, b.schema.Name)
		}
		return b.row[i], nil
	case unary:
		v, err := evalExpr(x.x, b)
		if err != nil {
			return Value{}, err
		}
		switch x.op {
		case "-":
			switch v.T {
			case IntType:
				return Int(-v.I), nil
			case RealType:
				return Real(-v.R), nil
			default:
				return Value{}, fmt.Errorf("sqlmini: unary minus on TEXT")
			}
		case "NOT":
			return Bool(!v.IsTrue()), nil
		default:
			return Value{}, fmt.Errorf("sqlmini: unknown unary operator %q", x.op)
		}
	case binExpr:
		return evalBinary(x, b)
	case aggregate:
		return Value{}, fmt.Errorf("sqlmini: aggregate %s not allowed here", x.fn)
	default:
		return Value{}, fmt.Errorf("sqlmini: unknown expression %T", e)
	}
}

func evalBinary(x binExpr, b *binding) (Value, error) {
	switch x.op {
	case "AND":
		l, err := evalExpr(x.l, b)
		if err != nil {
			return Value{}, err
		}
		if !l.IsTrue() {
			return Bool(false), nil
		}
		r, err := evalExpr(x.r, b)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.IsTrue()), nil
	case "OR":
		l, err := evalExpr(x.l, b)
		if err != nil {
			return Value{}, err
		}
		if l.IsTrue() {
			return Bool(true), nil
		}
		r, err := evalExpr(x.r, b)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.IsTrue()), nil
	}

	l, err := evalExpr(x.l, b)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(x.r, b)
	if err != nil {
		return Value{}, err
	}
	switch x.op {
	case "=", "!=", "<", "<=", ">", ">=":
		c, err := Compare(l, r)
		if err != nil {
			return Value{}, err
		}
		switch x.op {
		case "=":
			return Bool(c == 0), nil
		case "!=":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "+", "-", "*", "/":
		return arith(x.op, l, r)
	default:
		return Value{}, fmt.Errorf("sqlmini: unknown operator %q", x.op)
	}
}

// arith performs numeric arithmetic: INT op INT stays INT (with checked
// division), otherwise both operands widen to REAL.
func arith(op string, l, r Value) (Value, error) {
	if l.T == TextType || r.T == TextType {
		return Value{}, fmt.Errorf("sqlmini: arithmetic on TEXT")
	}
	if l.T == IntType && r.T == IntType {
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		default:
			if r.I == 0 {
				return Value{}, fmt.Errorf("sqlmini: integer division by zero")
			}
			return Int(l.I / r.I), nil
		}
	}
	lf, _ := l.AsReal()
	rf, _ := r.AsReal()
	var out float64
	switch op {
	case "+":
		out = lf + rf
	case "-":
		out = lf - rf
	case "*":
		out = lf * rf
	default:
		out = lf / rf // IEEE semantics: ±Inf/NaN on zero divisor
	}
	if math.IsNaN(out) {
		return Value{}, fmt.Errorf("sqlmini: arithmetic produced NaN")
	}
	return Real(out), nil
}

// isConst reports whether e references no columns and no aggregates, i.e.
// it can be evaluated at planning time given the statement arguments.
func isConst(e expr) bool {
	ok := true
	walkExpr(e, func(e expr) {
		switch e.(type) {
		case columnRef, aggregate:
			ok = false
		}
	})
	return ok
}

// hasAggregate reports whether e contains an aggregate call.
func hasAggregate(e expr) bool {
	found := false
	walkExpr(e, func(e expr) {
		if _, ok := e.(aggregate); ok {
			found = true
		}
	})
	return found
}

// splitConjuncts flattens top-level ANDs into a conjunct list.
func splitConjuncts(e expr) []expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(binExpr); ok && b.op == "AND" {
		return append(splitConjuncts(b.l), splitConjuncts(b.r)...)
	}
	return []expr{e}
}

// validateExpr type-checks column references against the schema and
// rejects aggregates when allowAgg is false. It is a static pass run at
// plan time so errors surface before execution touches any page.
func validateExpr(e expr, schema *tableSchema, allowAgg bool) error {
	var errOut error
	walkExpr(e, func(e expr) {
		if errOut != nil {
			return
		}
		switch x := e.(type) {
		case columnRef:
			if schema.colIndex(x.name) < 0 {
				errOut = fmt.Errorf("sqlmini: unknown column %s in table %s", x.name, schema.Name)
			}
		case aggregate:
			if !allowAgg {
				errOut = fmt.Errorf("sqlmini: aggregate %s not allowed in this clause", x.fn)
			}
		}
	})
	return errOut
}
