package sqlmini

import (
	"reflect"
	"testing"
	"time"

	"segdiff/internal/storage/pager"
)

// slowFile adds a fixed latency to every page read, standing in for a
// cold OS page cache. Without it an in-memory demand Get always beats
// the prefetch workers to the page and readahead never observably runs.
type slowFile struct {
	pager.File
	delay time.Duration
}

func (f *slowFile) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(f.delay)
	return f.File.ReadAt(p, off)
}

// openSlowDB builds an on-disk database whose files serve reads with
// simulated latency, populated with the zone-test dataset.
func openSlowDB(t *testing.T, opts Options, n int) *DB {
	t.Helper()
	opts.FileFactory = func(path string) (pager.File, error) {
		f, err := pager.OpenOSFile(path)
		if err != nil {
			return nil, err
		}
		return &slowFile{File: f, delay: 100 * time.Microsecond}, nil
	}
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, "CREATE TABLE f (dv1 REAL, dv2 REAL, dt INT, tag TEXT)")
	st, err := db.Prepare("INSERT INTO f VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecBatch(zoneRows(n)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestReadAheadIdentity runs the zone-map query suite on a readahead
// database against a twin with readahead off: prefetching is invisible
// to results, and a cold sequential scan actually uses the prefetched
// frames.
func TestReadAheadIdentity(t *testing.T) {
	ra := openSlowDB(t, Options{ReadAhead: 8, DisableZoneMaps: true}, 5000)
	plain := openSlowDB(t, Options{DisableZoneMaps: true}, 5000)
	for _, db := range []*DB{ra, plain} {
		if err := db.DropCache(); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range zoneQueries {
		a, err := ra.QueryMode(PlanForceScan, q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		b, err := plain.QueryMode(PlanForceScan, q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: readahead %d rows, plain %d rows", q.sql, a.Len(), b.Len())
		}
	}
	st := ra.CacheStats()
	if st.PrefetchReads == 0 {
		t.Fatal("cold scans issued no prefetch reads")
	}
	if st.Reads != st.Misses+st.PrefetchReads {
		t.Fatalf("read accounting broken: Reads=%d Misses=%d PrefetchReads=%d",
			st.Reads, st.Misses, st.PrefetchReads)
	}
	if plain.CacheStats().PrefetchReads != 0 {
		t.Fatal("ReadAhead 0 still prefetched")
	}
}

// TestReadAheadIndexScan checks leaf-chain prefetch during index range
// scans keeps results exact and records prefetch activity.
func TestReadAheadIndexScan(t *testing.T) {
	ra := openSlowDB(t, Options{ReadAhead: 4, DisableZoneMaps: true}, 4000)
	plain := openSlowDB(t, Options{DisableZoneMaps: true}, 4000)
	for _, db := range []*DB{ra, plain} {
		mustExec(t, db, "CREATE INDEX f_dv1 ON f (dv1)")
		if err := db.DropCache(); err != nil {
			t.Fatal(err)
		}
	}
	const q = "SELECT * FROM f WHERE dv1 >= 100 AND dv1 < 2100"
	a, err := ra.QueryMode(PlanForceIndex, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.QueryMode(PlanForceIndex, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("index scan: readahead %d rows, plain %d rows", a.Len(), b.Len())
	}
	if a.Len() != 2000 {
		t.Fatalf("got %d rows, want 2000", a.Len())
	}
	if ra.CacheStats().PrefetchReads == 0 {
		t.Fatal("cold index range scan issued no leaf prefetches")
	}
}
