package sqlmini

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"segdiff/internal/obs"
)

// analyzeFixture builds the shared EXPLAIN ANALYZE fixture: 1024 rows
// (i, i%128) under a composite index — the same table the EXPLAIN
// goldens in stats_test.go use, so the ANALYZE goldens line up with
// them. Column a is inserted in ascending order, which makes the heap's
// per-page zone maps selective on a and useless on b (every page spans
// nearly the full 0..127 range of b).
func analyzeFixture(t *testing.T, opts Options) *DB {
	t.Helper()
	db := OpenMemory(opts)
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, "CREATE TABLE t (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX t_a ON t (a, b)")
	rows := make([][]Value, 0, 1024)
	for i := 0; i < 1024; i++ {
		rows = append(rows, []Value{Int(int64(i)), Real(float64(i % 128))})
	}
	st, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecBatch(rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// analyzeLines runs an EXPLAIN ANALYZE statement and returns its rendered
// lines with the volatile wall-time field normalized.
func analyzeLines(t *testing.T, db *DB, mode PlanMode, sql string, args ...Value) []string {
	t.Helper()
	r := mustQueryMode(t, db, mode, sql, args...)
	var lines []string
	for _, row := range r.Data {
		lines = append(lines, obs.NormalizeWall(row[0].S))
	}
	return lines
}

func diffLines(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n  got  %q\n  want %q", i, got[i], want[i])
		}
	}
}

// TestExplainAnalyzeGoldenSeq pins the annotated sequential plan. The
// predicate is on b, where ascending-a inserts leave every full heap
// page spanning nearly the whole 0..127 range of b, so the zone maps
// prune almost nothing: only the 4-row tail page (b in 124..127) is
// skipped, and the 5 full pages' 1020 rows are all examined.
func TestExplainAnalyzeGoldenSeq(t *testing.T) {
	db := analyzeFixture(t, Options{})
	got := analyzeLines(t, db, PlanForceScan,
		"EXPLAIN ANALYZE SELECT a FROM t WHERE b <= ?", Real(4))
	want := []string{
		"SEQ SCAN t ZONEMAP FILTER (b <= ?1) EST sel=1.0000 rows~39 cost=16.2 " +
			"(actual rows=40 examined=1020 pages_read=0 pages_hit=5 prefetch_hits=0 zone_skipped=1 wall=X est_rows=39)",
	}
	diffLines(t, got, want)
}

// TestExplainAnalyzeGoldenZoneMapPruned pins the pruned sequential
// plan: a is inserted in ascending order, so the range a < 100 keeps
// only the first heap page (rows 0..203) and the zone maps skip the
// other five without reading them.
func TestExplainAnalyzeGoldenZoneMapPruned(t *testing.T) {
	db := analyzeFixture(t, Options{})
	got := analyzeLines(t, db, PlanForceScan,
		"EXPLAIN ANALYZE SELECT a FROM t WHERE a < ?", Int(100))
	want := []string{
		"SEQ SCAN t ZONEMAP FILTER (a < ?1) EST sel=1.0000 rows~101 cost=16.2 " +
			"(actual rows=100 examined=204 pages_read=0 pages_hit=1 prefetch_hits=0 zone_skipped=5 wall=X est_rows=101)",
	}
	diffLines(t, got, want)
}

// TestExplainAnalyzeGoldenIndex pins the annotated index plan: the scan
// examines every entry inside the key bounds (a <= 100), and the key
// filter on (a, b) reduces them to the 5 matching rows.
func TestExplainAnalyzeGoldenIndex(t *testing.T) {
	db := analyzeFixture(t, Options{})
	got := analyzeLines(t, db, PlanAuto,
		"EXPLAIN ANALYZE SELECT a, b FROM t WHERE a <= ? AND b <= ?", Int(100), Real(4))
	want := []string{
		"INDEX SCAN t_a ON t BOUNDS(a<~100) FILTER ((a <= ?1) AND (b <= ?2)) EST sel=0.0989 rows~4 cost=8.0 " +
			"(actual rows=5 examined=101 pages_read=0 pages_hit=8 prefetch_hits=0 zone_skipped=0 wall=X est_rows=4)",
	}
	diffLines(t, got, want)
}

// TestExplainAnalyzeGoldenFusedUnion pins the fused union trace: the
// same statement as TestExplainFusedGolden, now annotated. Rows are
// attributed per branch; page I/O lives on the unit node because the
// branches share one scan.
func TestExplainAnalyzeGoldenFusedUnion(t *testing.T) {
	db := analyzeFixture(t, Options{})
	got := analyzeLines(t, db, PlanAuto,
		"EXPLAIN ANALYZE SELECT a, b FROM t WHERE a <= ? AND b <= ? UNION SELECT a, b FROM t WHERE a <= ? AND b >= ?",
		Int(100), Real(4), Int(150), Real(120))
	want := []string{
		"FUSED INDEX SCAN t_a ON t BRANCHES 2 EST sel=0.1474 rows~13 " +
			"(actual rows=13 examined=252 pages_read=0 pages_hit=17 prefetch_hits=0 zone_skipped=0 wall=X est_rows=13)",
		"  BRANCH 0: INDEX SCAN t_a ON t BOUNDS(a<~100) FILTER ((a <= ?1) AND (b <= ?2)) EST sel=0.0989 rows~4 cost=8.0 " +
			"(actual rows=5 examined=101 pages_read=0 pages_hit=0 prefetch_hits=0 zone_skipped=0 wall=X est_rows=4)",
		"  BRANCH 1: INDEX SCAN t_a ON t BOUNDS(a<~150) FILTER ((a <= ?3) AND (b >= ?4)) EST sel=0.1474 rows~9 cost=12.1 " +
			"(actual rows=8 examined=151 pages_read=0 pages_hit=0 prefetch_hits=0 zone_skipped=0 wall=X est_rows=9)",
	}
	diffLines(t, got, want)
}

// pagesRE hides the page counters that become timing-dependent once the
// background prefetcher races the scan.
var pagesRE = regexp.MustCompile(`(pages_read|pages_hit|prefetch_hits)=\d+`)

// TestExplainAnalyzeGoldenReadAhead pins the readahead-annotated plan.
// Row counts stay exact; the page counters are normalized because the
// prefetcher's async reads race the scan's demand reads. zone_skipped
// stays exact even here: both pruning sites (the scan's page skip and
// the readahead announce filter) run on the scanning goroutine, and the
// pruned tail page is counted once by each — hence 2.
func TestExplainAnalyzeGoldenReadAhead(t *testing.T) {
	db := analyzeFixture(t, Options{ReadAhead: 4})
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	got := analyzeLines(t, db, PlanForceScan,
		"EXPLAIN ANALYZE SELECT a FROM t WHERE b <= ?", Real(4))
	for i := range got {
		got[i] = pagesRE.ReplaceAllString(got[i], "${1}=N")
	}
	want := []string{
		"SEQ SCAN t ZONEMAP READAHEAD 4 FILTER (b <= ?1) EST sel=1.0000 rows~39 cost=16.2 " +
			"(actual rows=40 examined=1020 pages_read=N pages_hit=N prefetch_hits=N zone_skipped=2 wall=X est_rows=39)",
	}
	diffLines(t, got, want)

	// The normalized counters still obey the pool identity: every read is
	// either a demand miss or a prefetch.
	cs := db.CacheStats()
	if cs.Reads != cs.Misses+cs.PrefetchReads {
		t.Errorf("Reads=%d != Misses=%d + PrefetchReads=%d", cs.Reads, cs.Misses, cs.PrefetchReads)
	}
}

// TestExplainAnalyzeEstimateVsActualSkew pins estimate-vs-actual on
// skewed data: 900 of 1024 rows share a=0, so the histogram's uniform
// bucket assumption misestimates a point-heavy range while the trace
// reports the true count next to it.
func TestExplainAnalyzeEstimateVsActualSkew(t *testing.T) {
	db := OpenMemory(Options{})
	defer db.Close()
	mustExec(t, db, "CREATE TABLE s (a INT)")
	mustExec(t, db, "CREATE INDEX s_a ON s (a)")
	rows := make([][]Value, 0, 1024)
	for i := 0; i < 1024; i++ {
		v := int64(0)
		if i >= 900 {
			v = int64(i)
		}
		rows = append(rows, []Value{Int(v)})
	}
	st, err := db.Prepare("INSERT INTO s VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecBatch(rows); err != nil {
		t.Fatal(err)
	}

	tr, err := db.ExplainAnalyze(PlanAuto, "SELECT a FROM s WHERE a <= ?", Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 {
		t.Fatalf("trace has %d nodes, want 1", len(tr.Nodes))
	}
	n := tr.Nodes[0]
	if n.RowsReturned != 900 {
		t.Fatalf("actual rows = %d, want 900", n.RowsReturned)
	}
	if n.EstRows < 0 {
		t.Fatalf("planner produced no estimate: %+v", n)
	}
	// The whole point of surfacing est_rows: on skew the estimate is off
	// by a wide margin, and the trace shows both numbers side by side.
	if n.EstRows >= n.RowsReturned {
		t.Errorf("histogram estimate %d should underestimate the skewed actual %d", n.EstRows, n.RowsReturned)
	}
}

// TestAnalyzeRowInvariants checks the row-counter invariants the trace
// must uphold on every plan shape: a node never returns more rows than
// it examined, a fused unit's counters are exactly the sum of its
// branches, and the reported result row count matches a plain execution
// of the same statement.
func TestAnalyzeRowInvariants(t *testing.T) {
	db := analyzeFixture(t, Options{})
	queries := []struct {
		sql  string
		args []Value
	}{
		{"SELECT a FROM t WHERE b <= ?", []Value{Real(4)}},
		{"SELECT a, b FROM t WHERE a <= ? AND b <= ?", []Value{Int(100), Real(4)}},
		{"SELECT a, b FROM t WHERE a <= ? AND b <= ? UNION SELECT a, b FROM t WHERE a <= ? AND b >= ?",
			[]Value{Int(100), Real(4), Int(150), Real(120)}},
		{"SELECT a FROM t WHERE a <= ? UNION SELECT a FROM t WHERE a >= ? UNION SELECT a FROM t WHERE a = ?",
			[]Value{Int(10), Int(900), Int(50)}},
		{"SELECT a FROM t WHERE a = ?", []Value{Int(5000)}}, // empty result
	}
	for _, mode := range []PlanMode{PlanAuto, PlanForceScan, PlanForceIndex} {
		for _, q := range queries {
			tr, err := db.ExplainAnalyze(mode, q.sql, q.args...)
			if err != nil {
				t.Fatalf("mode %v %s: %v", mode, q.sql, err)
			}
			var walk func(n *obs.TraceNode)
			walk = func(n *obs.TraceNode) {
				if n.RowsReturned > n.RowsExamined {
					t.Errorf("mode %v %s: node %q returned %d > examined %d",
						mode, q.sql, n.Plan, n.RowsReturned, n.RowsExamined)
				}
				if len(n.Children) > 0 {
					var ex, ret int64
					for _, c := range n.Children {
						walk(c)
						ex += c.RowsExamined
						ret += c.RowsReturned
					}
					if ex != n.RowsExamined || ret != n.RowsReturned {
						t.Errorf("mode %v %s: unit %q (examined=%d returned=%d) != branch sums (%d, %d)",
							mode, q.sql, n.Plan, n.RowsExamined, n.RowsReturned, ex, ret)
					}
				}
			}
			for _, n := range tr.Nodes {
				walk(n)
			}
			plain := mustQueryMode(t, db, mode, q.sql, q.args...)
			if tr.Rows != plain.Len() {
				t.Errorf("mode %v %s: trace rows=%d, plain execution %d", mode, q.sql, tr.Rows, plain.Len())
			}
			// UNION dedup can only shrink the branch outputs.
			if int64(tr.Rows) > tr.RowsReturnedTotal() && tr.RowsReturnedTotal() > 0 {
				t.Errorf("mode %v %s: merged rows %d exceed branch returns %d",
					mode, q.sql, tr.Rows, tr.RowsReturnedTotal())
			}
		}
	}
}

// TestAnalyzePageDeltaMatchesPager checks that per-node page attribution
// is conservation-exact: on an otherwise idle database, the traced
// PagesRead over the whole tree equals the buffer-pool Reads delta the
// query caused, and the pool identities hold before and after.
func TestAnalyzePageDeltaMatchesPager(t *testing.T) {
	db := analyzeFixture(t, Options{})
	for _, q := range []struct {
		mode PlanMode
		sql  string
		args []Value
	}{
		{PlanForceScan, "SELECT a FROM t WHERE b <= ?", []Value{Real(4)}},
		{PlanForceIndex, "SELECT a, b FROM t WHERE a <= ? AND b <= ?", []Value{Int(100), Real(4)}},
		{PlanAuto, "SELECT a, b FROM t WHERE a <= ? AND b <= ? UNION SELECT a, b FROM t WHERE a <= ? AND b >= ?",
			[]Value{Int(100), Real(4), Int(150), Real(120)}},
	} {
		if err := db.DropCache(); err != nil {
			t.Fatal(err)
		}
		base := db.CacheStats()
		tr, err := db.ExplainAnalyze(q.mode, q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		cur := db.CacheStats()
		if delta := cur.Reads - base.Reads; tr.PagesReadTotal() != delta {
			t.Errorf("%s: trace pages_read=%d, pool Reads delta=%d", q.sql, tr.PagesReadTotal(), delta)
		}
		if tr.PagesReadTotal() == 0 {
			t.Errorf("%s: cold query read no pages", q.sql)
		}
		if cur.Reads != cur.Misses+cur.PrefetchReads {
			t.Errorf("%s: Reads=%d != Misses=%d + PrefetchReads=%d", q.sql, cur.Reads, cur.Misses, cur.PrefetchReads)
		}
	}
}

// TestMetricsSnapshotMonotonic checks that registry counters never move
// backwards across queries, and that the query counters advance by
// exactly one per observed query.
func TestMetricsSnapshotMonotonic(t *testing.T) {
	db := analyzeFixture(t, Options{})
	prev := db.Metrics()
	for i := 0; i < 5; i++ {
		mustQuery(t, db, "SELECT a FROM t WHERE a <= ?", Int(int64(10*i)))
		snap := db.Metrics()
		for _, name := range prev.Names() {
			if snap.Counter(name) < prev.Counter(name) {
				t.Fatalf("counter %s went backwards: %d -> %d", name, prev.Counter(name), snap.Counter(name))
			}
		}
		if got, want := snap.Counter("engine.queries"), prev.Counter("engine.queries")+1; got != want {
			t.Fatalf("engine.queries after query %d = %d, want %d", i, got, want)
		}
		prev = snap
	}
}

// TestCacheStatsMidBatch is the regression test for the stale-counter
// fix: CacheStats must return live numbers even while a writer holds the
// database's exclusive lock for a whole batch (it used to block behind
// db.mu and then report counters that excluded the batch's I/O).
func TestCacheStatsMidBatch(t *testing.T) {
	db := analyzeFixture(t, Options{})
	// Simulate being mid-batch: hold the exclusive lock like a batched
	// INSERT does for its full duration.
	db.mu.Lock()
	type result struct {
		reads uint64
	}
	done := make(chan result, 1)
	go func() {
		cs := db.CacheStats()
		done <- result{cs.Reads}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		db.mu.Unlock()
		t.Fatal("CacheStats blocked behind the exclusive writer lock")
	}
	// Metrics snapshots fold the same pager sources and must not block
	// either.
	go func() {
		db.Metrics()
		done <- result{}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		db.mu.Unlock()
		t.Fatal("Metrics blocked behind the exclusive writer lock")
	}
	db.mu.Unlock()
}

// TestObsConcurrentStress hammers every observability read path while
// writers ingest and readers query — run under -race in CI, it is the
// data-race canary for the registry, slow log, and trace machinery.
func TestObsConcurrentStress(t *testing.T) {
	db := OpenMemory(Options{SlowQuery: time.Nanosecond})
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX t_a ON t (a, b)")
	ins, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}

	const writers, batches, batchRows = 2, 20, 25
	stop := make(chan struct{})
	var writeWG, readWG sync.WaitGroup

	var next int64
	var nextMu sync.Mutex
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for b := 0; b < batches; b++ {
				rows := make([][]Value, 0, batchRows)
				nextMu.Lock()
				base := next
				next += batchRows
				nextMu.Unlock()
				for i := int64(0); i < batchRows; i++ {
					rows = append(rows, []Value{Int(base + i), Real(float64((base + i) % 64))})
				}
				if _, err := ins.ExecBatch(rows); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Each reader runs a floor of iterations so the observability paths
	// are exercised even if the ingest finishes first, then keeps going
	// until the writers are done so the runs genuinely overlap.
	const minIters = 50
	spin := func(f func() error) {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for i := 0; ; i++ {
				if i >= minIters {
					select {
					case <-stop:
						return
					default:
					}
				}
				if err := f(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	spin(func() error {
		_, err := db.Query("SELECT a FROM t WHERE a <= ? UNION SELECT a FROM t WHERE b >= ?", Int(100), Real(60))
		return err
	})
	spin(func() error {
		_, err := db.ExplainAnalyze(PlanAuto, "SELECT a FROM t WHERE a <= ?", Int(50))
		return err
	})
	spin(func() error {
		snap := db.Metrics()
		_ = snap.Counter("engine.queries")
		db.CacheStats()
		db.SlowQueries()
		return nil
	})

	// The readers overlap the whole bounded ingest, then wind down.
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if n := len(db.SlowQueries()); n == 0 {
		t.Error("1ns slow-query threshold recorded nothing during the stress run")
	}
	snap := db.Metrics()
	if snap.Counter("engine.queries") == 0 {
		t.Error("engine.queries stayed zero during the stress run")
	}
}
