package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam  // ?
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int    // byte offset in the input
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DELETE": true, "EXPLAIN": true, "ANALYZE": true, "UNION": true,
	"AND": true, "OR": true, "NOT": true,
	"INT": true, "REAL": true, "TEXT": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

type lexer struct {
	in  string
	pos int
}

// lex tokenizes the whole statement up front.
func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '-' {
			// Line comment.
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	case c == '\'':
		return l.lexString()
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.in) && isDigit(l.in[l.pos+1])):
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
			l.pos++
		}
		word := l.in[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	default:
		// Multi-char operators first.
		for _, op := range []string{"<=", ">=", "!=", "<>"} {
			if strings.HasPrefix(l.in[l.pos:], op) {
				l.pos += 2
				text := op
				if op == "<>" {
					text = "!="
				}
				return token{kind: tokSymbol, text: text, pos: start}, nil
			}
		}
		if strings.ContainsRune("(),*+-/=<>", rune(c)) {
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlmini: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("sqlmini: unterminated string literal at offset %d", start)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	kind := tokInt
	for l.pos < len(l.in) && isDigit(l.in[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.in) && l.in[l.pos] == '.' {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.in) && isDigit(l.in[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.in) && (l.in[l.pos] == 'e' || l.in[l.pos] == 'E') {
		kind = tokFloat
		l.pos++
		if l.pos < len(l.in) && (l.in[l.pos] == '+' || l.in[l.pos] == '-') {
			l.pos++
		}
		if l.pos >= len(l.in) || !isDigit(l.in[l.pos]) {
			return token{}, fmt.Errorf("sqlmini: malformed exponent at offset %d", start)
		}
		for l.pos < len(l.in) && isDigit(l.in[l.pos]) {
			l.pos++
		}
	}
	return token{kind: kind, text: l.in[start:l.pos], pos: start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
