package sqlmini

import "testing"

// InBatch must track the batch window exactly, including the abort path on
// engines that cannot restore state (in-memory): even when AbortBatch
// reports an error, the batch flag clears so later writes commit again.
func TestInBatchTracksBatchWindow(t *testing.T) {
	db := OpenMemory(Options{})
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE kv (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if db.InBatch() {
		t.Fatal("fresh database reports an open batch")
	}
	db.BeginBatch()
	if !db.InBatch() {
		t.Fatal("BeginBatch did not open a batch")
	}
	if err := db.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	if db.InBatch() {
		t.Fatal("CommitBatch left the batch open")
	}
	db.BeginBatch()
	if err := db.AbortBatch(); err == nil {
		t.Fatal("in-memory AbortBatch should report it cannot restore state")
	}
	if db.InBatch() {
		t.Fatal("failed AbortBatch must still close the batch window")
	}
}
