package sqlmini

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestMultiRowInsertSQL(t *testing.T) {
	db := OpenMemory(Options{})
	mustExec(t, db, "CREATE TABLE m (a INT, b TEXT)")
	n, err := db.Exec("INSERT INTO m VALUES (1, 'x'), (2, 'y'), (3, 'z')")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("multi-row insert returned %d, want 3", n)
	}
	n, err = db.Exec("INSERT INTO m VALUES (?, ?), (?, ?)", Int(4), Text("p"), Int(5), Text("q"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("parameterized multi-row insert returned %d, want 2", n)
	}
	r := mustQuery(t, db, "SELECT a, b FROM m ORDER BY a")
	want := [][]Value{
		{Int(1), Text("x")}, {Int(2), Text("y")}, {Int(3), Text("z")},
		{Int(4), Text("p")}, {Int(5), Text("q")},
	}
	if !reflect.DeepEqual(r.Data, want) {
		t.Fatalf("rows = %v, want %v", r.Data, want)
	}
	if _, err := db.Exec("INSERT INTO m VALUES (1, 'x'), (2)"); err == nil {
		t.Fatal("ragged VALUES accepted")
	}
}

// ExecBatch must leave the store in a state indistinguishable from per-row
// Exec: identical query results through every plan, and byte-identical
// table files (heap order is preserved by the batched path).
func TestExecBatchMatchesRowAtATime(t *testing.T) {
	setup := func(dir string) *DB {
		db, err := Open(dir, Options{PoolPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, "CREATE TABLE f (t INT, v REAL, s TEXT)")
		mustExec(t, db, "CREATE INDEX ft ON f (t)")
		mustExec(t, db, "CREATE INDEX fv ON f (v)")
		mustExec(t, db, "CREATE INDEX fts ON f (t, s)")
		return db
	}
	argRow := func(i int) []Value {
		return []Value{Int(int64(i % 97)), Real(float64(i) * 0.5), Text(fmt.Sprintf("s%03d", i%31))}
	}
	const total = 1200

	dirA, dirB := t.TempDir(), t.TempDir()
	dbA := setup(dirA)
	stA, err := dbA.Prepare("INSERT INTO f VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := stA.Exec(argRow(i)...); err != nil {
			t.Fatal(err)
		}
	}

	dbB := setup(dirB)
	stB, err := dbB.Prepare("INSERT INTO f VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < total; {
		hi := lo + 100 + lo%57 // uneven chunks
		if hi > total {
			hi = total
		}
		var argRows [][]Value
		for i := lo; i < hi; i++ {
			argRows = append(argRows, argRow(i))
		}
		n, err := stB.ExecBatch(argRows)
		if err != nil {
			t.Fatal(err)
		}
		if n != hi-lo {
			t.Fatalf("ExecBatch returned %d, want %d", n, hi-lo)
		}
		lo = hi
	}

	queries := []string{
		"SELECT COUNT(*) FROM f",
		"SELECT t, v, s FROM f ORDER BY t, v, s",
		"SELECT v FROM f WHERE t = 42 ORDER BY v",
		"SELECT t FROM f WHERE v >= 100 AND v <= 200 ORDER BY t",
	}
	for _, q := range queries {
		for _, mode := range []PlanMode{PlanForceScan, PlanForceIndex} {
			ra, errA := dbA.QueryMode(mode, q)
			rb, errB := dbB.QueryMode(mode, q)
			if errA != nil || errB != nil {
				t.Fatalf("%s (mode %v): %v / %v", q, mode, errA, errB)
			}
			if !reflect.DeepEqual(ra.Data, rb.Data) {
				t.Fatalf("%s (mode %v): results diverge", q, mode)
			}
		}
	}

	if err := dbA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dbB.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dirA, "t_f.tbl"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "t_f.tbl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("table files differ: %d vs %d bytes", len(a), len(b))
	}
}

func TestExecBatchErrors(t *testing.T) {
	db := OpenMemory(Options{})
	mustExec(t, db, "CREATE TABLE e (a INT)")
	sel, err := db.Prepare("SELECT a FROM e")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.ExecBatch([][]Value{{Int(1)}}); err == nil {
		t.Fatal("ExecBatch on SELECT accepted")
	}
	ins, err := db.Prepare("INSERT INTO e VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ins.ExecBatch(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: %d, %v", n, err)
	}
	if _, err := ins.ExecBatch([][]Value{{Int(1), Int(2)}}); err == nil {
		t.Fatal("wrong arg count accepted")
	}
	// The failed batch must not have inserted anything.
	if r := mustQuery(t, db, "SELECT COUNT(*) FROM e"); r.Data[0][0] != Int(0) {
		t.Fatalf("count = %v after failed batches", r.Data[0][0])
	}
}

// AbortBatch must roll a durable store back to its last committed state and
// leave it fully usable: consistent heap and indexes, new writes accepted,
// and a clean reopen.
func TestAbortBatchRestoresCommittedState(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE r (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX ra ON r (a)")
	st, err := db.Prepare("INSERT INTO r VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	var committed [][]Value
	for i := 0; i < 250; i++ {
		committed = append(committed, []Value{Int(int64(i)), Real(float64(i))})
	}
	if _, err := st.ExecBatch(committed); err != nil {
		t.Fatal(err)
	}

	// Open a batch, write rows that will be regretted, abort.
	db.BeginBatch()
	var doomed [][]Value
	for i := 250; i < 400; i++ {
		doomed = append(doomed, []Value{Int(int64(i)), Real(float64(i))})
	}
	if _, err := st.ExecBatch(doomed); err != nil {
		t.Fatal(err)
	}
	if err := db.AbortBatch(); err != nil {
		t.Fatal(err)
	}

	check := func(db *DB, wantCount int64, label string) {
		r := mustQuery(t, db, "SELECT COUNT(*) FROM r")
		if r.Data[0][0] != Int(wantCount) {
			t.Fatalf("%s: count = %v, want %d", label, r.Data[0][0], wantCount)
		}
		ir, err := db.QueryMode(PlanForceIndex, "SELECT COUNT(*) FROM r WHERE a >= 0")
		if err != nil {
			t.Fatal(err)
		}
		if ir.Data[0][0] != Int(wantCount) {
			t.Fatalf("%s: index count = %v, want %d", label, ir.Data[0][0], wantCount)
		}
	}
	check(db, 250, "after abort")

	// Aborted rows must not reappear through the index.
	ir, err := db.QueryMode(PlanForceIndex, "SELECT COUNT(*) FROM r WHERE a >= 250")
	if err != nil {
		t.Fatal(err)
	}
	if ir.Data[0][0] != Int(0) {
		t.Fatalf("aborted rows visible via index: %v", ir.Data[0][0])
	}

	// The store must accept and persist new writes after the abort.
	if _, err := st.ExecBatch([][]Value{{Int(1000), Real(1.0)}}); err != nil {
		t.Fatal(err)
	}
	check(db, 251, "after post-abort insert")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2, 251, "after reopen")
}

func TestAbortBatchInMemoryRejected(t *testing.T) {
	db := OpenMemory(Options{})
	mustExec(t, db, "CREATE TABLE x (a INT)")
	db.BeginBatch()
	if err := db.AbortBatch(); err == nil {
		t.Fatal("in-memory AbortBatch accepted")
	}
}

// Crash simulation around ExecBatch group commits: a committed batch
// survives reopen; a batch staged inside an open BeginBatch window that
// never commits leaves no trace.
func TestCrashAfterExecBatch(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE c (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX ca ON c (a)")
	st, err := db.Prepare("INSERT INTO c VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]Value
	for i := 0; i < 300; i++ {
		rows = append(rows, []Value{Int(int64(i)), Real(float64(i))})
	}
	if _, err := st.ExecBatch(rows); err != nil { // auto-commits (group commit)
		t.Fatal(err)
	}
	// Second batch under BeginBatch, never committed, then "crash".
	db.BeginBatch()
	var more [][]Value
	for i := 300; i < 450; i++ {
		more = append(more, []Value{Int(int64(i)), Real(float64(i))})
	}
	if _, err := st.ExecBatch(more); err != nil {
		t.Fatal(err)
	}
	db = nil // abandon without Close: dirty pages and staged images are lost

	db2, err := Open(dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := mustQuery(t, db2, "SELECT COUNT(*) FROM c")
	if r.Data[0][0] != Int(300) {
		t.Fatalf("recovered count = %v, want 300 (committed ExecBatch only)", r.Data[0][0])
	}
	ir, err := db2.QueryMode(PlanForceIndex, "SELECT COUNT(*) FROM c WHERE a >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if ir.Data[0][0] != Int(300) {
		t.Fatalf("recovered index count = %v", ir.Data[0][0])
	}
}
