package sqlmini

import "testing"

// FuzzParse exercises the lexer and parser: no input may panic, and any
// statement that parses must re-parse after String round-tripping of its
// expressions is not required (formatting is lossy) — the invariant is
// simply "no crash, errors are returned as errors".
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a <= 1 AND b > -2.5e3 ORDER BY a DESC LIMIT 10",
		"INSERT INTO t VALUES (1, 2.5, 'x''y', ?)",
		"CREATE TABLE t (a INT, b REAL, c TEXT)",
		"CREATE INDEX i ON t (a, b)",
		"DELETE FROM t WHERE NOT (a = 1 OR b != 2)",
		"EXPLAIN SELECT COUNT(*), MIN(a) FROM t WHERE a / 0 = 1",
		"SELECT 'unterminated",
		"SELECT 1e",
		"SELECT ((((1))))",
		"SELECT - - - 1 FROM t",
		"-- comment only",
		"SELECT * FROM t WHERE a <= ? AND b >= ? -- trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := parse(sql)
		if err != nil {
			return
		}
		// A successful parse must count placeholders without panicking.
		_ = countParams(st)
	})
}

// FuzzExecQuery runs arbitrary statements against a live in-memory
// database with a small schema: the engine must never panic, only return
// errors.
func FuzzExecQuery(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t WHERE a <= 3",
		"SELECT COUNT(*) FROM t",
		"INSERT INTO t VALUES (1, 1.0)",
		"DELETE FROM t WHERE a = 0",
		"SELECT a FROM t ORDER BY b DESC LIMIT 2",
		"EXPLAIN SELECT * FROM t WHERE a = 1 AND b < 0.5",
		"SELECT a + b * a / b - a FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := OpenMemory(Options{PoolPages: 16})
	if _, err := db.Exec("CREATE TABLE t (a INT, b REAL)"); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", Int(int64(i)), Real(float64(i)/3)); err != nil {
			f.Fatal(err)
		}
	}
	f.Fuzz(func(t *testing.T, sql string) {
		_, _ = db.Exec(sql)
		_, _ = db.Query(sql)
	})
}
