package sqlmini

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE obs (t INT, v REAL)")
	mustExec(t, db, "CREATE INDEX obs_t ON obs (t)")
	for i := 0; i < 500; i++ {
		mustExec(t, db, "INSERT INTO obs VALUES (?, ?)", Int(int64(i)), Real(float64(i)*1.5))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := mustQuery(t, db2, "SELECT COUNT(*) FROM obs")
	if r.Data[0][0] != Int(500) {
		t.Fatalf("count after reopen = %v", r.Data[0][0])
	}
	idx, err := db2.QueryMode(PlanForceIndex, "SELECT v FROM obs WHERE t = 123")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 || idx.Data[0][0] != Real(184.5) {
		t.Fatalf("indexed lookup after reopen = %v", idx.Data)
	}
}

// Crash simulation: batches are committed to the WAL but the process dies
// before any checkpoint. A reopen must recover every committed row and
// keep heap and indexes consistent.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE r (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX ra ON r (a)")
	db.BeginBatch()
	for i := 0; i < 300; i++ {
		mustExec(t, db, "INSERT INTO r VALUES (?, ?)", Int(int64(i)), Real(float64(i)))
	}
	if err := db.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	// Second, uncommitted batch, then "crash" (no Close, no checkpoint).
	db.BeginBatch()
	for i := 300; i < 400; i++ {
		mustExec(t, db, "INSERT INTO r VALUES (?, ?)", Int(int64(i)), Real(float64(i)))
	}
	// Simulate the crash by abandoning the DB object entirely. The pagers
	// hold dirty pages that never reach disk; the WAL holds batch 1 only.
	db = nil

	db2, err := Open(dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := mustQuery(t, db2, "SELECT COUNT(*) FROM r")
	if r.Data[0][0] != Int(300) {
		t.Fatalf("recovered count = %v, want 300 (committed batch only)", r.Data[0][0])
	}
	// Index and heap must agree after recovery.
	ir, err := db2.QueryMode(PlanForceIndex, "SELECT COUNT(*) FROM r WHERE a >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if ir.Data[0][0] != Int(300) {
		t.Fatalf("recovered index count = %v", ir.Data[0][0])
	}
	// The database must accept new writes after recovery.
	mustExec(t, db2, "INSERT INTO r VALUES (1000, 1.0)")
	r = mustQuery(t, db2, "SELECT COUNT(*) FROM r")
	if r.Data[0][0] != Int(301) {
		t.Fatalf("post-recovery insert: count = %v", r.Data[0][0])
	}
}

// With small pool sizes the no-steal policy must still never leak
// uncommitted pages: a crash mid-batch recovers to the last commit even
// when the batch is much larger than the buffer pool.
func TestCrashMidLargeBatch(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE big (a INT, pad TEXT)")
	pad := make([]byte, 256)
	for i := range pad {
		pad[i] = 'x'
	}
	db.BeginBatch()
	for i := 0; i < 200; i++ {
		mustExec(t, db, "INSERT INTO big VALUES (?, ?)", Int(int64(i)), Text(string(pad)))
	}
	if err := db.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	db.BeginBatch()
	for i := 200; i < 500; i++ {
		mustExec(t, db, "INSERT INTO big VALUES (?, ?)", Int(int64(i)), Text(string(pad)))
	}
	db = nil // crash with a 300-row open batch and a 4-page pool

	db2, err := Open(dir, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := mustQuery(t, db2, "SELECT COUNT(*) FROM big")
	if r.Data[0][0] != Int(200) {
		t.Fatalf("recovered count = %v, want 200", r.Data[0][0])
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE c (a INT)")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO c VALUES (?)", Int(int64(i)))
	}
	walPath := filepath.Join(dir, "wal.log")
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() == 0 {
		t.Fatal("WAL empty before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 0 {
		t.Fatalf("WAL size after checkpoint = %d", after.Size())
	}
	r := mustQuery(t, db, "SELECT COUNT(*) FROM c")
	if r.Data[0][0] != Int(100) {
		t.Fatalf("count after checkpoint = %v", r.Data[0][0])
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: 64, CheckpointBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE ac (a INT)")
	// Each commit logs at least one 4 KiB page, so a handful of commits
	// crosses the 16 KiB threshold and auto-checkpoints.
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO ac VALUES (?)", Int(int64(i)))
	}
	info, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 64<<10 {
		t.Fatalf("WAL grew unboundedly: %d bytes", info.Size())
	}
}

func TestDeleteSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE dl (a INT)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO dl VALUES (?)", Int(int64(i)))
	}
	mustExec(t, db, "DELETE FROM dl WHERE a < 20")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := mustQuery(t, db2, "SELECT COUNT(*) FROM dl")
	if r.Data[0][0] != Int(30) {
		t.Fatalf("count after delete+reopen = %v", r.Data[0][0])
	}
}

func TestCatalogSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t1 (a INT, b REAL, c TEXT)")
	mustExec(t, db, "CREATE TABLE t2 (x INT)")
	mustExec(t, db, "CREATE INDEX i1 ON t1 (a, b)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tabs := db2.Tables()
	if len(tabs) != 2 || tabs[0] != "t1" || tabs[1] != "t2" {
		t.Fatalf("tables after reopen = %v", tabs)
	}
	// The index must be usable.
	mustExec(t, db2, "INSERT INTO t1 VALUES (1, 2.0, 'x')")
	r, err := db2.QueryMode(PlanForceIndex, "SELECT c FROM t1 WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Data[0][0] != Text("x") {
		t.Fatalf("reopened index lookup = %v", r.Data)
	}
}
