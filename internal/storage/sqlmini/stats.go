package sqlmini

import "math"

// Planner statistics. Each table carries a row count and, per numeric
// column, min/max bounds plus a shallow equi-width histogram. Statistics
// are maintained incrementally on the write path (every insert updates
// them in memory; batch commit persists them with the catalog) and feed
// the cost model that chooses between a sequential scan and an index
// range scan per query — the crossover of the paper's Figures 17–24,
// derived from data instead of a hardcoded heuristic.
//
// The numbers are advisory: deletes only decrement the row count (bounds
// and histograms over-approximate until the next full rebuild), and a
// crash can leave persisted statistics slightly ahead of or behind the
// replayed data. The planner tolerates both — a bad estimate costs
// performance, never correctness.

// histBuckets is the histogram resolution. 32 buckets distinguish the
// selective dt ≤ T prefix ranges of the search workload from unselective
// ones while keeping the catalog entry small.
const histBuckets = 32

// colHist is an equi-width histogram over [Lo, Hi]. When a value lands
// outside the current range the range widens and existing counts are
// redistributed proportionally — approximate, but adequate for costing.
type colHist struct {
	Lo    float64            `json:"lo"`
	Hi    float64            `json:"hi"`
	N     [histBuckets]int64 `json:"n"`
	Total int64              `json:"total"`
}

// add records one value, widening the bucket range if needed. The range
// widens geometrically (50% slack on the growing side) so a monotone
// stream — the common case for dt columns fed in arrival order — triggers
// O(log n) rescales instead of one per value, keeping the cumulative
// redistribution error negligible.
func (h *colHist) add(v float64) {
	if h.Total == 0 {
		h.Lo, h.Hi = v, v
	} else if v < h.Lo || v > h.Hi {
		lo, hi := math.Min(v, h.Lo), math.Max(v, h.Hi)
		pad := (hi - lo) / 2
		if v < h.Lo {
			lo -= pad
		}
		if v > h.Hi {
			hi += pad
		}
		h.rescale(lo, hi)
	}
	h.N[h.bucket(v)]++
	h.Total++
}

// bucket maps v (within [Lo, Hi]) to its bucket index.
func (h *colHist) bucket(v float64) int {
	if h.Hi <= h.Lo {
		return 0
	}
	b := int((v - h.Lo) / (h.Hi - h.Lo) * histBuckets)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// rescale widens the range to [lo, hi], redistributing each old bucket's
// count across the new buckets it overlaps, proportionally by width.
func (h *colHist) rescale(lo, hi float64) {
	if h.Hi <= h.Lo {
		// Degenerate single-value histogram: all mass sits at Lo.
		var out [histBuckets]int64
		n := *h
		h.Lo, h.Hi = lo, hi
		out[h.bucket(n.Lo)] = n.Total
		h.N = out
		return
	}
	var out [histBuckets]int64
	oldW := (h.Hi - h.Lo) / histBuckets
	newW := (hi - lo) / histBuckets
	for i, c := range h.N {
		if c == 0 {
			continue
		}
		bLo, bHi := h.Lo+float64(i)*oldW, h.Lo+float64(i+1)*oldW
		// Distribute c across the new buckets overlapping [bLo, bHi],
		// proportionally to the actual overlap width; the integer
		// remainder goes to the widest overlap so counts are conserved.
		jLo := int((bLo - lo) / newW)
		jHi := int((bHi - lo) / newW)
		if jHi >= histBuckets {
			jHi = histBuckets - 1
		}
		if jLo < 0 {
			jLo = 0
		}
		rem := c
		best, bestOv := jLo, -1.0
		for j := jLo; j <= jHi; j++ {
			jlo, jhi := lo+float64(j)*newW, lo+float64(j+1)*newW
			ov := math.Min(bHi, jhi) - math.Max(bLo, jlo)
			if ov < 0 {
				ov = 0
			}
			share := int64(float64(c) * ov / oldW)
			if share > rem {
				share = rem
			}
			out[j] += share
			rem -= share
			if ov > bestOv {
				best, bestOv = j, ov
			}
		}
		out[best] += rem
	}
	h.Lo, h.Hi = lo, hi
	h.N = out
}

// selLE estimates the fraction of values ≤ v, interpolating linearly
// within the boundary bucket.
func (h *colHist) selLE(v float64) float64 {
	if h.Total == 0 {
		return 1
	}
	if v < h.Lo {
		return 0
	}
	if v >= h.Hi {
		return 1
	}
	w := (h.Hi - h.Lo) / histBuckets
	b := h.bucket(v)
	var below int64
	for i := 0; i < b; i++ {
		below += h.N[i]
	}
	frac := (v - (h.Lo + float64(b)*w)) / w
	est := float64(below) + frac*float64(h.N[b])
	return est / float64(h.Total)
}

// selRange estimates the fraction of values in [lo, hi]; math.Inf bounds
// mean unbounded on that side.
func (h *colHist) selRange(lo, hi float64) float64 {
	sLo, sHi := 0.0, 1.0
	if !math.IsInf(lo, -1) {
		sLo = h.selLE(lo)
	}
	if !math.IsInf(hi, 1) {
		sHi = h.selLE(hi)
	}
	s := sHi - sLo
	if s < 0 {
		return 0
	}
	return s
}

// colStats are the per-column statistics of one numeric column.
type colStats struct {
	Min  float64  `json:"min"`
	Max  float64  `json:"max"`
	Hist *colHist `json:"hist,omitempty"`
}

func (cs *colStats) add(v float64) {
	if cs.Hist == nil {
		cs.Hist = &colHist{}
		cs.Min, cs.Max = v, v
	}
	if v < cs.Min {
		cs.Min = v
	}
	if v > cs.Max {
		cs.Max = v
	}
	cs.Hist.add(v)
}

// tableStats aggregates the statistics of one table.
type tableStats struct {
	Rows int64                `json:"rows"`
	Cols map[string]*colStats `json:"cols,omitempty"`
}

// statsFor returns (creating if needed) the statistics entry for a table.
func (c *catalog) statsFor(table string) *tableStats {
	if c.Stats == nil {
		c.Stats = map[string]*tableStats{}
	}
	ts := c.Stats[table]
	if ts == nil {
		ts = &tableStats{Cols: map[string]*colStats{}}
		c.Stats[table] = ts
	}
	return ts
}

// noteInsert folds freshly inserted rows into the table's statistics.
// Callers hold the engine's writer lock (the catalog is guarded by it).
func (c *catalog) noteInsert(schema *tableSchema, rows [][]Value) {
	ts := c.statsFor(schema.Name)
	ts.Rows += int64(len(rows))
	for _, vals := range rows {
		for i, col := range schema.Cols {
			var v float64
			switch col.Type {
			case IntType:
				v = float64(vals[i].I)
			case RealType:
				v = vals[i].R
			default:
				continue // TEXT columns carry no numeric statistics
			}
			cs := ts.Cols[col.Name]
			if cs == nil {
				cs = &colStats{}
				ts.Cols[col.Name] = cs
			}
			cs.add(v)
		}
	}
}

// noteDelete decrements the row count. Bounds and histograms are left as
// over-approximations (see the package comment above).
func (c *catalog) noteDelete(table string, n int) {
	ts := c.statsFor(table)
	ts.Rows -= int64(n)
	if ts.Rows < 0 {
		ts.Rows = 0
	}
}

// colSel estimates the selectivity of "col within [lo, hi]" from the
// column's histogram, or -1 when no estimate is possible.
func (ts *tableStats) colSel(col string, lo, hi float64) float64 {
	if ts == nil {
		return -1
	}
	cs := ts.Cols[col]
	if cs == nil || cs.Hist == nil || cs.Hist.Total == 0 {
		return -1
	}
	return cs.Hist.selRange(lo, hi)
}
