package sqlmini

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"segdiff/internal/obs"
	"segdiff/internal/storage/btree"
	"segdiff/internal/storage/heap"
	"segdiff/internal/storage/pager"
	"segdiff/internal/storage/wal"
)

// Options tunes a database instance.
type Options struct {
	// PoolPages is the buffer pool capacity per file, in pages
	// (default pager.DefaultCapacity).
	PoolPages int
	// CheckpointBytes triggers an automatic checkpoint when the WAL grows
	// past this size (default 64 MiB). Only meaningful on disk.
	CheckpointBytes int64
	// UnionWorkers bounds how many UNION branches a query evaluates
	// concurrently (default runtime.GOMAXPROCS(0); 1 runs branches
	// sequentially). The paper's drop/jump search is a union of ~10
	// independent point and line queries, so this is the engine's main
	// intra-query parallelism knob.
	UnionWorkers int
	// WriteWorkers bounds how many secondary indexes a batched insert
	// (multi-row INSERT or Stmt.ExecBatch) updates concurrently (default
	// runtime.GOMAXPROCS(0); 1 applies indexes sequentially). Each feature
	// table carries one index per parallelogram corner, so this is the
	// write path's counterpart to UnionWorkers.
	WriteWorkers int
	// DisableFusion turns off the fused shared-scan union executor: every
	// UNION branch runs its own index descent or heap pass, as before the
	// fusion pass existed. Results are identical either way; the knob
	// exists for A/B benchmarking (internal/bench compares both paths)
	// and as an escape hatch.
	DisableFusion bool
	// ReadAhead is the scan prefetch distance in pages: heap sequential
	// scans and B+tree leaf-chain scans announce up to this many upcoming
	// pages to a background prefetcher, overlapping cold-cache reads with
	// row processing. 0 (the default) disables readahead entirely — the
	// crash harness relies on the default execution being free of
	// background I/O. Results are identical either way.
	ReadAhead int
	// DisableZoneMaps turns off zone-map page pruning on sequential and
	// fused-sequential scans (zones are still maintained on the write
	// path). Results are identical either way; the knob exists for the
	// pruned-vs-unpruned identity checks and A/B benchmarking.
	DisableZoneMaps bool
	// FileFactory, when non-nil, opens every backing file of an on-disk
	// database — heap tables, B+tree indexes, and the write-ahead log —
	// in place of the default OS file. The crash harness injects
	// faultfs here so scripted write/sync failures and power cuts cover
	// the entire durability path. Ignored by in-memory databases.
	FileFactory func(path string) (pager.File, error)
	// SlowQuery enables the ring-buffer slow-query log: every query whose
	// wall time reaches the threshold is retained (see DB.SlowQueries).
	// 0 (the default) disables the log. Observability state is purely
	// volatile — nothing recorded here is ever written to disk.
	SlowQuery time.Duration
	// DisableMetrics turns off the always-on engine metrics registry
	// (query counters/latency histogram plus the source-folded pager,
	// WAL, and zone-map counters; see DB.Metrics). Queries then skip the
	// per-query clock read and counter updates entirely. The knob exists
	// for A/B overhead benchmarking (internal/bench measures both).
	DisableMetrics bool
}

func (o Options) normalize() Options {
	if o.PoolPages <= 0 {
		o.PoolPages = pager.DefaultCapacity
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 64 << 20
	}
	if o.UnionWorkers <= 0 {
		o.UnionWorkers = runtime.GOMAXPROCS(0)
	}
	if o.WriteWorkers <= 0 {
		o.WriteWorkers = runtime.GOMAXPROCS(0)
	}
	if o.ReadAhead < 0 {
		o.ReadAhead = 0
	}
	return o
}

type tableHandle struct {
	pg   *pager.Pager
	h    *heap.Heap
	path string
}

type indexHandle struct {
	pg   *pager.Pager
	tree *btree.Tree
	path string
}

// DB is a sqlmini database: a directory of heap-table and B+tree-index
// files plus a WAL, or a fully in-memory instance (dir == ""). All methods
// are safe for concurrent use under a reader/writer discipline: Query,
// QueryMode, prepared Stmt queries, RowCount, TableSizeBytes,
// IndexSizeBytes, CacheStats and Tables run concurrently under a shared
// read lock (the buffer pool below them takes its own reader-friendly
// latches), while Exec, batch commit, Checkpoint, DropCache and Close
// serialize exclusively. Within one query, UNION branches additionally
// fan out across a bounded worker pool (Options.UnionWorkers).
type DB struct {
	mu      sync.RWMutex
	dir     string // "" = in-memory; set once at open
	opts    Options
	catalog *catalog                // guarded by mu (shared for reads)
	tables  map[string]*tableHandle // guarded by mu
	indexes map[string]*indexHandle // guarded by mu
	files   map[uint16]pager.File   // guarded by mu; by catalog FileID, for WAL replay
	log     *wal.Log                // nil in memory mode; set once at open
	inBatch bool                    // guarded by mu
	closed  bool                    // guarded by mu
	// statsDirty marks planner statistics (catalog.Stats) and zone maps
	// (catalog.Zones) changed since the last catalog save; the next commit
	// persists them.
	statsDirty bool // guarded by mu
	// zoneSkipped counts heap pages skipped by zone-map pruning; atomic
	// because queries increment it under the shared lock.
	zoneSkipped atomic.Uint64

	// Observability. reg, slow, and met are created once at open (before
	// the DB is shared) and immutable afterwards; reg is nil when
	// Options.DisableMetrics is set, slow is nil unless Options.SlowQuery
	// is positive. obsPagers is a dedicated list of every mounted pager
	// under its own obsMu rather than db.mu, so CacheStats and registry
	// snapshots read live counters even while a batched write holds the
	// writer lock for its whole duration.
	reg       *obs.Registry
	slow      *obs.SlowLog
	met       dbMetrics
	obsMu     sync.Mutex
	obsPagers []*pager.Pager // guarded by obsMu
}

// dbMetrics caches the hot-path metric cells so the per-query path never
// touches the registry's name maps (and their lock). All nil when
// metrics are disabled.
type dbMetrics struct {
	queries      *obs.Counter
	queryErrs    *obs.Counter
	rowsReturned *obs.Counter
	slowQueries  *obs.Counter
	queryNS      *obs.Histogram
}

// initObs creates the metrics registry and slow-query log per the
// options and registers the snapshot-time sources for counters that
// live in other subsystems. Called once at open, before the DB is
// shared; the WAL source is registered separately once the log exists.
func (db *DB) initObs() {
	if db.opts.SlowQuery > 0 {
		db.slow = obs.NewSlowLog(db.opts.SlowQuery, 0)
	}
	if db.opts.DisableMetrics {
		return
	}
	db.reg = obs.NewRegistry()
	db.met = dbMetrics{
		queries:      db.reg.Counter("engine.queries"),
		queryErrs:    db.reg.Counter("engine.query_errors"),
		rowsReturned: db.reg.Counter("engine.rows_returned"),
		slowQueries:  db.reg.Counter("engine.slow_queries"),
		queryNS:      db.reg.Histogram("engine.query_ns"),
	}
	db.reg.Gauge("engine.union_workers").Set(int64(db.opts.UnionWorkers))
	db.reg.Gauge("engine.write_workers").Set(int64(db.opts.WriteWorkers))
	db.reg.Gauge("engine.readahead_pages").Set(int64(db.opts.ReadAhead))
	db.reg.RegisterSource(func(put func(string, uint64)) {
		cs := db.CacheStats()
		put("pager.hits", cs.Hits)
		put("pager.misses", cs.Misses)
		put("pager.reads", cs.Reads)
		put("pager.writes", cs.Writes)
		put("pager.evictions", cs.Evictions)
		put("pager.prefetch_reads", cs.PrefetchReads)
		put("pager.prefetch_hits", cs.PrefetchHits)
		put("pager.prefetch_wasted", cs.PrefetchWasted)
		put("zone.skipped_pages", db.zoneSkipped.Load())
	})
}

// initObsWAL folds the log's commit/fsync counters into registry
// snapshots. The captured log pointer is read-only here and wal.Stats
// is safe from any goroutine.
func (db *DB) initObsWAL(lg *wal.Log) {
	if db.reg == nil {
		return
	}
	db.reg.RegisterSource(func(put func(string, uint64)) {
		ws := lg.Stats()
		put("wal.commits", ws.Commits)
		put("wal.fsyncs", ws.Fsyncs)
		put("wal.pages_logged", ws.PagesLogged)
	})
}

// OpenMemory returns an in-memory database (no durability, no WAL).
func OpenMemory(opts Options) *DB {
	db := &DB{
		dir:     "",
		opts:    opts.normalize(),
		catalog: newCatalog(),
		tables:  map[string]*tableHandle{},
		indexes: map[string]*indexHandle{},
		files:   map[uint16]pager.File{},
	}
	db.initObs()
	return db
}

// Open opens (creating if needed) the database stored in dir, replaying
// the write-ahead log if the previous process crashed. All backing files
// (tables, indexes, and the WAL — including the recovery replay itself)
// are opened through Options.FileFactory when one is set.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sqlmini: create dir: %w", err)
	}
	cat, err := loadCatalog(dir)
	if err != nil {
		return nil, err
	}
	db := &DB{
		dir:     dir,
		opts:    opts.normalize(),
		catalog: cat,
		tables:  map[string]*tableHandle{},
		indexes: map[string]*indexHandle{},
		files:   map[uint16]pager.File{},
	}
	db.initObs()

	// Recovery: replay committed page images straight into the data files
	// before any pager caches them.
	walPath := filepath.Join(dir, "wal.log")
	replayFiles := map[uint16]pager.File{}
	closeReplay := func() error {
		var errs []error
		for _, f := range replayFiles {
			errs = append(errs, f.Close())
		}
		replayFiles = nil
		return errors.Join(errs...)
	}
	openReplay := func(id uint16, path string) error {
		f, err := db.newFile(path)
		if err != nil {
			return err
		}
		replayFiles[id] = f
		return nil
	}
	for _, t := range cat.Tables {
		if err := openReplay(t.FileID, db.tablePath(t.Name)); err != nil {
			return nil, errors.Join(err, closeReplay())
		}
	}
	for _, ix := range cat.Indexes {
		if err := openReplay(ix.FileID, db.indexPath(ix.Name)); err != nil {
			return nil, errors.Join(err, closeReplay())
		}
	}
	walFile, err := db.newFile(walPath)
	if err != nil {
		return nil, errors.Join(err, closeReplay())
	}
	if _, err := wal.ReplayFile(walFile, func(img wal.PageImage) error {
		f, ok := replayFiles[img.File]
		if !ok {
			return fmt.Errorf("unknown file %d in WAL", img.File)
		}
		_, werr := f.WriteAt(img.Data, int64(img.Page)*pager.PageSize)
		return werr
	}); err != nil {
		return nil, errors.Join(fmt.Errorf("sqlmini: recovery: %w", err), walFile.Close(), closeReplay())
	}
	replayIDs := make([]int, 0, len(replayFiles))
	for id := range replayFiles {
		replayIDs = append(replayIDs, int(id))
	}
	sort.Ints(replayIDs) // deterministic sync order for the crash harness
	for _, id := range replayIDs {
		f := replayFiles[uint16(id)]
		// A power cut can leave a torn partial page at a data file's tail.
		// Such a fragment was never committed: committed content reaches
		// data files only as checkpoint-synced whole pages, and any page
		// still covered by the WAL was rewritten in full just above. Drop
		// it to restore the page-multiple invariant the pager enforces.
		size, err := f.Size()
		if err != nil {
			return nil, errors.Join(err, walFile.Close(), closeReplay())
		}
		if rem := size % pager.PageSize; rem != 0 {
			if err := f.Truncate(size - rem); err != nil {
				return nil, errors.Join(err, walFile.Close(), closeReplay())
			}
		}
		if err := f.Sync(); err != nil {
			return nil, errors.Join(err, walFile.Close(), closeReplay())
		}
	}
	if err := closeReplay(); err != nil {
		return nil, errors.Join(err, walFile.Close())
	}

	// Open the log for appending over the same (already replayed) file,
	// then mount all files. From here on the log owns walFile.
	db.log, err = wal.OpenFile(walFile)
	if err != nil {
		return nil, errors.Join(err, walFile.Close())
	}
	db.initObsWAL(db.log)
	closeMounted := func() error {
		var errs []error
		// Close (and thus flush) in sorted name order, matching the
		// checkpoint convention: the crash tests depend on a stable
		// on-disk write order even on the error path.
		for _, name := range db.sortedTableNames() {
			//segdifflint:ignore lockcheck db is still being constructed inside Open and not yet shared
			errs = append(errs, db.tables[name].pg.Close())
		}
		for _, name := range db.sortedIndexNames() {
			//segdifflint:ignore lockcheck db is still being constructed inside Open and not yet shared
			errs = append(errs, db.indexes[name].pg.Close())
		}
		errs = append(errs, db.log.Close())
		return errors.Join(errs...)
	}
	for _, t := range cat.Tables {
		if err := db.mountTable(t); err != nil {
			return nil, errors.Join(err, closeMounted())
		}
	}
	for _, ix := range cat.Indexes {
		if err := db.mountIndex(ix); err != nil {
			return nil, errors.Join(err, closeMounted())
		}
	}
	// Recovery is complete: persist the replayed state and clear the log.
	if err := db.checkpointLocked(); err != nil {
		return nil, errors.Join(err, closeMounted())
	}
	return db, nil
}

func (db *DB) tablePath(name string) string { return filepath.Join(db.dir, "t_"+name+".tbl") }
func (db *DB) indexPath(name string) string { return filepath.Join(db.dir, "i_"+name+".idx") }

// sortedTableNames and sortedIndexNames give every multi-file engine path
// (commit staging, checkpoint, close, cache drop, batch abort) a
// deterministic file order. The crash harness requires the engine's
// file-operation sequence — and the WAL's byte layout — to be a pure
// function of the workload, never of map iteration order.
//
// locks: db.mu (any)
func (db *DB) sortedTableNames() []string {
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// locks: db.mu (any)
func (db *DB) sortedIndexNames() []string {
	out := make([]string, 0, len(db.indexes))
	for name := range db.indexes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (db *DB) newFile(path string) (pager.File, error) {
	if db.dir == "" {
		return pager.NewMemFile(), nil
	}
	if db.opts.FileFactory != nil {
		return db.opts.FileFactory(path)
	}
	return pager.OpenOSFile(path)
}

func (db *DB) newPager(f pager.File) (*pager.Pager, error) {
	pg, err := pager.New(f, db.opts.PoolPages)
	if err != nil {
		return nil, err
	}
	if db.log != nil {
		pg.SetNoSteal(true)
	}
	if db.opts.ReadAhead > 0 {
		pg.SetReadAhead(db.opts.ReadAhead)
	}
	return pg, nil
}

// mountTable opens a table's file, pager and heap and registers the
// handle. Open calls it before the DB is published; afterwards only DDL
// under the exclusive lock does.
//
// locks: db.mu
func (db *DB) mountTable(t *tableSchema) error {
	path := ""
	if db.dir != "" {
		path = db.tablePath(t.Name)
	}
	f, err := db.newFile(path)
	if err != nil {
		return err
	}
	pg, err := db.newPager(f)
	if err != nil {
		return err
	}
	h, err := heap.Open(pg)
	if err != nil {
		return err
	}
	db.tables[t.Name] = &tableHandle{pg: pg, h: h, path: path}
	db.files[t.FileID] = f
	//segdifflint:ignore lockcheck obsRegisterPager takes obsMu, not the held db.mu; the order is always mu before obsMu
	db.obsRegisterPager(pg)
	return nil
}

// mountIndex opens an index's file, pager and B+tree and registers the
// handle. Open calls it before the DB is published; afterwards only DDL
// under the exclusive lock does.
//
// locks: db.mu
func (db *DB) mountIndex(ix *indexSchema) error {
	path := ""
	if db.dir != "" {
		path = db.indexPath(ix.Name)
	}
	f, err := db.newFile(path)
	if err != nil {
		return err
	}
	pg, err := db.newPager(f)
	if err != nil {
		return err
	}
	tr, err := btree.Open(pg)
	if err != nil {
		return err
	}
	db.indexes[ix.Name] = &indexHandle{pg: pg, tree: tr, path: path}
	db.files[ix.FileID] = f
	//segdifflint:ignore lockcheck obsRegisterPager takes obsMu, not the held db.mu; the order is always mu before obsMu
	db.obsRegisterPager(pg)
	return nil
}

// obsRegisterPager adds a newly mounted pager to the list CacheStats
// walks. Mounting happens under the exclusive lock, but the list has its
// own mutex so stats readers never need db.mu at all.
func (db *DB) obsRegisterPager(pg *pager.Pager) {
	db.obsMu.Lock()
	db.obsPagers = append(db.obsPagers, pg)
	db.obsMu.Unlock()
}

// Exec parses and executes a statement that returns no rows (DDL, INSERT,
// DELETE), returning the number of affected rows.
func (db *DB) Exec(sql string, args ...Value) (int, error) {
	st, err := parse(sql)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.execLocked(st, args)
}

// execLocked dispatches a parsed write statement.
//
// locks: db.mu
func (db *DB) execLocked(st stmt, args []Value) (int, error) {
	if db.closed {
		return 0, fmt.Errorf("sqlmini: database is closed")
	}
	if n := countParams(st); n != len(args) {
		return 0, fmt.Errorf("sqlmini: statement has %d placeholders, got %d args", n, len(args))
	}
	switch s := st.(type) {
	case createTableStmt:
		if err := db.createTable(s); err != nil {
			return 0, err
		}
		return 0, db.maybeCommit()
	case createIndexStmt:
		if err := db.createIndex(s); err != nil {
			return 0, err
		}
		return 0, db.maybeCommit()
	case insertStmt:
		n, err := db.execInsert(s, args)
		if err != nil {
			return 0, err
		}
		return n, db.maybeCommit()
	case deleteStmt:
		n, err := db.execDelete(s, args, PlanAuto)
		if err != nil {
			return 0, err
		}
		return n, db.maybeCommit()
	case selectStmt, explainStmt:
		return 0, fmt.Errorf("sqlmini: use Query for statements that return rows")
	default:
		return 0, fmt.Errorf("sqlmini: unsupported statement %T", st)
	}
}

// createTable registers the schema, persists the catalog and mounts the
// new (empty) heap file.
//
// locks: db.mu
func (db *DB) createTable(s createTableStmt) error {
	if _, exists := db.catalog.Tables[s.name]; exists {
		return fmt.Errorf("sqlmini: table %s already exists", s.name)
	}
	seen := map[string]bool{}
	for _, c := range s.cols {
		if seen[c.Name] {
			return fmt.Errorf("sqlmini: duplicate column %s", c.Name)
		}
		seen[c.Name] = true
	}
	t := &tableSchema{Name: s.name, Cols: s.cols, FileID: db.catalog.NextFileID}
	db.catalog.NextFileID++
	db.catalog.Tables[s.name] = t
	if err := db.saveCatalog(); err != nil {
		return err
	}
	return db.mountTable(t)
}

// createIndex registers the schema, persists the catalog, mounts the tree
// and backfills it from the table's existing rows.
//
// locks: db.mu
func (db *DB) createIndex(s createIndexStmt) error {
	if _, exists := db.catalog.Indexes[s.name]; exists {
		return fmt.Errorf("sqlmini: index %s already exists", s.name)
	}
	schema, ok := db.catalog.Tables[s.table]
	if !ok {
		return fmt.Errorf("sqlmini: no such table %s", s.table)
	}
	for _, c := range s.cols {
		if schema.colIndex(c) < 0 {
			return fmt.Errorf("sqlmini: no column %s in table %s", c, s.table)
		}
	}
	ix := &indexSchema{Name: s.name, Table: s.table, Cols: s.cols, FileID: db.catalog.NextFileID}
	db.catalog.NextFileID++
	db.catalog.Indexes[s.name] = ix
	if err := db.saveCatalog(); err != nil {
		return err
	}
	if err := db.mountIndex(ix); err != nil {
		return err
	}
	// Backfill from existing rows.
	th := db.tables[s.table]
	ih := db.indexes[s.name]
	return th.h.Scan(func(rid heap.RID, rec []byte) (bool, error) {
		vals, err := decodeRow(schema, rec)
		if err != nil {
			return false, err
		}
		key, err := indexKey(schema, ix, vals, rid)
		if err != nil {
			return false, err
		}
		var ridBytes [8]byte
		packRID(ridBytes[:], rid)
		return true, ih.tree.Insert(key, ridBytes[:])
	})
}

// saveCatalog persists the catalog to disk (a no-op in memory mode).
//
// locks: db.mu
func (db *DB) saveCatalog() error {
	if db.dir == "" {
		return nil
	}
	return saveCatalog(db.dir, db.catalog)
}

// Query parses and executes a SELECT or EXPLAIN with automatic plan
// selection.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	return db.QueryMode(PlanAuto, sql, args...)
}

// QueryMode executes a SELECT or EXPLAIN under an explicit plan mode,
// which is how the benchmark harness forces "sequential scan" versus
// "execution using indexes" as in the paper's experiments.
func (db *DB) QueryMode(mode PlanMode, sql string, args ...Value) (*Rows, error) {
	return db.QueryModeContext(context.Background(), mode, sql, args...)
}

// QueryModeContext is QueryMode under a context: the query fails with a
// ctx-wrapping error as soon as the deadline expires or the caller
// cancels, checked before execution and again between scan units of a
// UNION, so a long search gives up within one unit of work.
func (db *DB) QueryModeContext(ctx context.Context, mode PlanMode, sql string, args ...Value) (*Rows, error) {
	st, err := parse(sql)
	if err != nil {
		return nil, err
	}
	return db.observedQuery(ctx, st, sql, args, mode)
}

// ctxErr reports why a query's context is done, nil while it is live.
// The wrapped cause is preserved so callers can errors.Is against
// context.DeadlineExceeded / context.Canceled.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("sqlmini: query canceled: %w", ctx.Err())
	default:
		return nil
	}
}

// observedQuery runs one parsed read statement under the shared lock,
// feeding the always-on query metrics and the slow-query log. With both
// disabled it adds exactly two nil checks to the query path.
func (db *DB) observedQuery(ctx context.Context, st stmt, sql string, args []Value, mode PlanMode) (*Rows, error) {
	if db.reg == nil && db.slow == nil {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.queryLocked(ctx, st, args, mode)
	}
	start := time.Now()
	rows, err := func() (*Rows, error) {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.queryLocked(ctx, st, args, mode)
	}()
	db.noteQuery(sql, time.Since(start), rows, err)
	return rows, err
}

// noteQuery records one finished query on the registry and slow log.
func (db *DB) noteQuery(sql string, wall time.Duration, rows *Rows, err error) {
	n := 0
	if rows != nil {
		n = rows.Len()
	}
	if db.reg != nil {
		db.met.queries.Inc()
		db.met.queryNS.Observe(wall.Nanoseconds())
		db.met.rowsReturned.Add(uint64(n))
		if err != nil {
			db.met.queryErrs.Inc()
		}
	}
	if db.slow != nil {
		q := obs.SlowQuery{SQL: sql, Wall: wall, Rows: n, When: time.Now()}
		if err != nil {
			q.Err = err.Error()
		}
		if db.slow.Note(q) && db.reg != nil {
			db.met.slowQueries.Inc()
		}
	}
}

// queryLocked executes a parsed read statement. Callers hold db.mu shared;
// everything below (planning, heap scans, B+tree range reads) only reads
// engine state, so any number of queries proceed in parallel.
//
// locks: db.mu (shared)
func (db *DB) queryLocked(ctx context.Context, st stmt, args []Value, mode PlanMode) (*Rows, error) {
	if db.closed {
		return nil, fmt.Errorf("sqlmini: database is closed")
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if n := countParams(st); n != len(args) {
		return nil, fmt.Errorf("sqlmini: statement has %d placeholders, got %d args", n, len(args))
	}
	switch s := st.(type) {
	case selectStmt:
		return db.execSelect(s, args, mode)
	case unionStmt:
		return db.execUnion(ctx, s, args, mode)
	case explainStmt:
		return db.explain(s, args, mode)
	default:
		return nil, fmt.Errorf("sqlmini: Query supports SELECT and EXPLAIN only")
	}
}

// explain renders the chosen plan for each branch of the statement.
//
// locks: db.mu (shared)
func (db *DB) explain(s explainStmt, args []Value, mode PlanMode) (*Rows, error) {
	if s.analyze {
		return db.explainAnalyzeRows(s, args, mode)
	}
	var schema *tableSchema
	var where expr
	switch inner := s.inner.(type) {
	case selectStmt:
		schema = db.catalog.Tables[inner.table]
		where = inner.where
	case unionStmt:
		// Explain the fused plan: one line per scan unit, with member
		// branches of a fused unit indented beneath their shared scan.
		units, err := db.buildUnionUnits(inner, args, mode)
		if err != nil {
			return nil, err
		}
		out := &Rows{Columns: []string{"plan"}}
		for _, u := range units {
			if u.solo {
				r, err := db.explain(explainStmt{inner: u.stmts[0]}, args, mode)
				if err != nil {
					return nil, err
				}
				out.Data = append(out.Data, r.Data...)
				continue
			}
			if len(u.idxs) == 1 {
				out.Data = append(out.Data, []Value{Text(u.plans[0].explain())})
				continue
			}
			out.Data = append(out.Data, []Value{Text(u.explainHeader())})
			for j := range u.idxs {
				out.Data = append(out.Data, []Value{Text(fmt.Sprintf("  BRANCH %d: %s", u.idxs[j], u.plans[j].explain()))})
			}
		}
		return out, nil
	case deleteStmt:
		schema = db.catalog.Tables[inner.table]
		where = inner.where
	}
	if schema == nil {
		return nil, fmt.Errorf("sqlmini: EXPLAIN references an unknown table")
	}
	if where != nil {
		if err := validateExpr(where, schema, false); err != nil {
			return nil, err
		}
	}
	p, err := buildPlan(db, schema, where, args, mode)
	if err != nil {
		return nil, err
	}
	return &Rows{Columns: []string{"plan"}, Data: [][]Value{{Text(p.explain())}}}, nil
}

// Stmt is a prepared statement: parsed once, executable many times.
type Stmt struct {
	db  *DB
	st  stmt
	sql string // original text, for the slow-query log
}

// Prepare parses sql into a reusable statement.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, st: st, sql: sql}, nil
}

// Exec executes a prepared DDL/INSERT/DELETE.
func (s *Stmt) Exec(args ...Value) (int, error) {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.db.execLocked(s.st, args)
}

// ExecBatch executes a prepared INSERT once per argument row under a
// single writer-lock acquisition: all rows are evaluated up front, written
// to the heap in one batch, applied to each secondary index as a sorted run
// on its own worker, and committed together (group commit — one fsync for
// the whole batch unless a batch is already open via BeginBatch). It
// returns the number of rows inserted. Only INSERT statements are
// supported.
func (s *Stmt) ExecBatch(argRows [][]Value) (int, error) {
	st, ok := s.st.(insertStmt)
	if !ok {
		return 0, fmt.Errorf("sqlmini: ExecBatch supports INSERT statements only")
	}
	if len(argRows) == 0 {
		return 0, nil
	}
	db := s.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, fmt.Errorf("sqlmini: database is closed")
	}
	schema, ok := db.catalog.Tables[st.table]
	if !ok {
		return 0, fmt.Errorf("sqlmini: no such table %s", st.table)
	}
	if err := validateInsert(schema, st); err != nil {
		return 0, err
	}
	want := countParams(st)
	b := &binding{}
	rows := make([][]Value, 0, len(argRows)*len(st.rows))
	for _, args := range argRows {
		if len(args) != want {
			return 0, fmt.Errorf("sqlmini: statement has %d placeholders, got %d args", want, len(args))
		}
		b.args = args
		for _, rx := range st.rows {
			vals, err := evalInsertRow(schema, rx, b)
			if err != nil {
				return 0, err
			}
			rows = append(rows, vals)
		}
	}
	if err := db.insertRows(schema, rows); err != nil {
		return 0, err
	}
	return len(rows), db.maybeCommit()
}

// Query executes a prepared SELECT/EXPLAIN.
func (s *Stmt) Query(args ...Value) (*Rows, error) {
	return s.QueryMode(PlanAuto, args...)
}

// QueryMode executes a prepared SELECT/EXPLAIN under an explicit plan mode.
func (s *Stmt) QueryMode(mode PlanMode, args ...Value) (*Rows, error) {
	return s.QueryModeContext(context.Background(), mode, args...)
}

// QueryModeContext is QueryMode under a context; see
// DB.QueryModeContext for the cancellation contract.
func (s *Stmt) QueryModeContext(ctx context.Context, mode PlanMode, args ...Value) (*Rows, error) {
	return s.db.observedQuery(ctx, s.st, s.sql, args, mode)
}

// BeginBatch suspends per-statement commits: subsequent writes become
// durable together at CommitBatch. Used for bulk ingest.
func (db *DB) BeginBatch() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.inBatch = true
}

// InBatch reports whether a batch opened by BeginBatch (or left behind by
// a failed write path) is still pending. Callers that hit an error while a
// batch is open must AbortBatch before returning, or every later
// per-statement commit is silently suspended; this accessor lets tests
// pin that invariant down.
func (db *DB) InBatch() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.inBatch
}

// CommitBatch commits everything written since BeginBatch.
func (db *DB) CommitBatch() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.inBatch = false
	return db.commitLocked()
}

// AbortBatch discards everything written since the last commit and
// restores the engine to its committed state: staged WAL images are
// dropped, every buffer pool is emptied (the no-steal policy guarantees
// uncommitted pages never reached the data files), the WAL's committed
// batches are replayed into the data files to recover committed pages that
// lived only in the discarded caches, and every table and index is
// remounted. Prepared statements remain valid. In-memory databases have no
// committed state to return to and report an error.
func (db *DB) AbortBatch() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.inBatch = false
	if db.closed {
		return fmt.Errorf("sqlmini: database is closed")
	}
	if db.log == nil {
		return fmt.Errorf("sqlmini: cannot abort a batch on an in-memory database")
	}
	db.log.DiscardStaged()
	// Replay before discarding the caches: a committed page image may exist
	// only in the WAL and a dirty frame, and replay may extend a data file
	// whose committed tail was never checkpointed. Discard re-derives the
	// page count from the (now restored) file size. Replaying through the
	// log's own handle keeps the abort path inside the injectable file
	// layer (Options.FileFactory).
	if _, err := db.log.Replay(func(img wal.PageImage) error {
		f, ok := db.files[img.File]
		if !ok {
			return fmt.Errorf("unknown file %d in WAL", img.File)
		}
		_, werr := f.WriteAt(img.Data, int64(img.Page)*pager.PageSize)
		return werr
	}); err != nil {
		return fmt.Errorf("sqlmini: abort: %w", err)
	}
	for _, name := range db.sortedTableNames() {
		th := db.tables[name]
		if err := th.pg.Discard(); err != nil {
			return err
		}
		h, err := heap.Open(th.pg)
		if err != nil {
			return err
		}
		th.h = h
	}
	for _, name := range db.sortedIndexNames() {
		ih := db.indexes[name]
		if err := ih.pg.Discard(); err != nil {
			return err
		}
		tr, err := btree.Open(ih.pg)
		if err != nil {
			return err
		}
		ih.tree = tr
	}
	// Planner statistics and zone maps for the aborted rows were folded in
	// eagerly; restore the last persisted snapshot so estimates match the
	// data and page summaries never under-approximate the replayed pages.
	cat, err := loadCatalog(db.dir)
	if err != nil {
		return err
	}
	db.catalog.Stats = cat.Stats
	db.catalog.Zones = cat.Zones
	db.statsDirty = false
	return nil
}

// maybeCommit commits unless a batch is open.
//
// locks: db.mu
func (db *DB) maybeCommit() error {
	if db.inBatch {
		return nil
	}
	return db.commitLocked()
}

// commitLocked stages dirty page after-images in the WAL and group-commits
// them: the staging layer keeps only the last image per page, and Commit
// writes the whole batch with a single flush and fsync. A commit with no
// dirty pages is skipped entirely — no marker, no fsync.
//
// locks: db.mu
func (db *DB) commitLocked() error {
	// Persist planner statistics alongside the commit. The catalog write
	// is atomic (write + rename) and advisory: statistics that are ahead
	// of or behind the replayed data after a crash only skew estimates.
	if db.statsDirty {
		db.statsDirty = false
		if err := db.saveCatalog(); err != nil {
			return err
		}
	}
	if db.log == nil {
		return nil
	}
	logPages := func(id uint16, pg *pager.Pager) error {
		return pg.LogDirty(func(p pager.PageID, data []byte) error {
			return db.log.Stage(id, uint32(p), data)
		})
	}
	for _, name := range db.sortedTableNames() {
		if err := logPages(db.catalog.Tables[name].FileID, db.tables[name].pg); err != nil {
			return err
		}
	}
	for _, name := range db.sortedIndexNames() {
		if err := logPages(db.catalog.Indexes[name].FileID, db.indexes[name].pg); err != nil {
			return err
		}
	}
	if db.log.StagedPages() == 0 {
		return nil
	}
	if err := db.log.Commit(); err != nil {
		return err
	}
	sz, err := db.log.Size()
	if err != nil {
		return err
	}
	if sz > db.opts.CheckpointBytes {
		return db.checkpointLocked()
	}
	return nil
}

// Checkpoint flushes all data files and truncates the WAL.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked syncs every data file and truncates the WAL. Open also
// calls it once before the DB is published.
//
// locks: db.mu
func (db *DB) checkpointLocked() error {
	for _, name := range db.sortedTableNames() {
		if err := db.tables[name].pg.Sync(); err != nil {
			return err
		}
	}
	for _, name := range db.sortedIndexNames() {
		if err := db.indexes[name].pg.Sync(); err != nil {
			return err
		}
	}
	if db.log != nil {
		return db.log.Truncate()
	}
	return nil
}

// DropCache flushes and evicts every cached page in every file, simulating
// the experiments' "operating system cache is flushed before every query".
func (db *DB) DropCache() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, name := range db.sortedTableNames() {
		if err := db.tables[name].pg.DropCache(); err != nil {
			return err
		}
	}
	for _, name := range db.sortedIndexNames() {
		if err := db.indexes[name].pg.DropCache(); err != nil {
			return err
		}
	}
	return nil
}

// CacheStats aggregates buffer pool counters across all files. It walks
// a dedicated pager list under the list's own mutex instead of taking
// db.mu, so it returns live counters even while a batched write holds
// the writer lock for the whole batch (it used to stall behind the
// batch and then report counters that excluded all of the batch's I/O).
func (db *DB) CacheStats() pager.Stats {
	db.obsMu.Lock()
	pagers := append([]*pager.Pager(nil), db.obsPagers...)
	db.obsMu.Unlock()
	var s pager.Stats
	for _, pg := range pagers {
		x := pg.Stats()
		s.Hits += x.Hits
		s.Misses += x.Misses
		s.Reads += x.Reads
		s.Writes += x.Writes
		s.Evictions += x.Evictions
		s.PrefetchReads += x.PrefetchReads
		s.PrefetchHits += x.PrefetchHits
		s.PrefetchWasted += x.PrefetchWasted
	}
	return s
}

// Metrics returns a snapshot of the engine metrics registry: query
// counters and the latency histogram plus the source-folded pager, WAL,
// and zone-map counters. Counter values are monotonic across snapshots.
// The zero Snapshot is returned when metrics are disabled.
func (db *DB) Metrics() obs.Snapshot {
	if db.reg == nil {
		return obs.Snapshot{}
	}
	return db.reg.Snapshot()
}

// Registry exposes the live metrics registry for the debug endpoint;
// nil when Options.DisableMetrics is set.
func (db *DB) Registry() *obs.Registry { return db.reg }

// SlowLog exposes the slow-query log for the debug endpoint; nil unless
// Options.SlowQuery is positive.
func (db *DB) SlowLog() *obs.SlowLog { return db.slow }

// SlowQueries returns the retained slow-query records, oldest first
// (empty unless Options.SlowQuery enabled the log).
func (db *DB) SlowQueries() []obs.SlowQuery {
	if db.slow == nil {
		return nil
	}
	return db.slow.Entries()
}

// TableSizeBytes returns the heap file size of a table — the paper's
// "feature size" metric when the table holds extracted features.
func (db *DB) TableSizeBytes(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	th, ok := db.tables[table]
	if !ok {
		return 0, fmt.Errorf("sqlmini: no such table %s", table)
	}
	return th.pg.SizeBytes(), nil
}

// IndexSizeBytes returns the total size of all indexes on a table. The
// paper's "disk size" is TableSizeBytes + IndexSizeBytes.
func (db *DB) IndexSizeBytes(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.tables[table]; !ok {
		return 0, fmt.Errorf("sqlmini: no such table %s", table)
	}
	var total int64
	for _, ix := range db.catalog.indexesOn(table) {
		total += db.indexes[ix.Name].pg.SizeBytes()
	}
	return total, nil
}

// RowCount returns the number of live rows in a table.
func (db *DB) RowCount(table string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	th, ok := db.tables[table]
	if !ok {
		return 0, fmt.Errorf("sqlmini: no such table %s", table)
	}
	return th.h.Len(), nil
}

// Tables lists the table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for name := range db.catalog.Tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close commits pending work, checkpoints, and releases all files.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.inBatch = false
	if err := db.commitLocked(); err != nil {
		return err
	}
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	for _, name := range db.sortedTableNames() {
		if err := db.tables[name].pg.Close(); err != nil {
			return err
		}
	}
	for _, name := range db.sortedIndexNames() {
		if err := db.indexes[name].pg.Close(); err != nil {
			return err
		}
	}
	if db.log != nil {
		if err := db.log.Close(); err != nil {
			return err
		}
	}
	db.closed = true
	return nil
}
