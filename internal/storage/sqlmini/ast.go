package sqlmini

import (
	"fmt"
	"strings"
)

// Expressions.

type expr interface {
	fmt.Stringer
	exprNode()
}

type literal struct{ v Value }

type columnRef struct{ name string }

type param struct{ idx int } // 0-based placeholder position

type unary struct {
	op string // "-" or "NOT"
	x  expr
}

type binExpr struct {
	op   string // + - * / = != < <= > >= AND OR
	l, r expr
}

// aggregate is COUNT(*) (x nil) or COUNT/SUM/MIN/MAX/AVG(expr).
type aggregate struct {
	fn string
	x  expr // nil for COUNT(*)
}

func (literal) exprNode()   {}
func (columnRef) exprNode() {}
func (param) exprNode()     {}
func (unary) exprNode()     {}
func (binExpr) exprNode()   {}
func (aggregate) exprNode() {}

func (e literal) String() string {
	if e.v.T == TextType {
		return "'" + strings.ReplaceAll(e.v.S, "'", "''") + "'"
	}
	return e.v.String()
}
func (e columnRef) String() string { return e.name }
func (e param) String() string     { return fmt.Sprintf("?%d", e.idx+1) }
func (e unary) String() string {
	if e.op == "NOT" {
		return "NOT " + e.x.String()
	}
	return "-" + e.x.String()
}
func (e binExpr) String() string {
	return "(" + e.l.String() + " " + e.op + " " + e.r.String() + ")"
}
func (e aggregate) String() string {
	if e.x == nil {
		return e.fn + "(*)"
	}
	return e.fn + "(" + e.x.String() + ")"
}

// Statements.

type stmt interface{ stmtNode() }

type createTableStmt struct {
	name string
	cols []ColumnDef
}

// ColumnDef describes one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type ColType
}

type createIndexStmt struct {
	name  string
	table string
	cols  []string
}

// insertStmt is INSERT INTO t VALUES (...), (...); a plain single-row
// INSERT is the one-row case.
type insertStmt struct {
	table string
	rows  [][]expr
}

type selectStmt struct {
	exprs   []expr // nil means *
	star    bool
	table   string
	where   expr // may be nil
	orderBy []orderKey
	limit   int64 // -1 = none
}

type orderKey struct {
	col  string
	desc bool
}

type deleteStmt struct {
	table string
	where expr // may be nil
}

type explainStmt struct {
	inner stmt // selectStmt, unionStmt or deleteStmt
	// analyze marks EXPLAIN ANALYZE: execute the statement and annotate
	// every plan node with runtime counters. Restricted to SELECT/UNION
	// (queries hold the shared lock, which cannot execute a DELETE).
	analyze bool
}

// unionStmt is SELECT ... UNION SELECT ... (set semantics: duplicates
// removed). All branches must produce the same number of columns.
type unionStmt struct {
	branches []selectStmt
}

func (createTableStmt) stmtNode() {}
func (unionStmt) stmtNode()       {}
func (createIndexStmt) stmtNode() {}
func (insertStmt) stmtNode()      {}
func (selectStmt) stmtNode()      {}
func (deleteStmt) stmtNode()      {}
func (explainStmt) stmtNode()     {}

// walkExpr visits e and all children.
func walkExpr(e expr, fn func(expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case unary:
		walkExpr(x.x, fn)
	case binExpr:
		walkExpr(x.l, fn)
		walkExpr(x.r, fn)
	case aggregate:
		walkExpr(x.x, fn)
	}
}

// countParams returns the number of ? placeholders in the statement.
func countParams(s stmt) int {
	n := 0
	count := func(e expr) {
		walkExpr(e, func(e expr) {
			if _, ok := e.(param); ok {
				n++
			}
		})
	}
	switch st := s.(type) {
	case insertStmt:
		for _, row := range st.rows {
			for _, e := range row {
				count(e)
			}
		}
	case selectStmt:
		for _, e := range st.exprs {
			count(e)
		}
		count(st.where)
	case deleteStmt:
		count(st.where)
	case unionStmt:
		for _, b := range st.branches {
			n += countParams(b)
		}
	case explainStmt:
		return countParams(st.inner)
	}
	return n
}
