package sqlmini

import (
	"fmt"
	"time"

	"segdiff/internal/obs"
	"segdiff/internal/storage/pager"
)

// EXPLAIN ANALYZE: execute the statement and annotate every plan node
// with runtime counters. Row counts are exact — they come from per-plan
// scanTrace counters incremented on the scan path. Page counters
// (reads, hits, prefetch hits) and zone-map skips are deltas over the
// node's buffer pools taken around its execution; they are exact when
// the query runs alone and approximate when concurrent queries touch
// the same table, which is the same attribution model pager.Stats
// itself offers. To keep the deltas meaningful, ANALYZE always runs
// UNION scan units sequentially on the calling goroutine (plain
// execution may fan units across Options.UnionWorkers); unit results
// and the merged rows are byte-identical either way because units
// write disjoint branch slots and the merge happens in branch order.

// scanTrace accumulates one plan's runtime row counters. Fields are
// plain ints on purpose: plans are built per execution, ANALYZE runs
// scan units sequentially, and heap.ScanPages invokes its callbacks
// only on the scanning goroutine, so no trace is ever shared between
// goroutines.
type scanTrace struct {
	rowsExamined int64 // rows or index entries inspected before filtering
	rowsReturned int64 // rows that passed all filters and reached the consumer
}

// estRowsOf is the planner's output-row estimate for a plan, rendered
// with the same rounding as planEstimate.String; -1 without statistics.
func estRowsOf(p *scanPlan) int64 {
	if p == nil || p.est == nil || p.empty {
		return -1
	}
	return int64(p.est.outSel*float64(p.est.rows) + 0.5)
}

// unitEstRows mirrors explainHeader's estimate for a fused unit: the
// summed output-row estimates of the member plans, -1 when no member
// had statistics.
func unitEstRows(u *scanUnit) int64 {
	var rows float64
	sel := -1.0
	for _, p := range u.plans {
		if p.est == nil || p.empty {
			continue
		}
		rows += p.est.outSel * float64(p.est.rows)
		if p.est.scanSel > sel {
			sel = p.est.scanSel
		}
	}
	if sel < 0 {
		return -1
	}
	return int64(rows + 0.5)
}

// nodeDelta snapshots the counters one trace node's execution is
// attributed against: the node's table (and index) buffer pools plus
// the zone-map skip counter.
type nodeDelta struct {
	db       *DB
	pagers   []*pager.Pager
	base     pager.Stats
	zoneBase uint64
}

// beginDelta opens an attribution window over the pools a plan on
// (schema, ix) can touch. ix may be nil for sequential plans.
//
// locks: db.mu (any)
func (db *DB) beginDelta(schema *tableSchema, ix *indexSchema) *nodeDelta {
	d := &nodeDelta{db: db}
	if th := db.tables[schema.Name]; th != nil {
		d.pagers = append(d.pagers, th.pg)
	}
	if ix != nil {
		if ih := db.indexes[ix.Name]; ih != nil {
			d.pagers = append(d.pagers, ih.pg)
		}
	}
	d.base = d.sum()
	d.zoneBase = db.zoneSkipped.Load()
	return d
}

func (d *nodeDelta) sum() pager.Stats {
	var s pager.Stats
	for _, pg := range d.pagers {
		ps := pg.Stats()
		s.Hits += ps.Hits
		s.Misses += ps.Misses
		s.Reads += ps.Reads
		s.Writes += ps.Writes
		s.Evictions += ps.Evictions
		s.PrefetchReads += ps.PrefetchReads
		s.PrefetchHits += ps.PrefetchHits
		s.PrefetchWasted += ps.PrefetchWasted
	}
	return s
}

// finish stamps the window's counter deltas onto the node and returns it.
func (d *nodeDelta) finish(n *obs.TraceNode) *obs.TraceNode {
	cur := d.sum()
	n.PagesRead = cur.Reads - d.base.Reads
	n.PagesHit = cur.Hits - d.base.Hits
	n.PrefetchHits = cur.PrefetchHits - d.base.PrefetchHits
	n.ZoneSkipped = d.db.zoneSkipped.Load() - d.zoneBase
	return n
}

// modeName is the trace label of a plan mode.
func modeName(m PlanMode) string {
	switch m {
	case PlanForceScan:
		return "scan"
	case PlanForceIndex:
		return "index"
	default:
		return "auto"
	}
}

// analyzeExec executes s.inner with per-node tracing and returns the
// merged result rows plus the trace (SQL field left to the caller).
//
// locks: db.mu (shared)
func (db *DB) analyzeExec(s explainStmt, args []Value, mode PlanMode) (*Rows, *obs.Trace, error) {
	start := time.Now()
	var rows *Rows
	var nodes []*obs.TraceNode
	switch inner := s.inner.(type) {
	case selectStmt:
		var err error
		rows, nodes, err = db.analyzeSelect(inner, -1, args, mode)
		if err != nil {
			return nil, nil, err
		}
	case unionStmt:
		units, err := db.buildUnionUnits(inner, args, mode)
		if err != nil {
			return nil, nil, err
		}
		branchRows := make([]*Rows, len(inner.branches))
		for _, u := range units {
			if u.solo {
				r, ns, err := db.analyzeSelect(u.stmts[0], u.idxs[0], args, mode)
				if err != nil {
					return nil, nil, err
				}
				branchRows[u.idxs[0]] = r
				nodes = append(nodes, ns...)
				continue
			}
			node, err := db.analyzeFusedUnit(u, args, branchRows)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, node)
		}
		rows, err = mergeUnion(branchRows)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("sqlmini: EXPLAIN ANALYZE supports only SELECT")
	}
	tr := &obs.Trace{
		Mode:   modeName(mode),
		WallNS: time.Since(start).Nanoseconds(),
		Rows:   rows.Len(),
		Nodes:  nodes,
	}
	return rows, tr, nil
}

// analyzeSelect plans and executes one traced SELECT. branch is the
// statement's absolute UNION branch position, -1 for a standalone
// statement.
//
// locks: db.mu (shared)
func (db *DB) analyzeSelect(st selectStmt, branch int, args []Value, mode PlanMode) (*Rows, []*obs.TraceNode, error) {
	plan, aggMode, err := db.planSelect(st, args, mode)
	if err != nil {
		return nil, nil, err
	}
	tr := &scanTrace{}
	plan.trace = tr
	d := db.beginDelta(plan.schema, plan.index)
	start := time.Now()
	rows, err := db.execSelectOn(st, plan, aggMode, args)
	if err != nil {
		return nil, nil, err
	}
	node := d.finish(&obs.TraceNode{
		Plan:         plan.explain(),
		Branch:       branch,
		EstRows:      estRowsOf(plan),
		RowsExamined: tr.rowsExamined,
		RowsReturned: tr.rowsReturned,
		WallNS:       time.Since(start).Nanoseconds(),
	})
	return rows, []*obs.TraceNode{node}, nil
}

// analyzeFusedUnit runs one fused scan unit with per-branch traces and
// returns its annotated node with one child per member branch. Page
// I/O and zone skips live on the unit node — the branches share a
// single scan, so per-branch page attribution would double count.
//
// locks: db.mu (shared)
func (db *DB) analyzeFusedUnit(u *scanUnit, args []Value, branchRows []*Rows) (*obs.TraceNode, error) {
	traces := make([]*scanTrace, len(u.plans))
	for j, p := range u.plans {
		traces[j] = &scanTrace{}
		p.trace = traces[j]
	}
	d := db.beginDelta(u.schema, u.index)
	start := time.Now()
	if err := db.execFusedUnit(u, args, branchRows); err != nil {
		return nil, err
	}
	wall := time.Since(start).Nanoseconds()

	if len(u.idxs) == 1 {
		// EXPLAIN renders a single-branch unit as the branch plan itself;
		// ANALYZE mirrors that shape.
		return d.finish(&obs.TraceNode{
			Plan:         u.plans[0].explain(),
			Branch:       u.idxs[0],
			EstRows:      estRowsOf(u.plans[0]),
			RowsExamined: traces[0].rowsExamined,
			RowsReturned: traces[0].rowsReturned,
			WallNS:       wall,
		}), nil
	}

	unit := &obs.TraceNode{
		Plan:    u.explainHeader(),
		Branch:  -1,
		EstRows: unitEstRows(u),
		WallNS:  wall,
	}
	for j := range u.idxs {
		child := &obs.TraceNode{
			Plan:         u.plans[j].explain(),
			Branch:       u.idxs[j],
			EstRows:      estRowsOf(u.plans[j]),
			RowsExamined: traces[j].rowsExamined,
			RowsReturned: traces[j].rowsReturned,
		}
		unit.RowsExamined += child.RowsExamined
		unit.RowsReturned += child.RowsReturned
		unit.Children = append(unit.Children, child)
	}
	return d.finish(unit), nil
}

// explainAnalyzeRows executes the statement and renders the annotated
// plan tree, one line per node, as the EXPLAIN ANALYZE result set.
//
// locks: db.mu (shared)
func (db *DB) explainAnalyzeRows(s explainStmt, args []Value, mode PlanMode) (*Rows, error) {
	_, tr, err := db.analyzeExec(s, args, mode)
	if err != nil {
		return nil, err
	}
	out := &Rows{Columns: []string{"plan"}}
	for _, line := range tr.Lines() {
		out.Data = append(out.Data, []Value{Text(line)})
	}
	return out, nil
}

// ExplainAnalyze executes a SELECT or UNION under mode and returns its
// runtime trace: every plan node annotated with actual row counts,
// page I/O deltas, zone-map skips, and wall time, alongside the
// planner's row estimate. The statement's results are computed but not
// returned; use the SQL form ("EXPLAIN ANALYZE SELECT ...") through
// Query to get the rendered plan as rows instead.
func (db *DB) ExplainAnalyze(mode PlanMode, sql string, args ...Value) (*obs.Trace, error) {
	st, err := parse(sql)
	if err != nil {
		return nil, err
	}
	var s explainStmt
	switch x := st.(type) {
	case explainStmt:
		switch x.inner.(type) {
		case selectStmt, unionStmt:
			s = explainStmt{inner: x.inner, analyze: true}
		default:
			return nil, fmt.Errorf("sqlmini: ExplainAnalyze supports only SELECT")
		}
	case selectStmt, unionStmt:
		s = explainStmt{inner: st, analyze: true}
	default:
		return nil, fmt.Errorf("sqlmini: ExplainAnalyze supports only SELECT")
	}
	if n := countParams(s); n != len(args) {
		return nil, fmt.Errorf("sqlmini: statement has %d placeholders, got %d args", n, len(args))
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, fmt.Errorf("sqlmini: database is closed")
	}
	start := time.Now()
	_, tr, err := db.analyzeExec(s, args, mode)
	if err != nil {
		return nil, err
	}
	tr.SQL = sql
	tr.WallNS = time.Since(start).Nanoseconds()
	return tr, nil
}
