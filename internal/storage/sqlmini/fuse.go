package sqlmini

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"segdiff/internal/storage/btree"
	"segdiff/internal/storage/heap"
	"segdiff/internal/storage/keyenc"
)

// Fused shared-scan union execution. The paper's drop/jump search is a
// UNION of point and line queries (§4.4), and most branches target the
// same (table, corner-index) with overlapping dt ≤ T prefix ranges. The
// fusion pass groups such branches into one scan unit: a single B+tree
// descent over the merged key range (or one heap pass for sequential
// plans) that evaluates every branch's predicate per visited entry, with
// per-branch row attribution. Because the shared scan visits keys in the
// same ascending order an independent scan of each branch would, and each
// branch only sees keys inside its own bounds, every branch's row list —
// and therefore the merged UNION result — is byte-identical to
// branch-at-a-time execution.

// scanUnit is one executable group of UNION branches. A solo unit wraps a
// branch the fusion pass cannot handle (aggregates, ORDER BY, LIMIT, or
// fusion disabled) and runs through the ordinary SELECT path; a fused
// unit shares one scan across all member branches.
type scanUnit struct {
	solo   bool
	schema *tableSchema // nil for solo units
	index  *indexSchema // nil = fused sequential scan
	idxs   []int        // absolute branch positions within the UNION
	stmts  []selectStmt
	plans  []*scanPlan // nil for solo units
}

// buildUnionUnits plans every branch of a UNION and groups fusable
// branches that chose the same (table, access path) into shared scan
// units. Branch order is preserved inside each unit, and units are
// ordered by their first member, so EXPLAIN output and execution results
// stay deterministic.
//
// locks: db.mu (shared)
func (db *DB) buildUnionUnits(st unionStmt, args []Value, mode PlanMode) ([]*scanUnit, error) {
	var units []*scanUnit
	byKey := map[string]*scanUnit{}
	for i, b := range st.branches {
		solo := db.opts.DisableFusion || len(b.orderBy) > 0 || b.limit >= 0
		if !solo {
			for _, e := range b.exprs {
				if hasAggregate(e) {
					solo = true
					break
				}
			}
		}
		if solo {
			units = append(units, &scanUnit{solo: true, idxs: []int{i}, stmts: []selectStmt{b}})
			continue
		}
		schema, ok := db.catalog.Tables[b.table]
		if !ok {
			return nil, fmt.Errorf("sqlmini: no such table %s", b.table)
		}
		if b.where != nil {
			if err := validateExpr(b.where, schema, false); err != nil {
				return nil, err
			}
		}
		for _, e := range b.exprs {
			if err := validateExpr(e, schema, true); err != nil {
				return nil, err
			}
		}
		plan, err := buildPlan(db, schema, b.where, args, mode)
		if err != nil {
			return nil, err
		}
		key := b.table + "\x00"
		if plan.index != nil {
			key += plan.index.Name
		}
		u := byKey[key]
		if u == nil {
			u = &scanUnit{schema: schema, index: plan.index}
			byKey[key] = u
			units = append(units, u)
		}
		u.idxs = append(u.idxs, i)
		u.stmts = append(u.stmts, b)
		u.plans = append(u.plans, plan)
	}
	return units, nil
}

// execFusedUnit runs one fused scan unit, storing each member branch's
// result into branchRows at its absolute position. Distinct units touch
// disjoint branchRows slots, so units may run concurrently.
//
// locks: db.mu (shared)
func (db *DB) execFusedUnit(u *scanUnit, args []Value, branchRows []*Rows) error {
	schema := u.schema
	n := len(u.idxs)
	outs := make([]*Rows, n)
	for j, bi := range u.idxs {
		r := &Rows{}
		if u.stmts[j].star {
			for _, c := range schema.Cols {
				r.Columns = append(r.Columns, c.Name)
			}
		} else {
			for _, e := range u.stmts[j].exprs {
				r.Columns = append(r.Columns, e.String())
			}
		}
		outs[j] = r
		branchRows[bi] = r
	}

	th := db.tables[schema.Name]
	rowBuf := make([]Value, len(schema.Cols))

	// Compile each branch's residual predicate, key prefilter, and
	// projection once; the closures are specialized to the bound args.
	filters := make([]func([]Value) (bool, error), n)
	keyFilters := make([]func([]Value) (bool, error), n)
	projs := make([][]valFn, n)
	for j := range u.idxs {
		p := u.plans[j]
		filters[j] = compilePred(p.filter, schema, args)
		keyFilters[j] = compilePred(p.keyFilter, schema, args)
		if st := u.stmts[j]; !st.star {
			fns := make([]valFn, len(st.exprs))
			for k, e := range st.exprs {
				fns[k] = compileVal(e, schema, args)
			}
			projs[j] = fns
		}
	}

	// emit projects the shared row through branch j's SELECT list.
	emit := func(j int, vals []Value) error {
		if t := u.plans[j].trace; t != nil {
			t.rowsReturned++
		}
		var proj []Value
		if u.stmts[j].star {
			proj = append([]Value(nil), vals...)
		} else {
			proj = make([]Value, len(projs[j]))
			for k, f := range projs[j] {
				v, err := f(vals)
				if err != nil {
					return err
				}
				proj[k] = v
			}
		}
		outs[j].Data = append(outs[j].Data, proj)
		return nil
	}

	if u.index == nil {
		// Fused sequential scan: one heap pass, every branch's predicate
		// per row. Zone-map pruning keeps a page when ANY branch's ranges
		// could intersect it (zoneKeep ORs the member plans), so the shared
		// scan visits exactly the pages the branch-at-a-time scans would.
		return th.h.ScanPages(db.zoneKeep(u.plans...), func(_ heap.RID, rec []byte) (bool, error) {
			vals, err := decodeRowInto(schema, rec, rowBuf)
			if err != nil {
				return false, err
			}
			for j := range u.idxs {
				if u.plans[j].empty {
					continue
				}
				if t := u.plans[j].trace; t != nil {
					t.rowsExamined++ // every decoded row, per live branch
				}
				if f := filters[j]; f != nil {
					ok, err := f(vals)
					if err != nil {
						return false, err
					}
					if !ok {
						continue
					}
				}
				if err := emit(j, vals); err != nil {
					return false, err
				}
			}
			return true, nil
		})
	}

	// Fused index scan. Merge the branches' [lo, hi] key ranges into
	// disjoint intervals so every index entry is descended to and visited
	// exactly once, regardless of how the branch ranges overlap.
	ih := db.indexes[u.index.Name]
	type iv struct{ lo, hi []byte }
	var ivs []iv
	for j := range u.idxs {
		if u.plans[j].empty {
			continue
		}
		ivs = append(ivs, iv{u.plans[j].lo, u.plans[j].hi})
	}
	if len(ivs) == 0 {
		return nil
	}
	// nil lo sorts first (unbounded start), nil hi means unbounded end.
	sort.Slice(ivs, func(a, c int) bool {
		if ivs[a].lo == nil || ivs[c].lo == nil {
			return ivs[a].lo == nil && ivs[c].lo != nil
		}
		return bytes.Compare(ivs[a].lo, ivs[c].lo) < 0
	})
	merged := ivs[:1]
	for _, x := range ivs[1:] {
		last := &merged[len(merged)-1]
		if last.hi == nil || x.lo == nil || bytes.Compare(x.lo, last.hi) <= 0 {
			if x.hi == nil {
				last.hi = nil
			} else if last.hi != nil && bytes.Compare(x.hi, last.hi) > 0 {
				last.hi = x.hi
			}
		} else {
			merged = append(merged, x)
		}
	}

	// Covered-conjunct prefilter state, shared across branches (every
	// member chose the same index, so the key layout is common).
	keyIdx := make([]int, len(u.index.Cols))
	for i, cn := range u.index.Cols {
		keyIdx[i] = schema.colIndex(cn)
	}
	krow := make([]Value, len(schema.Cols))
	var kvals []keyenc.Value
	inRange := func(key []byte, p *scanPlan) bool {
		if p.lo != nil && bytes.Compare(key, p.lo) < 0 {
			return false
		}
		if p.hi != nil && bytes.Compare(key, p.hi) > 0 {
			return false
		}
		return true
	}

	var it btree.Iterator
	pass := make([]bool, n)
	for _, m := range merged {
		for ih.tree.SeekInto(&it, m.lo); it.Valid(); it.Next() {
			key := it.Key()
			if m.hi != nil && bytes.Compare(key, m.hi) > 0 {
				break
			}
			decoded := false
			any := false
			for j := range u.idxs {
				p := u.plans[j]
				pass[j] = false
				if p.empty || !inRange(key, p) {
					continue
				}
				if p.trace != nil {
					// A dedicated scan of this branch would visit exactly the
					// entries inside its own bounds.
					p.trace.rowsExamined++
				}
				if kf := keyFilters[j]; kf != nil {
					if !decoded {
						var err error
						kvals, err = keyenc.DecodeInto(key, kvals[:0])
						if err != nil {
							return err
						}
						if len(kvals) != len(keyIdx)+1 { // + trailing RID
							return fmt.Errorf("sqlmini: index %s key has %d parts, want %d",
								u.index.Name, len(kvals), len(keyIdx)+1)
						}
						for i, ci := range keyIdx {
							switch kvals[i].Kind {
							case keyenc.Int:
								krow[ci] = Int(kvals[i].I)
							case keyenc.Float:
								krow[ci] = Real(kvals[i].F)
							case keyenc.String:
								krow[ci] = Text(kvals[i].S)
							}
						}
						decoded = true
					}
					ok, err := kf(krow)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
				}
				pass[j] = true
				any = true
			}
			if !any {
				continue
			}
			// At least one branch survived the key prefilter: fetch and
			// decode the heap row once, then finish each surviving branch.
			rid := intToRID(int64(binary.LittleEndian.Uint64(it.Value())))
			rec, err := th.h.View(rid)
			if err != nil {
				return err
			}
			vals, err := decodeRowInto(schema, rec, rowBuf)
			if err != nil {
				return err
			}
			for j := range u.idxs {
				if !pass[j] {
					continue
				}
				if f := filters[j]; f != nil {
					ok, err := f(vals)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
				}
				if err := emit(j, vals); err != nil {
					return err
				}
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// explainHeader renders the one-line summary of a fused scan unit.
func (u *scanUnit) explainHeader() string {
	var sb strings.Builder
	if u.index == nil {
		fmt.Fprintf(&sb, "FUSED SEQ SCAN %s BRANCHES %d", u.schema.Name, len(u.idxs))
	} else {
		fmt.Fprintf(&sb, "FUSED INDEX SCAN %s ON %s BRANCHES %d", u.index.Name, u.schema.Name, len(u.idxs))
	}
	var rows float64
	sel := -1.0
	for _, p := range u.plans {
		if p.est == nil || p.empty {
			continue
		}
		rows += p.est.outSel * float64(p.est.rows)
		if p.est.scanSel > sel {
			sel = p.est.scanSel
		}
	}
	if sel >= 0 {
		fmt.Fprintf(&sb, " EST sel=%.4f rows~%d", sel, int64(rows+0.5))
	}
	return sb.String()
}
