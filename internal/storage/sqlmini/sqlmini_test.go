package sqlmini

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func memDB(t *testing.T) *DB {
	t.Helper()
	return OpenMemory(Options{PoolPages: 128})
}

func mustExec(t *testing.T, db *DB, sql string, args ...Value) int {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	r, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return r
}

func TestCreateInsertSelect(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE obs (t INT, v REAL, sensor TEXT)")
	mustExec(t, db, "INSERT INTO obs VALUES (100, 21.5, 'a')")
	mustExec(t, db, "INSERT INTO obs VALUES (200, -3.25, 'b')")
	r := mustQuery(t, db, "SELECT * FROM obs")
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	if got := r.Columns; strings.Join(got, ",") != "t,v,sensor" {
		t.Fatalf("columns = %v", got)
	}
	if r.Data[0][0] != Int(100) || r.Data[0][1] != Real(21.5) || r.Data[0][2] != Text("a") {
		t.Fatalf("row 0 = %v", r.Data[0])
	}
}

func TestWhereFilters(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE n (x INT, y REAL)")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO n VALUES (?, ?)", Int(int64(i)), Real(float64(i)*0.5))
	}
	r := mustQuery(t, db, "SELECT x FROM n WHERE x >= 90 AND y < 47.5")
	if r.Len() != 5 { // x in 90..94
		t.Fatalf("rows = %d: %v", r.Len(), r.Data)
	}
	r = mustQuery(t, db, "SELECT x FROM n WHERE x = 17 OR x = 40")
	if r.Len() != 2 {
		t.Fatalf("OR rows = %d", r.Len())
	}
	r = mustQuery(t, db, "SELECT x FROM n WHERE NOT (x < 98)")
	if r.Len() != 2 {
		t.Fatalf("NOT rows = %d", r.Len())
	}
}

func TestExpressionsInSelect(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE e (a REAL, b REAL)")
	mustExec(t, db, "INSERT INTO e VALUES (10.0, 4.0)")
	r := mustQuery(t, db, "SELECT a + b, a - b, a * b, a / b, -a FROM e")
	want := []Value{Real(14), Real(6), Real(40), Real(2.5), Real(-10)}
	for i, w := range want {
		if r.Data[0][i] != w {
			t.Fatalf("expr %d = %v, want %v", i, r.Data[0][i], w)
		}
	}
}

func TestLineQueryExpression(t *testing.T) {
	// The paper's line query uses interpolation arithmetic in WHERE.
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE seg (dt1 INT, dv1 REAL, dt2 INT, dv2 REAL)")
	mustExec(t, db, "INSERT INTO seg VALUES (10, 1.0, 30, -5.0)") // crosses V=-3 between
	mustExec(t, db, "INSERT INTO seg VALUES (10, 1.0, 30, 2.0)")  // stays above
	// At T=25 the first edge evaluates to 1 − 0.3·15 = −3.5 ≤ −3: it
	// crosses into the region before Δt = T.
	r := mustQuery(t, db,
		"SELECT dt1 FROM seg WHERE dt1 <= ? AND dv1 > ? AND dt2 > ? AND dv2 <= ? AND dv1 + (dv2 - dv1) / (dt2 - dt1) * (? - dt1) <= ?",
		Int(25), Real(-3), Int(25), Real(-3), Int(25), Real(-3))
	if r.Len() != 1 {
		t.Fatalf("line query rows = %d", r.Len())
	}
}

func TestIntegerArithmetic(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE i (a INT, b INT)")
	mustExec(t, db, "INSERT INTO i VALUES (7, 2)")
	r := mustQuery(t, db, "SELECT a / b, a * b + 1 FROM i")
	if r.Data[0][0] != Int(3) || r.Data[0][1] != Int(15) {
		t.Fatalf("int arith = %v", r.Data[0])
	}
	if _, err := db.Query("SELECT a / 0 FROM i"); err == nil {
		t.Fatal("integer division by zero accepted")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE s (x INT, y REAL)")
	vals := []int64{5, 1, 9, 3, 7}
	for _, v := range vals {
		mustExec(t, db, "INSERT INTO s VALUES (?, ?)", Int(v), Real(float64(-v)))
	}
	r := mustQuery(t, db, "SELECT x FROM s ORDER BY x")
	got := []int64{}
	for _, row := range r.Data {
		got = append(got, row[0].I)
	}
	if fmt.Sprint(got) != "[1 3 5 7 9]" {
		t.Fatalf("order asc = %v", got)
	}
	r = mustQuery(t, db, "SELECT x FROM s ORDER BY y ASC, x DESC LIMIT 2")
	if r.Len() != 2 || r.Data[0][0] != Int(9) || r.Data[1][0] != Int(7) {
		t.Fatalf("order desc limit = %v", r.Data)
	}
	r = mustQuery(t, db, "SELECT x FROM s LIMIT 3")
	if r.Len() != 3 {
		t.Fatalf("limit = %d", r.Len())
	}
	r = mustQuery(t, db, "SELECT x FROM s LIMIT 0")
	if r.Len() != 0 {
		t.Fatalf("limit 0 = %d", r.Len())
	}
}

func TestAggregates(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE a (x INT, y REAL)")
	for i := 1; i <= 10; i++ {
		mustExec(t, db, "INSERT INTO a VALUES (?, ?)", Int(int64(i)), Real(float64(i)))
	}
	r := mustQuery(t, db, "SELECT COUNT(*), SUM(y), MIN(x), MAX(x), AVG(y) FROM a")
	row := r.Data[0]
	if row[0] != Int(10) || row[1] != Real(55) || row[2] != Int(1) || row[3] != Int(10) || row[4] != Real(5.5) {
		t.Fatalf("aggregates = %v", row)
	}
	r = mustQuery(t, db, "SELECT COUNT(*) FROM a WHERE x > 7")
	if r.Data[0][0] != Int(3) {
		t.Fatalf("filtered count = %v", r.Data[0][0])
	}
	// Empty input.
	r = mustQuery(t, db, "SELECT COUNT(*), AVG(y) FROM a WHERE x > 100")
	if r.Data[0][0] != Int(0) || r.Data[0][1] != Real(0) {
		t.Fatalf("empty aggregates = %v", r.Data[0])
	}
	if _, err := db.Query("SELECT x, COUNT(*) FROM a"); err == nil {
		t.Fatal("mixed aggregate/column accepted")
	}
}

func TestDelete(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE d (x INT)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO d VALUES (?)", Int(int64(i)))
	}
	if n := mustExec(t, db, "DELETE FROM d WHERE x < 4"); n != 4 {
		t.Fatalf("deleted %d", n)
	}
	r := mustQuery(t, db, "SELECT COUNT(*) FROM d")
	if r.Data[0][0] != Int(6) {
		t.Fatalf("count after delete = %v", r.Data[0][0])
	}
	if n := mustExec(t, db, "DELETE FROM d"); n != 6 {
		t.Fatalf("delete all = %d", n)
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE d (x INT, y REAL)")
	mustExec(t, db, "CREATE INDEX dx ON d (x)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO d VALUES (?, ?)", Int(int64(i)), Real(float64(i)))
	}
	mustExec(t, db, "DELETE FROM d WHERE x >= 25")
	// Query through the index must see exactly the remaining rows.
	r, err := db.QueryMode(PlanForceIndex, "SELECT COUNT(*) FROM d WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if r.Data[0][0] != Int(25) {
		t.Fatalf("index count after delete = %v", r.Data[0][0])
	}
}

func TestIndexPlanAndEquivalence(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE f (dt INT, dv REAL, ts INT)")
	mustExec(t, db, "CREATE INDEX f_dtdv ON f (dt, dv)")
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		mustExec(t, db, "INSERT INTO f VALUES (?, ?, ?)",
			Int(rng.Int63n(500)), Real(rng.NormFloat64()*5), Int(int64(i)))
	}
	queries := []struct {
		sql  string
		args []Value
	}{
		{"SELECT ts FROM f WHERE dt <= 100 AND dv <= -2.0", nil},
		{"SELECT ts FROM f WHERE dt = 250", nil},
		{"SELECT ts FROM f WHERE dt = 250 AND dv > 0.0", nil},
		{"SELECT ts FROM f WHERE dt >= 480", nil},
		{"SELECT ts FROM f WHERE dt > 100 AND dt < 110 AND dv >= -1.0 AND dv <= 1.0", nil},
		{"SELECT ts FROM f WHERE dt <= ? AND dv <= ?", []Value{Int(50), Real(-3)}},
		{"SELECT ts FROM f WHERE 100 >= dt", nil}, // flipped operand order
	}
	for _, q := range queries {
		scan, err := db.QueryMode(PlanForceScan, q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s (scan): %v", q.sql, err)
		}
		idx, err := db.QueryMode(PlanForceIndex, q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s (index): %v", q.sql, err)
		}
		auto, err := db.Query(q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s (auto): %v", q.sql, err)
		}
		if !sameRowMultiset(scan, idx) || !sameRowMultiset(scan, auto) {
			t.Fatalf("%s: plan results differ: scan=%d idx=%d auto=%d",
				q.sql, scan.Len(), idx.Len(), auto.Len())
		}
	}
}

func sameRowMultiset(a, b *Rows) bool {
	if a.Len() != b.Len() {
		return false
	}
	count := map[string]int{}
	for _, r := range a.Data {
		count[fmt.Sprint(r)]++
	}
	for _, r := range b.Data {
		count[fmt.Sprint(r)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestExplain(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE x (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX xa ON x (a)")
	r := mustQuery(t, db, "EXPLAIN SELECT * FROM x WHERE a <= 5")
	plan := r.Data[0][0].S
	if !strings.Contains(plan, "INDEX SCAN xa") {
		t.Fatalf("plan = %q", plan)
	}
	r = mustQuery(t, db, "EXPLAIN SELECT * FROM x WHERE b <= 5.0")
	plan = r.Data[0][0].S
	if !strings.Contains(plan, "SEQ SCAN") {
		t.Fatalf("unindexed plan = %q", plan)
	}
	r = mustQuery(t, db, "EXPLAIN DELETE FROM x WHERE a = 3")
	if !strings.Contains(r.Data[0][0].S, "INDEX SCAN") {
		t.Fatalf("delete plan = %q", r.Data[0][0].S)
	}
}

func TestImpossiblePredicate(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE p (a INT)")
	mustExec(t, db, "CREATE INDEX pa ON p (a)")
	mustExec(t, db, "INSERT INTO p VALUES (1)")
	r := mustQuery(t, db, "SELECT * FROM p WHERE a = 1.5")
	if r.Len() != 0 {
		t.Fatalf("impossible predicate returned %d rows", r.Len())
	}
	plan := mustQuery(t, db, "EXPLAIN SELECT * FROM p WHERE a = 1.5")
	if !strings.Contains(plan.Data[0][0].S, "EMPTY") {
		t.Fatalf("plan = %q", plan.Data[0][0].S)
	}
}

func TestFractionalBoundsOnIntColumn(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE q (a INT)")
	mustExec(t, db, "CREATE INDEX qa ON q (a)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO q VALUES (?)", Int(int64(i)))
	}
	for _, tc := range []struct {
		sql  string
		want int
	}{
		{"SELECT a FROM q WHERE a <= 4.5", 5},
		{"SELECT a FROM q WHERE a < 4.5", 5},
		{"SELECT a FROM q WHERE a >= 4.5", 5},
		{"SELECT a FROM q WHERE a > 4.5", 5},
		{"SELECT a FROM q WHERE a > 4.0", 5},
		{"SELECT a FROM q WHERE a >= 4.0", 6},
	} {
		for _, mode := range []PlanMode{PlanForceScan, PlanForceIndex} {
			r, err := db.QueryMode(mode, tc.sql)
			if err != nil {
				t.Fatalf("%s: %v", tc.sql, err)
			}
			if r.Len() != tc.want {
				t.Fatalf("%s (mode %d): %d rows, want %d", tc.sql, mode, r.Len(), tc.want)
			}
		}
	}
}

func TestPreparedStatements(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE ps (a INT, b REAL)")
	ins, err := db.Prepare("INSERT INTO ps VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ins.Exec(Int(int64(i)), Real(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := db.Prepare("SELECT COUNT(*) FROM ps WHERE a < ?")
	if err != nil {
		t.Fatal(err)
	}
	r, err := sel.Query(Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Data[0][0] != Int(5) {
		t.Fatalf("prepared count = %v", r.Data[0][0])
	}
	if _, err := sel.Query(); err == nil {
		t.Fatal("missing args accepted")
	}
	if _, err := sel.Query(Int(1), Int(2)); err == nil {
		t.Fatal("extra args accepted")
	}
}

func TestErrors(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t1 (a INT)")
	cases := []string{
		"CREATE TABLE t1 (a INT)",         // duplicate table
		"CREATE TABLE t2 (a INT, a REAL)", // duplicate column
		"CREATE INDEX i1 ON missing (a)",  // unknown table
		"CREATE INDEX i1 ON t1 (nope)",    // unknown column
		"INSERT INTO missing VALUES (1)",  // unknown table
		"INSERT INTO t1 VALUES (1, 2)",    // arity mismatch
		"INSERT INTO t1 VALUES ('hello')", // type mismatch
		"DELETE FROM missing",             // unknown table
	}
	for _, sql := range cases {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("%q accepted", sql)
		}
	}
	queryCases := []string{
		"SELECT * FROM missing",
		"SELECT nope FROM t1",
		"SELECT * FROM t1 WHERE nope = 1",
		"SELECT * FROM t1 ORDER BY nope",
		"SELECT * FROM t1 WHERE COUNT(*) > 1",
	}
	for _, sql := range queryCases {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%q accepted", sql)
		}
	}
	if _, err := db.Exec("SELECT * FROM t1"); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	if _, err := db.Query("DELETE FROM t1"); err == nil {
		t.Error("Query of DELETE accepted")
	}
	mustExec(t, db, "CREATE INDEX i1 ON t1 (a)")
	if _, err := db.Exec("CREATE INDEX i1 ON t1 (a)"); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestParserErrors(t *testing.T) {
	db := memDB(t)
	for _, sql := range []string{
		"",
		"FROBNICATE",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"CREATE TABLE t (a BOGUS)",
		"CREATE",
		"INSERT t VALUES (1)",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t extra",
		"SELECT 'unterminated FROM t",
		"SELECT 1e FROM t",
		"SELECT # FROM t",
	} {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("parser accepted %q", sql)
		}
	}
}

func TestStringLiteralsAndEscapes(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE s (name TEXT)")
	mustExec(t, db, "INSERT INTO s VALUES ('it''s')")
	r := mustQuery(t, db, "SELECT name FROM s WHERE name = 'it''s'")
	if r.Len() != 1 || r.Data[0][0] != Text("it's") {
		t.Fatalf("escaped string = %v", r.Data)
	}
}

func TestTextIndex(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE st (name TEXT, v INT)")
	mustExec(t, db, "CREATE INDEX st_name ON st (name)")
	for i, name := range []string{"delta", "alpha", "charlie", "bravo"} {
		mustExec(t, db, "INSERT INTO st VALUES (?, ?)", Text(name), Int(int64(i)))
	}
	r, err := db.QueryMode(PlanForceIndex, "SELECT v FROM st WHERE name = 'charlie'")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Data[0][0] != Int(2) {
		t.Fatalf("text index lookup = %v", r.Data)
	}
	r, err = db.QueryMode(PlanForceIndex, "SELECT v FROM st WHERE name >= 'b' AND name <= 'c'")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 { // only bravo
		t.Fatalf("text range = %v", r.Data)
	}
}

func TestIndexBackfill(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE bf (a INT)")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO bf VALUES (?)", Int(int64(i)))
	}
	mustExec(t, db, "CREATE INDEX bfa ON bf (a)") // built over existing rows
	r, err := db.QueryMode(PlanForceIndex, "SELECT COUNT(*) FROM bf WHERE a >= 50")
	if err != nil {
		t.Fatal(err)
	}
	if r.Data[0][0] != Int(50) {
		t.Fatalf("backfilled index count = %v", r.Data[0][0])
	}
}

func TestComments(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE c (a INT) -- trailing comment")
	mustExec(t, db, "-- leading comment\nINSERT INTO c VALUES (1)")
	r := mustQuery(t, db, "SELECT COUNT(*) FROM c")
	if r.Data[0][0] != Int(1) {
		t.Fatal("comments broke execution")
	}
}

func TestClosedDB(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE z (a INT)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO z VALUES (1)"); err == nil {
		t.Fatal("exec on closed DB accepted")
	}
	if _, err := db.Query("SELECT * FROM z"); err == nil {
		t.Fatal("query on closed DB accepted")
	}
	if err := db.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

func TestStatsAPIs(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE m (a INT)")
	mustExec(t, db, "CREATE INDEX ma ON m (a)")
	for i := 0; i < 1000; i++ {
		mustExec(t, db, "INSERT INTO m VALUES (?)", Int(int64(i)))
	}
	tb, err := db.TableSizeBytes("m")
	if err != nil || tb <= 0 {
		t.Fatalf("table size = %d, %v", tb, err)
	}
	ib, err := db.IndexSizeBytes("m")
	if err != nil || ib <= 0 {
		t.Fatalf("index size = %d, %v", ib, err)
	}
	n, err := db.RowCount("m")
	if err != nil || n != 1000 {
		t.Fatalf("row count = %d, %v", n, err)
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("tables = %v", got)
	}
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, db, "SELECT COUNT(*) FROM m")
	st := db.CacheStats()
	if st.Misses == 0 {
		t.Fatalf("no cache misses after DropCache: %+v", st)
	}
	if _, err := db.TableSizeBytes("missing"); err == nil {
		t.Fatal("missing table size accepted")
	}
	if _, err := db.IndexSizeBytes("missing"); err == nil {
		t.Fatal("missing index size accepted")
	}
	if _, err := db.RowCount("missing"); err == nil {
		t.Fatal("missing row count accepted")
	}
}

func TestUnion(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE u1 (a INT, b REAL)")
	mustExec(t, db, "CREATE TABLE u2 (a INT, b REAL)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO u1 VALUES (?, ?)", Int(int64(i)), Real(float64(i)))
		mustExec(t, db, "INSERT INTO u2 VALUES (?, ?)", Int(int64(i+5)), Real(float64(i+5)))
	}
	// Overlap: u1 has 0..9, u2 has 5..14; rows 5..9 appear in both and
	// must be deduplicated.
	r := mustQuery(t, db, "SELECT a, b FROM u1 UNION SELECT a, b FROM u2")
	if r.Len() != 15 {
		t.Fatalf("union rows = %d, want 15", r.Len())
	}
	// With WHERE and global placeholder numbering.
	r = mustQuery(t, db,
		"SELECT a, b FROM u1 WHERE a < ? UNION SELECT a, b FROM u2 WHERE a > ?",
		Int(2), Int(12))
	if r.Len() != 4 { // 0,1 from u1; 13,14 from u2
		t.Fatalf("filtered union rows = %d: %v", r.Len(), r.Data)
	}
	// Three branches.
	r = mustQuery(t, db,
		"SELECT a FROM u1 WHERE a = 0 UNION SELECT a FROM u1 WHERE a = 1 UNION SELECT a FROM u2 WHERE a = 14")
	if r.Len() != 3 {
		t.Fatalf("three-branch union rows = %d", r.Len())
	}
	// Column arity mismatch.
	if _, err := db.Query("SELECT a FROM u1 UNION SELECT a, b FROM u2"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// ORDER BY / LIMIT rejected inside unions.
	if _, err := db.Query("SELECT a FROM u1 ORDER BY a UNION SELECT a FROM u2"); err == nil {
		t.Fatal("ORDER BY in union accepted")
	}
	if _, err := db.Query("SELECT a FROM u1 UNION SELECT a FROM u2 LIMIT 3"); err == nil {
		t.Fatal("LIMIT in union accepted")
	}
	// EXPLAIN shows one plan line per branch.
	er := mustQuery(t, db, "EXPLAIN SELECT a FROM u1 WHERE a = 1 UNION SELECT a FROM u2")
	if er.Len() != 2 {
		t.Fatalf("explain union lines = %d", er.Len())
	}
	// Union via Exec is rejected.
	if _, err := db.Exec("SELECT a FROM u1 UNION SELECT a FROM u2"); err == nil {
		t.Fatal("Exec of UNION accepted")
	}
}

func TestUnionPlanModes(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE uu (a INT, b REAL)")
	mustExec(t, db, "CREATE INDEX uua ON uu (a)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, "INSERT INTO uu VALUES (?, ?)", Int(int64(i%50)), Real(float64(i)))
	}
	q := "SELECT b FROM uu WHERE a <= ? UNION SELECT b FROM uu WHERE a >= ?"
	scan, err := db.QueryMode(PlanForceScan, q, Int(5), Int(45))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.QueryMode(PlanForceIndex, q, Int(5), Int(45))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRowMultiset(scan, idx) {
		t.Fatalf("union plan results differ: %d vs %d", scan.Len(), idx.Len())
	}
}
