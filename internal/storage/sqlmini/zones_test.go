package sqlmini

import (
	"fmt"
	"reflect"
	"testing"
)

// zoneRows generates n feature-like rows whose dv1 grows monotonically,
// so consecutive heap pages cover narrow, disjoint dv1 ranges — the
// shape zone maps prune best (arrival-ordered sensor features).
func zoneRows(n int) [][]Value {
	rows := make([][]Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []Value{
			Real(float64(i)),            // dv1: monotone
			Real(float64(i%97) - 48),    // dv2: oscillating
			Int(int64(i % 13)),          // dt
			Text(fmt.Sprintf("s%d", i)), // tag: TEXT, no zones
		}
	}
	return rows
}

// openZoneDB builds an in-memory table with zone maps populated.
func openZoneDB(t *testing.T, opts Options, n int) *DB {
	t.Helper()
	db := OpenMemory(opts)
	mustExec(t, db, "CREATE TABLE f (dv1 REAL, dv2 REAL, dt INT, tag TEXT)")
	st, err := db.Prepare("INSERT INTO f VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecBatch(zoneRows(n)); err != nil {
		t.Fatal(err)
	}
	return db
}

// zoneQueries cover the pruning-relevant shapes: selective and
// unselective ranges, equality, multi-column conjunctions, a predicate
// no zone covers (TEXT), and a statically wide one.
var zoneQueries = []struct {
	sql  string
	args []Value
}{
	{"SELECT * FROM f WHERE dv1 < 50", nil},
	{"SELECT * FROM f WHERE dv1 >= ? AND dv1 < ?", []Value{Real(300), Real(350)}},
	{"SELECT * FROM f WHERE dv1 = 123", nil},
	{"SELECT * FROM f WHERE dv1 < 100 AND dv2 > 40", nil},
	{"SELECT dv1, dt FROM f WHERE dt <= 1 AND dv1 > 4900", nil},
	{"SELECT * FROM f WHERE tag = 's7'", nil},
	{"SELECT * FROM f WHERE dv2 <= 1000", nil},
	{"SELECT * FROM f WHERE dv1 > 100000", nil},
}

// TestZonePruningIdentity compares every query on a pruning database
// against a twin with zone maps disabled, under both plan modes and a
// fused UNION: results must be byte-identical (pruning is advisory).
func TestZonePruningIdentity(t *testing.T) {
	pruned := openZoneDB(t, Options{}, 5000)
	plain := openZoneDB(t, Options{DisableZoneMaps: true}, 5000)
	defer pruned.Close()
	defer plain.Close()
	// Deletes leave zone summaries stale-wide; identity must survive them.
	for _, db := range []*DB{pruned, plain} {
		if _, err := db.Exec("DELETE FROM f WHERE dv1 >= 200 AND dv1 < 210"); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range zoneQueries {
		for _, mode := range []PlanMode{PlanAuto, PlanForceScan} {
			a, err := pruned.QueryMode(mode, q.sql, q.args...)
			if err != nil {
				t.Fatalf("%s: %v", q.sql, err)
			}
			b, err := plain.QueryMode(mode, q.sql, q.args...)
			if err != nil {
				t.Fatalf("%s: %v", q.sql, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("mode %v %s: pruned %d rows, unpruned %d rows", mode, q.sql, a.Len(), b.Len())
			}
		}
	}
	union := "SELECT * FROM f WHERE dv1 < 40 UNION SELECT * FROM f WHERE dv1 >= 4980 UNION SELECT * FROM f WHERE dv1 = 2500"
	a, err := pruned.QueryMode(PlanForceScan, union)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.QueryMode(PlanForceScan, union)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fused union: pruned %d rows, unpruned %d rows", a.Len(), b.Len())
	}
	if pruned.ZoneSkippedPages() == 0 {
		t.Fatal("identity suite never exercised pruning")
	}
	if plain.ZoneSkippedPages() != 0 {
		t.Fatal("DisableZoneMaps still pruned pages")
	}
}

// TestZonePruningSkipsPages checks effectiveness: a selective range on
// the monotone column must skip most pages and read fewer pages than a
// full scan, while returning exactly the matching rows.
func TestZonePruningSkipsPages(t *testing.T) {
	db := openZoneDB(t, Options{}, 5000)
	defer db.Close()
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	rows, err := db.QueryMode(PlanForceScan, "SELECT * FROM f WHERE dv1 < 50")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 50 {
		t.Fatalf("got %d rows, want 50", rows.Len())
	}
	after := db.CacheStats()
	skipped := db.ZoneSkippedPages()
	if skipped == 0 {
		t.Fatal("no pages skipped by zone map")
	}
	heapPages, err := db.TableSizeBytes("f")
	if err != nil {
		t.Fatal(err)
	}
	nPages := uint64(heapPages) / 4096
	readPages := after.Reads - before.Reads
	if readPages+skipped < nPages {
		t.Fatalf("accounting: read %d + skipped %d < %d heap pages", readPages, skipped, nPages)
	}
	if readPages >= nPages {
		t.Fatalf("pruned cold scan still read %d of %d pages", readPages, nPages)
	}
}

// TestZoneExplain checks the EXPLAIN annotations for the new I/O layer.
func TestZoneExplain(t *testing.T) {
	db := openZoneDB(t, Options{ReadAhead: 8}, 1000)
	defer db.Close()
	rows, err := db.QueryMode(PlanForceScan, "EXPLAIN SELECT * FROM f WHERE dv1 < 50")
	if err != nil {
		t.Fatal(err)
	}
	plan := rows.Data[0][0].S
	want := "SEQ SCAN f ZONEMAP READAHEAD 8"
	if len(plan) < len(want) || plan[:len(want)] != want {
		t.Fatalf("plan = %q, want prefix %q", plan, want)
	}
	// A TEXT-only predicate has no estimable ranges: no ZONEMAP marker.
	rows, err = db.QueryMode(PlanForceScan, "EXPLAIN SELECT * FROM f WHERE tag = 's1'")
	if err != nil {
		t.Fatal(err)
	}
	plan = rows.Data[0][0].S
	want = "SEQ SCAN f READAHEAD 8"
	if len(plan) < len(want) || plan[:len(want)] != want {
		t.Fatalf("plan = %q, want prefix %q", plan, want)
	}
}

// TestZonePersistence checks zone maps survive a close/reopen through the
// catalog, and keep pruning afterwards.
func TestZonePersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE f (dv1 REAL, dv2 REAL, dt INT, tag TEXT)")
	st, err := db.Prepare("INSERT INTO f VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecBatch(zoneRows(3000)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows, err := db.QueryMode(PlanForceScan, "SELECT * FROM f WHERE dv1 < 30")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 30 {
		t.Fatalf("got %d rows, want 30", rows.Len())
	}
	if db.ZoneSkippedPages() == 0 {
		t.Fatal("persisted zone maps did not prune after reopen")
	}
	// Zones keep extending for new batches after reopen.
	st2, err := db.Prepare("INSERT INTO f VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	extra := [][]Value{{Real(1e6), Real(0), Int(0), Text("x")}}
	if _, err := st2.ExecBatch(extra); err != nil {
		t.Fatal(err)
	}
	rows, err = db.QueryMode(PlanForceScan, "SELECT * FROM f WHERE dv1 >= 1000000")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("got %d rows, want 1", rows.Len())
	}
}

// TestZoneAbortRestores checks AbortBatch rolls zone maps back to the
// persisted snapshot, so summaries never cover discarded rows and later
// queries stay exact.
func TestZoneAbortRestores(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE f (dv1 REAL, dv2 REAL, dt INT, tag TEXT)")
	st, err := db.Prepare("INSERT INTO f VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecBatch(zoneRows(1000)); err != nil {
		t.Fatal(err)
	}

	db.BeginBatch()
	if _, err := st.ExecBatch([][]Value{{Real(-5e6), Real(0), Int(0), Text("aborted")}}); err != nil {
		t.Fatal(err)
	}
	if err := db.AbortBatch(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []PlanMode{PlanAuto, PlanForceScan} {
		rows, err := db.QueryMode(mode, "SELECT * FROM f WHERE dv1 <= -1000000")
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 0 {
			t.Fatalf("aborted row visible under mode %v", mode)
		}
	}
	// The surviving data still answers exactly after the rollback.
	rows, err := db.QueryMode(PlanForceScan, "SELECT * FROM f WHERE dv1 < 25")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 25 {
		t.Fatalf("got %d rows, want 25", rows.Len())
	}
}

// TestZonesNotCreatedForPreexistingRows pins the upgrade rule: a table
// whose rows predate zone tracking (no catalog entry) must never grow
// narrow summaries from later inserts, or pruning would drop the old
// rows.
func TestZonesNotCreatedForPreexistingRows(t *testing.T) {
	db := openZoneDB(t, Options{}, 500)
	defer db.Close()
	// Simulate a database upgraded from a pre-zone-map version: the
	// catalog has data but no zone entries.
	db.mu.Lock()
	db.catalog.Zones = nil
	db.mu.Unlock()
	// New inserts on the non-fresh table must not start tracking.
	if _, err := db.Exec("INSERT INTO f VALUES (9e5, 0, 0, 'new')"); err != nil {
		t.Fatal(err)
	}
	db.mu.RLock()
	_, tracked := db.catalog.Zones["f"]
	db.mu.RUnlock()
	if tracked {
		t.Fatal("zone tracking started on a table with unsummarized rows")
	}
	// And scans stay full (correct) for the old rows.
	rows, err := db.QueryMode(PlanForceScan, "SELECT * FROM f WHERE dv1 < 10")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 10 {
		t.Fatalf("got %d rows, want 10", rows.Len())
	}
	if db.ZoneSkippedPages() != 0 {
		t.Fatal("pruning ran without zone entries")
	}
}
