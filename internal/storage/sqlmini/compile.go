package sqlmini

import "fmt"

// Predicate compilation for the fused execution path. A fused scan unit
// evaluates every member branch's residual predicate against every
// visited row; walking the expression tree through evalExpr per row per
// branch dominates query time on the paper's 9-branch search. Because a
// unit executes with its arguments already bound, each branch's filter
// and projection compile once per execution into a closure chain:
// parameter references and constant subtrees (the search predicates'
// `?V + 2ε`-style arithmetic) fold to values at compile time, column
// references become direct row-slot reads, and the per-row cost reduces
// to the comparisons themselves.
//
// Compilation is semantics-preserving by construction — every closure
// mirrors the corresponding evalExpr case, including error behavior — so
// fused results stay byte-identical to the interpreted branch-at-a-time
// path, which TestFusedUnionIdentity and the property suite pin.

// valFn evaluates a compiled expression against the current row.
type valFn func(row []Value) (Value, error)

// compileVal compiles e into a closure. The schema must already have
// passed validateExpr; args are the statement arguments the closure is
// specialized to.
func compileVal(e expr, schema *tableSchema, args []Value) valFn {
	// Row-independent subtrees evaluate once, now. This folds literal
	// arithmetic and parameter references into plain values.
	if isConst(e) {
		v, err := evalExpr(e, &binding{args: args})
		return func([]Value) (Value, error) { return v, err }
	}
	switch x := e.(type) {
	case columnRef:
		i := schema.colIndex(x.name)
		if i < 0 {
			err := fmt.Errorf("sqlmini: unknown column %s in table %s", x.name, schema.Name)
			return func([]Value) (Value, error) { return Value{}, err }
		}
		return func(row []Value) (Value, error) { return row[i], nil }
	case unary:
		inner := compileVal(x.x, schema, args)
		switch x.op {
		case "-":
			return func(row []Value) (Value, error) {
				v, err := inner(row)
				if err != nil {
					return Value{}, err
				}
				switch v.T {
				case IntType:
					return Int(-v.I), nil
				case RealType:
					return Real(-v.R), nil
				default:
					return Value{}, fmt.Errorf("sqlmini: unary minus on TEXT")
				}
			}
		case "NOT":
			return func(row []Value) (Value, error) {
				v, err := inner(row)
				if err != nil {
					return Value{}, err
				}
				return Bool(!v.IsTrue()), nil
			}
		}
	case binExpr:
		switch x.op {
		case "AND":
			l, r := compileVal(x.l, schema, args), compileVal(x.r, schema, args)
			return func(row []Value) (Value, error) {
				lv, err := l(row)
				if err != nil {
					return Value{}, err
				}
				if !lv.IsTrue() {
					return Bool(false), nil
				}
				rv, err := r(row)
				if err != nil {
					return Value{}, err
				}
				return Bool(rv.IsTrue()), nil
			}
		case "OR":
			l, r := compileVal(x.l, schema, args), compileVal(x.r, schema, args)
			return func(row []Value) (Value, error) {
				lv, err := l(row)
				if err != nil {
					return Value{}, err
				}
				if lv.IsTrue() {
					return Bool(true), nil
				}
				rv, err := r(row)
				if err != nil {
					return Value{}, err
				}
				return Bool(rv.IsTrue()), nil
			}
		case "=", "!=", "<", "<=", ">", ">=":
			l, r := compileVal(x.l, schema, args), compileVal(x.r, schema, args)
			op := x.op
			return func(row []Value) (Value, error) {
				lv, err := l(row)
				if err != nil {
					return Value{}, err
				}
				rv, err := r(row)
				if err != nil {
					return Value{}, err
				}
				c, err := Compare(lv, rv)
				if err != nil {
					return Value{}, err
				}
				switch op {
				case "=":
					return Bool(c == 0), nil
				case "!=":
					return Bool(c != 0), nil
				case "<":
					return Bool(c < 0), nil
				case "<=":
					return Bool(c <= 0), nil
				case ">":
					return Bool(c > 0), nil
				default:
					return Bool(c >= 0), nil
				}
			}
		case "+", "-", "*", "/":
			l, r := compileVal(x.l, schema, args), compileVal(x.r, schema, args)
			op := x.op
			return func(row []Value) (Value, error) {
				lv, err := l(row)
				if err != nil {
					return Value{}, err
				}
				rv, err := r(row)
				if err != nil {
					return Value{}, err
				}
				return arith(op, lv, rv)
			}
		}
	}
	// Anything unexpected (aggregates are rejected upstream) falls back to
	// the interpreter, preserving its exact error.
	b := &binding{schema: schema, args: args}
	return func(row []Value) (Value, error) {
		b.row = row
		return evalExpr(e, b)
	}
}

// boolFn evaluates a compiled boolean term against the current row.
type boolFn func(row []Value) (bool, error)

// compilePred compiles a predicate; nil input means "always true" and
// compiles to nil for a cheap caller-side check. The top-level AND chain
// flattens into a conjunct loop with the interpreter's left-to-right
// short-circuit order.
func compilePred(e expr, schema *tableSchema, args []Value) boolFn {
	if e == nil {
		return nil
	}
	conjs := splitConjuncts(e)
	fns := make([]boolFn, len(conjs))
	for i, c := range conjs {
		fns[i] = compileBool(c, schema, args)
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(row []Value) (bool, error) {
		for _, f := range fns {
			ok, err := f(row)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
}

// compileBool compiles one boolean term. Comparisons of a column against
// a row-independent operand — the shape of every search-predicate
// conjunct — specialize to direct reads of the row slot with the operand
// folded to a typed constant; everything else goes through compileVal.
func compileBool(e expr, schema *tableSchema, args []Value) boolFn {
	if isConst(e) {
		v, err := evalExpr(e, &binding{args: args})
		ok := err == nil && v.IsTrue()
		return func([]Value) (bool, error) { return ok, err }
	}
	if x, ok := e.(binExpr); ok {
		switch x.op {
		case "=", "!=", "<", "<=", ">", ">=":
			if f := compileCmp(x, schema, args); f != nil {
				return f
			}
		}
	}
	f := compileVal(e, schema, args)
	return func(row []Value) (bool, error) {
		v, err := f(row)
		if err != nil {
			return false, err
		}
		return v.IsTrue(), nil
	}
}

// opOK maps a comparison operator to its acceptance of cmp < 0, == 0, > 0.
func opOK(op string) (lt, eq, gt bool) {
	switch op {
	case "=":
		return false, true, false
	case "!=":
		return true, false, true
	case "<":
		return true, false, false
	case "<=":
		return true, true, false
	case ">":
		return false, false, true
	default: // ">="
		return false, true, true
	}
}

// compileCmp specializes `col OP const` (either operand order), or
// returns nil when the shape doesn't match. The constant folds now; the
// per-row work is one slot read and one typed comparison, with the same
// mixed INT/REAL widening and TEXT rules as Compare.
func compileCmp(x binExpr, schema *tableSchema, args []Value) boolFn {
	col, constSide := x.l, x.r
	op := x.op
	cr, ok := col.(columnRef)
	if !ok || !isConst(constSide) {
		cr, ok = constSide.(columnRef)
		if !ok || !isConst(col) {
			return nil
		}
		col, constSide = constSide, col
		// Flip the operator: c OP col  ≡  col flip(OP) c.
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	i := schema.colIndex(cr.name)
	if i < 0 {
		return nil
	}
	c, err := evalExpr(constSide, &binding{args: args})
	if err != nil {
		return func([]Value) (bool, error) { return false, err }
	}
	lt, eq, gt := opOK(op)
	colType := schema.Cols[i].Type
	switch {
	case colType == TextType && c.T == TextType:
		cs := c.S
		return func(row []Value) (bool, error) {
			s := row[i].S
			if s < cs {
				return lt, nil
			}
			if s > cs {
				return gt, nil
			}
			return eq, nil
		}
	case colType == TextType || c.T == TextType:
		// Mixed TEXT/numeric errors at evaluation time, like Compare.
		cmpErr := fmt.Errorf("sqlmini: cannot compare %v with %v", colType, c.T)
		return func([]Value) (bool, error) { return false, cmpErr }
	case colType == IntType && c.T == IntType:
		ci := c.I
		return func(row []Value) (bool, error) {
			v := row[i].I
			if v < ci {
				return lt, nil
			}
			if v > ci {
				return gt, nil
			}
			return eq, nil
		}
	default:
		cf, _ := c.AsReal()
		if colType == IntType {
			return func(row []Value) (bool, error) {
				v := float64(row[i].I)
				if v < cf {
					return lt, nil
				}
				if v > cf {
					return gt, nil
				}
				return eq, nil
			}
		}
		return func(row []Value) (bool, error) {
			v := row[i].R
			if v < cf {
				return lt, nil
			}
			if v > cf {
				return gt, nil
			}
			return eq, nil
		}
	}
}
