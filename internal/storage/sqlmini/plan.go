package sqlmini

import (
	"fmt"
	"math"
	"strings"

	"segdiff/internal/storage/keyenc"
)

// PlanMode controls access path selection, standing in for the paper's
// forced choice between "sequential scan" and "execution using indexes".
type PlanMode int8

// Plan modes.
const (
	// PlanAuto uses an index when a usable range bound exists, otherwise a
	// sequential scan (mirroring MySQL's optimizer on these queries).
	PlanAuto PlanMode = iota
	// PlanForceScan always scans the heap.
	PlanForceScan
	// PlanForceIndex always goes through the best-matching index, even if
	// the whole index must be walked.
	PlanForceIndex
)

// scanPlan is the chosen access path for a SELECT or DELETE.
type scanPlan struct {
	schema *tableSchema
	index  *indexSchema // nil = sequential scan
	lo, hi []byte       // index scan bounds; nil = open end
	filter expr         // full WHERE, applied as residual filter
	// keyFilter is the AND of WHERE conjuncts that reference only indexed
	// columns. An index scan evaluates it against values decoded from the
	// B+tree key and skips the heap fetch for non-matching entries — on
	// the search workload most scanned entries fail the value predicate,
	// so this avoids the dominant per-row cost.
	keyFilter expr
	empty     bool          // statically impossible predicate (e.g. int col = 1.5)
	detail    string        // human-readable bound description for EXPLAIN
	est       *planEstimate // statistics-based estimates; nil without stats
	// ranges are the per-column numeric ranges the WHERE conjuncts imply
	// (conjunctRanges): inputs to both histogram costing and zone-map page
	// pruning on the sequential path.
	ranges []colRange
	// EXPLAIN annotations for the I/O layer: zonemap reports that a
	// sequential scan of this plan can prune pages through the table's
	// zone maps; readahead is the configured prefetch distance.
	zonemap   bool
	readahead int
	// trace, when non-nil, accumulates runtime row counters for EXPLAIN
	// ANALYZE (see analyze.go). Plans are per-execution, so attaching a
	// trace never leaks between queries; nil on every other path.
	trace *scanTrace
}

// planEstimate is the statistics-based costing of one access path,
// computed from the catalog's table statistics (stats.go) when available.
type planEstimate struct {
	rows    int64   // table row count at plan time
	scanSel float64 // est. fraction of entries/rows visited by the scan
	outSel  float64 // est. fraction of rows passing all estimable conjuncts
	cost    float64 // abstract page-oriented cost
}

func (e *planEstimate) String() string {
	return fmt.Sprintf("EST sel=%.4f rows~%d cost=%.1f",
		e.scanSel, int64(e.outSel*float64(e.rows)+0.5), e.cost)
}

func (p *scanPlan) explain() string {
	var sb strings.Builder
	if p.empty {
		sb.WriteString("EMPTY RESULT")
	} else if p.index == nil {
		fmt.Fprintf(&sb, "SEQ SCAN %s", p.schema.Name)
		if p.zonemap {
			sb.WriteString(" ZONEMAP")
		}
	} else {
		fmt.Fprintf(&sb, "INDEX SCAN %s ON %s %s", p.index.Name, p.schema.Name, p.detail)
	}
	if p.readahead > 0 {
		fmt.Fprintf(&sb, " READAHEAD %d", p.readahead)
	}
	if p.filter != nil {
		fmt.Fprintf(&sb, " FILTER %s", p.filter.String())
	}
	if p.est != nil && !p.empty {
		sb.WriteByte(' ')
		sb.WriteString(p.est.String())
	}
	return sb.String()
}

// Cost model constants. Costs are in abstract page units: a sequential
// page read costs 1, visiting one row or index entry costs cpuPerRow, a
// heap fetch through the index costs heapFetchCost (cheaper than a random
// page read because consecutive matches cluster), and an index descent
// costs descentCost. The absolute values only matter relative to each
// other; they were calibrated on the search workload so the seq/index
// crossover tracks the paper's Figures 17–24.
const (
	cpuPerRow     = 0.01
	heapFetchCost = 0.5
	descentCost   = 3.0
)

// buildPlan selects the access path for (table, where) under mode. The
// statement arguments are available, so placeholder bounds participate in
// planning (plans are built per execution). When the catalog carries
// statistics for the table, PlanAuto costs the sequential scan against the
// best index scan and picks the cheaper one; without statistics it falls
// back to the structural heuristic (use an index whenever a range bound
// exists).
//
// locks: db.mu (any)
func buildPlan(db *DB, schema *tableSchema, where expr, args []Value, mode PlanMode) (*scanPlan, error) {
	c := db.catalog
	plan := &scanPlan{schema: schema, filter: where}
	conjs := splitConjuncts(where)
	b := &binding{args: args}

	ts := c.Stats[schema.Name]
	var tableRows int64
	var heapPages float64
	if th := db.tables[schema.Name]; th != nil {
		tableRows = int64(th.h.Len())
		heapPages = float64(th.pg.NumPages())
	}
	ranges, err := conjunctRanges(schema, conjs, b)
	if err != nil {
		return nil, err
	}
	plan.ranges = ranges
	plan.zonemap = !db.opts.DisableZoneMaps && len(ranges) > 0 && c.Zones[schema.Name] != nil
	plan.readahead = db.opts.ReadAhead
	// outSel: product of per-column histogram selectivities over every
	// estimable conjunct (independence assumed).
	outSel := combinedSel(ts, ranges, nil)

	seqEst := func() *planEstimate {
		if ts == nil || tableRows == 0 {
			return nil
		}
		return &planEstimate{
			rows:    tableRows,
			scanSel: 1,
			outSel:  outSel,
			cost:    heapPages + cpuPerRow*float64(tableRows),
		}
	}
	if mode == PlanForceScan {
		plan.est = seqEst()
		return plan, nil
	}

	type cand struct {
		ix     *indexSchema
		lo, hi []byte
		score  int
		empty  bool
		detail string
		est    *planEstimate
	}
	mkEst := func(ix *indexSchema, m matched) *planEstimate {
		if ts == nil || tableRows == 0 {
			return nil
		}
		scanSel := boundSel(ts, m.selCols)
		if scanSel < 0 {
			return nil
		}
		// Heap fetches: entries surviving the covered-conjunct prefilter.
		fetchSel := combinedSel(ts, ranges, ix)
		idxPages := float64(0)
		if ih := db.indexes[ix.Name]; ih != nil {
			idxPages = float64(ih.pg.NumPages())
		}
		return &planEstimate{
			rows:    tableRows,
			scanSel: scanSel,
			outSel:  outSel,
			cost: descentCost + scanSel*idxPages +
				cpuPerRow*scanSel*float64(tableRows) +
				heapFetchCost*fetchSel*float64(tableRows),
		}
	}
	var best *cand
	for _, ix := range c.indexesOn(schema.Name) {
		cd, err := matchIndex(schema, ix, conjs, b)
		if err != nil {
			return nil, err
		}
		c := cand{ix: ix, lo: cd.lo, hi: cd.hi, score: cd.score, empty: cd.empty, detail: cd.detail}
		if !c.empty {
			c.est = mkEst(ix, cd)
		}
		better := best == nil || c.score > best.score
		if !better && best != nil && c.score == best.score && c.est != nil && best.est != nil {
			better = c.est.cost < best.est.cost
		}
		if better {
			best = &c
		}
	}
	switch mode {
	case PlanForceIndex:
		if best == nil {
			return nil, fmt.Errorf("sqlmini: no index on table %s to force", schema.Name)
		}
	default: // PlanAuto
		if best == nil || best.score == 0 {
			plan.est = seqEst()
			return plan, nil
		}
		// Statistics-driven crossover: with estimates on both sides, pick
		// the cheaper path instead of always preferring the index.
		if se := seqEst(); se != nil && best.est != nil && !best.empty && se.cost < best.est.cost {
			plan.est = se
			return plan, nil
		}
	}
	plan.index = best.ix
	plan.lo, plan.hi = best.lo, best.hi
	plan.empty = best.empty
	plan.detail = best.detail
	plan.est = best.est
	if !plan.empty {
		plan.keyFilter = coveredFilter(conjs, best.ix)
	}
	return plan, nil
}

// colRange is the numeric range a set of conjuncts pins one column to.
type colRange struct {
	col    string
	lo, hi float64 // ±Inf = open end
}

// conjunctRanges extracts, per referenced column, the intersected numeric
// range implied by the simple comparison conjuncts (col OP const). Only
// estimable conjuncts contribute; anything else (the line-query slope
// expression, TEXT comparisons) is ignored.
func conjunctRanges(schema *tableSchema, conjs []expr, b *binding) ([]colRange, error) {
	byCol := map[string]int{}
	var out []colRange
	for _, cj := range conjs {
		bx, ok := cj.(binExpr)
		if !ok {
			continue
		}
		var col, op string
		var rhs expr
		switch {
		case isColConst(bx.l, bx.r):
			col, op, rhs = bx.l.(columnRef).name, bx.op, bx.r
		case isColConst(bx.r, bx.l):
			col, op, rhs = bx.r.(columnRef).name, flipOp(bx.op), bx.l
		default:
			continue
		}
		switch op {
		case "=", "<", "<=", ">", ">=":
		default:
			continue
		}
		v, err := evalExpr(rhs, b)
		if err != nil {
			return nil, err
		}
		f, err := v.AsReal()
		if err != nil {
			continue // TEXT comparison: not estimable
		}
		i, ok := byCol[col]
		if !ok {
			i = len(out)
			byCol[col] = i
			out = append(out, colRange{col: col, lo: math.Inf(-1), hi: math.Inf(1)})
		}
		switch op {
		case "=":
			out[i].lo = math.Max(out[i].lo, f)
			out[i].hi = math.Min(out[i].hi, f)
		case "<", "<=":
			out[i].hi = math.Min(out[i].hi, f)
		default:
			out[i].lo = math.Max(out[i].lo, f)
		}
	}
	_ = schema
	return out, nil
}

func isColConst(l, r expr) bool {
	_, isCol := l.(columnRef)
	return isCol && isConst(r)
}

// combinedSel multiplies the histogram selectivities of the given column
// ranges. When onlyIx is non-nil, only columns covered by that index
// contribute (the heap-fetch prefilter estimate); columns without
// statistics contribute factor 1 (conservative).
func combinedSel(ts *tableStats, ranges []colRange, onlyIx *indexSchema) float64 {
	sel := 1.0
	for _, r := range ranges {
		if onlyIx != nil {
			covered := false
			for _, c := range onlyIx.Cols {
				if c == r.col {
					covered = true
					break
				}
			}
			if !covered {
				continue
			}
		}
		if s := ts.colSel(r.col, r.lo, r.hi); s >= 0 {
			sel *= s
		}
	}
	return sel
}

// boundSel estimates the fraction of index entries inside the scan bounds
// from the histograms of the bound columns, or -1 when the decisive
// column has no statistics.
func boundSel(ts *tableStats, specs []colRange) float64 {
	if len(specs) == 0 {
		return 1 // whole-index scan
	}
	sel := 1.0
	known := false
	for _, sp := range specs {
		s := ts.colSel(sp.col, sp.lo, sp.hi)
		if s < 0 {
			continue
		}
		known = true
		sel *= s
	}
	if !known {
		return -1
	}
	return sel
}

// coveredFilter returns the AND of the conjuncts whose column references
// are all covered by ix, or nil if none are.
func coveredFilter(conjs []expr, ix *indexSchema) expr {
	covered := make(map[string]bool, len(ix.Cols))
	for _, c := range ix.Cols {
		covered[c] = true
	}
	var kf expr
	for _, cj := range conjs {
		ok := true
		walkExpr(cj, func(e expr) {
			if c, isCol := e.(columnRef); isCol && !covered[c.name] {
				ok = false
			}
		})
		if !ok {
			continue
		}
		if kf == nil {
			kf = cj
		} else {
			kf = binExpr{op: "AND", l: kf, r: cj}
		}
	}
	return kf
}

// rangeBound is one side of a column range.
type rangeBound struct {
	v         Value
	inclusive bool
	set       bool
}

type matched struct {
	lo, hi []byte
	score  int
	empty  bool
	detail string
	// selCols are the numeric ranges the scan bounds pin index columns to,
	// used for histogram-based selectivity estimation of the scan itself.
	selCols []colRange
}

// noteSelCol appends a selectivity range for one bound column when the
// bound value is numeric (TEXT bounds are not estimable).
func (m *matched) noteSelCol(col string, lo, hi Value, loSet, hiSet bool) {
	r := colRange{col: col, lo: math.Inf(-1), hi: math.Inf(1)}
	if loSet {
		if f, err := lo.AsReal(); err == nil {
			r.lo = f
		} else {
			return
		}
	}
	if hiSet {
		if f, err := hi.AsReal(); err == nil {
			r.hi = f
		} else {
			return
		}
	}
	m.selCols = append(m.selCols, r)
}

// matchIndex derives scan bounds for one index: a run of equality
// conjuncts over the index's column prefix, optionally terminated by range
// conjuncts on the next column.
func matchIndex(schema *tableSchema, ix *indexSchema, conjs []expr, b *binding) (matched, error) {
	var m matched
	var eqVals []keyenc.Value
	var details []string

	for pos, colName := range ix.Cols {
		ci := schema.colIndex(colName)
		if ci < 0 {
			return m, fmt.Errorf("sqlmini: index %s references unknown column %s", ix.Name, colName)
		}
		colType := schema.Cols[ci].Type

		var eq rangeBound
		var lo, hi rangeBound
		for _, cj := range conjs {
			col, op, rhs, ok := asColumnCompare(cj, colName)
			if !ok {
				continue
			}
			_ = col
			v, err := evalExpr(rhs, b)
			if err != nil {
				return m, err
			}
			switch op {
			case "=":
				if !eq.set {
					eq = rangeBound{v: v, inclusive: true, set: true}
				}
			case ">", ">=":
				nb := rangeBound{v: v, inclusive: op == ">=", set: true}
				if tighterLo(nb, lo) {
					lo = nb
				}
			case "<", "<=":
				nb := rangeBound{v: v, inclusive: op == "<=", set: true}
				if tighterHi(nb, hi) {
					hi = nb
				}
			}
		}

		if eq.set {
			kv, exact, err := encodeBoundValue(colType, eq.v)
			if err != nil {
				return m, err
			}
			if !exact {
				// e.g. int_col = 1.5: statically empty.
				return matched{empty: true, score: math.MaxInt32, detail: "impossible equality"}, nil
			}
			eqVals = append(eqVals, kv)
			m.score += 2
			m.noteSelCol(colName, eq.v, eq.v, true, true)
			details = append(details, fmt.Sprintf("%s=%s", colName, eq.v))
			continue
		}

		// Range bounds terminate the prefix.
		prefix := keyenc.Encode(eqVals...)
		m.lo, m.hi = prefix, nil
		if len(eqVals) > 0 {
			m.hi = upperBound(prefix)
		}
		if lo.set {
			kv, err := encodeLoBound(colType, lo)
			if err != nil {
				return m, err
			}
			m.lo = append(append([]byte{}, prefix...), kv...)
			m.score++
			details = append(details, fmt.Sprintf("%s>~%s", colName, lo.v))
		}
		if hi.set {
			kv, err := encodeHiBound(colType, hi)
			if err != nil {
				return m, err
			}
			m.hi = append(append([]byte{}, prefix...), kv...)
			m.score++
			details = append(details, fmt.Sprintf("%s<~%s", colName, hi.v))
		}
		if lo.set || hi.set {
			m.noteSelCol(colName, lo.v, hi.v, lo.set, hi.set)
		}
		_ = pos
		m.detail = "BOUNDS(" + strings.Join(details, ", ") + ")"
		return m, nil
	}

	// Every index column had an equality.
	prefix := keyenc.Encode(eqVals...)
	m.lo = prefix
	m.hi = upperBound(prefix)
	if len(eqVals) == 0 {
		m.lo, m.hi = nil, nil
	}
	m.detail = "BOUNDS(" + strings.Join(details, ", ") + ")"
	return m, nil
}

// asColumnCompare matches conjuncts of the form <col> OP <const-expr> or
// <const-expr> OP <col> (flipping the operator), for the given column.
func asColumnCompare(e expr, col string) (string, string, expr, bool) {
	bx, ok := e.(binExpr)
	if !ok {
		return "", "", nil, false
	}
	switch bx.op {
	case "=", "<", "<=", ">", ">=":
	default:
		return "", "", nil, false
	}
	if cr, ok := bx.l.(columnRef); ok && cr.name == col && isConst(bx.r) {
		return col, bx.op, bx.r, true
	}
	if cr, ok := bx.r.(columnRef); ok && cr.name == col && isConst(bx.l) {
		return col, flipOp(bx.op), bx.l, true
	}
	return "", "", nil, false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// tighterLo reports whether a is a tighter lower bound than b.
func tighterLo(a, b rangeBound) bool {
	if !b.set {
		return true
	}
	c, err := Compare(a.v, b.v)
	if err != nil {
		return false
	}
	return c > 0 || (c == 0 && !a.inclusive && b.inclusive)
}

func tighterHi(a, b rangeBound) bool {
	if !b.set {
		return true
	}
	c, err := Compare(a.v, b.v)
	if err != nil {
		return false
	}
	return c < 0 || (c == 0 && !a.inclusive && b.inclusive)
}

// encodeBoundValue encodes v for a column of type t. exact is false when
// the value cannot be represented exactly in the column's type (an INT
// column with a fractional bound).
func encodeBoundValue(t ColType, v Value) (keyenc.Value, bool, error) {
	switch t {
	case IntType:
		switch v.T {
		case IntType:
			return keyenc.IntValue(v.I), true, nil
		case RealType:
			if v.R == math.Trunc(v.R) && !math.IsInf(v.R, 0) {
				return keyenc.IntValue(int64(v.R)), true, nil
			}
			return keyenc.Value{}, false, nil
		}
	case RealType:
		f, err := v.AsReal()
		if err != nil {
			return keyenc.Value{}, false, err
		}
		return keyenc.FloatValue(f), true, nil
	case TextType:
		if v.T == TextType {
			return keyenc.StringValue(v.S), true, nil
		}
	}
	return keyenc.Value{}, false, fmt.Errorf("sqlmini: cannot bound %v column with %v value", t, v.T)
}

// encodeLoBound returns the encoded scan start for "col > / >= bound".
func encodeLoBound(t ColType, b rangeBound) ([]byte, error) {
	kv, exact, err := encodeBoundValue(t, adjustedLo(t, b))
	if err != nil {
		return nil, err
	}
	enc := keyenc.Encode(kv)
	if exact && !b.inclusive && !(t == IntType && b.v.T == RealType) {
		// col > v: skip all keys whose element equals v.
		return upperBound(enc), nil
	}
	return enc, nil
}

// adjustedLo rounds fractional bounds on INT columns up: col >= 1.5 means
// col >= 2.
func adjustedLo(t ColType, b rangeBound) Value {
	if t == IntType && b.v.T == RealType && b.v.R != math.Trunc(b.v.R) {
		return Int(int64(math.Ceil(b.v.R)))
	}
	return b.v
}

// encodeHiBound returns the encoded scan end for "col < / <= bound"
// (inclusive scan semantics: keys > the returned bound are excluded).
func encodeHiBound(t ColType, b rangeBound) ([]byte, error) {
	v := b.v
	inclusive := b.inclusive
	if t == IntType && v.T == RealType && v.R != math.Trunc(v.R) {
		// col <= 1.5 and col < 1.5 both mean col <= 1.
		v = Int(int64(math.Floor(v.R)))
		inclusive = true
	}
	kv, _, err := encodeBoundValue(t, v)
	if err != nil {
		return nil, err
	}
	enc := keyenc.Encode(kv)
	if inclusive {
		// Include all keys whose element equals v (they carry suffixes).
		return upperBound(enc), nil
	}
	// col < v: the encoded prefix itself is less than every key with
	// element v, so it serves as an inclusive upper bound excluding them.
	return enc, nil
}

// upperBound returns a key that is >= every key having enc as a prefix and
// < every key with a greater prefix.
func upperBound(enc []byte) []byte {
	out := make([]byte, len(enc)+1)
	copy(out, enc)
	out[len(enc)] = 0xFF
	return out
}
