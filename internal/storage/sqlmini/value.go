// Package sqlmini is a small embedded relational engine: the substrate
// standing in for the MySQL instance of the paper's experiments. It
// supports exactly the surface SegDiff and Exh need —
//
//	CREATE TABLE t (col INT|REAL|TEXT, ...)
//	CREATE INDEX i ON t (col, ...)
//	INSERT INTO t VALUES (?, ...)
//	SELECT expr, ... FROM t [WHERE expr] [ORDER BY col [ASC|DESC], ...] [LIMIT n]
//	SELECT COUNT(*)|MIN|MAX|SUM|AVG(expr), ... FROM t [WHERE expr]
//	DELETE FROM t [WHERE expr]
//	EXPLAIN SELECT ...
//
// — on top of the heap/btree/pager/wal substrates: slotted-page heap
// tables, composite-key B+tree indexes chosen by a planner that turns
// WHERE prefixes into index range scans, buffer-pool caching with an
// explicit cold-cache hook, and batch-commit write-ahead logging with
// crash recovery.
package sqlmini

import (
	"fmt"
	"math"
	"strconv"
)

// ColType is a column type.
type ColType int8

// Column types.
const (
	IntType ColType = iota
	RealType
	TextType
)

func (t ColType) String() string {
	switch t {
	case IntType:
		return "INT"
	case RealType:
		return "REAL"
	case TextType:
		return "TEXT"
	default:
		return fmt.Sprintf("ColType(%d)", int8(t))
	}
}

// Value is a runtime SQL value. Exactly one of the fields selected by T is
// meaningful. There is no NULL: the engine's schemas are all NOT NULL.
type Value struct {
	T ColType
	I int64
	R float64
	S string
}

// Int, Real and Text construct values.
func Int(v int64) Value    { return Value{T: IntType, I: v} }
func Real(v float64) Value { return Value{T: RealType, R: v} }
func Text(v string) Value  { return Value{T: TextType, S: v} }
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsTrue interprets the value as a boolean (SQL-ish: nonzero numeric).
func (v Value) IsTrue() bool {
	switch v.T {
	case IntType:
		return v.I != 0
	case RealType:
		return v.R != 0
	default:
		return v.S != ""
	}
}

// AsReal converts a numeric value to float64.
func (v Value) AsReal() (float64, error) {
	switch v.T {
	case IntType:
		return float64(v.I), nil
	case RealType:
		return v.R, nil
	default:
		return 0, fmt.Errorf("sqlmini: TEXT value %q used as number", v.S)
	}
}

func (v Value) String() string {
	switch v.T {
	case IntType:
		return strconv.FormatInt(v.I, 10)
	case RealType:
		return strconv.FormatFloat(v.R, 'g', -1, 64)
	default:
		return v.S
	}
}

// Compare orders two values: numerics compare numerically (INT and REAL
// mix), TEXT compares lexicographically. Comparing TEXT with a numeric is
// an error.
func Compare(a, b Value) (int, error) {
	if a.T == TextType || b.T == TextType {
		if a.T != TextType || b.T != TextType {
			return 0, fmt.Errorf("sqlmini: cannot compare %v with %v", a.T, b.T)
		}
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		}
		return 0, nil
	}
	if a.T == IntType && b.T == IntType {
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	}
	af, _ := a.AsReal()
	bf, _ := b.AsReal()
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	}
	return 0, nil
}

// coerce converts v for storage into a column of type t.
func coerce(v Value, t ColType) (Value, error) {
	if v.T == t {
		return v, nil
	}
	switch {
	case t == RealType && v.T == IntType:
		return Real(float64(v.I)), nil
	case t == IntType && v.T == RealType:
		if v.R != math.Trunc(v.R) || math.IsInf(v.R, 0) || math.IsNaN(v.R) {
			return Value{}, fmt.Errorf("sqlmini: non-integral value %v for INT column", v.R)
		}
		return Int(int64(v.R)), nil
	default:
		return Value{}, fmt.Errorf("sqlmini: cannot store %v into %v column", v.T, t)
	}
}
