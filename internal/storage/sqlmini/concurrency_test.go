package sqlmini

// Tests for the engine's reader/writer locking discipline and the
// parallel UNION executor. All of these are meant to run under -race.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// fillUnionDB creates a table shaped like a feature table, an index per
// "corner", and n rows.
func fillUnionDB(t *testing.T, workers, n int) *DB {
	t.Helper()
	db := OpenMemory(Options{UnionWorkers: workers})
	mustExec := func(sql string, args ...Value) {
		t.Helper()
		if _, err := db.Exec(sql, args...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE f (dt1 INT, dv1 REAL, dt2 INT, dv2 REAL, td INT)")
	mustExec("CREATE INDEX f_c1 ON f (dt1, dv1)")
	mustExec("CREATE INDEX f_c2 ON f (dt2, dv2)")
	db.BeginBatch()
	for i := 0; i < n; i++ {
		mustExec("INSERT INTO f VALUES (?, ?, ?, ?, ?)",
			Int(int64(i%97)), Real(float64(i%31)-15), Int(int64(i%89)), Real(float64(i%37)-18), Int(int64(i)))
	}
	if err := db.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

const unionSQL = "SELECT td FROM f WHERE dt1 <= ? AND dv1 <= ? " +
	"UNION SELECT td FROM f WHERE dt2 <= ? AND dv2 <= ? " +
	"UNION SELECT td FROM f WHERE dt1 > ? AND dv2 >= ? " +
	"UNION SELECT td FROM f WHERE dt2 > ? AND dv1 >= ?"

var unionArgs = []Value{
	Int(40), Real(-3), Int(35), Real(-5), Int(80), Real(10), Int(70), Real(8),
}

// TestParallelUnionMatchesSequential checks the tentpole's identity
// requirement at the engine level: a union evaluated on a worker pool
// returns exactly the rows, in exactly the order, of sequential
// evaluation.
func TestParallelUnionMatchesSequential(t *testing.T) {
	seq := fillUnionDB(t, 1, 4000)
	par := fillUnionDB(t, 8, 4000)

	want, err := seq.Query(unionSQL, unionArgs...)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("union query returned no rows; test would be vacuous")
	}
	for run := 0; run < 5; run++ {
		got, err := par.Query(unionSQL, unionArgs...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Data, want.Data) {
			t.Fatalf("run %d: parallel union diverged: %d rows vs %d sequential rows",
				run, got.Len(), want.Len())
		}
	}
}

// TestConcurrentQueryStress runs many goroutines issuing union queries,
// point queries and stats reads against one database, with one concurrent
// writer appending rows between commits. Readers must never observe a
// torn state; the writer must never corrupt the table.
func TestConcurrentQueryStress(t *testing.T) {
	db := fillUnionDB(t, 4, 2000)
	before, err := db.RowCount("f")
	if err != nil {
		t.Fatal(err)
	}

	stmt, err := db.Prepare(unionSQL)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 6
	const iters = 15
	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0:
					rows, err := stmt.Query(unionArgs...)
					if err != nil {
						errCh <- err
						return
					}
					for _, row := range rows.Data {
						if len(row) != 1 {
							errCh <- fmt.Errorf("torn row %v", row)
							return
						}
					}
				case 1:
					if _, err := db.Query("SELECT COUNT(*) FROM f WHERE dt1 <= ?", Int(50)); err != nil {
						errCh <- err
						return
					}
				case 2:
					if _, err := db.RowCount("f"); err != nil {
						errCh <- err
						return
					}
					_ = db.CacheStats()
					if _, err := db.TableSizeBytes("f"); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}

	// One writer interleaving with the readers.
	const inserted = 200
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inserted; i++ {
			if _, err := db.Exec("INSERT INTO f VALUES (?, ?, ?, ?, ?)",
				Int(int64(i%97)), Real(1), Int(int64(i%89)), Real(1), Int(int64(100000+i))); err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	after, err := db.RowCount("f")
	if err != nil {
		t.Fatal(err)
	}
	if after != before+inserted {
		t.Fatalf("row count after concurrent writes = %d, want %d", after, before+inserted)
	}
	// The index still agrees with the heap.
	rows, err := db.QueryMode(PlanForceIndex, "SELECT COUNT(*) FROM f WHERE dt1 >= ?", Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].I; got != int64(after) {
		t.Fatalf("index scan sees %d rows, heap has %d", got, after)
	}
}

// TestUnionWorkersDefault checks the option normalization: zero means
// GOMAXPROCS, explicit values stick.
func TestUnionWorkersDefault(t *testing.T) {
	db := OpenMemory(Options{})
	defer db.Close()
	if db.opts.UnionWorkers < 1 {
		t.Fatalf("default UnionWorkers = %d, want >= 1", db.opts.UnionWorkers)
	}
	db2 := OpenMemory(Options{UnionWorkers: 3})
	defer db2.Close()
	if db2.opts.UnionWorkers != 3 {
		t.Fatalf("explicit UnionWorkers = %d, want 3", db2.opts.UnionWorkers)
	}
}
