package sqlmini

import (
	"math/rand"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := OpenMemory(Options{PoolPages: 2048})
	if _, err := db.Exec("CREATE TABLE f (dt INT, dv REAL, t INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX f_dtdv ON f (dt, dv)"); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO f VALUES (?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	db.BeginBatch()
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(Int(rng.Int63n(28800)), Real(rng.NormFloat64()*4), Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CommitBatch(); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkInsertPrepared(b *testing.B) {
	db := OpenMemory(Options{PoolPages: 2048})
	if _, err := db.Exec("CREATE TABLE f (dt INT, dv REAL, t INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX f_dtdv ON f (dt, dv)"); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO f VALUES (?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	db.BeginBatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ins.Exec(Int(rng.Int63n(28800)), Real(rng.NormFloat64()), Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeqScanQuery(b *testing.B) {
	db := benchDB(b, 50_000)
	stmt, err := db.Prepare("SELECT t FROM f WHERE dt <= ? AND dv <= ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.QueryMode(PlanForceScan, Int(3600), Real(-3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexScanQuery(b *testing.B) {
	db := benchDB(b, 50_000)
	stmt, err := db.Prepare("SELECT t FROM f WHERE dt <= ? AND dv <= ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.QueryMode(PlanForceIndex, Int(3600), Real(-3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	const q = "SELECT td, tc, tb, ta FROM dropf2 WHERE dt1 <= ? AND dv1 > ? AND dt2 > ? AND dv2 <= ? AND dv1 + (dv2 - dv1) / (dt2 - dt1) * (? - dt1) <= ?"
	for i := 0; i < b.N; i++ {
		if _, err := parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateCount(b *testing.B) {
	db := benchDB(b, 50_000)
	stmt, err := db.Prepare("SELECT COUNT(*), MIN(dv), MAX(dv) FROM f")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Query(); err != nil {
			b.Fatal(err)
		}
	}
}
