// Package keyenc provides an order-preserving binary encoding for composite
// index keys: encoded byte strings compare (bytes.Compare) exactly as the
// natural tuple order of the original values. It is the key format of the
// B+tree index (internal/storage/btree).
//
// Supported element types: int64, float64, string. Each element is encoded
// with a one-byte type tag so heterogeneous tuples order deterministically
// and decoding is self-describing.
package keyenc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Type tags. Ordered so that all ints sort before all floats before all
// strings when tuples mix types at the same position (the engine never does
// this, but the ordering must still be total).
const (
	tagInt    = 0x01
	tagFloat  = 0x02
	tagString = 0x03
)

// AppendInt64 appends the order-preserving encoding of v to dst.
// The sign bit is flipped so negative values order before positive ones in
// unsigned byte comparison.
func AppendInt64(dst []byte, v int64) []byte {
	dst = append(dst, tagInt)
	u := uint64(v) ^ (1 << 63)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return append(dst, b[:]...)
}

// AppendFloat64 appends the order-preserving encoding of v to dst.
// For v ≥ 0 the sign bit is flipped; for v < 0 all bits are flipped, which
// makes the byte order match numeric order including -0 == +0 boundary
// behaviour (-0 sorts immediately before +0). NaN is rejected by Validate
// at a higher layer; if encoded anyway it sorts after +Inf.
func AppendFloat64(dst []byte, v float64) []byte {
	dst = append(dst, tagFloat)
	u := math.Float64bits(v)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u ^= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return append(dst, b[:]...)
}

// AppendString appends the order-preserving encoding of s to dst. Bytes
// 0x00 are escaped as 0x00 0xFF and the element is terminated by 0x00 0x00,
// preserving prefix ordering for arbitrary byte content.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, tagString)
	for i := 0; i < len(s); i++ {
		c := s[i]
		dst = append(dst, c)
		if c == 0x00 {
			dst = append(dst, 0xFF)
		}
	}
	return append(dst, 0x00, 0x00)
}

// DecodeInt64 decodes an int64 element from the front of b, returning the
// value and the remaining bytes.
func DecodeInt64(b []byte) (int64, []byte, error) {
	if len(b) < 9 || b[0] != tagInt {
		return 0, nil, fmt.Errorf("keyenc: not an int64 element")
	}
	u := binary.BigEndian.Uint64(b[1:9]) ^ (1 << 63)
	return int64(u), b[9:], nil
}

// DecodeFloat64 decodes a float64 element from the front of b.
func DecodeFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 9 || b[0] != tagFloat {
		return 0, nil, fmt.Errorf("keyenc: not a float64 element")
	}
	u := binary.BigEndian.Uint64(b[1:9])
	if u&(1<<63) != 0 {
		u ^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u), b[9:], nil
}

// DecodeString decodes a string element from the front of b.
func DecodeString(b []byte) (string, []byte, error) {
	if len(b) < 1 || b[0] != tagString {
		return "", nil, fmt.Errorf("keyenc: not a string element")
	}
	b = b[1:]
	var out []byte
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return "", nil, fmt.Errorf("keyenc: truncated string element")
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x00:
			return string(out), b[i+2:], nil
		default:
			return "", nil, fmt.Errorf("keyenc: bad escape 0x00 0x%02X", b[i+1])
		}
	}
	return "", nil, fmt.Errorf("keyenc: unterminated string element")
}

// Value is one element of a composite key.
type Value struct {
	// Kind selects which field is meaningful.
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Kind is the runtime type of a Value.
type Kind int8

// Value kinds.
const (
	Int Kind = iota
	Float
	String
)

// IntValue, FloatValue and StringValue are convenience constructors.
func IntValue(v int64) Value     { return Value{Kind: Int, I: v} }
func FloatValue(v float64) Value { return Value{Kind: Float, F: v} }
func StringValue(v string) Value { return Value{Kind: String, S: v} }

// Encode encodes a composite key.
func Encode(vals ...Value) []byte {
	var out []byte
	for _, v := range vals {
		switch v.Kind {
		case Int:
			out = AppendInt64(out, v.I)
		case Float:
			out = AppendFloat64(out, v.F)
		case String:
			out = AppendString(out, v.S)
		}
	}
	return out
}

// Decode decodes all elements of a composite key.
func Decode(b []byte) ([]Value, error) {
	return DecodeInto(b, nil)
}

// DecodeInto is Decode appending into dst, reusing its capacity. Tight
// scan loops pass the previous call's slice (truncated via dst[:0]) to
// avoid one allocation per visited key.
func DecodeInto(b []byte, dst []Value) ([]Value, error) {
	out := dst
	for len(b) > 0 {
		switch b[0] {
		case tagInt:
			v, rest, err := DecodeInt64(b)
			if err != nil {
				return nil, err
			}
			out = append(out, IntValue(v))
			b = rest
		case tagFloat:
			v, rest, err := DecodeFloat64(b)
			if err != nil {
				return nil, err
			}
			out = append(out, FloatValue(v))
			b = rest
		case tagString:
			v, rest, err := DecodeString(b)
			if err != nil {
				return nil, err
			}
			out = append(out, StringValue(v))
			b = rest
		default:
			return nil, fmt.Errorf("keyenc: unknown tag 0x%02X", b[0])
		}
	}
	return out, nil
}

// Compare compares two encoded keys; it is bytes.Compare, re-exported to
// keep call sites expressive.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }
