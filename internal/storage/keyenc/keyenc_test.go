package keyenc

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInt64OrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ea := AppendInt64(nil, a)
		eb := AppendInt64(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 42, -300000} {
		got, rest, err := DecodeInt64(AppendInt64(nil, v))
		if err != nil || got != v || len(rest) != 0 {
			t.Errorf("round trip %d: got %d, rest %d, err %v", v, got, len(rest), err)
		}
	}
}

func TestFloat64OrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea := AppendFloat64(nil, a)
		eb := AppendFloat64(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default: // equal (note -0 == +0 numerically but encodes distinctly)
			if a == 0 && b == 0 && math.Signbit(a) != math.Signbit(b) {
				if math.Signbit(a) {
					return cmp < 0
				}
				return cmp > 0
			}
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloat64EdgeOrdering(t *testing.T) {
	order := []float64{
		math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1,
		math.MaxFloat64, math.Inf(1),
	}
	for i := 1; i < len(order); i++ {
		a := AppendFloat64(nil, order[i-1])
		b := AppendFloat64(nil, order[i])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding order broken between %v and %v", order[i-1], order[i])
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	for _, v := range []float64{0, -0.5, 1e300, -1e-300, math.Inf(1), math.Inf(-1), 3.14159} {
		got, rest, err := DecodeFloat64(AppendFloat64(nil, v))
		if err != nil || got != v || len(rest) != 0 {
			t.Errorf("round trip %v: got %v, err %v", v, got, err)
		}
	}
}

func TestStringOrderProperty(t *testing.T) {
	f := func(a, b string) bool {
		ea := AppendString(nil, a)
		eb := AppendString(nil, b)
		cmp := bytes.Compare(ea, eb)
		want := bytes.Compare([]byte(a), []byte(b))
		return (cmp < 0) == (want < 0) && (cmp == 0) == (want == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringWithNulBytes(t *testing.T) {
	cases := []string{"", "\x00", "a\x00b", "\x00\x00", "abc", "a\xff"}
	for _, s := range cases {
		got, rest, err := DecodeString(AppendString(nil, s))
		if err != nil || got != s || len(rest) != 0 {
			t.Errorf("round trip %q: got %q, err %v", s, got, err)
		}
	}
	// "a" < "a\x00" < "a\x00\x00" < "ab" must hold in encoded order.
	seq := []string{"a", "a\x00", "a\x00\x00", "ab"}
	for i := 1; i < len(seq); i++ {
		if bytes.Compare(AppendString(nil, seq[i-1]), AppendString(nil, seq[i])) >= 0 {
			t.Errorf("nul ordering broken between %q and %q", seq[i-1], seq[i])
		}
	}
}

func TestCompositeOrderProperty(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 float64) bool {
		if math.IsNaN(a2) || math.IsNaN(b2) {
			return true
		}
		ea := Encode(IntValue(a1), FloatValue(a2))
		eb := Encode(IntValue(b1), FloatValue(b2))
		cmp := bytes.Compare(ea, eb)
		var want int
		switch {
		case a1 < b1:
			want = -1
		case a1 > b1:
			want = 1
		case a2 < b2:
			want = -1
		case a2 > b2:
			want = 1
		}
		if want == 0 && a2 == 0 && b2 == 0 && math.Signbit(a2) != math.Signbit(b2) {
			return true // -0/+0 tie handled in single-element test
		}
		return sign(cmp) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// A composite key's prefix encoding must be a byte prefix of the full key:
// this is what makes index-prefix range scans work.
func TestPrefixProperty(t *testing.T) {
	full := Encode(IntValue(7), FloatValue(-2.5), StringValue("x"))
	prefix := Encode(IntValue(7), FloatValue(-2.5))
	if !bytes.HasPrefix(full, prefix) {
		t.Fatal("composite prefix is not a byte prefix")
	}
}

func TestDecodeComposite(t *testing.T) {
	in := []Value{IntValue(-9), FloatValue(1.25), StringValue("hello\x00world")}
	got, err := Decode(Encode(in...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("decode = %+v, want %+v", got, in)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0x99}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, _, err := DecodeInt64([]byte{tagInt, 1, 2}); err == nil {
		t.Error("short int accepted")
	}
	if _, _, err := DecodeFloat64([]byte{tagFloat}); err == nil {
		t.Error("short float accepted")
	}
	if _, _, err := DecodeString([]byte{tagString, 'a'}); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, _, err := DecodeString([]byte{tagString, 0x00, 0x7F}); err == nil {
		t.Error("bad escape accepted")
	}
	if _, _, err := DecodeString([]byte{tagString, 0x00}); err == nil {
		t.Error("truncated escape accepted")
	}
	if _, _, err := DecodeInt64(AppendFloat64(nil, 1)); err == nil {
		t.Error("tag mismatch accepted")
	}
}

func TestCompare(t *testing.T) {
	a := Encode(IntValue(1))
	b := Encode(IntValue(2))
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 || Compare(a, a) != 0 {
		t.Fatal("Compare wrong")
	}
}
