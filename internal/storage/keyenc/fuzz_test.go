package keyenc

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the composite decoder: it must never
// panic, and whatever decodes successfully must re-encode to an equal or
// prefix-equal byte string (the decoder may stop cleanly at element
// boundaries).
func FuzzDecode(f *testing.F) {
	f.Add(Encode(IntValue(42), FloatValue(-1.5), StringValue("x\x00y")))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x03, 0x00})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(vals...)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch: %x -> %x", data, re)
		}
	})
}
