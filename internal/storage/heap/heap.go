// Package heap implements slotted-page heap files: unordered record
// storage with stable record IDs, full scans in page order, and lazy
// deletion. It is the table storage of the embedded engine; rows are
// opaque byte strings encoded by the layer above.
//
// Page layout (within a pager.PageSize page):
//
//	offset 0:  uint16 slot count
//	offset 2:  uint16 free-space start (grows down from the page end)
//	offset 4:  slot directory: per slot {uint16 offset, uint16 length}
//	...        free space ...
//	records packed at the end of the page, growing toward the directory
//
// A deleted slot has offset 0xFFFF; its space is not reclaimed (lazy
// delete), which matches the insert-dominated workload of the system.
package heap

import (
	"encoding/binary"
	"fmt"

	"segdiff/internal/storage/pager"
)

const (
	headerSize = 4
	slotSize   = 4
	deadOffset = 0xFFFF
)

// MaxRecord is the largest record that fits in one page.
const MaxRecord = pager.PageSize - headerSize - slotSize

// RID identifies a record: page number and slot within the page.
type RID struct {
	Page pager.PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("rid(%d,%d)", r.Page, r.Slot) }

// Heap is a heap file over a pager. Reads (Get, Scan, Len) keep no mutable
// state of their own, so any number of them may run concurrently on top of
// the pager's reader-friendly latches; Insert and Delete mutate the heap
// and must be serialized externally against all other calls (the engine's
// writer lock does this).
type Heap struct {
	pg   *pager.Pager
	last pager.PageID // page currently receiving inserts
	n    int          // live record count (maintained since open)
}

// Open returns a heap over pg. The live record count is recovered by a
// scan of the slot directories (cheap: headers only, but pages are pulled
// through the cache).
func Open(pg *pager.Pager) (*Heap, error) {
	h := &Heap{pg: pg}
	if pg.NumPages() > 0 {
		h.last = pg.NumPages() - 1
	}
	for id := pager.PageID(0); id < pg.NumPages(); id++ {
		p, err := pg.Get(id)
		if err != nil {
			return nil, err
		}
		nSlots := binary.LittleEndian.Uint16(p.Data()[0:2])
		for s := uint16(0); s < nSlots; s++ {
			off := binary.LittleEndian.Uint16(p.Data()[headerSize+int(s)*slotSize:])
			if off != deadOffset {
				h.n++
			}
		}
		p.Release()
	}
	return h, nil
}

// Len returns the number of live records.
func (h *Heap) Len() int { return h.n }

// Insert stores rec and returns its RID.
func (h *Heap) Insert(rec []byte) (RID, error) {
	if len(rec) > MaxRecord {
		return RID{}, fmt.Errorf("heap: record of %d bytes exceeds max %d", len(rec), MaxRecord)
	}
	if h.pg.NumPages() == 0 {
		p, err := h.pg.Allocate()
		if err != nil {
			return RID{}, err
		}
		initPage(p.Data())
		p.MarkDirty()
		p.Release()
		h.last = 0
	}
	p, err := h.pg.Get(h.last)
	if err != nil {
		return RID{}, err
	}
	slot, ok := tryInsert(p.Data(), rec)
	if ok {
		p.MarkDirty()
		rid := RID{Page: p.ID(), Slot: slot}
		p.Release()
		h.n++
		return rid, nil
	}
	p.Release()
	// Current page full: start a new one.
	np, err := h.pg.Allocate()
	if err != nil {
		return RID{}, err
	}
	initPage(np.Data())
	slot, ok = tryInsert(np.Data(), rec)
	if !ok {
		np.Release()
		return RID{}, fmt.Errorf("heap: record of %d bytes does not fit an empty page", len(rec))
	}
	np.MarkDirty()
	rid := RID{Page: np.ID(), Slot: slot}
	h.last = np.ID()
	np.Release()
	h.n++
	return rid, nil
}

// InsertBatch stores recs in order and returns their RIDs. It is
// equivalent to one Insert per record — same pages, same slots — but pins
// the tail page once across consecutive inserts instead of once per
// record, which matters on the engine's batched write path.
func (h *Heap) InsertBatch(recs [][]byte) ([]RID, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	rids := make([]RID, 0, len(recs))
	var p pager.Page
	pinned := false
	unpin := func() {
		if pinned {
			p.Release()
			pinned = false
		}
	}
	newPage := func() error {
		np, err := h.pg.Allocate()
		if err != nil {
			return err
		}
		initPage(np.Data())
		h.last = np.ID()
		p = np
		pinned = true
		return nil
	}
	for _, rec := range recs {
		if len(rec) > MaxRecord {
			unpin()
			return nil, fmt.Errorf("heap: record of %d bytes exceeds max %d", len(rec), MaxRecord)
		}
		if !pinned {
			if h.pg.NumPages() == 0 {
				if err := newPage(); err != nil {
					return nil, err
				}
			} else {
				gp, err := h.pg.Get(h.last)
				if err != nil {
					return nil, err
				}
				p = gp
				pinned = true
			}
		}
		slot, ok := tryInsert(p.Data(), rec)
		if !ok {
			unpin()
			if err := newPage(); err != nil {
				return nil, err
			}
			slot, ok = tryInsert(p.Data(), rec)
			if !ok {
				unpin()
				return nil, fmt.Errorf("heap: record of %d bytes does not fit an empty page", len(rec))
			}
		}
		p.MarkDirty()
		rids = append(rids, RID{Page: p.ID(), Slot: slot})
		h.n++
	}
	unpin()
	return rids, nil
}

// Get returns a copy of the record at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	rec, err := h.View(rid)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// View returns the record bytes at rid without copying. The slice aliases
// buffer pool memory: record bytes are never moved or overwritten in place
// (deletion only tombstones the slot directory and the pager never
// recycles a frame's buffer), but callers that outlive the enclosing
// read-locked section must copy — a writer may reuse the page's free
// space, and Get exists for exactly that.
func (h *Heap) View(rid RID) ([]byte, error) {
	p, err := h.pg.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	rec, err := read(p.Data(), rid.Slot)
	if err != nil {
		return nil, fmt.Errorf("heap: %v: %w", rid, err)
	}
	return rec, nil
}

// Delete tombstones the record at rid. Deleting a dead or absent slot is
// an error.
func (h *Heap) Delete(rid RID) error {
	p, err := h.pg.Get(rid.Page)
	if err != nil {
		return err
	}
	defer p.Release()
	data := p.Data()
	nSlots := binary.LittleEndian.Uint16(data[0:2])
	if rid.Slot >= nSlots {
		return fmt.Errorf("heap: %v: no such slot", rid)
	}
	se := headerSize + int(rid.Slot)*slotSize
	if binary.LittleEndian.Uint16(data[se:]) == deadOffset {
		return fmt.Errorf("heap: %v: already deleted", rid)
	}
	binary.LittleEndian.PutUint16(data[se:], deadOffset)
	p.MarkDirty()
	h.n--
	return nil
}

// Scan calls fn for every live record in page/slot order. The record slice
// is only valid during the call. fn returning false stops the scan early.
func (h *Heap) Scan(fn func(RID, []byte) (bool, error)) error {
	return h.ScanPages(nil, fn)
}

// ScanPages is Scan with page-level pruning and readahead. A non-nil keep
// skips whole pages for which keep(id) is false without reading them —
// the engine passes a zone-map check here, which is advisory only: keep
// must over-approximate (it may admit pages with no matching rows, never
// the reverse). If the pager has readahead configured, upcoming kept
// pages are announced to the prefetcher so their reads overlap fn.
func (h *Heap) ScanPages(keep func(pager.PageID) bool, fn func(RID, []byte) (bool, error)) error {
	nPages := h.pg.NumPages()
	ra := pager.PageID(h.pg.ReadAhead())
	next := pager.PageID(0) // readahead frontier: first page not yet announced
	for id := pager.PageID(0); id < nPages; id++ {
		if keep != nil && !keep(id) {
			continue
		}
		if ra > 0 {
			// Announce kept pages in (id, id+ra]; the frontier only moves
			// forward so each page is announced at most once per scan.
			if next <= id {
				next = id + 1
			}
			for ; next <= id+ra && next < nPages; next++ {
				if keep == nil || keep(next) {
					h.pg.Prefetch(next)
				}
			}
		}
		p, err := h.pg.Get(id)
		if err != nil {
			return err
		}
		data := p.Data()
		nSlots := binary.LittleEndian.Uint16(data[0:2])
		for s := uint16(0); s < nSlots; s++ {
			rec, err := read(data, s)
			if err != nil {
				continue // tombstone
			}
			cont, err := fn(RID{Page: id, Slot: s}, rec)
			if err != nil {
				p.Release()
				return err
			}
			if !cont {
				p.Release()
				return nil
			}
		}
		p.Release()
	}
	return nil
}

func initPage(data []byte) {
	binary.LittleEndian.PutUint16(data[0:2], 0)
	binary.LittleEndian.PutUint16(data[2:4], pager.PageSize)
}

// tryInsert places rec in the page if space permits, returning the slot.
func tryInsert(data []byte, rec []byte) (uint16, bool) {
	nSlots := binary.LittleEndian.Uint16(data[0:2])
	freeEnd := binary.LittleEndian.Uint16(data[2:4])
	dirEnd := headerSize + (int(nSlots)+1)*slotSize
	if int(freeEnd)-len(rec) < dirEnd {
		return 0, false
	}
	off := freeEnd - uint16(len(rec))
	copy(data[off:freeEnd], rec)
	se := headerSize + int(nSlots)*slotSize
	binary.LittleEndian.PutUint16(data[se:], off)
	binary.LittleEndian.PutUint16(data[se+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(data[0:2], nSlots+1)
	binary.LittleEndian.PutUint16(data[2:4], off)
	return nSlots, true
}

// read returns the live record bytes at slot s, or an error for dead or
// out-of-range slots.
func read(data []byte, s uint16) ([]byte, error) {
	nSlots := binary.LittleEndian.Uint16(data[0:2])
	if s >= nSlots {
		return nil, fmt.Errorf("slot %d out of range (%d slots)", s, nSlots)
	}
	se := headerSize + int(s)*slotSize
	off := binary.LittleEndian.Uint16(data[se:])
	if off == deadOffset {
		return nil, fmt.Errorf("slot %d deleted", s)
	}
	ln := binary.LittleEndian.Uint16(data[se+2:])
	return data[off : off+ln], nil
}
