package heap

import (
	"bytes"
	"fmt"
	"testing"

	"segdiff/internal/storage/pager"
)

func TestInsertBatchMatchesInsert(t *testing.T) {
	// InsertBatch must assign exactly the pages and slots that per-record
	// Insert would, so the two write paths produce byte-identical files.
	mk := func() *Heap {
		pg, err := pager.New(pager.NewMemFile(), 64)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Open(pg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	single, batch := mk(), mk()

	var recs [][]byte
	for i := 0; i < 3000; i++ {
		recs = append(recs, []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte{'x'}, i%40))))
	}
	var want []RID
	for _, rec := range recs {
		rid, err := single.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rid)
	}
	got, err := batch.InsertBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rid %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if single.Len() != batch.Len() {
		t.Fatalf("len: %d vs %d", single.Len(), batch.Len())
	}
	for i, rid := range got {
		rec, err := batch.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, recs[i]) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestInsertBatchAppendsAfterInserts(t *testing.T) {
	pg, err := pager.New(pager.NewMemFile(), 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Open(pg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert([]byte("first")); err != nil {
		t.Fatal(err)
	}
	rids, err := h.InsertBatch([][]byte{[]byte("second"), []byte("third")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 2 || h.Len() != 3 {
		t.Fatalf("rids %v, len %d", rids, h.Len())
	}
	if rec, _ := h.Get(rids[1]); string(rec) != "third" {
		t.Fatalf("got %q", rec)
	}
	// Empty and oversized batches.
	if rids, err := h.InsertBatch(nil); err != nil || rids != nil {
		t.Fatalf("empty batch: %v, %v", rids, err)
	}
	if _, err := h.InsertBatch([][]byte{make([]byte, MaxRecord+1)}); err == nil {
		t.Fatal("oversized record accepted")
	}
}
