package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"segdiff/internal/storage/pager"
)

func newHeap(t *testing.T) *Heap {
	t.Helper()
	pg, err := pager.New(pager.NewMemFile(), 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Open(pg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestInsertGet(t *testing.T) {
	h := newHeap(t)
	rid, err := h.Insert([]byte("record one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("record one")) {
		t.Fatalf("got %q", got)
	}
	if h.Len() != 1 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestManyRecordsSpanPages(t *testing.T) {
	h := newHeap(t)
	const n = 2000
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rec := []byte(fmt.Sprintf("record-%05d-with-some-padding-bytes", i))
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if rids[0].Page == rids[n-1].Page {
		t.Fatal("2000 records fit one page; expected page spill")
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		want := fmt.Sprintf("record-%05d-with-some-padding-bytes", i)
		if string(got) != want {
			t.Fatalf("record %d = %q", i, got)
		}
	}
	if h.Len() != n {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	h := newHeap(t)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []byte
	err := h.Scan(func(_ RID, rec []byte) (bool, error) {
		seen = append(seen, rec[0])
		return len(seen) < 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("early stop failed: %d records", len(seen))
	}
	for i, b := range seen {
		if b != byte(i) {
			t.Fatalf("scan order wrong at %d: %d", i, b)
		}
	}
}

func TestScanErrorPropagates(t *testing.T) {
	h := newHeap(t)
	if _, err := h.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("callback error")
	err := h.Scan(func(RID, []byte) (bool, error) { return true, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Insert([]byte("a"))
	b, _ := h.Insert([]byte("b"))
	if err := h.Delete(a); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Fatalf("len after delete = %d", h.Len())
	}
	if _, err := h.Get(a); err == nil {
		t.Fatal("get of deleted record accepted")
	}
	if err := h.Delete(a); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := h.Delete(RID{Page: 0, Slot: 99}); err == nil {
		t.Fatal("delete of absent slot accepted")
	}
	var count int
	if err := h.Scan(func(_ RID, rec []byte) (bool, error) {
		count++
		if !bytes.Equal(rec, []byte("b")) {
			t.Fatalf("unexpected record %q", rec)
		}
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("scan saw %d records", count)
	}
	_ = b
}

func TestOversizeRecordRejected(t *testing.T) {
	h := newHeap(t)
	if _, err := h.Insert(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
	// Max-size record must work.
	if _, err := h.Insert(make([]byte, MaxRecord)); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
}

func TestEmptyRecord(t *testing.T) {
	h := newHeap(t)
	rid, err := h.Insert(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty record came back as %q", got)
	}
}

func TestReopenRecoversCount(t *testing.T) {
	f := pager.NewMemFile()
	pg, err := pager.New(f, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Open(pg)
	if err != nil {
		t.Fatal(err)
	}
	var del RID
	for i := 0; i < 500; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("row %d padded for realism", i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 250 {
			del = rid
		}
	}
	if err := h.Delete(del); err != nil {
		t.Fatal(err)
	}
	if err := pg.Flush(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.New(f, 64)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(pg2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 499 {
		t.Fatalf("recovered len = %d, want 499", h2.Len())
	}
	// Inserts continue on the last page.
	if _, err := h2.Insert([]byte("after reopen")); err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 500 {
		t.Fatalf("len after post-reopen insert = %d", h2.Len())
	}
}

func TestRandomizedAgainstMapOracle(t *testing.T) {
	h := newHeap(t)
	rng := rand.New(rand.NewSource(5))
	oracle := map[RID][]byte{}
	var live []RID
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Intn(4) == 0 {
			// Delete a random live record.
			j := rng.Intn(len(live))
			rid := live[j]
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(oracle, rid)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		rec := make([]byte, 1+rng.Intn(60))
		rng.Read(rec)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		cp := append([]byte(nil), rec...)
		oracle[rid] = cp
		live = append(live, rid)
	}
	if h.Len() != len(oracle) {
		t.Fatalf("len=%d oracle=%d", h.Len(), len(oracle))
	}
	seen := 0
	err := h.Scan(func(rid RID, rec []byte) (bool, error) {
		want, ok := oracle[rid]
		if !ok {
			t.Fatalf("scan returned unknown rid %v", rid)
		}
		if !bytes.Equal(rec, want) {
			t.Fatalf("rid %v content mismatch", rid)
		}
		seen++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(oracle) {
		t.Fatalf("scan saw %d, oracle has %d", seen, len(oracle))
	}
}
