package pager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedFile wraps a File and blocks the first ReadAt of one chosen page
// until released, so tests can hold a read "in flight" deterministically.
type gatedFile struct {
	File
	gate    int64         // byte offset whose first ReadAt blocks
	armed   atomic.Bool   // one-shot
	entered chan struct{} // signalled when the gated read arrives
	release chan struct{} // closed by the test to let the read proceed
}

func newGatedFile(inner File, page PageID) *gatedFile {
	g := &gatedFile{
		File:    inner,
		gate:    int64(page) * PageSize,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	g.armed.Store(true)
	return g
}

func (g *gatedFile) ReadAt(p []byte, off int64) (int, error) {
	if off == g.gate && g.armed.CompareAndSwap(true, false) {
		g.entered <- struct{}{}
		<-g.release
	}
	return g.File.ReadAt(p, off)
}

// fillPages allocates n pages whose first byte is tag and flushes them.
func fillPages(t *testing.T, p *Pager, n int, tag byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = tag
		pg.MarkDirty()
		pg.Release()
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

// waitCached polls until id is resident or the deadline expires.
func waitCached(t *testing.T, p *Pager, id PageID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !p.cachedForTest(id) {
		if time.Now().After(deadline) {
			t.Fatalf("page %d never prefetched", id)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	p := newMemPager(t, 16)
	p.SetReadAhead(4)
	defer p.Close()
	fillPages(t, p, 8, 0xAB)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	for id := PageID(1); id <= 3; id++ {
		p.Prefetch(id)
	}
	for id := PageID(1); id <= 3; id++ {
		waitCached(t, p, id)
	}
	for id := PageID(1); id <= 3; id++ {
		pg, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data()[0] != 0xAB {
			t.Fatalf("page %d data = %x", id, pg.Data()[0])
		}
		pg.Release()
	}
	st := p.Stats()
	if st.Misses != 0 || st.Hits != 3 {
		t.Fatalf("prefetched gets were not hits: %+v", st)
	}
	if st.PrefetchReads != 3 || st.PrefetchHits != 3 || st.PrefetchWasted != 0 {
		t.Fatalf("prefetch counters: %+v", st)
	}
	if st.Reads != st.Misses+st.PrefetchReads {
		t.Fatalf("Reads != Misses+PrefetchReads: %+v", st)
	}
}

// TestPrefetchDemandDedupe holds a prefetch read in flight and issues a
// demand Get for the same page: the Get must join the in-flight read
// (one file read total), not read the page a second time.
func TestPrefetchDemandDedupe(t *testing.T) {
	inner := NewMemFile()
	g := newGatedFile(inner, 2)
	p, err := New(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	p.SetReadAhead(4)
	defer p.Close()
	fillPages(t, p, 8, 0xCD)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	p.Prefetch(2)
	<-g.entered // the prefetch read is now in flight

	got := make(chan error, 1)
	go func() {
		pg, err := p.Get(2)
		if err == nil {
			if pg.Data()[0] != 0xCD {
				err = fmt.Errorf("page 2 data = %x", pg.Data()[0])
			}
			pg.Release()
		}
		got <- err
	}()
	// The demand Get should park on the in-flight read; give it a moment
	// to arrive before releasing the gate. (If it arrives later it still
	// just hits the cached frame — the assertion below is on read counts.)
	time.Sleep(10 * time.Millisecond)
	close(g.release)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Reads != 1 || st.PrefetchReads != 1 || st.Misses != 0 {
		t.Fatalf("page read twice (or counted wrong): %+v", st)
	}
	if st.Hits != 1 || st.PrefetchHits != 1 {
		t.Fatalf("joined get not a prefetch hit: %+v", st)
	}
}

// TestDropCacheInvalidatesInflightPrefetch is the drop-then-scan
// staleness regression test: a prefetch read that is in flight when
// DropCache runs must not repopulate the cache with pre-drop bytes. The
// test rewrites the page on the file while the stale read is parked; the
// first Get after the drop must observe the new content.
func TestDropCacheInvalidatesInflightPrefetch(t *testing.T) {
	inner := NewMemFile()
	g := newGatedFile(inner, 5)
	p, err := New(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	p.SetReadAhead(4)
	defer p.Close()
	fillPages(t, p, 8, 0xE1)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	p.Prefetch(5)
	<-g.entered // stale read of page 5 is in flight

	dropped := make(chan error, 1)
	go func() { dropped <- p.DropCache() }()
	// DropCache is now draining the in-flight read. Change the page's
	// content on the file behind the pool's back, then let the stale read
	// finish: its bytes predate the drop and must be discarded.
	time.Sleep(10 * time.Millisecond)
	buf := make([]byte, PageSize)
	buf[0] = 0xE2
	if _, err := inner.WriteAt(buf, 5*PageSize); err != nil {
		t.Fatal(err)
	}
	close(g.release)
	if err := <-dropped; err != nil {
		t.Fatal(err)
	}

	pg, err := p.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Data()[0] != 0xE2 {
		t.Fatalf("Get after DropCache served stale prefetched bytes: %x", pg.Data()[0])
	}
	pg.Release()
	st := p.Stats()
	if st.PrefetchWasted == 0 {
		t.Fatalf("invalidated prefetch not counted as wasted: %+v", st)
	}
	if st.Reads != st.Misses+st.PrefetchReads {
		t.Fatalf("Reads != Misses+PrefetchReads: %+v", st)
	}
}

// TestShardBoundaryStress hammers adjacent PageIDs (which map to
// different shards) with concurrent Get, Allocate, DropCache, and
// readahead under the race detector, and checks the cross-shard counter
// invariants both mid-flight and on the final snapshot.
func TestShardBoundaryStress(t *testing.T) {
	p := newMemPager(t, 1024)
	if p.numShardsForTest() < 2 {
		t.Fatalf("capacity 1024 should stripe the pool, got %d shards", p.numShardsForTest())
	}
	p.SetReadAhead(4)
	defer p.Close()
	const seedPages = 64
	fillPages(t, p, seedPages, 0x5A)

	var (
		workers sync.WaitGroup
		gets    atomic.Uint64
	)
	// Readers walk a window of consecutive ids: adjacent ids live in
	// different shards, so every step crosses a stripe boundary.
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(seed int) {
			defer workers.Done()
			for i := 0; i < 3000; i++ {
				id := PageID((seed + i) % seedPages)
				pg, err := p.Get(id)
				if err != nil {
					t.Errorf("get %d: %v", id, err)
					return
				}
				if pg.Data()[0] != 0x5A {
					t.Errorf("page %d data = %x", id, pg.Data()[0])
					pg.Release()
					return
				}
				pg.Release()
				gets.Add(1)
				if i%7 == 0 {
					p.Prefetch(id + 1)
				}
			}
		}(g * 7)
	}
	// One allocator grows the file (new ids land round-robin on shards).
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; i < 200; i++ {
			pg, err := p.Allocate()
			if err != nil {
				t.Errorf("allocate: %v", err)
				return
			}
			pg.Release()
		}
	}()
	// A separate dropper/sampler runs until the workers finish: the
	// latch-consistent invariant must hold in every snapshot, not just at
	// quiescence.
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%4 == 0 {
				if err := p.DropCache(); err != nil {
					t.Errorf("dropcache: %v", err)
					return
				}
			}
			st := p.Stats()
			if st.Reads != st.Misses+st.PrefetchReads {
				t.Errorf("mid-flight snapshot skewed: %+v", st)
				return
			}
			if st.PrefetchHits+st.PrefetchWasted > st.PrefetchReads {
				t.Errorf("prefetch accounting skewed: %+v", st)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	workers.Wait()
	close(stop)
	sampler.Wait()

	st := p.Stats()
	if st.Hits+st.Misses != gets.Load() {
		t.Fatalf("Hits+Misses = %d+%d, want %d successful gets", st.Hits, st.Misses, gets.Load())
	}
	if st.Reads != st.Misses+st.PrefetchReads {
		t.Fatalf("Reads != Misses+PrefetchReads: %+v", st)
	}
}

// TestStatsConsistentSnapshot is the focused regression for the old
// snapshot skew: Hits+Misses must equal the number of completed Gets and
// Reads must equal Misses+PrefetchReads in every snapshot taken while
// loads are in flight.
func TestStatsConsistentSnapshot(t *testing.T) {
	p := newMemPager(t, 32)
	p.SetReadAhead(2)
	defer p.Close()
	const nPages = 128
	fillPages(t, p, nPages, 0x11)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				id := PageID((seed*31 + i) % nPages)
				pg, err := p.Get(id)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				pg.Release()
				p.Prefetch(id + 1)
			}
		}(g)
	}
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Stats()
			if st.Reads != st.Misses+st.PrefetchReads {
				t.Errorf("snapshot skewed: %+v", st)
				return
			}
		}
	}()
	readers.Wait()
	close(stop)
	sampler.Wait()

	st := p.Stats()
	if st.Hits+st.Misses != 4*2000 {
		t.Fatalf("Hits+Misses = %d, want %d", st.Hits+st.Misses, 4*2000)
	}
	if st.Reads != st.Misses+st.PrefetchReads {
		t.Fatalf("Reads != Misses+PrefetchReads: %+v", st)
	}
}
