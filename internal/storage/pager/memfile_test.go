package pager

import (
	"bytes"
	"testing"
)

// The crash harness (internal/storage/faultfs) replays arbitrary offsets
// into MemFile-backed snapshots; a hostile or corrupted offset must come
// back as an error, never a slice-bounds panic.
func TestMemFileNegativeOffsetRejected(t *testing.T) {
	m := NewMemFile()
	if _, err := m.WriteAt([]byte("abc"), -1); err == nil {
		t.Fatal("WriteAt(-1) succeeded, want error")
	}
	if _, err := m.ReadAt(make([]byte, 3), -7); err == nil {
		t.Fatal("ReadAt(-7) succeeded, want error")
	}
	// The file must be untouched by the rejected write.
	if sz, err := m.Size(); err != nil || sz != 0 {
		t.Fatalf("size after rejected write = %d, %v; want 0, nil", sz, err)
	}
}

func TestMemFileTruncate(t *testing.T) {
	m := NewMemFile()
	if _, err := m.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if sz, _ := m.Size(); sz != 5 {
		t.Fatalf("size after shrink = %d, want 5", sz)
	}
	// Growing truncate zero-fills.
	if err := m.Truncate(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := m.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("hello\x00\x00\x00")) {
		t.Fatalf("content after grow = %q", buf)
	}
	if err := m.Truncate(-1); err == nil {
		t.Fatal("Truncate(-1) succeeded, want error")
	}
}

func TestOSFileTruncate(t *testing.T) {
	f, err := OpenOSFile(t.TempDir() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 4 {
		t.Fatalf("size after truncate = %d, want 4", sz)
	}
}
