package pager

// Test-only accessors for cache internals; they take the shard latches so
// they are safe under the race detector and the lockcheck analyzer.

// cachedForTest reports whether id is resident in the pool.
func (p *Pager) cachedForTest(id PageID) bool {
	s := p.shardOf(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.frames[id]
	return ok
}

// cachedCountForTest returns the total number of resident frames.
func (p *Pager) cachedCountForTest() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		n += len(s.frames)
		s.mu.RUnlock()
	}
	return n
}

// numShardsForTest returns the stripe count.
func (p *Pager) numShardsForTest() int { return len(p.shards) }
