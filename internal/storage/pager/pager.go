// Package pager implements the buffer pool of the embedded storage engine:
// fixed-size pages cached in memory with clock (second-chance) eviction,
// pin counts, dirty tracking, and an explicit DropCache hook used by the
// cold-cache experiments (the paper flushes the operating system cache
// before every query in Sections 6.1–6.3 and studies the warm-cache case
// in 6.4).
//
// Concurrency. A Pager is safe for concurrent readers, and the page-hit
// path is designed to stay off every exclusive lock: a hit takes the
// shared lock for the frame lookup and pins the frame with an atomic
// counter, and Release is a single atomic decrement. Misses, allocations,
// evictions and the checkpoint operations (Flush, Sync, DropCache,
// LogDirty, Close) take the exclusive lock; a miss re-checks the frame map
// under it so concurrent misses never load a page twice. Eviction is safe
// because pinning requires the lock (shared or exclusive) while eviction
// holds it exclusively: a frame observed unpinned cannot be re-pinned
// until the eviction finishes. Stats counters are atomic. Writers
// (MarkDirty and the code paths that modify page contents) must still be
// serialized externally against readers — the query engine layers a
// reader/writer lock above this package (see sqlmini.DB).
package pager

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within one file; pages are numbered from 0.
type PageID uint32

// Stats are cumulative buffer pool counters (a snapshot; see
// Pager.Stats).
type Stats struct {
	Hits      uint64 // Get served from cache
	Misses    uint64 // Get required a file read
	Reads     uint64 // pages read from the file
	Writes    uint64 // pages written to the file
	Evictions uint64 // frames evicted to make room
}

// padUint64 is an atomic counter padded to its own cache line. Parallel
// readers increment Hits on every page Get; packing the counters into
// adjacent words would make each increment invalidate the line holding
// all of them in every other core's cache (false sharing). 64-byte lines
// cover x86-64 and most arm64 parts.
type padUint64 struct {
	v uint64
	_ [56]byte
}

// statCounters are the live counters behind Stats, one cache line each.
type statCounters struct {
	hits      padUint64
	misses    padUint64
	reads     padUint64
	writes    padUint64
	evictions padUint64
}

type frame struct {
	id      PageID
	data    []byte
	pins    atomic.Int32
	used    atomic.Bool // referenced since the clock hand last passed
	dirty   bool
	logged  bool // dirty content captured by the WAL (safe to steal)
	ringIdx int  // position in Pager.ring; maintained under mu exclusive
}

// Pager caches pages of a File with a clock replacement policy.
//
// Locking: mu guards the frame map, the clock ring, the page count, and
// the closed/noSteal flags; it is held shared by cache hits and
// exclusively by everything that inserts or removes frames. Pin counts and
// reference bits are atomics so the hit path never serializes; dirty and
// logged flags are only accessed by the external writer or under mu
// exclusive. stats is accessed with atomics only.
type Pager struct {
	mu       sync.RWMutex
	f        File
	capacity int
	frames   map[PageID]*frame // guarded by mu
	ring     []*frame          // guarded by mu; clock order; eviction candidates
	hand     int               // guarded by mu; clock hand index into ring
	nPages   PageID            // guarded by mu
	stats    statCounters      // atomics only; never under mu
	closed   bool              // guarded by mu
	noSteal  bool              // guarded by mu
}

// DefaultCapacity is the default buffer pool size in frames (1024 pages =
// 4 MiB), chosen small enough that the paper's cold/warm distinction is
// visible on realistic workloads.
const DefaultCapacity = 1024

// New returns a Pager over f holding at most capacity pages in memory
// (DefaultCapacity if capacity <= 0). The file length must be a multiple
// of PageSize.
func New(f File, capacity int) (*Pager, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("pager: size: %w", err)
	}
	if size%PageSize != 0 {
		return nil, fmt.Errorf("pager: file size %d not a multiple of page size", size)
	}
	return &Pager{
		f:        f,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		nPages:   PageID(size / PageSize),
	}, nil
}

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() PageID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.nPages
}

// Capacity returns the buffer pool capacity in frames.
func (p *Pager) Capacity() int { return p.capacity }

// Stats returns a copy of the cumulative counters.
func (p *Pager) Stats() Stats {
	return Stats{
		Hits:      atomic.LoadUint64(&p.stats.hits.v),
		Misses:    atomic.LoadUint64(&p.stats.misses.v),
		Reads:     atomic.LoadUint64(&p.stats.reads.v),
		Writes:    atomic.LoadUint64(&p.stats.writes.v),
		Evictions: atomic.LoadUint64(&p.stats.evictions.v),
	}
}

// Page is a pinned page handle, returned by value so the hot read path
// does not allocate. Data is valid until Release; writers must call
// MarkDirty before Release.
type Page struct {
	p  *Pager
	fr *frame
}

// ID returns the page's id.
func (pg *Page) ID() PageID { return pg.fr.id }

// Data returns the page's PageSize-byte buffer.
func (pg *Page) Data() []byte { return pg.fr.data }

// MarkDirty records that the page's buffer was modified. It must only be
// called while the caller holds the engine-level writer lock: readers never
// observe dirty-flag changes concurrently.
func (pg *Page) MarkDirty() {
	pg.fr.dirty = true
	pg.fr.logged = false
}

// Release unpins the page. The handle must not be used afterwards.
func (pg *Page) Release() {
	if pg.fr.pins.Add(-1) < 0 {
		panic("pager: release of unpinned page")
	}
	pg.fr = nil
}

// pin pins fr. The caller must hold mu (shared or exclusive): eviction
// holds mu exclusively, so a cached frame cannot disappear between lookup
// and pin.
func (fr *frame) pin() {
	fr.pins.Add(1)
	fr.used.Store(true)
}

// checkGet validates a Get under mu.
//
// locks: p.mu (any)
func (p *Pager) checkGet(id PageID) error {
	if p.closed {
		return fmt.Errorf("pager: use after close")
	}
	if id >= p.nPages {
		return fmt.Errorf("pager: page %d out of range (have %d)", id, p.nPages)
	}
	return nil
}

// insertFrame adds fr to the map and the clock ring.
//
// locks: p.mu
func (p *Pager) insertFrame(fr *frame) {
	fr.ringIdx = len(p.ring)
	p.ring = append(p.ring, fr)
	p.frames[fr.id] = fr
}

// removeFrame deletes fr from the map and the clock ring (swap-remove).
//
// locks: p.mu
func (p *Pager) removeFrame(fr *frame) {
	last := p.ring[len(p.ring)-1]
	p.ring[fr.ringIdx] = last
	last.ringIdx = fr.ringIdx
	p.ring = p.ring[:len(p.ring)-1]
	delete(p.frames, fr.id)
}

// Allocate appends a zeroed page to the file and returns it pinned.
func (p *Pager) Allocate() (Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Page{}, fmt.Errorf("pager: use after close")
	}
	if err := p.makeRoom(); err != nil {
		return Page{}, err
	}
	id := p.nPages
	p.nPages++
	// New frames start with the used bit clear: recency is earned by a
	// later Get hit, which keeps re-referenced pages ahead of one-shot
	// scans in the clock order.
	fr := &frame{id: id, data: make([]byte, PageSize), dirty: true}
	fr.pins.Store(1)
	p.insertFrame(fr)
	return Page{p: p, fr: fr}, nil
}

// Get returns the page with the given id, pinned. Cache hits run under the
// shared lock and proceed in parallel; a miss upgrades to the exclusive
// lock for the file read and possible eviction.
func (p *Pager) Get(id PageID) (Page, error) {
	p.mu.RLock()
	if err := p.checkGet(id); err != nil {
		p.mu.RUnlock()
		return Page{}, err
	}
	if fr, ok := p.frames[id]; ok {
		fr.pin()
		p.mu.RUnlock()
		atomic.AddUint64(&p.stats.hits.v, 1)
		return Page{p: p, fr: fr}, nil
	}
	p.mu.RUnlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkGet(id); err != nil {
		return Page{}, err
	}
	if fr, ok := p.frames[id]; ok {
		// A concurrent miss loaded the page between our two lookups.
		fr.pin()
		atomic.AddUint64(&p.stats.hits.v, 1)
		return Page{p: p, fr: fr}, nil
	}
	atomic.AddUint64(&p.stats.misses.v, 1)
	if err := p.makeRoom(); err != nil {
		return Page{}, err
	}
	data := make([]byte, PageSize)
	if _, err := p.f.ReadAt(data, int64(id)*PageSize); err != nil {
		return Page{}, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	atomic.AddUint64(&p.stats.reads.v, 1)
	fr := &frame{id: id, data: data}
	fr.pins.Store(1)
	p.insertFrame(fr)
	return Page{p: p, fr: fr}, nil
}

// makeRoom evicts unpinned frames chosen by the clock hand until a new
// frame fits. Recently referenced frames get a second chance (their used
// bit is cleared on the first pass). If every frame is pinned (or, under
// no-steal, dirty and unlogged) the pool is allowed to grow past capacity.
// Holding mu exclusively means a victim with zero pins cannot be re-pinned
// while it is written out.
//
// locks: p.mu
func (p *Pager) makeRoom() error {
	for len(p.frames) >= p.capacity && len(p.ring) > 0 {
		var victim *frame
		// Two revolutions: the first clears reference bits, the second
		// must find a victim if any frame is evictable at all.
		for i := 0; i < 2*len(p.ring); i++ {
			if p.hand >= len(p.ring) {
				p.hand = 0
			}
			fr := p.ring[p.hand]
			p.hand++
			if fr.pins.Load() != 0 {
				continue
			}
			if p.noSteal && fr.dirty && !fr.logged {
				continue // uncommitted content must not reach the file
			}
			if fr.used.CompareAndSwap(true, false) {
				continue // second chance
			}
			victim = fr
			break
		}
		if victim == nil {
			return nil // nothing evictable: overcommit
		}
		if victim.dirty {
			if err := p.writeFrame(victim); err != nil {
				return err // victim stays cached; retry on a later miss
			}
		}
		p.removeFrame(victim)
		atomic.AddUint64(&p.stats.evictions.v, 1)
	}
	return nil
}

// SetNoSteal controls the eviction policy required by write-ahead
// logging: while enabled, dirty frames whose content has not been captured
// by LogDirty are never written to the file by eviction (the pool
// overcommits instead). Flush, Sync, DropCache and Close still write all
// dirty frames — they are checkpoint operations.
func (p *Pager) SetNoSteal(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.noSteal = on
}

// sortedFrames returns the cached frames matching keep in ascending page
// order. The checkpoint paths iterate in this order so the engine's
// file-operation sequence — and hence the WAL's byte layout — never
// depends on map iteration order: the crash harness (internal/crashtest)
// requires that a given (seed, fault script) reproduces the exact same
// operation stream byte for byte.
//
// locks: p.mu
func (p *Pager) sortedFrames(keep func(*frame) bool) []*frame {
	var out []*frame
	for _, fr := range p.frames {
		if keep(fr) {
			out = append(out, fr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// LogDirty invokes fn for every dirty frame whose content has not yet been
// logged, in ascending page order, and marks those frames logged (making
// them evictable again under no-steal). The data slice passed to fn is
// only valid during the call.
func (p *Pager) LogDirty(fn func(id PageID, data []byte) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.sortedFrames(func(fr *frame) bool { return fr.dirty && !fr.logged }) {
		if err := fn(fr.id, fr.data); err != nil {
			return err
		}
		fr.logged = true
	}
	return nil
}

// writeFrame writes fr's buffer back to the file and clears its dirty
// flag; eviction and the flush paths call it with the frame unpinned or
// the pool quiesced.
//
// locks: p.mu
func (p *Pager) writeFrame(fr *frame) error {
	if _, err := p.f.WriteAt(fr.data, int64(fr.id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", fr.id, err)
	}
	fr.dirty = false
	atomic.AddUint64(&p.stats.writes.v, 1)
	return nil
}

// flushLocked writes every dirty cached page back to the file in
// ascending page order (no fsync).
//
// locks: p.mu
func (p *Pager) flushLocked() error {
	for _, fr := range p.sortedFrames(func(fr *frame) bool { return fr.dirty }) {
		if err := p.writeFrame(fr); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes every dirty cached page back to the file (without fsync).
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

// Sync flushes dirty pages and fsyncs the file.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncLocked()
}

// syncLocked flushes all dirty pages and fsyncs the file.
//
// locks: p.mu
func (p *Pager) syncLocked() error {
	if err := p.flushLocked(); err != nil {
		return err
	}
	return p.f.Sync()
}

// DropCache flushes dirty pages and evicts every unpinned frame, simulating
// a cold cache (the experiments' "operating system cache is flushed before
// every query"). Pinned frames are retained.
func (p *Pager) DropCache() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	for i := 0; i < len(p.ring); {
		fr := p.ring[i]
		if fr.pins.Load() != 0 {
			i++
			continue
		}
		p.removeFrame(fr) // swap-remove: re-examine index i
		atomic.AddUint64(&p.stats.evictions.v, 1)
	}
	p.hand = 0
	return nil
}

// Discard drops every cached frame without writing anything back and
// re-derives the page count from the file. It is the batch-abort hook:
// uncommitted dirty frames vanish, and the engine then restores committed
// page content by WAL replay before re-reading through the pager.
// Outstanding pins are an error.
func (p *Pager) Discard() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("pager: use after close")
	}
	for _, fr := range p.frames {
		if fr.pins.Load() > 0 {
			return fmt.Errorf("pager: discard with page %d still pinned", fr.id)
		}
	}
	p.frames = make(map[PageID]*frame)
	p.ring = p.ring[:0]
	p.hand = 0
	size, err := p.f.Size()
	if err != nil {
		return err
	}
	p.nPages = PageID(size / PageSize)
	return nil
}

// ResetStats zeroes the counters (used between experiment runs).
func (p *Pager) ResetStats() {
	atomic.StoreUint64(&p.stats.hits.v, 0)
	atomic.StoreUint64(&p.stats.misses.v, 0)
	atomic.StoreUint64(&p.stats.reads.v, 0)
	atomic.StoreUint64(&p.stats.writes.v, 0)
	atomic.StoreUint64(&p.stats.evictions.v, 0)
}

// SizeBytes returns the file size implied by the allocated page count.
func (p *Pager) SizeBytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return int64(p.nPages) * PageSize
}

// Close flushes and closes the underlying file. Pinned pages outstanding at
// Close are an error.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	for _, fr := range p.frames {
		if fr.pins.Load() > 0 {
			return fmt.Errorf("pager: close with page %d still pinned", fr.id)
		}
	}
	if err := p.syncLocked(); err != nil {
		return err
	}
	p.closed = true
	return p.f.Close()
}
