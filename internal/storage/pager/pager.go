// Package pager implements the buffer pool of the embedded storage engine:
// fixed-size pages cached in memory with clock (second-chance) eviction,
// pin counts, dirty tracking, and an explicit DropCache hook used by the
// cold-cache experiments (the paper flushes the operating system cache
// before every query in Sections 6.1–6.3 and studies the warm-cache case
// in 6.4).
//
// Concurrency. The pool is lock-striped: frames are partitioned across N
// shards by PageID (adjacent pages land in different shards), and each
// shard has its own reader/writer latch, frame map, and clock ring. A
// cache hit takes only its shard's shared latch for the lookup and pins
// the frame with an atomic counter; Release is a single atomic decrement.
// A miss registers an in-flight read in its shard, performs the file read
// with no latch held (so concurrent misses on different pages overlap
// their I/O), and re-checks under the shard's exclusive latch before
// inserting — a demand read and a readahead prefetch of the same page
// never load it twice. Eviction is shard-local against a global frame
// budget and is safe because pinning requires the shard latch (shared or
// exclusive) while eviction holds it exclusively. The checkpoint
// operations (Flush, Sync, DropCache, LogDirty, Discard, Close) and Stats
// acquire every shard latch in ascending shard order, so they observe a
// quiescent pool; DropCache and Discard additionally invalidate (by epoch)
// and drain in-flight reads, so a dropped cache never resurrects a stale
// prefetched frame. Stats counters are incremented only while a shard
// latch is held and snapshotted under all latches, so a snapshot is
// internally consistent: Hits+Misses equals the number of successful Gets
// and Reads equals Misses+PrefetchReads. Writers (MarkDirty and the code
// paths that modify page contents) must still be serialized externally
// against readers — the query engine layers a reader/writer lock above
// this package (see sqlmini.DB).
//
// Small pools collapse to a single shard (striping below a few hundred
// frames costs more in eviction imbalance than it buys in parallelism),
// which also preserves the exact clock order of the pre-sharding pager
// for the crash harness's deterministic small-pool workloads.
package pager

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within one file; pages are numbered from 0.
type PageID uint32

// Stats are cumulative buffer pool counters (a consistent snapshot; see
// Pager.Stats). In a fault-free run Hits+Misses equals the number of
// successful Gets and Reads equals Misses+PrefetchReads; PrefetchHits and
// PrefetchWasted partition the prefetched frames that are no longer
// cached (frames still waiting in the pool are in neither).
type Stats struct {
	Hits           uint64 // Get served from cache
	Misses         uint64 // Get required a file read
	Reads          uint64 // pages read from the file
	Writes         uint64 // pages written to the file
	Evictions      uint64 // frames evicted to make room
	PrefetchReads  uint64 // pages read by the readahead prefetcher
	PrefetchHits   uint64 // Gets served from a prefetched frame
	PrefetchWasted uint64 // prefetched frames dropped before any Get used them
}

// padUint64 is an atomic counter padded to its own cache line. Parallel
// readers increment Hits on every page Get; packing the counters into
// adjacent words would make each increment invalidate the line holding
// all of them in every other core's cache (false sharing). 64-byte lines
// cover x86-64 and most arm64 parts.
type padUint64 struct {
	v uint64
	_ [56]byte
}

// statCounters are the live counters behind Stats, one cache line each.
// They are atomics, but every increment happens while the owning shard's
// latch is held (shared or exclusive), so holding a shard latch
// exclusively excludes increments — that is what makes Stats consistent.
type statCounters struct {
	hits           padUint64
	misses         padUint64
	reads          padUint64
	writes         padUint64
	evictions      padUint64
	prefetchReads  padUint64
	prefetchHits   padUint64
	prefetchWasted padUint64
}

type frame struct {
	id         PageID
	data       []byte
	pins       atomic.Int32
	used       atomic.Bool // referenced since the clock hand last passed
	prefetched atomic.Bool // loaded by readahead and not yet served to a Get
	dirty      bool // buffer differs from the file; writer-owned, see shard doc
	logged     bool // dirty content captured by the WAL; under no-steal, eviction may write only logged frames
	ringIdx    int  // position in shard.ring; maintained under the shard latch
}

// inflightRead is one registered in-progress file read (demand miss or
// prefetch). Waiters block on done and then retry their lookup; the
// epoch recorded at registration lets DropCache and Discard invalidate
// the completion so a dropped cache is never repopulated with bytes read
// before the drop.
type inflightRead struct {
	done  chan struct{}
	epoch uint64
}

// shard is one lock stripe of the pool. Pin counts and reference bits on
// frames are atomics so the hit path never serializes; dirty and logged
// flags are only accessed by the external writer or under the shard latch
// exclusive.
type shard struct {
	mu       sync.RWMutex
	frames   map[PageID]*frame        // guarded by mu
	ring     []*frame                 // guarded by mu; clock order; eviction candidates
	hand     int                      // guarded by mu; clock hand index into ring
	inflight map[PageID]*inflightRead // guarded by mu; reads in progress
	stats    statCounters             // sync/atomic access only (atomicmix-enforced); incremented under mu (shared or exclusive)
	_        [64]byte                 // keep neighbouring shards off this cache line
}

// maxShards bounds the stripe count; minShardFrames is the pool size at
// which striping starts to pay (below it a single clock over the whole
// pool evicts strictly better).
const (
	maxShards      = 8
	minShardFrames = 64
)

// shardsFor picks the stripe count for a pool of the given capacity: the
// largest power of two that leaves at least minShardFrames frames per
// shard, capped at maxShards.
func shardsFor(capacity int) int {
	n := 1
	for n < maxShards && capacity >= 2*n*minShardFrames {
		n *= 2
	}
	return n
}

// Pager caches pages of a File with a clock replacement policy per shard
// and a global frame budget.
type Pager struct {
	f        File
	capacity int
	shards   []shard
	mask     uint32        // len(shards)-1; shard index = id & mask
	nFrames  atomic.Int64  // total cached frames, all shards
	nPages   atomic.Uint32 // allocated page count
	epoch    atomic.Uint64 // bumped by DropCache/Discard to invalidate in-flight reads
	closed   atomic.Bool   // set once by Close; checked on every entry point
	noSteal  atomic.Bool   // eviction policy; see SetNoSteal

	// Readahead state; see prefetch.go. pfCh and pfStop are created by the
	// first enabling SetReadAhead, which must happen before the pager is
	// shared (the engine configures readahead at mount time).
	ra        atomic.Int32 // prefetch distance in pages; 0 = disabled
	pfCh      chan PageID
	pfStop    chan struct{}
	pfWG      sync.WaitGroup
	pfStopped atomic.Bool
}

// DefaultCapacity is the default buffer pool size in frames (1024 pages =
// 4 MiB), chosen small enough that the paper's cold/warm distinction is
// visible on realistic workloads.
const DefaultCapacity = 1024

// New returns a Pager over f holding at most capacity pages in memory
// (DefaultCapacity if capacity <= 0). The file length must be a multiple
// of PageSize.
func New(f File, capacity int) (*Pager, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("pager: size: %w", err)
	}
	if size%PageSize != 0 {
		return nil, fmt.Errorf("pager: file size %d not a multiple of page size", size)
	}
	n := shardsFor(capacity)
	p := &Pager{
		f:        f,
		capacity: capacity,
		shards:   make([]shard, n),
		mask:     uint32(n - 1),
	}
	for i := range p.shards {
		//segdifflint:ignore lockcheck the pager is still being constructed inside New and not yet shared
		p.shards[i].frames = make(map[PageID]*frame)
		//segdifflint:ignore lockcheck the pager is still being constructed inside New and not yet shared
		p.shards[i].inflight = make(map[PageID]*inflightRead)
	}
	p.nPages.Store(uint32(size / PageSize))
	return p, nil
}

// shardOf returns the shard owning id. Consecutive PageIDs map to
// different shards, so a sequential scan's misses spread across stripes.
func (p *Pager) shardOf(id PageID) *shard {
	return &p.shards[uint32(id)&p.mask]
}

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() PageID { return PageID(p.nPages.Load()) }

// Capacity returns the buffer pool capacity in frames.
func (p *Pager) Capacity() int { return p.capacity }

// lockAll acquires every shard latch exclusively in ascending shard
// order — the fixed order makes the all-shard operations deadlock-free
// against each other (no other code path holds two shard latches at
// once).
func (p *Pager) lockAll() {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
}

func (p *Pager) unlockAll() {
	for i := len(p.shards) - 1; i >= 0; i-- {
		p.shards[i].mu.Unlock()
	}
}

// addStats folds s's counters into st.
//
// locks: s.mu (any)
func addStats(s *shard, st *Stats) {
	st.Hits += atomic.LoadUint64(&s.stats.hits.v)
	st.Misses += atomic.LoadUint64(&s.stats.misses.v)
	st.Reads += atomic.LoadUint64(&s.stats.reads.v)
	st.Writes += atomic.LoadUint64(&s.stats.writes.v)
	st.Evictions += atomic.LoadUint64(&s.stats.evictions.v)
	st.PrefetchReads += atomic.LoadUint64(&s.stats.prefetchReads.v)
	st.PrefetchHits += atomic.LoadUint64(&s.stats.prefetchHits.v)
	st.PrefetchWasted += atomic.LoadUint64(&s.stats.prefetchWasted.v)
}

// Stats returns a consistent snapshot of the cumulative counters: every
// counter increment happens under a shard latch, and the snapshot holds
// all of them, so the cross-counter invariants documented on Stats hold
// exactly (fault-free).
func (p *Pager) Stats() Stats {
	p.lockAll()
	defer p.unlockAll()
	var st Stats
	for i := range p.shards {
		addStats(&p.shards[i], &st)
	}
	return st
}

// Page is a pinned page handle, returned by value so the hot read path
// does not allocate. Data is valid until Release; writers must call
// MarkDirty before Release.
type Page struct {
	p  *Pager
	fr *frame
}

// ID returns the page's id.
func (pg *Page) ID() PageID { return pg.fr.id }

// Data returns the page's PageSize-byte buffer.
func (pg *Page) Data() []byte { return pg.fr.data }

// MarkDirty records that the page's buffer was modified. It must only be
// called while the caller holds the engine-level writer lock: readers never
// observe dirty-flag changes concurrently.
func (pg *Page) MarkDirty() {
	pg.fr.dirty = true
	pg.fr.logged = false
}

// Release unpins the page. The handle must not be used afterwards.
func (pg *Page) Release() {
	if pg.fr.pins.Add(-1) < 0 {
		panic("pager: release of unpinned page")
	}
	pg.fr = nil
}

// pin pins fr. The caller must hold the owning shard's latch (shared or
// exclusive): eviction holds it exclusively, so a cached frame cannot
// disappear between lookup and pin.
func (fr *frame) pin() {
	fr.pins.Add(1)
	fr.used.Store(true)
}

// checkGet validates a Get.
func (p *Pager) checkGet(id PageID) error {
	if p.closed.Load() {
		return fmt.Errorf("pager: use after close")
	}
	if n := p.nPages.Load(); uint32(id) >= n {
		return fmt.Errorf("pager: page %d out of range (have %d)", id, n)
	}
	return nil
}

// insertFrame adds fr to s's map and clock ring and charges the global
// frame budget.
//
// locks: s.mu
func (p *Pager) insertFrame(s *shard, fr *frame) {
	fr.ringIdx = len(s.ring)
	s.ring = append(s.ring, fr)
	s.frames[fr.id] = fr
	p.nFrames.Add(1)
}

// removeFrame deletes fr from s's map and clock ring (swap-remove),
// refunds the frame budget, and accounts a never-used prefetched frame as
// wasted.
//
// locks: s.mu
func (p *Pager) removeFrame(s *shard, fr *frame) {
	last := s.ring[len(s.ring)-1]
	s.ring[fr.ringIdx] = last
	last.ringIdx = fr.ringIdx
	s.ring = s.ring[:len(s.ring)-1]
	delete(s.frames, fr.id)
	p.nFrames.Add(-1)
	if fr.prefetched.Load() {
		atomic.AddUint64(&s.stats.prefetchWasted.v, 1)
	}
}

// Allocate appends a zeroed page to the file and returns it pinned.
func (p *Pager) Allocate() (Page, error) {
	for {
		if p.closed.Load() {
			return Page{}, fmt.Errorf("pager: use after close")
		}
		id := p.nPages.Load()
		s := p.shardOf(PageID(id))
		s.mu.Lock()
		if p.closed.Load() {
			s.mu.Unlock()
			return Page{}, fmt.Errorf("pager: use after close")
		}
		if err := p.makeRoom(s); err != nil {
			s.mu.Unlock()
			return Page{}, err
		}
		if !p.nPages.CompareAndSwap(id, id+1) {
			// Lost a race with a concurrent Allocate; the new count may
			// belong to a different shard.
			s.mu.Unlock()
			continue
		}
		// New frames start with the used bit clear: recency is earned by a
		// later Get hit, which keeps re-referenced pages ahead of one-shot
		// scans in the clock order.
		fr := &frame{id: PageID(id), data: make([]byte, PageSize), dirty: true}
		fr.pins.Store(1)
		p.insertFrame(s, fr)
		s.mu.Unlock()
		return Page{p: p, fr: fr}, nil
	}
}

// hitLocked finishes a Get that found a cached frame.
//
// locks: s.mu (any)
func hitLocked(s *shard, fr *frame) {
	fr.pin()
	if fr.prefetched.CompareAndSwap(true, false) {
		atomic.AddUint64(&s.stats.prefetchHits.v, 1)
	}
	atomic.AddUint64(&s.stats.hits.v, 1)
}

// Get returns the page with the given id, pinned. Cache hits run under the
// shard's shared latch and proceed in parallel; a miss registers an
// in-flight read, performs the file read with no latch held, and inserts
// under the exclusive latch. A Get that finds another goroutine's read in
// flight (demand or prefetch) waits for it instead of reading twice.
func (p *Pager) Get(id PageID) (Page, error) {
	s := p.shardOf(id)
	for {
		s.mu.RLock()
		if err := p.checkGet(id); err != nil {
			s.mu.RUnlock()
			return Page{}, err
		}
		if fr, ok := s.frames[id]; ok {
			hitLocked(s, fr)
			s.mu.RUnlock()
			return Page{p: p, fr: fr}, nil
		}
		s.mu.RUnlock()

		fr, retry, err := p.loadDemand(s, id)
		if err != nil {
			return Page{}, err
		}
		if retry {
			continue
		}
		return Page{p: p, fr: fr}, nil
	}
}

// loadDemand resolves a Get miss for id: it joins an in-flight read if one
// exists (retry=true after it completes), otherwise reads the page itself
// and inserts it pinned. A completion invalidated by a concurrent
// DropCache/Discard (epoch mismatch) discards the bytes and asks the
// caller to retry, so the caller never observes pre-drop file content
// through a post-drop cache.
func (p *Pager) loadDemand(s *shard, id PageID) (fr *frame, retry bool, err error) {
	s.mu.Lock()
	if err := p.checkGet(id); err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	if fr, ok := s.frames[id]; ok {
		// A concurrent read loaded the page between our two lookups.
		hitLocked(s, fr)
		s.mu.Unlock()
		return fr, false, nil
	}
	if fl, ok := s.inflight[id]; ok {
		done := fl.done
		s.mu.Unlock()
		<-done
		return nil, true, nil
	}
	fl := &inflightRead{done: make(chan struct{}), epoch: p.epoch.Load()}
	s.inflight[id] = fl
	s.mu.Unlock()

	data := make([]byte, PageSize)
	_, rerr := p.f.ReadAt(data, int64(id)*PageSize)

	s.mu.Lock()
	delete(s.inflight, id)
	defer close(fl.done)
	if rerr != nil {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("pager: read page %d: %w", id, rerr)
	}
	if fl.epoch != p.epoch.Load() {
		// DropCache/Discard ran while the read was in flight: the bytes may
		// predate the drop's flush. Retry from a clean slate.
		s.mu.Unlock()
		return nil, true, nil
	}
	if err := p.makeRoom(s); err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	fr = &frame{id: id, data: data}
	fr.pins.Store(1)
	p.insertFrame(s, fr)
	atomic.AddUint64(&s.stats.misses.v, 1)
	atomic.AddUint64(&s.stats.reads.v, 1)
	s.mu.Unlock()
	return fr, false, nil
}

// makeRoom evicts unpinned frames chosen by s's clock hand until the
// global frame budget admits a new frame. Recently referenced frames get
// a second chance (their used bit is cleared on the first pass). If no
// frame of this shard is evictable (pinned, or dirty-and-unlogged under
// no-steal) the pool is allowed to grow past capacity — eviction never
// reaches into another shard, which keeps the latch discipline flat.
// Holding s.mu exclusively means a victim with zero pins cannot be
// re-pinned while it is written out.
//
// locks: s.mu
func (p *Pager) makeRoom(s *shard) error {
	for int(p.nFrames.Load()) >= p.capacity && len(s.ring) > 0 {
		var victim *frame
		// Two revolutions: the first clears reference bits, the second
		// must find a victim if any frame is evictable at all.
		for i := 0; i < 2*len(s.ring); i++ {
			if s.hand >= len(s.ring) {
				s.hand = 0
			}
			fr := s.ring[s.hand]
			s.hand++
			if fr.pins.Load() != 0 {
				continue
			}
			if p.noSteal.Load() && fr.dirty && !fr.logged {
				continue // uncommitted content must not reach the file
			}
			if fr.used.CompareAndSwap(true, false) {
				continue // second chance
			}
			victim = fr
			break
		}
		if victim == nil {
			return nil // nothing evictable in this shard: overcommit
		}
		if victim.dirty {
			if err := p.writeFrame(s, victim); err != nil {
				return err // victim stays cached; retry on a later miss
			}
		}
		p.removeFrame(s, victim)
		atomic.AddUint64(&s.stats.evictions.v, 1)
	}
	return nil
}

// SetNoSteal controls the eviction policy required by write-ahead
// logging: while enabled, dirty frames whose content has not been captured
// by LogDirty are never written to the file by eviction (the pool
// overcommits instead). Flush, Sync, DropCache and Close still write all
// dirty frames — they are checkpoint operations.
func (p *Pager) SetNoSteal(on bool) {
	p.noSteal.Store(on)
}

// collectFrames appends s's cached frames matching keep to out.
//
// locks: s.mu (any)
func collectFrames(s *shard, keep func(*frame) bool, out []*frame) []*frame {
	for _, fr := range s.frames {
		if keep(fr) {
			out = append(out, fr)
		}
	}
	return out
}

// sortedFramesLocked returns the cached frames matching keep in ascending
// page order across all shards. The checkpoint paths iterate in this
// order so the engine's file-operation sequence — and hence the WAL's
// byte layout — never depends on map iteration order: the crash harness
// (internal/crashtest) requires that a given (seed, fault script)
// reproduces the exact same operation stream byte for byte.
//
// The caller must hold every shard latch (lockAll).
func (p *Pager) sortedFramesLocked(keep func(*frame) bool) []*frame {
	var out []*frame
	for i := range p.shards {
		out = collectFrames(&p.shards[i], keep, out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// LogDirty invokes fn for every dirty frame whose content has not yet been
// logged, in ascending page order, and marks those frames logged (making
// them evictable again under no-steal). The data slice passed to fn is
// only valid during the call.
func (p *Pager) LogDirty(fn func(id PageID, data []byte) error) error {
	p.lockAll()
	defer p.unlockAll()
	for _, fr := range p.sortedFramesLocked(func(fr *frame) bool { return fr.dirty && !fr.logged }) {
		if err := fn(fr.id, fr.data); err != nil {
			return err
		}
		fr.logged = true
	}
	return nil
}

// writeFrame writes fr's buffer back to the file and clears its dirty
// flag; eviction and the flush paths call it with the frame unpinned or
// the pool quiesced. s is fr's owning shard (for the write counter).
//
// locks: s.mu
func (p *Pager) writeFrame(s *shard, fr *frame) error {
	if _, err := p.f.WriteAt(fr.data, int64(fr.id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", fr.id, err)
	}
	fr.dirty = false
	atomic.AddUint64(&s.stats.writes.v, 1)
	return nil
}

// flushAllLocked writes every dirty cached page back to the file in
// ascending page order (no fsync). The caller must hold every shard latch.
func (p *Pager) flushAllLocked() error {
	for _, fr := range p.sortedFramesLocked(func(fr *frame) bool { return fr.dirty }) {
		if err := p.writeFrame(p.shardOf(fr.id), fr); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes every dirty cached page back to the file (without fsync).
func (p *Pager) Flush() error {
	p.lockAll()
	defer p.unlockAll()
	return p.flushAllLocked()
}

// Sync flushes dirty pages and fsyncs the file.
func (p *Pager) Sync() error {
	p.lockAll()
	defer p.unlockAll()
	return p.syncAllLocked()
}

// syncAllLocked flushes all dirty pages and fsyncs the file. The caller
// must hold every shard latch.
func (p *Pager) syncAllLocked() error {
	if err := p.flushAllLocked(); err != nil {
		return err
	}
	return p.f.Sync()
}

// inflightWaits appends the done channels of s's in-flight reads to out.
//
// locks: s.mu (any)
func inflightWaits(s *shard, out []chan struct{}) []chan struct{} {
	for _, fl := range s.inflight {
		out = append(out, fl.done)
	}
	return out
}

// dropShard evicts every unpinned frame of s and resets its clock hand.
//
// locks: s.mu
func (p *Pager) dropShard(s *shard) {
	for i := 0; i < len(s.ring); {
		fr := s.ring[i]
		if fr.pins.Load() != 0 {
			i++
			continue
		}
		p.removeFrame(s, fr) // swap-remove: re-examine index i
		atomic.AddUint64(&s.stats.evictions.v, 1)
	}
	s.hand = 0
}

// DropCache flushes dirty pages and evicts every unpinned frame, simulating
// a cold cache (the experiments' "operating system cache is flushed before
// every query"). Pinned frames are retained. Queued readahead requests are
// discarded, and reads already in flight are invalidated (their completions
// will not repopulate the cache) and drained before DropCache returns, so
// a drop-then-scan never observes a stale prefetched frame.
func (p *Pager) DropCache() error {
	p.drainPrefetchQueue()
	p.lockAll()
	p.epoch.Add(1)
	var waits []chan struct{}
	for i := range p.shards {
		waits = inflightWaits(&p.shards[i], waits)
	}
	err := p.flushAllLocked()
	if err == nil {
		for i := range p.shards {
			p.dropShard(&p.shards[i])
		}
	}
	p.unlockAll()
	// Drain with no latch held: the in-flight readers need the shard latch
	// to finish (and will discard their bytes under the new epoch).
	for _, ch := range waits {
		<-ch
	}
	return err
}

// pinnedPage returns a pinned page id of s, if any.
//
// locks: s.mu (any)
func pinnedPage(s *shard) (PageID, bool) {
	for _, fr := range s.frames {
		if fr.pins.Load() > 0 {
			return fr.id, true
		}
	}
	return 0, false
}

// discardShard drops every frame of s without writing back and returns
// the number dropped.
//
// locks: s.mu
func discardShard(s *shard) int64 {
	n := int64(len(s.frames))
	for _, fr := range s.frames {
		if fr.prefetched.Load() {
			atomic.AddUint64(&s.stats.prefetchWasted.v, 1)
		}
	}
	s.frames = make(map[PageID]*frame)
	s.ring = s.ring[:0]
	s.hand = 0
	return n
}

// Discard drops every cached frame without writing anything back and
// re-derives the page count from the file. It is the batch-abort hook:
// uncommitted dirty frames vanish, and the engine then restores committed
// page content by WAL replay before re-reading through the pager.
// Outstanding pins are an error. Like DropCache, it invalidates and
// drains in-flight reads.
func (p *Pager) Discard() error {
	p.drainPrefetchQueue()
	p.lockAll()
	if p.closed.Load() {
		p.unlockAll()
		return fmt.Errorf("pager: use after close")
	}
	for i := range p.shards {
		if id, pinned := pinnedPage(&p.shards[i]); pinned {
			p.unlockAll()
			return fmt.Errorf("pager: discard with page %d still pinned", id)
		}
	}
	p.epoch.Add(1)
	var waits []chan struct{}
	var dropped int64
	for i := range p.shards {
		waits = inflightWaits(&p.shards[i], waits)
		dropped += discardShard(&p.shards[i])
	}
	p.nFrames.Add(-dropped)
	size, err := p.f.Size()
	if err != nil {
		p.unlockAll()
		return err
	}
	p.nPages.Store(uint32(size / PageSize))
	p.unlockAll()
	for _, ch := range waits {
		<-ch
	}
	return nil
}

// resetStats zeroes s's counters. Every other accessor touches these
// cells through sync/atomic, so the reset stores atomically too: the old
// plain struct overwrite (`s.stats = statCounters{}`) was only safe as
// long as every reader happened to hold latches, and would silently
// become a tearing race the moment anyone adds a latch-free counter
// probe. atomicmix forbids the mixed pattern outright.
//
// locks: s.mu
func resetStats(s *shard) {
	atomic.StoreUint64(&s.stats.hits.v, 0)
	atomic.StoreUint64(&s.stats.misses.v, 0)
	atomic.StoreUint64(&s.stats.reads.v, 0)
	atomic.StoreUint64(&s.stats.writes.v, 0)
	atomic.StoreUint64(&s.stats.evictions.v, 0)
	atomic.StoreUint64(&s.stats.prefetchReads.v, 0)
	atomic.StoreUint64(&s.stats.prefetchHits.v, 0)
	atomic.StoreUint64(&s.stats.prefetchWasted.v, 0)
}

// ResetStats zeroes the counters (used between experiment runs).
func (p *Pager) ResetStats() {
	p.lockAll()
	defer p.unlockAll()
	for i := range p.shards {
		resetStats(&p.shards[i])
	}
}

// SizeBytes returns the file size implied by the allocated page count.
func (p *Pager) SizeBytes() int64 {
	return int64(p.nPages.Load()) * PageSize
}

// Close stops the prefetcher, flushes, and closes the underlying file.
// Pinned pages outstanding at Close are an error.
func (p *Pager) Close() error {
	p.stopPrefetch()
	for {
		p.lockAll()
		if p.closed.Load() {
			p.unlockAll()
			return nil
		}
		for i := range p.shards {
			if id, pinned := pinnedPage(&p.shards[i]); pinned {
				p.unlockAll()
				return fmt.Errorf("pager: close with page %d still pinned", id)
			}
		}
		var waits []chan struct{}
		for i := range p.shards {
			waits = inflightWaits(&p.shards[i], waits)
		}
		if len(waits) == 0 {
			if err := p.syncAllLocked(); err != nil {
				p.unlockAll()
				return err
			}
			p.closed.Store(true)
			p.unlockAll()
			return p.f.Close()
		}
		// Demand reads still in flight: let them finish against the open
		// file, then re-examine the pool.
		p.unlockAll()
		for _, ch := range waits {
			<-ch
		}
	}
}
