// Package pager implements the buffer pool of the embedded storage engine:
// fixed-size pages cached in memory with LRU eviction, pin counts, dirty
// tracking, and an explicit DropCache hook used by the cold-cache
// experiments (the paper flushes the operating system cache before every
// query in Sections 6.1–6.3 and studies the warm-cache case in 6.4).
//
// A Pager is not safe for concurrent use; the query engine layers its own
// locking above it.
package pager

import (
	"container/list"
	"fmt"
)

// PageSize is the size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within one file; pages are numbered from 0.
type PageID uint32

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      uint64 // Get served from cache
	Misses    uint64 // Get required a file read
	Reads     uint64 // pages read from the file
	Writes    uint64 // pages written to the file
	Evictions uint64 // frames evicted to make room
}

type frame struct {
	id     PageID
	data   []byte
	dirty  bool
	logged bool // dirty content captured by the WAL (safe to steal)
	pins   int
	elem   *list.Element // position in lru; nil while pinned
}

// Pager caches pages of a File with an LRU replacement policy.
type Pager struct {
	f        File
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used unpinned frame
	nPages   PageID
	stats    Stats
	closed   bool
	noSteal  bool
}

// DefaultCapacity is the default buffer pool size in frames (1024 pages =
// 4 MiB), chosen small enough that the paper's cold/warm distinction is
// visible on realistic workloads.
const DefaultCapacity = 1024

// New returns a Pager over f holding at most capacity pages in memory
// (DefaultCapacity if capacity <= 0). The file length must be a multiple
// of PageSize.
func New(f File, capacity int) (*Pager, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("pager: size: %w", err)
	}
	if size%PageSize != 0 {
		return nil, fmt.Errorf("pager: file size %d not a multiple of page size", size)
	}
	return &Pager{
		f:        f,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
		nPages:   PageID(size / PageSize),
	}, nil
}

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() PageID { return p.nPages }

// Capacity returns the buffer pool capacity in frames.
func (p *Pager) Capacity() int { return p.capacity }

// Stats returns a copy of the cumulative counters.
func (p *Pager) Stats() Stats { return p.stats }

// Page is a pinned page handle. Data is valid until Release; writers must
// call MarkDirty before Release.
type Page struct {
	p  *Pager
	fr *frame
}

// ID returns the page's id.
func (pg *Page) ID() PageID { return pg.fr.id }

// Data returns the page's PageSize-byte buffer.
func (pg *Page) Data() []byte { return pg.fr.data }

// MarkDirty records that the page's buffer was modified.
func (pg *Page) MarkDirty() {
	pg.fr.dirty = true
	pg.fr.logged = false
}

// Release unpins the page. The handle must not be used afterwards.
func (pg *Page) Release() {
	fr := pg.fr
	if fr.pins <= 0 {
		panic("pager: release of unpinned page")
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = pg.p.lru.PushFront(fr)
	}
	pg.fr = nil
}

// Allocate appends a zeroed page to the file and returns it pinned.
func (p *Pager) Allocate() (*Page, error) {
	if p.closed {
		return nil, fmt.Errorf("pager: use after close")
	}
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	id := p.nPages
	p.nPages++
	fr := &frame{id: id, data: make([]byte, PageSize), dirty: true, pins: 1}
	p.frames[id] = fr
	return &Page{p: p, fr: fr}, nil
}

// Get returns the page with the given id, pinned.
func (p *Pager) Get(id PageID) (*Page, error) {
	if p.closed {
		return nil, fmt.Errorf("pager: use after close")
	}
	if id >= p.nPages {
		return nil, fmt.Errorf("pager: page %d out of range (have %d)", id, p.nPages)
	}
	if fr, ok := p.frames[id]; ok {
		p.stats.Hits++
		if fr.pins == 0 {
			p.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pins++
		return &Page{p: p, fr: fr}, nil
	}
	p.stats.Misses++
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	data := make([]byte, PageSize)
	if _, err := p.f.ReadAt(data, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.stats.Reads++
	fr := &frame{id: id, data: data, pins: 1}
	p.frames[id] = fr
	return &Page{p: p, fr: fr}, nil
}

// makeRoom evicts LRU unpinned frames until a new frame fits. If every
// frame is pinned (or, under no-steal, dirty and unlogged) the pool is
// allowed to grow past capacity.
func (p *Pager) makeRoom() error {
	for len(p.frames) >= p.capacity {
		var victim *list.Element
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			fr := e.Value.(*frame)
			if p.noSteal && fr.dirty && !fr.logged {
				continue // uncommitted content must not reach the file
			}
			victim = e
			break
		}
		if victim == nil {
			return nil // nothing evictable: overcommit
		}
		fr := victim.Value.(*frame)
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return err
			}
		}
		p.lru.Remove(victim)
		delete(p.frames, fr.id)
		p.stats.Evictions++
	}
	return nil
}

// SetNoSteal controls the eviction policy required by write-ahead
// logging: while enabled, dirty frames whose content has not been captured
// by LogDirty are never written to the file by eviction (the pool
// overcommits instead). Flush, Sync, DropCache and Close still write all
// dirty frames — they are checkpoint operations.
func (p *Pager) SetNoSteal(on bool) { p.noSteal = on }

// LogDirty invokes fn for every dirty frame whose content has not yet been
// logged, in unspecified order, and marks those frames logged (making them
// evictable again under no-steal). The data slice passed to fn is only
// valid during the call.
func (p *Pager) LogDirty(fn func(id PageID, data []byte) error) error {
	for _, fr := range p.frames {
		if fr.dirty && !fr.logged {
			if err := fn(fr.id, fr.data); err != nil {
				return err
			}
			fr.logged = true
		}
	}
	return nil
}

func (p *Pager) writeFrame(fr *frame) error {
	if _, err := p.f.WriteAt(fr.data, int64(fr.id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", fr.id, err)
	}
	fr.dirty = false
	p.stats.Writes++
	return nil
}

// Flush writes every dirty cached page back to the file (without fsync).
func (p *Pager) Flush() error {
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync flushes dirty pages and fsyncs the file.
func (p *Pager) Sync() error {
	if err := p.Flush(); err != nil {
		return err
	}
	return p.f.Sync()
}

// DropCache flushes dirty pages and evicts every unpinned frame, simulating
// a cold cache (the experiments' "operating system cache is flushed before
// every query"). Pinned frames are retained.
func (p *Pager) DropCache() error {
	if err := p.Flush(); err != nil {
		return err
	}
	for e := p.lru.Front(); e != nil; {
		next := e.Next()
		fr := e.Value.(*frame)
		p.lru.Remove(e)
		delete(p.frames, fr.id)
		p.stats.Evictions++
		e = next
	}
	return nil
}

// ResetStats zeroes the counters (used between experiment runs).
func (p *Pager) ResetStats() { p.stats = Stats{} }

// SizeBytes returns the file size implied by the allocated page count.
func (p *Pager) SizeBytes() int64 { return int64(p.nPages) * PageSize }

// Close flushes and closes the underlying file. Pinned pages outstanding at
// Close are an error.
func (p *Pager) Close() error {
	if p.closed {
		return nil
	}
	for _, fr := range p.frames {
		if fr.pins > 0 {
			return fmt.Errorf("pager: close with page %d still pinned", fr.id)
		}
	}
	if err := p.Sync(); err != nil {
		return err
	}
	p.closed = true
	return p.f.Close()
}
