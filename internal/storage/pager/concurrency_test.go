package pager

// Concurrent-reader coverage for the buffer pool. Run with -race.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// buildFile returns a pager over nPages pages where page i's first eight
// bytes hold i, flushed so reads can verify content after eviction.
func buildFile(t *testing.T, capacity, nPages int) *Pager {
	t.Helper()
	p, err := New(NewMemFile(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nPages; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(pg.Data(), uint64(i))
		pg.MarkDirty()
		pg.Release()
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestConcurrentGet has many goroutines pulling random pages through a
// pool far smaller than the file, forcing constant misses and evictions
// alongside hits. Every read must observe the page's own content.
func TestConcurrentGet(t *testing.T) {
	const nPages = 256
	p := buildFile(t, 32, nPages)
	defer func() {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				id := PageID(rng.Intn(nPages))
				pg, err := p.Get(id)
				if err != nil {
					errCh <- err
					return
				}
				if got := binary.LittleEndian.Uint64(pg.Data()); got != uint64(id) {
					pg.Release()
					errCh <- fmt.Errorf("page %d holds content of page %d", id, got)
					return
				}
				pg.Release()
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, goroutines*iters)
	}
	if st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("pool of 32 over 256 pages should thrash, stats %+v", st)
	}
}

// TestConcurrentGetSharedHotSet verifies the fast path: when the working
// set fits the pool, concurrent readers mostly hit and stats stay exact.
func TestConcurrentGetSharedHotSet(t *testing.T) {
	const nPages = 16
	p := buildFile(t, 64, nPages)
	defer p.Close()
	p.ResetStats()

	const goroutines = 8
	const iters = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				pg, err := p.Get(PageID(rng.Intn(nPages)))
				if err != nil {
					t.Error(err)
					return
				}
				pg.Release()
			}
		}(int64(g + 100))
	}
	wg.Wait()

	st := p.Stats()
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("lost lookups: hits %d + misses %d != %d", st.Hits, st.Misses, goroutines*iters)
	}
	if st.Misses > nPages {
		t.Fatalf("hot set misses %d > page count %d (double loads?)", st.Misses, nPages)
	}
}

// TestConcurrentReadersWithCheckpoints interleaves readers with Flush and
// DropCache (checkpoint operations take the exclusive lock) to shake out
// lock-ordering bugs between mu and the LRU latch.
func TestConcurrentReadersWithCheckpoints(t *testing.T) {
	const nPages = 64
	p := buildFile(t, 16, nPages)
	defer p.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pg, err := p.Get(PageID(rng.Intn(nPages)))
				if err != nil {
					t.Error(err)
					return
				}
				if got := binary.LittleEndian.Uint64(pg.Data()); got >= nPages {
					t.Errorf("garbage page content %d", got)
				}
				pg.Release()
			}
		}(int64(g + 7))
	}
	for i := 0; i < 50; i++ {
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := p.DropCache(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentResetStats hammers counter resets and snapshots against
// readers bumping the same counters, and then verifies the cells are
// coherently zeroable. resetStats used to overwrite the whole
// statCounters struct with plain stores — mixed plain/atomic access that
// the atomicmix analyzer now rejects statically (its structReset fixture
// is this exact shape); this test pins the dynamic behavior of the
// per-cell atomic replacement under -race.
func TestConcurrentResetStats(t *testing.T) {
	const nPages = 64
	p := buildFile(t, 16, nPages)
	defer func() {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pg, err := p.Get(PageID(rng.Intn(nPages)))
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				pg.Release()
			}
		}(int64(g))
	}
	for i := 0; i < 200; i++ {
		p.ResetStats()
		_ = p.Stats()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// After the final reset+traffic the counters must still be coherent:
	// a fresh reset zeroes them completely.
	p.ResetStats()
	s := p.Stats()
	if s.Hits != 0 || s.Misses != 0 || s.Reads != 0 {
		t.Fatalf("counters not zeroed after ResetStats: %+v", s)
	}
}
