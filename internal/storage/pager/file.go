package pager

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the backing store abstraction for a Pager: a flat, random-access
// byte array. *OSFile backs a Pager with a real file; *MemFile backs it
// with memory (used by the in-memory database mode and by tests); the
// faultfs package wraps either with scripted fault injection for the crash
// harness. The engine also uses File for its write-ahead log, which is why
// the interface carries Truncate.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Truncate changes the length to size bytes (growing with zeros).
	Truncate(size int64) error
	// Sync durably flushes written data where applicable.
	Sync() error
	Close() error
}

// OSFile adapts *os.File to the File interface.
type OSFile struct {
	f *os.File
}

// OpenOSFile opens (creating if needed) the file at path for paged I/O.
func OpenOSFile(path string) (*OSFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	return &OSFile{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (o *OSFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (o *OSFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }

// Size returns the file length.
func (o *OSFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Truncate changes the file length.
func (o *OSFile) Truncate(size int64) error { return o.f.Truncate(size) }

// Sync fsyncs the file.
func (o *OSFile) Sync() error { return o.f.Sync() }

// Close closes the file.
func (o *OSFile) Close() error { return o.f.Close() }

// MemFile is an in-memory File. It is safe for concurrent use.
type MemFile struct {
	mu  sync.RWMutex
	buf []byte // guarded by mu
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadAt implements io.ReaderAt.
func (m *MemFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pager: memfile read at negative offset %d", off)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the buffer as needed. Negative
// offsets are rejected with an error, matching *os.File (the crash harness
// replays arbitrary offsets into MemFile snapshots, so this must not
// panic).
func (m *MemFile) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pager: memfile write at negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(m.buf)) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:end], p)
	return len(p), nil
}

// Truncate resizes the buffer, growing with zeros.
func (m *MemFile) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("pager: memfile truncate to negative size %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if size <= int64(len(m.buf)) {
		m.buf = m.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, m.buf)
	m.buf = grown
	return nil
}

// Size returns the buffer length.
func (m *MemFile) Size() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.buf)), nil
}

// Sync is a no-op for memory.
func (m *MemFile) Sync() error { return nil }

// Close is a no-op for memory.
func (m *MemFile) Close() error { return nil }
