package pager

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func newMemPager(t *testing.T, capacity int) *Pager {
	t.Helper()
	p, err := New(NewMemFile(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllocateAndGet(t *testing.T) {
	p := newMemPager(t, 8)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if pg.ID() != 0 {
		t.Fatalf("first page id = %d", pg.ID())
	}
	copy(pg.Data(), "hello")
	pg.MarkDirty()
	pg.Release()

	got, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data()[:5], []byte("hello")) {
		t.Fatalf("data = %q", got.Data()[:5])
	}
	got.Release()
	if p.NumPages() != 1 {
		t.Fatalf("NumPages = %d", p.NumPages())
	}
}

func TestGetOutOfRange(t *testing.T) {
	p := newMemPager(t, 8)
	if _, err := p.Get(0); err == nil {
		t.Fatal("get on empty pager accepted")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	f := NewMemFile()
	p, err := New(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fill 4 pages through a pool of 2 frames.
	for i := 0; i < 4; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(i + 1)
		pg.MarkDirty()
		pg.Release()
	}
	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions with capacity 2 and 4 pages")
	}
	// All pages must read back correctly.
	for i := 0; i < 4; i++ {
		pg, err := p.Get(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data()[0] != byte(i+1) {
			t.Fatalf("page %d data = %d", i, pg.Data()[0])
		}
		pg.Release()
	}
}

func TestLRUOrder(t *testing.T) {
	p := newMemPager(t, 2)
	for i := 0; i < 2; i++ {
		pg, _ := p.Allocate()
		pg.Release()
	}
	// Touch page 0 so page 1 is LRU.
	pg0, _ := p.Get(0)
	pg0.Release()
	// Allocating a third page must evict page 1, not page 0.
	pg2, _ := p.Allocate()
	pg2.Release()
	if !p.cachedForTest(0) {
		t.Fatal("recently used page 0 was evicted")
	}
	if p.cachedForTest(1) {
		t.Fatal("LRU page 1 was not evicted")
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	p := newMemPager(t, 1)
	pg0, _ := p.Allocate()
	// Pool is full with a pinned page; allocation must overcommit.
	pg1, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if !p.cachedForTest(0) {
		t.Fatal("pinned page evicted")
	}
	pg0.Release()
	pg1.Release()
}

func TestReleasePanicsWhenUnpinned(t *testing.T) {
	p := newMemPager(t, 4)
	pg, _ := p.Allocate()
	pg2 := pg // copy of handle
	pg.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	pg2.Release()
}

func TestHitMissCounters(t *testing.T) {
	p := newMemPager(t, 2)
	pg, _ := p.Allocate()
	pg.Release()
	g, _ := p.Get(0)
	g.Release()
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after warm get: %+v", st)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	g, _ = p.Get(0)
	g.Release()
	st = p.Stats()
	if st.Misses != 1 || st.Reads != 1 {
		t.Fatalf("stats after cold get: %+v", st)
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestDropCachePreservesData(t *testing.T) {
	p := newMemPager(t, 16)
	pg, _ := p.Allocate()
	copy(pg.Data(), "persist")
	pg.MarkDirty()
	pg.Release()
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	if n := p.cachedCountForTest(); n != 0 {
		t.Fatalf("%d frames cached after DropCache", n)
	}
	g, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Data()[:7], []byte("persist")) {
		t.Fatal("data lost by DropCache")
	}
	g.Release()
}

func TestOSFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := p.Allocate()
	copy(pg.Data(), "durable")
	pg.MarkDirty()
	pg.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(f2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d", p2.NumPages())
	}
	g, err := p2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Data()[:7], []byte("durable")) {
		t.Fatal("data not persisted")
	}
	g.Release()
	if p2.SizeBytes() != PageSize {
		t.Fatalf("SizeBytes = %d", p2.SizeBytes())
	}
}

func TestNewRejectsPartialPages(t *testing.T) {
	f := NewMemFile()
	if _, err := f.WriteAt([]byte("odd"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := New(f, 4); err == nil {
		t.Fatal("partial-page file accepted")
	}
}

func TestCloseWithPinnedPageFails(t *testing.T) {
	p := newMemPager(t, 4)
	pg, _ := p.Allocate()
	if err := p.Close(); err == nil {
		t.Fatal("close with pinned page accepted")
	}
	pg.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(0); err == nil {
		t.Fatal("use after close accepted")
	}
	if err := p.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

func TestMemFileReadPastEnd(t *testing.T) {
	m := NewMemFile()
	if _, err := m.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := m.ReadAt(buf, 0)
	if n != 3 || err == nil {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	if _, err := m.ReadAt(buf, 100); err == nil {
		t.Fatal("read past end accepted")
	}
}

func TestDefaultCapacity(t *testing.T) {
	p, err := New(NewMemFile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != DefaultCapacity {
		t.Fatalf("capacity = %d", p.Capacity())
	}
}

func TestOSFileOpenError(t *testing.T) {
	dir := t.TempDir()
	// A directory is not openable as a file with O_RDWR.
	if _, err := OpenOSFile(dir); err == nil {
		t.Fatal("opening a directory accepted")
	}
	_ = os.Remove(filepath.Join(dir, "nothing"))
}
