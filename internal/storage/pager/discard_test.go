package pager

import (
	"testing"
)

func TestDiscardDropsUnflushedWrites(t *testing.T) {
	f := NewMemFile()
	p, err := New(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	// One page flushed to the file, one allocated but never written out.
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg.Data()[0] = 1
	pg.MarkDirty()
	pg.Release()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	pg2, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg2.Data()[0] = 2
	pg2.MarkDirty()
	pg2.Release()

	if err := p.Discard(); err != nil {
		t.Fatal(err)
	}
	if p.NumPages() != 1 {
		t.Fatalf("page count after discard = %d, want 1 (file size)", p.NumPages())
	}
	got, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[0] != 1 {
		t.Fatalf("flushed page content lost: %d", got.Data()[0])
	}
	got.Release()
	if _, err := p.Get(1); err == nil {
		t.Fatal("discarded page still readable")
	}
}

func TestDiscardRefusesPinnedPages(t *testing.T) {
	p, err := New(NewMemFile(), 8)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Discard(); err == nil {
		t.Fatal("discard with pinned page accepted")
	}
	pg.Release()
	if err := p.Discard(); err != nil {
		t.Fatal(err)
	}
}
