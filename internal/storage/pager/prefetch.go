package pager

import "sync/atomic"

// Readahead prefetcher. Scans (heap sequential scans and B+tree
// leaf-chain walks) announce upcoming pages with Prefetch; a small pool
// of background workers reads them into the cache so the demand Get that
// follows is a hit, overlapping disk latency with per-row predicate work
// on the cold-cache path the paper measures.
//
// Invariants:
//   - Prefetch is strictly read-only: a prefetched frame enters the pool
//     clean (not dirty, never WAL-logged), so readahead cannot change the
//     engine's write-operation stream — the crash harness's fault points
//     are counted in write-class file operations and must not move.
//   - Prefetch is best-effort: a full queue drops the request, an I/O
//     error drops the page (the demand Get will surface it), and DropCache
//     and Discard cancel queued requests and invalidate in-flight ones.
//   - A prefetch and a demand Get of the same page never read it twice:
//     both register in the shard's in-flight table and joiners wait.

// prefetchWorkers is the size of the background read pool; prefetchQueue
// bounds the request channel. Two workers keep one read in flight while
// the next is being dispatched without spawning a thread herd per scan.
const (
	prefetchWorkers = 2
	prefetchQueue   = 64
)

// SetReadAhead sets the prefetch distance in pages (0 disables). Scans
// consult ReadAhead to decide how far ahead to announce pages. Enabling
// readahead starts the background workers; the call must happen before
// the pager is shared between goroutines (the engine configures it at
// mount time). Disabling after enabling only stops new dispatches; the
// workers stay until Close.
func (p *Pager) SetReadAhead(k int) {
	if k < 0 {
		k = 0
	}
	p.ra.Store(int32(k))
	if k > 0 && p.pfCh == nil {
		p.pfCh = make(chan PageID, prefetchQueue)
		p.pfStop = make(chan struct{})
		p.pfWG.Add(prefetchWorkers)
		for i := 0; i < prefetchWorkers; i++ {
			go p.prefetchWorker()
		}
	}
}

// ReadAhead returns the configured prefetch distance in pages.
func (p *Pager) ReadAhead() int { return int(p.ra.Load()) }

// Prefetch asks the background workers to load id into the cache. It is
// cheap and non-blocking: already-cached pages are skipped under the
// shard's shared latch, and a full queue drops the request.
func (p *Pager) Prefetch(id PageID) {
	if p.ra.Load() == 0 || p.pfCh == nil || p.pfStopped.Load() {
		return
	}
	s := p.shardOf(id)
	s.mu.RLock()
	_, cached := s.frames[id]
	s.mu.RUnlock()
	if cached {
		return
	}
	select {
	case p.pfCh <- id:
	default: // queue full: readahead is best-effort
	}
}

func (p *Pager) prefetchWorker() {
	defer p.pfWG.Done()
	for {
		select {
		case <-p.pfStop:
			return
		case id := <-p.pfCh:
			p.prefetchRead(id)
		}
	}
}

// prefetchRead loads id into the cache unpinned, marked prefetched. It
// mirrors the demand-miss path (register in flight, read with no latch
// held, insert under the exclusive latch) but never pins, never dirties,
// and swallows errors. A completion invalidated by DropCache/Discard
// (epoch mismatch) is counted as a wasted prefetch and discarded.
func (p *Pager) prefetchRead(id PageID) {
	s := p.shardOf(id)
	s.mu.Lock()
	if p.closed.Load() || uint32(id) >= p.nPages.Load() {
		s.mu.Unlock()
		return
	}
	if _, ok := s.frames[id]; ok {
		s.mu.Unlock()
		return
	}
	if _, ok := s.inflight[id]; ok {
		s.mu.Unlock()
		return // a demand read (or another prefetch) is already on it
	}
	fl := &inflightRead{done: make(chan struct{}), epoch: p.epoch.Load()}
	s.inflight[id] = fl
	s.mu.Unlock()

	data := make([]byte, PageSize)
	_, rerr := p.f.ReadAt(data, int64(id)*PageSize)

	s.mu.Lock()
	delete(s.inflight, id)
	defer close(fl.done)
	if rerr != nil {
		s.mu.Unlock()
		return // the demand Get will surface the error
	}
	atomic.AddUint64(&s.stats.reads.v, 1)
	atomic.AddUint64(&s.stats.prefetchReads.v, 1)
	if fl.epoch != p.epoch.Load() {
		// DropCache/Discard ran mid-read: the bytes may predate the drop.
		atomic.AddUint64(&s.stats.prefetchWasted.v, 1)
		s.mu.Unlock()
		return
	}
	if err := p.makeRoom(s); err != nil {
		atomic.AddUint64(&s.stats.prefetchWasted.v, 1)
		s.mu.Unlock()
		return
	}
	fr := &frame{id: id, data: data}
	fr.prefetched.Store(true)
	p.insertFrame(s, fr)
	s.mu.Unlock()
}

// drainPrefetchQueue discards queued (not yet started) readahead
// requests. DropCache and Discard call it so a cache drop is not
// immediately undone by a backlog of stale announcements; requests a
// worker has already dequeued are handled by the epoch check instead.
func (p *Pager) drainPrefetchQueue() {
	if p.pfCh == nil {
		return
	}
	for {
		select {
		case <-p.pfCh:
		default:
			return
		}
	}
}

// stopPrefetch shuts the workers down and waits for them; called by Close
// before the file is closed so no prefetch read can race the close.
func (p *Pager) stopPrefetch() {
	if p.pfCh == nil || !p.pfStopped.CompareAndSwap(false, true) {
		return
	}
	close(p.pfStop)
	p.pfWG.Wait()
}
