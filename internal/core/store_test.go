package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"segdiff/internal/feature"
	"segdiff/internal/naive"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/synth"
	"segdiff/internal/timeseries"
)

// randomSeries builds a random-walk series with occasional sharp moves so
// drops and jumps of interesting sizes exist.
func randomSeries(seed int64, n int) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := &timeseries.Series{}
	v := 0.0
	tt := int64(0)
	for i := 0; i < n; i++ {
		tt += 20 + rng.Int63n(60)
		step := rng.NormFloat64() * 0.5
		if rng.Intn(12) == 0 {
			step += rng.NormFloat64() * 4 // occasional sharp move
		}
		v += step
		if err := s.Append(timeseries.Point{T: tt, V: v}); err != nil {
			panic(err)
		}
	}
	return s
}

func memStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := OpenMemory(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ingest(t *testing.T, st *Store, s *timeseries.Series) {
	t.Helper()
	if err := st.AppendSeries(s); err != nil {
		t.Fatal(err)
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
}

func covered(ms []Match, t1, t2 int64) bool {
	for _, m := range ms {
		if m.TD <= t1 && t1 <= m.TC && m.TB <= t2 && t2 <= m.TA {
			return true
		}
	}
	return false
}

// maxAbsSlope of the stored PLA, used to bound the slack of integer-grid
// verification of returned matches.
func maxAbsSlope(t *testing.T, st *Store) float64 {
	t.Helper()
	segs, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	m := 0.0
	for _, g := range segs {
		if a := math.Abs(g.Slope()); a > m {
			m = a
		}
	}
	return m
}

// Theorem 1, first half: no true event is missed.
func TestNoFalseNegatives(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		series := randomSeries(seed, 400)
		st := memStore(t, Options{Epsilon: 0.4, Window: 4000})
		ingest(t, st, series)

		for _, q := range []struct {
			T int64
			V float64
		}{{500, -2}, {1500, -4}, {4000, -6}, {300, -1}} {
			events, err := naive.Drops(series, q.T, q.V)
			if err != nil {
				t.Fatal(err)
			}
			matches, err := st.SearchDrops(q.T, q.V)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events {
				if !covered(matches, e.T1, e.T2) {
					t.Fatalf("seed=%d T=%d V=%v: true event (%d,%d,Δv=%.3f) not covered by %d matches",
						seed, q.T, q.V, e.T1, e.T2, e.Dv, len(matches))
				}
			}
		}
	}
}

func TestNoFalseNegativesJumps(t *testing.T) {
	series := randomSeries(42, 400)
	st := memStore(t, Options{Epsilon: 0.4, Window: 4000})
	ingest(t, st, series)
	for _, q := range []struct {
		T int64
		V float64
	}{{500, 2}, {2000, 4}} {
		events, err := naive.Jumps(series, q.T, q.V)
		if err != nil {
			t.Fatal(err)
		}
		matches, err := st.SearchJumps(q.T, q.V)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if !covered(matches, e.T1, e.T2) {
				t.Fatalf("T=%d V=%v: true jump (%d,%d) not covered", q.T, q.V, e.T1, e.T2)
			}
		}
	}
}

// Theorem 1, second half: every returned pair contains an event with
// Δv ≤ V + 2ε (drop) within (0, T], verified exactly on model G with a
// slack of one time unit of slope for integer-grid effects.
func TestFalsePositiveBound(t *testing.T) {
	for _, seed := range []int64{7, 8, 9} {
		series := randomSeries(seed, 300)
		const eps = 0.4
		st := memStore(t, Options{Epsilon: eps, Window: 4000})
		ingest(t, st, series)
		slack := maxAbsSlope(t, st)*2 + 1e-9

		for _, q := range []struct {
			T int64
			V float64
		}{{800, -3}, {2500, -5}} {
			matches, err := st.SearchDrops(q.T, q.V)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range matches {
				d, ok, err := naive.ExtremeChange(series, m.TD, m.TC, m.TB, m.TA, q.T, true)
				if err != nil {
					t.Fatalf("seed=%d match %+v: %v", seed, m, err)
				}
				if !ok {
					t.Fatalf("seed=%d match %+v admits no event at all", seed, m)
				}
				if d > q.V+2*eps+slack {
					t.Fatalf("seed=%d T=%d V=%v: match %+v best drop %.4f exceeds V+2ε=%.4f",
						seed, q.T, q.V, m, d, q.V+2*eps)
				}
			}
		}
	}
}

func TestFalsePositiveBoundJumps(t *testing.T) {
	series := randomSeries(11, 300)
	const eps = 0.3
	st := memStore(t, Options{Epsilon: eps, Window: 4000})
	ingest(t, st, series)
	slack := maxAbsSlope(t, st)*2 + 1e-9
	matches, err := st.SearchJumps(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		d, ok, err := naive.ExtremeChange(series, m.TD, m.TC, m.TB, m.TA, 1000, false)
		if err != nil || !ok {
			t.Fatalf("match %+v: ok=%v err=%v", m, ok, err)
		}
		if d < 3-2*eps-slack {
			t.Fatalf("match %+v best jump %.4f below V−2ε=%.4f", m, d, 3-2*eps)
		}
	}
}

// All three plan modes must return identical matches.
func TestPlanModeEquivalence(t *testing.T) {
	series := randomSeries(20, 500)
	st := memStore(t, Options{Epsilon: 0.2, Window: 5000})
	ingest(t, st, series)
	for _, q := range []struct {
		kind feature.Kind
		T    int64
		V    float64
	}{
		{feature.Drop, 1000, -3},
		{feature.Drop, 5000, -1},
		{feature.Jump, 2000, 2},
	} {
		auto, err := st.SearchMode(q.kind, q.T, q.V, sqlmini.PlanAuto)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := st.SearchMode(q.kind, q.T, q.V, sqlmini.PlanForceScan)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := st.SearchMode(q.kind, q.T, q.V, sqlmini.PlanForceIndex)
		if err != nil {
			t.Fatal(err)
		}
		if len(auto) != len(scan) || len(auto) != len(idx) {
			t.Fatalf("%v T=%d V=%v: result counts differ auto=%d scan=%d idx=%d",
				q.kind, q.T, q.V, len(auto), len(scan), len(idx))
		}
		for i := range auto {
			if auto[i] != scan[i] || auto[i] != idx[i] {
				t.Fatalf("match %d differs across modes", i)
			}
		}
	}
}

func TestCADEventRecovered(t *testing.T) {
	// A clean synthetic day with one sharp injected drop must be found by
	// the canonical query (3 degrees within 1 hour).
	cfg := synth.Config{
		Seed: 5, Duration: 2 * synth.SecondsPerDay,
		CADPerWeek: 40, AnomalyRate: -1, NoiseStd: 0.05,
	}
	series, events, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	big := -1
	for i, e := range events {
		if e.Drop >= 4 && e.DropLen <= 3600 && e.Start > series.Start() && e.End() < series.End() {
			big = i
			break
		}
	}
	if big < 0 {
		t.Skip("no suitable event generated (seed-dependent)")
	}
	st := memStore(t, Options{Epsilon: 0.2, Window: 8 * 3600})
	ingest(t, st, series)
	matches, err := st.SearchDrops(3600, -3)
	if err != nil {
		t.Fatal(err)
	}
	e := events[big]
	found := false
	for _, m := range matches {
		// The event's drop phase must intersect some match.
		if m.TD <= e.Start+e.DropLen && e.Start <= m.TA {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("injected CAD event at %d (drop %.1f over %d s) not found among %d matches",
			e.Start, e.Drop, e.DropLen, len(matches))
	}
}

func TestSearchValidation(t *testing.T) {
	st := memStore(t, Options{Window: 1000})
	series := randomSeries(1, 50)
	ingest(t, st, series)
	if _, err := st.SearchDrops(2000, -3); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("T > w accepted: %v", err)
	}
	if _, err := st.SearchDrops(0, -3); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, err := st.SearchDrops(100, 3); err == nil {
		t.Fatal("positive V accepted for drops")
	}
	if _, err := st.SearchJumps(100, -3); err == nil {
		t.Fatal("negative V accepted for jumps")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := OpenMemory(Options{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := OpenMemory(Options{Epsilon: math.NaN()}); err == nil {
		t.Fatal("NaN epsilon accepted")
	}
	if _, err := OpenMemory(Options{Window: -5}); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestAppendAfterFinish(t *testing.T) {
	st := memStore(t, Options{})
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(timeseries.Point{T: 1, V: 1}); err == nil {
		t.Fatal("append after finish accepted")
	}
	if err := st.Finish(); err != nil {
		t.Fatal("second finish should be nil")
	}
}

func TestStats(t *testing.T) {
	series := randomSeries(33, 400)
	st := memStore(t, Options{Epsilon: 0.5, Window: 3000})
	ingest(t, st, series)
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != 400 {
		t.Fatalf("points = %d", stats.Points)
	}
	if stats.Segments == 0 || stats.CompressionRate <= 1 {
		t.Fatalf("segments=%d r=%v", stats.Segments, stats.CompressionRate)
	}
	if stats.FeatureRows == 0 || stats.FeatureBytes == 0 {
		t.Fatalf("feature stats empty: %+v", stats)
	}
	if stats.IndexBytes == 0 {
		t.Fatal("index bytes zero despite indexes")
	}
	if stats.DiskBytes() != stats.FeatureBytes+stats.IndexBytes {
		t.Fatal("DiskBytes inconsistent")
	}
	hist := stats.Extraction.CornerCount
	if hist[1]+hist[2]+hist[3] != stats.Extraction.Boundaries {
		t.Fatalf("corner histogram inconsistent: %+v", hist)
	}
	if st.Epsilon() != 0.5 || st.Window() != 3000 {
		t.Fatal("accessors wrong")
	}
}

func TestPersistenceAndResume(t *testing.T) {
	dir := t.TempDir()
	series := randomSeries(50, 300)
	half := series.Head(150)

	st, err := Open(dir, Options{Epsilon: 0.3, Window: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSeries(half); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: search works, options are restored from meta.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epsilon() != 0.3 || st2.Window() != 2000 {
		t.Fatalf("restored options: eps=%v w=%d", st2.Epsilon(), st2.Window())
	}
	m1, err := st2.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	// Continue ingesting the second half; searches must then cover the
	// later events too.
	rest := timeseries.MustNew(series.Points()[150:])
	if err := st2.AppendSeries(rest); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	m2, err := st3.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2) < len(m1) {
		t.Fatalf("matches shrank after resume: %d -> %d", len(m1), len(m2))
	}
	// Events in the second half must be covered (the segmenter restarts at
	// the resume point, so cross-boundary events may be split, but events
	// after the boundary must be found).
	evs, err := naive.Drops(rest, 1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if !covered(m2, e.T1, e.T2) {
			t.Fatalf("post-resume event (%d,%d) not covered", e.T1, e.T2)
		}
	}
}

func TestReopenMismatchedOptions(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Epsilon: 0.3, Window: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Epsilon: 0.7}); err == nil {
		t.Fatal("mismatched epsilon accepted")
	}
	if _, err := Open(dir, Options{Window: 999}); err == nil {
		t.Fatal("mismatched window accepted")
	}
}

func TestEmptyStoreSearch(t *testing.T) {
	st := memStore(t, Options{})
	m, err := st.SearchDrops(3600, -3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("empty store returned %d matches", len(m))
	}
}

func TestDropCacheKeepsResults(t *testing.T) {
	series := randomSeries(60, 300)
	st := memStore(t, Options{Epsilon: 0.2, Window: 3000})
	ingest(t, st, series)
	warm, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DropCache(); err != nil {
		t.Fatal(err)
	}
	cold, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("cold results differ: %d vs %d", len(warm), len(cold))
	}
}

func TestSegmentsCatalog(t *testing.T) {
	series := randomSeries(70, 200)
	st := memStore(t, Options{Epsilon: 0.2, Window: 3000})
	ingest(t, st, series)
	segs, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	if segs[0].Ts != series.Start() || segs[len(segs)-1].Te != series.End() {
		t.Fatal("segment catalog does not span the series")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Ts != segs[i-1].Te {
			t.Fatalf("segments not contiguous at %d", i)
		}
	}
}

func TestPrune(t *testing.T) {
	series := randomSeries(80, 400)
	st := memStore(t, Options{Epsilon: 0.3, Window: 3000})
	ingest(t, st, series)
	before, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Skip("no matches in this workload (seed-dependent)")
	}
	cutoff := series.Start() + series.Span()/2
	removed, err := st.Prune(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("prune removed nothing")
	}
	after, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("prune did not shrink results: %d -> %d", len(before), len(after))
	}
	for _, m := range after {
		if m.TA <= cutoff {
			t.Fatalf("pruned-era match survived: %+v", m)
		}
	}
	// Recent events must be unaffected: every pre-prune match ending after
	// the cutoff must still be returned.
	kept := map[Match]bool{}
	for _, m := range after {
		kept[m] = true
	}
	for _, m := range before {
		if m.TA > cutoff && !kept[m] {
			t.Fatalf("recent match %+v lost by prune", m)
		}
	}
	// Segment catalog pruned too.
	segs, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range segs {
		if g.Te <= cutoff {
			t.Fatalf("old segment %v survived prune", g)
		}
	}
}
