package core

// EXPLAIN-based guard for the access-path claim of Section 5.2: every
// branch of the search union must execute as a B-tree index scan over the
// intended corner index under PlanAuto, never a sequential scan — and the
// fusion pass must group the branches that share a corner index into one
// fused scan unit.

import (
	"fmt"
	"strings"
	"testing"

	"segdiff/internal/feature"
	"segdiff/internal/storage/sqlmini"
)

// branchPlan is the index one union branch is required to pick.
type branchPlan struct {
	table string
	index string
	bound string // the dt column whose range drives the scan
}

// expectedBranchPlans lists, in union-branch order, the index each branch
// of searchQueries(kind) must use under PlanAuto.
//
// Point query i ranges on dt_i, so it matches the corner index
// <table>_c<i>. Line query i also resolves to <table>_c<i>: the planner
// uses an equality prefix plus one range column, the line predicate has no
// equalities, so every candidate (c_i, c_{i+1}, l_i) scores the same
// single dt range and the tie goes to the first-created index, c_i.
func expectedBranchPlans(kind feature.Kind) []branchPlan {
	var out []branchPlan
	for nc := 1; nc <= 3; nc++ {
		name := tableName(kind, nc)
		for i := 1; i <= nc; i++ { // point queries
			out = append(out, branchPlan{name, fmt.Sprintf("%s_c%d", name, i), fmt.Sprintf("dt%d", i)})
		}
		for i := 1; i < nc; i++ { // line queries
			out = append(out, branchPlan{name, fmt.Sprintf("%s_c%d", name, i), fmt.Sprintf("dt%d", i)})
		}
	}
	return out
}

// explainSearch runs EXPLAIN over the full search union for kind and
// returns the plan rows.
func explainSearch(t *testing.T, s *Store, kind feature.Kind, v float64) []string {
	t.Helper()
	qs := searchQueries(kind)
	parts := make([]string, len(qs))
	var args []sqlmini.Value
	for i, q := range qs {
		parts[i] = q.sql
		args = append(args, q.args(3600, v)...)
	}
	rows, err := s.db.Query("EXPLAIN "+strings.Join(parts, " UNION "), args...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, rows.Len())
	for i, row := range rows.Data {
		out[i] = row[0].S
	}
	return out
}

// parseBranchPlans reconstructs the per-branch plan lines from fused
// EXPLAIN output: singleton units print one "INDEX SCAN ix ON t ..." line
// that covers their only branch, fused units print a "FUSED INDEX SCAN ix
// ON t BRANCHES k" header followed by k indented "  BRANCH <i>: ..."
// lines. The result maps absolute branch position to (index, table,
// plan-detail line).
func parseBranchPlans(t *testing.T, lines []string, nBranches int) []branchPlan {
	t.Helper()
	plans := make([]branchPlan, nBranches)
	seen := make([]bool, nBranches)
	next := 0 // next unassigned branch for singleton lines, in unit order
	assign := func(pos int, ix, table, rest string) {
		if pos < 0 || pos >= nBranches || seen[pos] {
			t.Fatalf("EXPLAIN assigned branch %d twice or out of range:\n%s", pos, strings.Join(lines, "\n"))
		}
		plans[pos] = branchPlan{table: table, index: ix, bound: rest}
		seen[pos] = true
	}
	i := 0
	for i < len(lines) {
		line := lines[i]
		switch {
		case strings.HasPrefix(line, "FUSED INDEX SCAN "):
			var ix, table string
			var k int
			if _, err := fmt.Sscanf(line, "FUSED INDEX SCAN %s ON %s BRANCHES %d", &ix, &table, &k); err != nil {
				t.Fatalf("unparseable fused header %q: %v", line, err)
			}
			for j := 0; j < k; j++ {
				i++
				var pos int
				if _, err := fmt.Sscanf(lines[i], "  BRANCH %d:", &pos); err != nil {
					t.Fatalf("unparseable branch line %q under %q: %v", lines[i], line, err)
				}
				assign(pos, ix, table, lines[i])
			}
			i++
		case strings.HasPrefix(line, "INDEX SCAN "):
			var ix, table string
			if _, err := fmt.Sscanf(line, "INDEX SCAN %s ON %s", &ix, &table); err != nil {
				t.Fatalf("unparseable plan line %q: %v", line, err)
			}
			for next < nBranches && seen[next] {
				next++
			}
			assign(next, ix, table, line)
			i++
		default:
			t.Fatalf("unexpected EXPLAIN line %q (sequential scan or unknown format)", line)
		}
	}
	for pos, ok := range seen {
		if !ok {
			t.Fatalf("EXPLAIN output covers no plan for branch %d:\n%s", pos, strings.Join(lines, "\n"))
		}
	}
	return plans
}

func TestSearchUnionBranchPlans(t *testing.T) {
	s, err := OpenMemory(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, tc := range []struct {
		kind feature.Kind
		v    float64
	}{
		{feature.Drop, -3},
		{feature.Jump, 3},
	} {
		lines := explainSearch(t, s, tc.kind, tc.v)
		want := expectedBranchPlans(tc.kind)
		got := parseBranchPlans(t, lines, len(want))
		for i := range want {
			if got[i].index != want[i].index || got[i].table != want[i].table {
				t.Errorf("kind %v branch %d picked the wrong path:\n  got  %s ON %s (%q)\n  want %s ON %s",
					tc.kind, i, got[i].index, got[i].table, got[i].bound, want[i].index, want[i].table)
				continue
			}
			if !strings.Contains(got[i].bound, "BOUNDS("+want[i].bound+"<~") {
				t.Errorf("kind %v branch %d has no range bound on %s: %q", tc.kind, i, want[i].bound, got[i].bound)
			}
		}
	}
}

// TestSearchUnionFusion pins the fusion shape itself: branches sharing a
// corner index collapse into one fused scan unit, so a drop search runs 6
// scan units for its 9 branches (dropf2's and dropf3's c1/c2 point+line
// pairs fuse), and disabling fusion restores one unit per branch.
func TestSearchUnionFusion(t *testing.T) {
	s, err := OpenMemory(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lines := explainSearch(t, s, feature.Drop, -3)
	fused, singleton := 0, 0
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "FUSED INDEX SCAN "):
			fused++
		case strings.HasPrefix(l, "INDEX SCAN "):
			singleton++
		}
	}
	if fused != 3 || singleton != 3 {
		t.Errorf("drop search fusion shape: got %d fused units + %d singletons, want 3 + 3:\n%s",
			fused, singleton, strings.Join(lines, "\n"))
	}

	s2, err := OpenMemory(Options{DB: sqlmini.Options{DisableFusion: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	lines2 := explainSearch(t, s2, feature.Drop, -3)
	want := len(expectedBranchPlans(feature.Drop))
	if len(lines2) != want {
		t.Errorf("DisableFusion: got %d plan rows, want %d (one per branch):\n%s",
			len(lines2), want, strings.Join(lines2, "\n"))
	}
}
