package core

// EXPLAIN-based guard for the access-path claim of Section 5.2: every
// branch of the search union must execute as a B-tree index scan over the
// intended corner index under PlanAuto, never a sequential scan.

import (
	"fmt"
	"strings"
	"testing"

	"segdiff/internal/feature"
	"segdiff/internal/storage/sqlmini"
)

// branchPlan is the plan one union branch is required to pick.
type branchPlan struct {
	table string
	index string
	bound string // the dt column whose range drives the scan
}

// expectedBranchPlans lists, in union-branch order, the index each branch
// of searchQueries(kind) must use under PlanAuto.
//
// Point query i ranges on dt_i, so it matches the corner index
// <table>_c<i>. Line query i also resolves to <table>_c<i>: the planner
// uses an equality prefix plus one range column, the line predicate has no
// equalities, so every candidate (c_i, c_{i+1}, l_i) scores the same
// single dt range and the tie goes to the first-created index, c_i.
func expectedBranchPlans(kind feature.Kind) []branchPlan {
	var out []branchPlan
	for nc := 1; nc <= 3; nc++ {
		name := tableName(kind, nc)
		for i := 1; i <= nc; i++ { // point queries
			out = append(out, branchPlan{name, fmt.Sprintf("%s_c%d", name, i), fmt.Sprintf("dt%d", i)})
		}
		for i := 1; i < nc; i++ { // line queries
			out = append(out, branchPlan{name, fmt.Sprintf("%s_c%d", name, i), fmt.Sprintf("dt%d", i)})
		}
	}
	return out
}

func TestSearchUnionBranchPlans(t *testing.T) {
	s, err := OpenMemory(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, tc := range []struct {
		kind feature.Kind
		v    float64
	}{
		{feature.Drop, -3},
		{feature.Jump, 3},
	} {
		qs := searchQueries(tc.kind)
		parts := make([]string, len(qs))
		var args []sqlmini.Value
		for i, q := range qs {
			parts[i] = q.sql
			args = append(args, q.args(3600, tc.v)...)
		}
		rows, err := s.db.Query("EXPLAIN "+strings.Join(parts, " UNION "), args...)
		if err != nil {
			t.Fatal(err)
		}
		want := expectedBranchPlans(tc.kind)
		if rows.Len() != len(want) {
			t.Fatalf("kind %v: EXPLAIN returned %d plan rows for %d branches", tc.kind, rows.Len(), len(want))
		}
		for i, row := range rows.Data {
			plan := row[0].S
			if strings.Contains(plan, "SEQ SCAN") {
				t.Errorf("kind %v branch %d fell back to a table scan: %q", tc.kind, i, plan)
				continue
			}
			prefix := fmt.Sprintf("INDEX SCAN %s ON %s ", want[i].index, want[i].table)
			if !strings.HasPrefix(plan, prefix) {
				t.Errorf("kind %v branch %d picked the wrong path:\n  got  %q\n  want prefix %q", tc.kind, i, plan, prefix)
				continue
			}
			if !strings.Contains(plan, "BOUNDS("+want[i].bound+"<~") {
				t.Errorf("kind %v branch %d has no range bound on %s: %q", tc.kind, i, want[i].bound, plan)
			}
		}
	}
}
