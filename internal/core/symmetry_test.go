package core

import (
	"testing"

	"segdiff/internal/timeseries"
)

// Mirror symmetry: searching for drops in v(t) must return exactly the
// periods of searching for jumps in −v(t). The whole pipeline —
// segmentation, case classification (cases 1↔4, 2↔5, 3↔6), ε-shift
// direction, gates, and the point/line queries — must mirror cleanly.
func TestDropJumpMirrorSymmetry(t *testing.T) {
	for _, seed := range []int64{3, 14, 15} {
		series := randomSeries(seed, 350)
		mirrored := series.Map(func(p timeseries.Point) float64 { return -p.V })

		a := memStore(t, Options{Epsilon: 0.3, Window: 4000})
		ingest(t, a, series)
		b := memStore(t, Options{Epsilon: 0.3, Window: 4000})
		ingest(t, b, mirrored)

		for _, q := range []struct {
			T int64
			V float64
		}{{600, -2}, {2000, -4}, {4000, -1}} {
			drops, err := a.SearchDrops(q.T, q.V)
			if err != nil {
				t.Fatal(err)
			}
			jumps, err := b.SearchJumps(q.T, -q.V)
			if err != nil {
				t.Fatal(err)
			}
			if len(drops) != len(jumps) {
				t.Fatalf("seed=%d T=%d V=%v: %d drops vs %d mirrored jumps",
					seed, q.T, q.V, len(drops), len(jumps))
			}
			for i := range drops {
				if drops[i] != jumps[i] {
					t.Fatalf("seed=%d: match %d differs: drop %+v vs jump %+v",
						seed, i, drops[i], jumps[i])
				}
			}
		}
	}
}

// Time-shift invariance: shifting the whole series in time shifts every
// match by the same amount and changes nothing else.
func TestTimeShiftInvariance(t *testing.T) {
	series := randomSeries(21, 300)
	const shift = int64(1_000_000)
	shifted := &timeseries.Series{}
	for _, p := range series.Points() {
		if err := shifted.Append(timeseries.Point{T: p.T + shift, V: p.V}); err != nil {
			t.Fatal(err)
		}
	}
	a := memStore(t, Options{Epsilon: 0.25, Window: 3000})
	ingest(t, a, series)
	b := memStore(t, Options{Epsilon: 0.25, Window: 3000})
	ingest(t, b, shifted)

	ma, err := a.SearchDrops(1500, -2)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.SearchDrops(1500, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) != len(mb) {
		t.Fatalf("match counts differ under time shift: %d vs %d", len(ma), len(mb))
	}
	for i := range ma {
		want := Match{TD: ma[i].TD + shift, TC: ma[i].TC + shift, TB: ma[i].TB + shift, TA: ma[i].TA + shift}
		if mb[i] != want {
			t.Fatalf("match %d: got %+v, want shifted %+v", i, mb[i], want)
		}
	}
}

// Value-offset invariance: adding a constant to the series must not change
// any match (searches are about relative change only — the paper's key
// distinction from timebox queries).
func TestValueOffsetInvariance(t *testing.T) {
	series := randomSeries(31, 300)
	offset := series.Map(func(p timeseries.Point) float64 { return p.V + 1000 })

	a := memStore(t, Options{Epsilon: 0.25, Window: 3000})
	ingest(t, a, series)
	b := memStore(t, Options{Epsilon: 0.25, Window: 3000})
	ingest(t, b, offset)

	ma, err := a.SearchDrops(1500, -2)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.SearchDrops(1500, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) != len(mb) {
		t.Fatalf("match counts differ under value offset: %d vs %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("match %d differs under value offset", i)
		}
	}
}
