package core

import (
	"testing"

	"segdiff/internal/timeseries"
)

// Regression for a defect found by the batchabort analyzer: Prune opened a
// batch and returned on a DELETE error without AbortBatch, wedging the
// engine in batch mode — every later commit was silently suspended until
// Close. Now the error path rolls the batch back.
func TestPruneAbortsBatchOnError(t *testing.T) {
	st, err := OpenMemory(Options{Epsilon: 0.3, Window: 4000})
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, st, randomSeries(7, 400))

	// Close the engine underneath Prune: the very first DELETE fails.
	if err := st.DB().Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Prune(st.Window()); err == nil {
		t.Fatal("Prune on a closed engine succeeded")
	}
	if st.DB().InBatch() {
		t.Fatal("Prune error path left the engine batch open")
	}
}

// Regression companion: Sync's flush-failure path must also roll the batch
// back (and drop its buffers) rather than leaving the engine in batch mode.
func TestSyncAbortsBatchOnFlushError(t *testing.T) {
	st, err := OpenMemory(Options{Epsilon: 0.3, Window: 4000})
	if err != nil {
		t.Fatal(err)
	}
	series := randomSeries(11, 400)
	for _, p := range series.Points() {
		if err := st.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if st.buffered() == 0 {
		t.Fatal("test needs buffered feature rows; series too tame")
	}
	if err := st.DB().Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err == nil {
		t.Fatal("Sync on a closed engine succeeded")
	}
	if st.DB().InBatch() {
		t.Fatal("Sync error path left the engine batch open")
	}
	if st.buffered() != 0 {
		t.Fatal("Sync error path kept stale buffered rows")
	}
}

// A non-monotonic append inside AppendSeries must roll back cleanly; the
// stray point must not poison a later, valid ingest.
func TestAppendSeriesRollbackKeepsStoreUsable(t *testing.T) {
	st, err := OpenMemory(Options{Epsilon: 0.3, Window: 4000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	good := randomSeries(13, 300)
	if err := st.AppendSeries(good); err != nil {
		t.Fatal(err)
	}
	bad := timeseries.MustNew([]timeseries.Point{{T: good.End() - 500, V: 1}})
	if err := st.AppendSeries(bad); err == nil {
		t.Fatal("out-of-order series accepted")
	}
	if st.DB().InBatch() {
		t.Fatal("failed AppendSeries left the engine batch open")
	}
	after := timeseries.MustNew([]timeseries.Point{{T: good.End() + 600, V: 2}})
	if err := st.AppendSeries(after); err != nil {
		t.Fatal(err)
	}
}
