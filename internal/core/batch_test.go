package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"segdiff/internal/feature"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// Regression: an explicitly requested default (Epsilon 0.2, Window 8h) was
// indistinguishable from an unset option, so reopening a store built with
// different parameters silently adopted the stored values instead of
// failing the mismatch check.
func TestReopenExplicitDefaultsChecked(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Epsilon: 0.5, Window: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Epsilon: 0.2}); err == nil {
		t.Fatal("explicit default epsilon accepted against a 0.5 store")
	}
	if _, err := Open(dir, Options{Window: 8 * 3600}); err == nil {
		t.Fatal("explicit default window accepted against a 2000 store")
	}
	// Unset options still adopt the stored values.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Epsilon() != 0.5 || st2.Window() != 2000 {
		t.Fatalf("adopted eps=%v w=%d", st2.Epsilon(), st2.Window())
	}

	// A store genuinely built with the defaults accepts them explicitly.
	dir2 := t.TempDir()
	st3, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}
	st4, err := Open(dir2, Options{Epsilon: 0.2, Window: 8 * 3600})
	if err != nil {
		t.Fatalf("explicit defaults rejected against a default store: %v", err)
	}
	st4.Close()
}

// The batched write path must be observationally identical to row-at-a-time
// ingestion: same search results and byte-identical table files.
func TestBatchedIngestMatchesRowAtATime(t *testing.T) {
	series := randomSeries(91, 800)
	dirRow, dirBatch := t.TempDir(), t.TempDir()

	stRow, err := Open(dirRow, Options{Epsilon: 0.3, Window: 4000, RowAtATime: true})
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, stRow, series)
	stBatch, err := Open(dirBatch, Options{Epsilon: 0.3, Window: 4000})
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, stBatch, series)

	for _, q := range []struct {
		kind feature.Kind
		T    int64
		V    float64
	}{
		{feature.Drop, 1000, -2},
		{feature.Drop, 4000, -4},
		{feature.Jump, 2000, 2},
	} {
		a, err := stRow.SearchMode(q.kind, q.T, q.V, sqlmini.PlanAuto)
		if err != nil {
			t.Fatal(err)
		}
		b, err := stBatch.SearchMode(q.kind, q.T, q.V, sqlmini.PlanAuto)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v T=%d V=%v: %d vs %d matches", q.kind, q.T, q.V, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v T=%d V=%v: match %d differs: %+v vs %+v", q.kind, q.T, q.V, i, a[i], b[i])
			}
		}
	}
	if err := stRow.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stBatch.Close(); err != nil {
		t.Fatal(err)
	}

	tables := []string{"t_segs.tbl",
		"t_dropf1.tbl", "t_dropf2.tbl", "t_dropf3.tbl",
		"t_jumpf1.tbl", "t_jumpf2.tbl", "t_jumpf3.tbl"}
	for _, name := range tables {
		a, err := os.ReadFile(filepath.Join(dirRow, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirBatch, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between write paths: %d vs %d bytes", name, len(a), len(b))
		}
	}
}

// A failed ingest must not leak batch state: after Abort the store answers
// searches from its last committed state and accepts further appends.
func TestAbortAfterFailedIngest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Epsilon: 0.3, Window: 4000})
	if err != nil {
		t.Fatal(err)
	}
	series := randomSeries(17, 400)
	if err := st.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	committed, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}

	// Buffer some valid points, then hit a segmenter error (time going
	// backwards). The failed batch is aborted.
	last := series.End()
	for i := int64(1); i <= 50; i++ {
		if err := st.Append(timeseries.Point{T: last + i*30, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(timeseries.Point{T: last - 1000, V: 0}); err == nil {
		t.Fatal("non-monotonic append accepted")
	}
	if err := st.Abort(); err != nil {
		t.Fatal(err)
	}

	after, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(committed) {
		t.Fatalf("aborted ingest changed results: %d vs %d matches", len(after), len(committed))
	}
	for i := range after {
		if after[i] != committed[i] {
			t.Fatalf("match %d changed across abort", i)
		}
	}

	// The store remains usable: append more data past the committed end
	// (the rebuilt pipeline resumes like a sensor gap) and finish.
	for i := int64(1); i <= 100; i++ {
		if err := st.Append(timeseries.Point{T: last + 3600 + i*30, V: float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SearchDrops(1000, -2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// And the on-disk state reopens cleanly.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.SearchDrops(1000, -2); err != nil {
		t.Fatal(err)
	}
}

// AppendSeries on a series whose first point precedes committed data must
// roll itself back and leave the store consistent.
func TestAppendSeriesAbortsOnError(t *testing.T) {
	st := memStore(t, Options{Epsilon: 0.3, Window: 4000})
	series := randomSeries(23, 300)
	if err := st.AppendSeries(series); err != nil {
		t.Fatal(err)
	}
	committed, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	bad := timeseries.MustNew([]timeseries.Point{
		{T: series.Start() - 100, V: 1}, {T: series.Start() - 50, V: 2}})
	if err := st.AppendSeries(bad); err == nil {
		t.Fatal("series behind committed data accepted")
	}
	after, err := st.SearchDrops(1000, -2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(committed) {
		t.Fatalf("failed AppendSeries changed results: %d vs %d", len(after), len(committed))
	}
}
