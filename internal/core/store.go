// Package core is the SegDiff framework itself: it wires the online
// segmentation (internal/segment), the windowed parallelogram feature
// extraction (internal/extract), and the relational storage layer
// (internal/storage/sqlmini) into the system of the paper —
//
//	observations → piecewise linear segments → ε-shifted boundary corners
//	            → relational tables with B-tree indexes
//	drop/jump search → union of point queries and line queries
//	            → segment-pair tuples ((t_D, t_C), (t_B, t_A))
//
// Storage schema. Features are stored by search kind and corner count,
// matching the paper's variable-width layout (Section 5.2, c₂ ∈ {5,6,7}):
//
//	dropf1(dt1, dv1, td, tc, tb, ta)              jumpf1(...)
//	dropf2(dt1, dv1, dt2, dv2, td, tc, tb, ta)    jumpf2(...)
//	dropf3(dt1, dv1, ..., dt3, dv3, td, tc, tb, ta)  jumpf3(...)
//	segs(ts, vs, te, ve)       -- the data-segment catalog
//	meta(k, v)                 -- persisted ε and w
//
// Each corner carries a B-tree index on (dtᵢ, dvᵢ) for the point query and
// each boundary edge an index on (dtᵢ, dvᵢ, dtᵢ₊₁, dvᵢ₊₁) for the line
// query, reproducing the paper's observation that SegDiff's index overhead
// exceeds its feature size.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"segdiff/internal/extract"
	"segdiff/internal/feature"
	"segdiff/internal/obs"
	"segdiff/internal/segment"
	"segdiff/internal/storage/pager"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// Options configures a Store.
type Options struct {
	// Epsilon is the segmentation error tolerance ε (default 0.2, the
	// paper's default). Search results are exact up to 2ε (Theorem 1).
	Epsilon float64
	// Window is w, the longest supported time span in time units
	// (default 8 hours in seconds, the paper's default). Searches require
	// T ≤ Window.
	Window int64
	// DB tunes the underlying storage engine.
	DB sqlmini.Options
	// RowAtATime disables the batched write path: every segment and
	// feature row is written to the engine as its own statement, as in
	// early versions. It exists as the baseline for the ingest benchmarks;
	// leave it false otherwise.
	RowAtATime bool

	// Set-flags recorded by normalize so a resumed store can tell an
	// explicitly requested default (which must match the persisted value)
	// from an unset option (which adopts it).
	epsilonSet bool
	windowSet  bool
}

func (o Options) normalize() (Options, error) {
	o.epsilonSet = o.Epsilon != 0
	o.windowSet = o.Window != 0
	if o.Epsilon == 0 {
		o.Epsilon = 0.2
	}
	if o.Epsilon < 0 || math.IsNaN(o.Epsilon) || math.IsInf(o.Epsilon, 0) {
		return o, fmt.Errorf("core: invalid epsilon %v", o.Epsilon)
	}
	if o.Window == 0 {
		o.Window = 8 * 3600
	}
	if o.Window < 0 {
		return o, fmt.Errorf("core: negative window %d", o.Window)
	}
	return o, nil
}

// Match is a search result: the paper's tuple ((t_D, t_C), (t_B, t_A)).
// The drop (or jump) starts somewhere in [TD, TC] and ends in [TB, TA].
type Match struct {
	TD, TC, TB, TA int64
}

// Store is a single-sensor SegDiff feature store. Search methods
// (SearchDrops, SearchJumps, SearchMode, Stats, Segments) are safe for
// concurrent use and run in parallel: each search is one prepared UNION
// statement whose branches the engine spreads over a bounded worker pool
// (Options.DB.UnionWorkers), and independent searches proceed side by side
// under the engine's shared read lock. Ingestion (Append, Sync, Finish,
// Prune) must be driven by a single goroutine; concurrent searches block
// only while a write holds the engine's exclusive lock.
type Store struct {
	db   *sqlmini.DB
	opts Options

	seg *segment.Segmenter
	ext *extract.Extractor

	insSeg     *sqlmini.Stmt
	insFeat    map[feature.Kind]map[int]*sqlmini.Stmt // by kind, corner count
	searchStmt map[feature.Kind]*sqlmini.Stmt         // one UNION statement per kind
	finished   bool
	dirty      bool

	// Batched write path (default): segment and feature rows accumulate
	// here in emission order and reach the engine in one ExecBatch per
	// table at Sync, so the heap layout — and the table files' bytes — are
	// identical to row-at-a-time ingestion.
	segRows  [][]sqlmini.Value
	featRows map[feature.Kind]map[int][][]sqlmini.Value
}

// Open opens (creating or resuming) an on-disk store.
func Open(dir string, opts Options) (*Store, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	db, err := sqlmini.Open(dir, opts.DB)
	if err != nil {
		return nil, err
	}
	s, err := initStore(db, opts)
	if err != nil {
		return nil, errors.Join(err, db.Close())
	}
	return s, nil
}

// OpenMemory opens an in-memory store.
func OpenMemory(opts Options) (*Store, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	return initStore(sqlmini.OpenMemory(opts.DB), opts)
}

func initStore(db *sqlmini.DB, opts Options) (*Store, error) {
	s := &Store{db: db, opts: opts}
	s.featRows = map[feature.Kind]map[int][][]sqlmini.Value{
		feature.Drop: {}, feature.Jump: {},
	}
	fresh, err := s.ensureSchema()
	if err != nil {
		return nil, err
	}
	if fresh {
		if err := s.writeMeta(); err != nil {
			return nil, err
		}
	} else {
		if err := s.checkMeta(); err != nil {
			return nil, err
		}
	}
	if err := s.prepareStatements(); err != nil {
		return nil, err
	}
	if err := s.initPipeline(); err != nil {
		return nil, err
	}
	return s, nil
}

func tableName(kind feature.Kind, nc int) string {
	base := "dropf"
	if kind == feature.Jump {
		base = "jumpf"
	}
	return fmt.Sprintf("%s%d", base, nc)
}

// ensureSchema creates tables and indexes; it reports whether the schema
// was freshly created.
func (s *Store) ensureSchema() (bool, error) {
	tables := s.db.Tables()
	for _, t := range tables {
		if t == "segs" {
			return false, nil // already initialized
		}
	}
	ddl := []string{
		"CREATE TABLE meta (k TEXT, v REAL)",
		"CREATE TABLE segs (ts INT, vs REAL, te INT, ve REAL)",
		"CREATE INDEX segs_ts ON segs (ts)",
	}
	for _, kind := range []feature.Kind{feature.Drop, feature.Jump} {
		for nc := 1; nc <= 3; nc++ {
			name := tableName(kind, nc)
			var cols []string
			for i := 1; i <= nc; i++ {
				cols = append(cols, fmt.Sprintf("dt%d INT, dv%d REAL", i, i))
			}
			cols = append(cols, "td INT, tc INT, tb INT, ta INT")
			ddl = append(ddl, fmt.Sprintf("CREATE TABLE %s (%s)", name, strings.Join(cols, ", ")))
			// Point-query index per corner.
			for i := 1; i <= nc; i++ {
				ddl = append(ddl, fmt.Sprintf("CREATE INDEX %s_c%d ON %s (dt%d, dv%d)", name, i, name, i, i))
			}
			// Line-query index per boundary edge.
			for i := 1; i < nc; i++ {
				ddl = append(ddl, fmt.Sprintf(
					"CREATE INDEX %s_l%d ON %s (dt%d, dv%d, dt%d, dv%d)",
					name, i, name, i, i, i+1, i+1))
			}
		}
	}
	for _, stmt := range ddl {
		if _, err := s.db.Exec(stmt); err != nil {
			return false, err
		}
	}
	return true, nil
}

func (s *Store) writeMeta() error {
	if _, err := s.db.Exec("INSERT INTO meta VALUES ('epsilon', ?)", sqlmini.Real(s.opts.Epsilon)); err != nil {
		return err
	}
	_, err := s.db.Exec("INSERT INTO meta VALUES ('window', ?)", sqlmini.Real(float64(s.opts.Window)))
	return err
}

// checkMeta loads ε and w from a resumed store; explicit options must
// match the persisted values.
func (s *Store) checkMeta() error {
	r, err := s.db.Query("SELECT k, v FROM meta")
	if err != nil {
		return err
	}
	stored := map[string]float64{}
	for _, row := range r.Data {
		stored[row[0].S] = row[1].R
	}
	eps, ok1 := stored["epsilon"]
	win, ok2 := stored["window"]
	if !ok1 || !ok2 {
		return fmt.Errorf("core: store meta incomplete")
	}
	if s.opts.epsilonSet && s.opts.Epsilon != eps {
		return fmt.Errorf("core: store was built with epsilon=%v, reopened with %v", eps, s.opts.Epsilon)
	}
	if s.opts.windowSet && s.opts.Window != int64(win) {
		return fmt.Errorf("core: store was built with window=%v, reopened with %v", int64(win), s.opts.Window)
	}
	s.opts.Epsilon = eps
	s.opts.Window = int64(win)
	return nil
}

func (s *Store) prepareStatements() error {
	var err error
	s.insSeg, err = s.db.Prepare("INSERT INTO segs VALUES (?, ?, ?, ?)")
	if err != nil {
		return err
	}
	s.insFeat = map[feature.Kind]map[int]*sqlmini.Stmt{
		feature.Drop: {},
		feature.Jump: {},
	}
	for _, kind := range []feature.Kind{feature.Drop, feature.Jump} {
		for nc := 1; nc <= 3; nc++ {
			ph := make([]string, 2*nc+4)
			for i := range ph {
				ph[i] = "?"
			}
			stmt, err := s.db.Prepare(fmt.Sprintf(
				"INSERT INTO %s VALUES (%s)", tableName(kind, nc), strings.Join(ph, ", ")))
			if err != nil {
				return err
			}
			s.insFeat[kind][nc] = stmt
		}
	}
	// One UNION of all point and line queries per search kind
	// (Section 4.4: "the union of the results of two point queries and
	// one line query", here across the three corner-count tables).
	s.searchStmt = map[feature.Kind]*sqlmini.Stmt{}
	for _, kind := range []feature.Kind{feature.Drop, feature.Jump} {
		stmt, err := s.db.Prepare(searchUnionSQL[kind])
		if err != nil {
			return err
		}
		s.searchStmt[kind] = stmt
	}
	return nil
}

// initPipeline builds the segmenter and extractor, preloading the
// extractor window from persisted segments when resuming.
func (s *Store) initPipeline() error {
	ext, err := extract.New(s.opts.Epsilon, s.opts.Window, s.storeBoundary)
	if err != nil {
		return err
	}
	s.ext = ext

	// Resume: reload window-relevant segments. (The segmenter restarts
	// fresh: a reopen behaves like a sensor gap at the boundary.)
	r, err := s.db.Query("SELECT MAX(te) FROM segs")
	if err != nil {
		return err
	}
	if n, _ := s.db.RowCount("segs"); n > 0 {
		maxTe := r.Data[0][0]
		var lastEnd int64
		switch maxTe.T {
		case sqlmini.IntType:
			lastEnd = maxTe.I
		case sqlmini.RealType:
			lastEnd = int64(maxTe.R)
		}
		rows, err := s.db.Query("SELECT ts, vs, te, ve FROM segs WHERE te > ? ORDER BY ts",
			sqlmini.Int(lastEnd-s.opts.Window))
		if err != nil {
			return err
		}
		segs := make([]segment.Segment, 0, rows.Len())
		for _, row := range rows.Data {
			segs = append(segs, segment.Segment{Ts: row[0].I, Vs: row[1].R, Te: row[2].I, Ve: row[3].R})
		}
		if err := s.ext.Preload(segs); err != nil {
			return err
		}
	}

	s.seg, err = segment.NewSegmenter(s.opts.Epsilon, s.storeSegment)
	return err
}

func (s *Store) storeSegment(g segment.Segment) error {
	row := []sqlmini.Value{
		sqlmini.Int(g.Ts), sqlmini.Real(g.Vs), sqlmini.Int(g.Te), sqlmini.Real(g.Ve)}
	if s.opts.RowAtATime {
		if _, err := s.insSeg.Exec(row...); err != nil {
			return err
		}
	} else {
		s.segRows = append(s.segRows, row)
	}
	return s.ext.Push(g)
}

func (s *Store) storeBoundary(b feature.Boundary) error {
	nc := len(b.Corners)
	args := make([]sqlmini.Value, 0, 2*nc+4)
	for _, c := range b.Corners {
		args = append(args, sqlmini.Int(c.Dt), sqlmini.Real(c.Dv))
	}
	args = append(args,
		sqlmini.Int(b.TD), sqlmini.Int(b.TC), sqlmini.Int(b.TB), sqlmini.Int(b.TA))
	if s.opts.RowAtATime {
		_, err := s.insFeat[b.Kind][nc].Exec(args...)
		return err
	}
	s.featRows[b.Kind][nc] = append(s.featRows[b.Kind][nc], args)
	return nil
}

// buffered reports how many rows await the next Sync on the batched path.
func (s *Store) buffered() int {
	n := len(s.segRows)
	for _, byNC := range s.featRows {
		for _, rows := range byNC {
			n += len(rows)
		}
	}
	return n
}

func (s *Store) clearBuffers() {
	s.segRows = s.segRows[:0]
	for _, byNC := range s.featRows {
		for nc := range byNC {
			byNC[nc] = byNC[nc][:0]
		}
	}
}

// flushRows drains the buffers through one ExecBatch per table. Within a
// table, buffer order is emission order, so the heap receives rows exactly
// as the row-at-a-time path would.
//
// batchabort: caller — an ExecBatch failure here leaves the engine batch
// open; Sync owns the AbortBatch.
func (s *Store) flushRows() error {
	if len(s.segRows) > 0 {
		if _, err := s.insSeg.ExecBatch(s.segRows); err != nil {
			return err
		}
	}
	for _, kind := range []feature.Kind{feature.Drop, feature.Jump} {
		for nc := 1; nc <= 3; nc++ {
			rows := s.featRows[kind][nc]
			if len(rows) == 0 {
				continue
			}
			if _, err := s.insFeat[kind][nc].ExecBatch(rows); err != nil {
				return err
			}
		}
	}
	return nil
}

// beginIngest marks the store dirty; on the row-at-a-time path it also
// opens an engine batch (the batched path touches the engine only at Sync).
func (s *Store) beginIngest() {
	if s.dirty {
		return
	}
	s.dirty = true
	if s.opts.RowAtATime {
		s.db.BeginBatch()
	}
}

// Append feeds one observation through segmentation and feature
// extraction. Inserts are batched; call Sync (or Close) to make them
// durable and searchable.
func (s *Store) Append(p timeseries.Point) error {
	if s.finished {
		return fmt.Errorf("core: append after Finish")
	}
	s.beginIngest()
	return s.seg.Push(p)
}

// AppendSeries appends a whole series and commits the batch. If any point
// is rejected, everything appended since the last Sync is aborted so no
// partial series is ever committed.
func (s *Store) AppendSeries(series *timeseries.Series) error {
	for _, p := range series.Points() {
		if err := s.Append(p); err != nil {
			// The append error comes first; a failed rollback must
			// surface too rather than being silently dropped.
			return errors.Join(err, s.Abort())
		}
	}
	return s.Sync()
}

// Sync commits the current ingest batch: buffered rows are written through
// the engine's batched insert path — one writer-lock acquisition and one
// sorted, index-parallel apply per table, then a single group commit
// (one fsync). The trailing partial segment (if any) remains open: its
// observations become searchable once the segment closes (more data
// arrives or Finish is called). On error the store is rolled back to its
// last committed state (see Abort).
func (s *Store) Sync() error {
	if !s.dirty {
		return nil
	}
	s.dirty = false
	if s.opts.RowAtATime {
		return s.db.CommitBatch()
	}
	if s.buffered() == 0 {
		return nil
	}
	s.db.BeginBatch()
	if err := s.flushRows(); err != nil {
		// Partial rows reached the engine: roll back to the last commit.
		// AbortBatch cannot help an in-memory store (nothing durable to
		// restore from); the flush error stays first, but rollback and
		// pipeline-rebuild failures surface alongside it.
		s.clearBuffers()
		return errors.Join(err, s.db.AbortBatch(), s.initPipeline())
	}
	s.clearBuffers()
	return s.db.CommitBatch()
}

// Abort discards everything appended since the last successful Sync:
// buffered rows are dropped, a row-at-a-time engine batch is rolled back
// (durable stores only — in-memory stores have no committed state to
// restore and report an error), and the segmentation pipeline is rebuilt
// from the committed segment catalog. On the default batched path nothing
// has touched the engine between Syncs, so aborting an in-memory store is
// exact there.
func (s *Store) Abort() error {
	wasDirty := s.dirty
	s.dirty = false
	s.clearBuffers()
	var err error
	if wasDirty && s.opts.RowAtATime {
		err = s.db.AbortBatch()
	}
	if perr := s.initPipeline(); perr != nil && err == nil {
		err = perr
	}
	return err
}

// Finish flushes the trailing partial segment and commits. After Finish
// the store is read-only for search.
func (s *Store) Finish() error {
	if s.finished {
		return nil
	}
	s.finished = true
	s.beginIngest()
	if err := s.seg.Close(); err != nil {
		return errors.Join(err, s.Abort())
	}
	return s.Sync()
}

// Close finishes ingestion and closes the underlying database.
func (s *Store) Close() error {
	if err := s.Finish(); err != nil {
		return err
	}
	return s.db.Close()
}

// SearchDrops returns every segment pair whose parallelogram intersects
// the drop query region (Δv ≤ V within 0 < Δt ≤ T). V must be negative, T
// positive and at most the store's window. The guarantee of Theorem 1
// holds: no true event is missed, and every returned pair contains an
// event with Δv ≤ V + 2ε within (0, T].
func (s *Store) SearchDrops(T int64, V float64) ([]Match, error) {
	return s.search(context.Background(), feature.Drop, T, V, sqlmini.PlanAuto)
}

// SearchJumps is the symmetric jump search (Δv ≥ V > 0).
func (s *Store) SearchJumps(T int64, V float64) ([]Match, error) {
	return s.search(context.Background(), feature.Jump, T, V, sqlmini.PlanAuto)
}

// SearchMode runs a drop or jump search under an explicit access-path
// mode (sequential scan vs indexes), as the experiments require.
func (s *Store) SearchMode(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) ([]Match, error) {
	return s.search(context.Background(), kind, T, V, mode)
}

// SearchContext is SearchMode under a request context: the engine checks
// the context before execution and between scan units of the search
// UNION, so an expired deadline or a disconnected client aborts the
// query within one bounded unit of work. The returned error wraps
// context.DeadlineExceeded / context.Canceled for errors.Is.
func (s *Store) SearchContext(ctx context.Context, kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) ([]Match, error) {
	return s.search(ctx, kind, T, V, mode)
}

func (s *Store) search(ctx context.Context, kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) ([]Match, error) {
	if _, err := feature.NewRegion(kind, T, V); err != nil {
		return nil, err
	}
	if T > s.opts.Window {
		return nil, fmt.Errorf("core: T=%d exceeds the store window w=%d", T, s.opts.Window)
	}
	var args []sqlmini.Value
	for _, q := range searchQueries(kind) {
		args = append(args, q.args(T, V)...)
	}
	rows, err := s.searchStmt[kind].QueryModeContext(ctx, mode, args...)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, rows.Len())
	for _, row := range rows.Data {
		out = append(out, Match{TD: row[0].I, TC: row[1].I, TB: row[2].I, TA: row[3].I})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TD != out[j].TD {
			return out[i].TD < out[j].TD
		}
		return out[i].TB < out[j].TB
	})
	return out, nil
}

// searchQuery is one point or line query of the union.
type searchQuery struct {
	sql   string
	nArgs int
}

func (q searchQuery) args(T int64, V float64) []sqlmini.Value {
	out := make([]sqlmini.Value, 0, q.nArgs)
	for i := 0; i < q.nArgs; i += 2 {
		out = append(out, sqlmini.Int(T), sqlmini.Real(V))
	}
	return out
}

// The search statement sets are pure functions of the (fixed) schema, so
// they are derived once at package initialization and shared by every
// store: each open used to re-derive every branch's SQL text through
// fmt.Sprintf, and each search re-derived it again to count arguments.
var (
	searchQuerySets = map[feature.Kind][]searchQuery{
		feature.Drop: buildSearchQueries(feature.Drop),
		feature.Jump: buildSearchQueries(feature.Jump),
	}
	// searchUnionSQL is the joined UNION text per kind. All branches are
	// plain SELECTs over a corner table (no aggregates, ORDER BY, or
	// LIMIT), so the engine's fusion pass shares one scan across the
	// branches that plan to the same corner index.
	searchUnionSQL = map[feature.Kind]string{
		feature.Drop: joinUnion(searchQuerySets[feature.Drop]),
		feature.Jump: joinUnion(searchQuerySets[feature.Jump]),
	}
)

// searchQueries returns the precomputed union branches for a search kind.
func searchQueries(kind feature.Kind) []searchQuery {
	return searchQuerySets[kind]
}

func joinUnion(qs []searchQuery) string {
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = q.sql
	}
	return strings.Join(parts, " UNION ")
}

// buildSearchQueries derives the union of queries for a search kind
// (Section 4.4): one point query per stored corner and one line query per
// stored boundary edge, across the three corner-count tables.
func buildSearchQueries(kind feature.Kind) []searchQuery {
	cmp, inv := "<=", ">"
	if kind == feature.Jump {
		cmp, inv = ">=", "<"
	}
	var out []searchQuery
	for nc := 1; nc <= 3; nc++ {
		name := tableName(kind, nc)
		for i := 1; i <= nc; i++ {
			out = append(out, searchQuery{
				sql: fmt.Sprintf(
					"SELECT td, tc, tb, ta FROM %s WHERE dt%d <= ? AND dv%d %s ?",
					name, i, i, cmp),
				nArgs: 2,
			})
		}
		for i := 1; i < nc; i++ {
			out = append(out, searchQuery{
				sql: fmt.Sprintf(
					"SELECT td, tc, tb, ta FROM %s WHERE dt%d <= ? AND dv%d %s ? AND dt%d > ? AND dv%d %s ? "+
						"AND dv%d + (dv%d - dv%d) / (dt%d - dt%d) * (? - dt%d) %s ?",
					name,
					i, i, inv, // left end outside in value
					i+1, i+1, cmp, // right end beyond T, inside in value
					i, i+1, i, i+1, i, i, cmp), // boundary value at Δt=T
				nArgs: 6,
			})
		}
	}
	return out
}

// Stats describes the store's contents and compression behaviour.
type Stats struct {
	Points          int     // observations consumed this session
	Segments        int     // segments stored this session
	CompressionRate float64 // r: points per segment (this session)
	Extraction      extract.Stats
	FeatureRows     int   // rows across all feature tables
	FeatureBytes    int64 // heap bytes across feature tables + segs
	IndexBytes      int64 // index bytes across feature tables + segs
	Epsilon         float64
	Window          int64
	// Cache aggregates the buffer-pool counters of every mounted file for
	// this session, including the readahead prefetch hit/wasted split.
	Cache pager.Stats
	// ZoneSkippedPages counts heap pages zone-map pruning excluded from
	// sequential scans this session.
	ZoneSkippedPages uint64
}

// DiskBytes is features plus indexes — the paper's "disk size".
func (st Stats) DiskBytes() int64 { return st.FeatureBytes + st.IndexBytes }

// Stats gathers current statistics.
func (s *Store) Stats() (Stats, error) {
	st := Stats{Epsilon: s.opts.Epsilon, Window: s.opts.Window}
	st.Points, st.Segments = s.seg.Stats()
	st.CompressionRate = s.seg.CompressionRate()
	st.Extraction = s.ext.Stats()
	tables := []string{"segs"}
	for _, kind := range []feature.Kind{feature.Drop, feature.Jump} {
		for nc := 1; nc <= 3; nc++ {
			tables = append(tables, tableName(kind, nc))
		}
	}
	for _, t := range tables {
		n, err := s.db.RowCount(t)
		if err != nil {
			return st, err
		}
		if t != "segs" {
			st.FeatureRows += n
		}
		fb, err := s.db.TableSizeBytes(t)
		if err != nil {
			return st, err
		}
		st.FeatureBytes += fb
		ib, err := s.db.IndexSizeBytes(t)
		if err != nil {
			return st, err
		}
		st.IndexBytes += ib
	}
	st.Cache = s.db.CacheStats()
	st.ZoneSkippedPages = s.db.ZoneSkippedPages()
	return st, nil
}

// TraceSearch runs a drop or jump search under EXPLAIN ANALYZE and
// returns its runtime trace: one node per scan unit of the search
// UNION, annotated with actual row counts, page I/O deltas, zone-map
// skips, and wall time next to the planner's estimates. The search
// itself executes exactly as SearchMode would, but sequentially on the
// calling goroutine so page attribution stays per-node.
func (s *Store) TraceSearch(kind feature.Kind, T int64, V float64, mode sqlmini.PlanMode) (*obs.Trace, error) {
	if _, err := feature.NewRegion(kind, T, V); err != nil {
		return nil, err
	}
	if T > s.opts.Window {
		return nil, fmt.Errorf("core: T=%d exceeds the store window w=%d", T, s.opts.Window)
	}
	var args []sqlmini.Value
	for _, q := range searchQueries(kind) {
		args = append(args, q.args(T, V)...)
	}
	return s.db.ExplainAnalyze(mode, searchUnionSQL[kind], args...)
}

// Metrics snapshots the engine's metrics registry: query counters and
// latency histogram, buffer-pool and WAL counters, worker gauges. The
// snapshot is internally consistent without stalling readers or
// writers; it is the zero Snapshot when metrics are disabled
// (Options.DB.DisableMetrics).
func (s *Store) Metrics() obs.Snapshot { return s.db.Metrics() }

// SlowQueries returns the engine's slow-query ring buffer, oldest
// first; nil unless Options.DB.SlowQuery is positive.
func (s *Store) SlowQueries() []obs.SlowQuery { return s.db.SlowQueries() }

// DropCache simulates a cold cache before a query (paper Sections 6.1–6.3
// flush the OS cache before every query).
func (s *Store) DropCache() error { return s.db.DropCache() }

// DB exposes the underlying engine for ad-hoc SQL exploration (used by the
// CLI's sql subcommand and the benchmarks).
func (s *Store) DB() *sqlmini.DB { return s.db }

// Epsilon returns the store's ε.
func (s *Store) Epsilon() float64 { return s.opts.Epsilon }

// Window returns the store's w.
func (s *Store) Window() int64 { return s.opts.Window }

// Prune deletes every feature row and data segment that lies entirely
// before the cutoff timestamp, bounding the index for long-running
// deployments (retention). It returns the number of feature rows removed.
// Periods before the cutoff are no longer searchable; space is reclaimed
// logically (heap pages keep their tombstones).
func (s *Store) Prune(before int64) (int, error) {
	if s.dirty {
		if err := s.Sync(); err != nil {
			return 0, err
		}
	}
	s.db.BeginBatch()
	removed := 0
	for _, kind := range []feature.Kind{feature.Drop, feature.Jump} {
		for nc := 1; nc <= 3; nc++ {
			n, err := s.db.Exec(
				fmt.Sprintf("DELETE FROM %s WHERE ta <= ?", tableName(kind, nc)),
				sqlmini.Int(before))
			if err != nil {
				// Leaving the batch open would wedge the engine in batch
				// mode and silently drop every later commit.
				return removed, errors.Join(err, s.db.AbortBatch())
			}
			removed += n
		}
	}
	if _, err := s.db.Exec("DELETE FROM segs WHERE te <= ?", sqlmini.Int(before)); err != nil {
		return removed, errors.Join(err, s.db.AbortBatch())
	}
	return removed, s.db.CommitBatch()
}

// Segments returns the persisted data-segment catalog in temporal order.
func (s *Store) Segments() ([]segment.Segment, error) {
	rows, err := s.db.Query("SELECT ts, vs, te, ve FROM segs ORDER BY ts")
	if err != nil {
		return nil, err
	}
	out := make([]segment.Segment, 0, rows.Len())
	for _, row := range rows.Data {
		out = append(out, segment.Segment{Ts: row[0].I, Vs: row[1].R, Te: row[2].I, Ve: row[3].R})
	}
	return out, nil
}
