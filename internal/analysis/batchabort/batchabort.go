// Package batchabort implements the segdifflint analyzer that keeps error
// paths from leaving a write batch open.
//
// After DB.BeginBatch (or a Stmt.ExecBatch inside an open batch) the engine
// holds staged WAL pages and rejects further writers until CommitBatch or
// AbortBatch runs. An error return that skips both leaves the database
// wedged in batch mode and silently discards durability (DESIGN.md §6).
//
// The analyzer walks the CFG forward from every batch trigger:
//
//   - a call to a method named BeginBatch on a type named DB, or
//   - a call to a method named ExecBatch on a type named Stmt, or
//   - a call to a same-package function annotated "// batchabort: caller"
//     in its doc comment, meaning "I may leave a batch that needs
//     aborting — my caller owns the cleanup".
//
// Every reachable return that may carry a non-nil error must first pass a
// call to AbortBatch, CommitBatch, or Abort (a call inside the return
// expression counts). For BeginBatch only, the `err != nil` arm of the
// begin itself is exempt: a failed begin opens nothing.
//
// A function annotated "batchabort: caller" is itself skipped; the
// obligation transfers to its callers.
package batchabort

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/cfg"
)

// Analyzer is the batchabort analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "batchabort",
	Doc:  "check that every error path after BeginBatch/ExecBatch reaches AbortBatch/Abort",
	Run:  run,
}

// killNames are calls that discharge the abort obligation.
var killNames = map[string]bool{"AbortBatch": true, "CommitBatch": true, "Abort": true}

const callerAnnotation = "batchabort: caller"

func run(pass *analysis.Pass) error {
	callerFuncs := collectCallerAnnotated(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isCallerAnnotated(fd) {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			var sig *types.Signature
			if obj != nil {
				sig = obj.Type().(*types.Signature)
			}
			checkBody(pass, fd.Body, sig, callerFuncs)
			// Func literals get their own pass with their own signature.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if tv, ok := pass.Info.Types[lit]; ok {
					if ls, ok := tv.Type.(*types.Signature); ok {
						checkBody(pass, lit.Body, ls, callerFuncs)
					}
				}
				return true
			})
		}
	}
	return nil
}

func isCallerAnnotated(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), callerAnnotation)
}

// collectCallerAnnotated returns the *types.Func objects of functions in
// this package carrying the caller annotation.
func collectCallerAnnotated(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !isCallerAnnotated(fd) {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// hasErrorResult reports whether sig can return an error at all.
func hasErrorResult(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// trigger is one batch-opening call site located in the CFG.
type trigger struct {
	block   *cfg.Block
	idx     int
	pos     token.Pos
	name    string       // call name, for the diagnostic
	isBegin bool         // BeginBatch: failed begin opens nothing
	errObj  types.Object // error assigned from the trigger call, if any
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, sig *types.Signature, callerFuncs map[types.Object]bool) {
	if !hasErrorResult(sig) {
		return
	}
	g := cfg.New(body)
	if g.HasGoto {
		return
	}
	var triggers []trigger
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if t := triggerAt(pass, blk, i, n, callerFuncs); t != nil {
				triggers = append(triggers, *t)
			}
		}
	}
	reported := map[token.Pos]bool{}
	for _, t := range triggers {
		walk(pass, g, sig, t, reported)
	}
}

// triggerAt inspects one CFG node for a batch trigger call.
func triggerAt(pass *analysis.Pass, blk *cfg.Block, idx int, n ast.Stmt, callerFuncs map[types.Object]bool) *trigger {
	var found *ast.CallExpr
	var name string
	isBegin := false
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false // literals are analyzed separately
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || found != nil {
			return true
		}
		if fn := analysis.MethodOf(pass.Info, call); fn != nil {
			recv := analysis.ReceiverTypeName(fn.Type().(*types.Signature).Recv().Type())
			switch {
			case fn.Name() == "BeginBatch" && recv == "DB":
				found, name, isBegin = call, "BeginBatch", true
			case fn.Name() == "ExecBatch" && recv == "Stmt":
				found, name = call, "ExecBatch"
			}
			return true
		}
		// Same-package call to a caller-annotated function or method.
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if callerFuncs[pass.Info.Uses[fun]] {
				found, name = call, fun.Name
			}
		case *ast.SelectorExpr:
			if s, ok := pass.Info.Selections[fun]; ok && callerFuncs[s.Obj()] {
				found, name = call, fun.Sel.Name
			}
		}
		return true
	})
	if found == nil {
		return nil
	}
	t := &trigger{block: blk, idx: idx, pos: found.Pos(), name: name, isBegin: isBegin}
	// `err := db.BeginBatch()` / `if err := ...;` — remember err so the
	// failed-begin arm can be exempted.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && as.Rhs[0] == found {
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				if obj := objOf(pass.Info, id); obj != nil && isErrorType(obj.Type()) {
					t.errObj = obj
				}
			}
		}
	}
	return t
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// walk explores paths from the trigger, reporting error returns that skip
// every kill call.
func walk(pass *analysis.Pass, g *cfg.Graph, sig *types.Signature, t trigger, reported map[token.Pos]bool) {
	type state struct {
		block    *cfg.Block
		start    int
		errValid bool
	}
	type key struct {
		block    *cfg.Block
		errValid bool
	}
	seen := map[key]bool{}
	// Scanning starts at the trigger node itself: `return s.flushRows()`
	// is both the trigger and an error return that leaves the batch open.
	stack := []state{{t.block, t.idx, t.errObj != nil}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		errValid := st.errValid
		done := false
		for i := st.start; i < len(st.block.Nodes) && !done; i++ {
			n := st.block.Nodes[i]
			if containsKill(pass.Info, n) {
				done = true
				continue
			}
			if t.errObj != nil && reassignsObj(pass.Info, n, t.errObj) {
				errValid = false
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				if mayReturnError(pass, sig, ret) && !reported[ret.Pos()] {
					reported[ret.Pos()] = true
					pass.Reportf(ret.Pos(),
						"error return may leave the batch from %s (at %s) open: call AbortBatch/Abort first",
						t.name, pass.Fset.Position(t.pos))
				}
				done = true
			}
		}
		if done {
			continue
		}
		for _, e := range st.block.Succs {
			if e.To == g.Exit {
				continue
			}
			if t.isBegin && errValid && analysis.ErrNonNilBranch(pass.Info, e.Cond, e.Neg, t.errObj) {
				continue // failed BeginBatch opens no batch
			}
			k := key{e.To, errValid}
			if !seen[k] {
				seen[k] = true
				stack = append(stack, state{e.To, 0, errValid})
			}
		}
	}
}

// containsKill reports whether n contains a call that discharges the abort
// obligation. Calls inside func literals count: `defer func() { _ =
// db.AbortBatch() }()` is a legitimate cleanup shape.
func containsKill(info *types.Info, n ast.Stmt) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && killNames[sel.Sel.Name] {
			found = true
		}
		return true
	})
	return found
}

func reassignsObj(info *types.Info, n ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && objOf(info, id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// mayReturnError reports whether ret can carry a non-nil error: an explicit
// non-nil expression in an error result slot, a call whose results feed the
// return, or a bare return when the signature has a (named) error result.
func mayReturnError(pass *analysis.Pass, sig *types.Signature, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return hasErrorResult(sig) // named results: conservatively yes
	}
	if len(ret.Results) == 1 && sig.Results().Len() > 1 {
		// `return f()` tuple form.
		return hasErrorResult(sig)
	}
	for i, res := range ret.Results {
		if i >= sig.Results().Len() || !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		if tv, ok := pass.Info.Types[res]; ok && tv.IsNil() {
			continue
		}
		return true
	}
	return false
}
