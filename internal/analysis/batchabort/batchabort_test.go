package batchabort_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/batchabort"
	"segdiff/internal/analysis/suite"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, batchabort.Analyzer, "batchabort")
}

// TestInSuite fails if the analyzer is dropped from the segdifflint suite:
// the fixture's defects would then ship unnoticed.
func TestInSuite(t *testing.T) {
	for _, a := range suite.Analyzers() {
		if a == batchabort.Analyzer {
			return
		}
	}
	t.Fatal("batchabort analyzer is not registered in the segdifflint suite")
}
