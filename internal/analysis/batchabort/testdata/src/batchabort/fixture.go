// Package batchabort is the analyzer fixture: local DB/Stmt types with the
// engine's batch API shape, exercising leaked and properly aborted batches
// plus the caller-annotation contract.
package batchabort

import "errors"

// DB mirrors the engine's batch surface.
type DB struct{}

func (db *DB) BeginBatch()        {}
func (db *DB) CommitBatch() error { return nil }
func (db *DB) AbortBatch() error  { return nil }

// Stmt mirrors a prepared statement.
type Stmt struct{ db *DB }

func (s *Stmt) ExecBatch(rows [][]int) (int, error) { return 0, nil }

// clean aborts on the error path before returning: fine.
func clean(db *DB, fill func() error) error {
	db.BeginBatch()
	if err := fill(); err != nil {
		return errors.Join(err, db.AbortBatch())
	}
	return db.CommitBatch()
}

// leaky returns the fill error with the batch still open.
func leaky(db *DB, fill func() error) error {
	db.BeginBatch()
	if err := fill(); err != nil {
		return err // want `error return may leave the batch from BeginBatch .* open: call AbortBatch/Abort first`
	}
	return db.CommitBatch()
}

// stmtLeaky opens a batch implicitly through ExecBatch and bails out on
// the later validation error without closing it.
func stmtLeaky(s *Stmt, db *DB, check func() error) error {
	if _, err := s.ExecBatch(nil); err != nil {
		return errors.Join(err, db.AbortBatch())
	}
	if err := check(); err != nil {
		return err // want `error return may leave the batch from ExecBatch .* open`
	}
	return db.CommitBatch()
}

// fill pushes rows for a batch its caller owns.
//
// batchabort: caller — the surrounding Sync owns the AbortBatch.
func fill(s *Stmt) error {
	_, err := s.ExecBatch(nil)
	return err
}

// useFillClean propagates the helper's abort duty correctly.
func useFillClean(db *DB, s *Stmt) error {
	db.BeginBatch()
	if err := fill(s); err != nil {
		return errors.Join(err, db.AbortBatch())
	}
	return db.CommitBatch()
}

// useFillLeaky calls the caller-annotated helper and then leaks.
func useFillLeaky(db *DB, s *Stmt) error {
	if err := fill(s); err != nil {
		return err // want `error return may leave the batch from fill .* open`
	}
	return db.CommitBatch()
}
