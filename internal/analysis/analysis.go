// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package at a time and reports position-tagged diagnostics.
// It exists because this repository builds offline against the standard
// library only; the API mirrors x/tools closely enough that the analyzers
// under internal/analysis/... could be ported to real go/analysis drivers
// by swapping the Pass type.
//
// The suite it hosts (see Analyzers in suite.go) mechanically enforces the
// engine invariants documented in DESIGN.md §6–§7: pager pin/Release
// pairing, the lock-annotation discipline, batch abort on error paths,
// ε-geometry float comparisons, and durability-error handling.
//
// Suppression. A diagnostic can be silenced with a directive comment
//
//	//segdifflint:ignore <analyzer> <reason>
//
// placed on the same line as the diagnostic or on the line directly above
// it. The reason is mandatory: an unexplained suppression is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package and reports findings through pass.Reportf.
	Run func(pass *Pass) error
	// ModuleFacts, when non-nil, runs once over the whole loaded module
	// before any per-package Run and computes cross-package facts (call
	// graphs, bottom-up function summaries, module-wide field sets). The
	// result is handed to every Pass of this analyzer via Pass.ModuleFacts,
	// which is how the interprocedural analyzers see a Get in one package
	// released in another. Fixture runs see a one-package module.
	ModuleFacts func(mod *Module) (any, error)
}

// Module is the set of packages loaded and analyzed together. All
// packages of one module share a single token.FileSet, so positions from
// any package's facts can be printed through any pass's Fset.
type Module struct {
	Packages []*Package
}

// Pass holds the per-package inputs handed to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module is the package set loaded together with this one.
	Module *Module
	// ModuleFacts is the value computed by Analyzer.ModuleFacts, or nil.
	ModuleFacts any

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Package is a loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Result is the outcome of analyzing one package of a module.
type Result struct {
	Pkg *Package
	// Diags are the surviving diagnostics, sorted by position.
	Diags []Diagnostic
	// Suppressed are diagnostics silenced by a used ignore directive,
	// sorted by position — surfaced so tooling (segdifflint -json) can
	// report the ignore-directive status of every finding.
	Suppressed []Diagnostic
}

// Run applies analyzers to pkg, honours ignore directives, and returns the
// surviving diagnostics sorted by position. Directive misuse (missing
// reason, unknown analyzer name) is reported as a diagnostic of the
// pseudo-analyzer "directive". The package is treated as a complete
// module of one package — analyzers with ModuleFacts see only it.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	results, err := RunModule(&Module{Packages: []*Package{pkg}}, analyzers)
	if err != nil {
		return nil, err
	}
	return results[0].Diags, nil
}

// RunModule computes every analyzer's module facts once, then applies the
// analyzers to each package of the module, honouring ignore directives.
// Results are in mod.Packages order.
func RunModule(mod *Module, analyzers []*Analyzer) ([]Result, error) {
	moduleFacts := map[*Analyzer]any{}
	for _, a := range analyzers {
		if a.ModuleFacts == nil {
			continue
		}
		v, err := a.ModuleFacts(mod)
		if err != nil {
			return nil, fmt.Errorf("%s: module facts: %w", a.Name, err)
		}
		moduleFacts[a] = v
	}
	var results []Result
	for _, pkg := range mod.Packages {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				Info:        pkg.Info,
				Module:      mod,
				ModuleFacts: moduleFacts[a],
				diags:       &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		kept, suppressed := applyDirectives(pkg, analyzers, diags)
		sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
		sort.SliceStable(suppressed, func(i, j int) bool { return suppressed[i].Pos < suppressed[j].Pos })
		results = append(results, Result{Pkg: pkg, Diags: kept, Suppressed: suppressed})
	}
	return results, nil
}

// directive is one parsed //segdifflint:ignore comment.
type directive struct {
	file     *token.File
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

const directivePrefix = "//segdifflint:ignore"

// applyDirectives filters diags through the files' ignore directives,
// returning the surviving diagnostics and the suppressed ones.
func applyDirectives(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var dirs []*directive
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				tf := pkg.Fset.File(c.Pos())
				d := &directive{
					file:     tf,
					line:     tf.Line(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
				}
				if d.analyzer == "" || !known[d.analyzer] {
					out = append(out, Diagnostic{
						Analyzer: "directive",
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("ignore directive names unknown analyzer %q", d.analyzer),
					})
					continue
				}
				if d.reason == "" {
					out = append(out, Diagnostic{
						Analyzer: "directive",
						Pos:      c.Pos(),
						Message:  "ignore directive is missing a reason",
					})
					continue
				}
				dirs = append(dirs, d)
			}
		}
	}
	for _, dg := range diags {
		tf := pkg.Fset.File(dg.Pos)
		line := tf.Line(dg.Pos)
		silenced := false
		for _, d := range dirs {
			if d.analyzer == dg.Analyzer && d.file == tf && (d.line == line || d.line == line-1) {
				d.used = true
				silenced = true
				break
			}
		}
		if silenced {
			suppressed = append(suppressed, dg)
		} else {
			out = append(out, dg)
		}
	}
	for _, d := range dirs {
		if !d.used {
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  fmt.Sprintf("ignore directive for %q suppresses nothing", d.analyzer),
			})
		}
	}
	return out, suppressed
}

// ReceiverTypeName returns the name of the (possibly pointer) named
// receiver or operand type, or "".
func ReceiverTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// MethodOf resolves call's callee as a method (or interface method) and
// returns it, or nil when call is not a method call.
func MethodOf(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	// Package-qualified call (pkg.F): not a method.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
		return fn
	}
	return nil
}

// ErrNonNilBranch reports whether a CFG edge guarded by cond (negated when
// neg) is only taken when errObj is non-nil: the true arm of `err != nil`
// or the false arm of `err == nil`.
func ErrNonNilBranch(info *types.Info, cond ast.Expr, neg bool, errObj types.Object) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var other ast.Expr
	if id, ok := bin.X.(*ast.Ident); ok && info.Uses[id] == errObj {
		other = bin.Y
	} else if id, ok := bin.Y.(*ast.Ident); ok && info.Uses[id] == errObj {
		other = bin.X
	} else {
		return false
	}
	if tv, ok := info.Types[other]; !ok || !tv.IsNil() {
		return false
	}
	switch bin.Op {
	case token.NEQ:
		return !neg // err != nil, true arm
	case token.EQL:
		return neg // err == nil, false arm
	}
	return false
}

// FuncBodies yields every function body in f that should be analyzed as an
// independent control-flow unit: each FuncDecl body and each FuncLit body.
// fn receives the enclosing FuncDecl (nil for file-scope FuncLits — which
// cannot occur in practice) and the body.
func FuncBodies(f *ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd, nil, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				fn(fd, fl, fl.Body)
			}
			return true
		})
	}
}
