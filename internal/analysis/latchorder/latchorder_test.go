package latchorder_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/latchorder"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, latchorder.Analyzer, "latchorder")
}
