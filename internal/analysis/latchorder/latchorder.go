// Package latchorder implements the segdifflint analyzer enforcing the
// engine's two deterministic-ordering conventions that walorder's WAL
// dataflow does not cover:
//
//  1. shard latches are acquired in ascending index order (lockAll's
//     deadlock-avoidance protocol): a descending loop that Lock/RLocks
//     an indexed element is reported. Release order is free — unlockAll
//     deliberately unlocks descending;
//  2. durable writes must not be ordered by map iteration: ranging over
//     a map and flushing or syncing inside the body (directly or through
//     a callee that walorder's summaries say writes durably) makes the
//     on-disk write order nondeterministic across runs, which the
//     crash-recovery tests rely on being stable. Iterate a sorted slice
//     instead (the engine's sortedFramesLocked / sortedTableNames
//     convention).
//
// The analyzer shares walorder's module facts: the flush-primitive table
// and the transitive WritesFile summaries.
package latchorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/callgraph"
	"segdiff/internal/analysis/walorder"
)

// Analyzer is the latchorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:        "latchorder",
	Doc:         "latches are acquired in ascending index order and durable writes are not ordered by map iteration",
	Run:         run,
	ModuleFacts: walorder.ModuleFacts,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkLatchOrder(pass, f)
		checkMapFlush(pass, f)
	}
	return nil
}

// checkLatchOrder reports indexed Lock/RLock calls inside a descending
// for loop: shard latches must be acquired in ascending order.
func checkLatchOrder(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		iv := descendingLoopVar(pass.Info, loop)
		if iv == nil {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			if indexedBy(pass.Info, sel.X, iv) {
				pass.Reportf(call.Pos(),
					"%s inside a descending loop acquires latches in reverse index order; acquire in ascending order (release order is free)",
					sel.Sel.Name)
			}
			return true
		})
		return true
	})
}

// descendingLoopVar returns the loop variable object when loop's post
// statement decrements it (i-- or i -= k), nil otherwise.
func descendingLoopVar(info *types.Info, loop *ast.ForStmt) types.Object {
	var id *ast.Ident
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok != token.DEC {
			return nil
		}
		id, _ = ast.Unparen(post.X).(*ast.Ident)
	case *ast.AssignStmt:
		if post.Tok != token.SUB_ASSIGN || len(post.Lhs) != 1 {
			return nil
		}
		id, _ = ast.Unparen(post.Lhs[0]).(*ast.Ident)
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	o := info.Uses[id]
	if o == nil {
		o = info.Defs[id]
	}
	return o
}

// indexedBy reports whether expr contains an index expression whose index
// uses the object iv (x[i].mu, shards[i], &pool[i].latch, ...).
func indexedBy(info *types.Info, expr ast.Expr, iv types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == iv {
				found = true
			}
			return true
		})
		return true
	})
	return found
}

// checkMapFlush reports flush primitives (or calls into functions that
// write durably per walorder's summaries) inside a range over a map.
func checkMapFlush(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			flushes := walorder.IsFlushPrimitive(pass.Info, call)
			if !flushes {
				if fn := callgraph.Callee(pass.Info, call); fn != nil {
					flushes = walorder.WritesDurably(pass.ModuleFacts, fn)
				}
			}
			if flushes {
				pass.Reportf(call.Pos(),
					"durable write ordered by map iteration: write order becomes nondeterministic; iterate a sorted slice of keys instead")
			}
			return true
		})
		return true
	})
}
