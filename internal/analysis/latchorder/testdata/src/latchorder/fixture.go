// Fixture for the latchorder analyzer: latch acquisition order and
// map-ordered durable writes, modelled on the engine's sharded pager.
package latchorder

// Pager mirrors the engine's buffer pool; Sync is a flush primitive in
// walorder's table (latchorder shares those facts).
type Pager struct{}

func (pg *Pager) Sync() error  { return nil }
func (pg *Pager) Flush() error { return nil }

// ---- latch acquisition order ----

type latch struct{}

func (l *latch) Lock()    {}
func (l *latch) RLock()   {}
func (l *latch) Unlock()  {}
func (l *latch) RUnlock() {}

type sharded struct {
	shards [8]struct{ mu latch }
}

// goodLockAll acquires ascending and releases descending — the engine's
// lockAll/unlockAll protocol.
func goodLockAll(s *sharded) {
	for i := 0; i < len(s.shards); i++ {
		s.shards[i].mu.Lock()
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// badLockAll acquires descending, which deadlocks against an ascending
// locker.
func badLockAll(s *sharded) {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Lock() // want `Lock inside a descending loop acquires latches in reverse index order`
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// badReadLockAll: read latches follow the same protocol.
func badReadLockAll(s *sharded) {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.RLock() // want `RLock inside a descending loop acquires latches in reverse index order`
	}
	for i := 0; i < len(s.shards); i++ {
		s.shards[i].mu.RUnlock()
	}
}

// ---- map-ordered durable writes ----

// badMapFlush syncs in map iteration order: nondeterministic on-disk
// write order across runs.
func badMapFlush(pool map[string]*Pager) error {
	for _, pg := range pool {
		if err := pg.Sync(); err != nil { // want `durable write ordered by map iteration`
			return err
		}
	}
	return nil
}

// checkpoint writes durably; callers inherit the WritesFile fact.
func checkpoint(pg *Pager) error { return pg.Sync() }

// badMapCheckpoint flushes through a callee inside map iteration.
func badMapCheckpoint(pool map[string]*Pager) error {
	for _, pg := range pool {
		if err := checkpoint(pg); err != nil { // want `durable write ordered by map iteration`
			return err
		}
	}
	return nil
}

// goodSortedFlush iterates a sorted slice of names — the engine's
// sortedTableNames convention.
func goodSortedFlush(pool map[string]*Pager, names []string) error {
	for _, name := range names {
		if err := pool[name].Sync(); err != nil {
			return err
		}
	}
	return nil
}

// goodMapRead: map iteration without durable writes is fine.
func goodMapRead(pool map[string]*Pager) int {
	n := 0
	for range pool {
		n++
	}
	return n
}

// suppressedMapFlush shows the escape hatch for single-file pools where
// iteration order cannot matter.
func suppressedMapFlush(pool map[string]*Pager) error {
	for _, pg := range pool {
		//segdifflint:ignore latchorder the pool holds at most one pager in this tool
		if err := pg.Flush(); err != nil {
			return err
		}
	}
	return nil
}