// Package atomicmix implements the segdifflint analyzer forbidding mixed
// atomic and plain access to the same memory.
//
// The engine's hot counters are split across two idioms: fields of the
// sync/atomic value types (pager.frame.pins/used/prefetched, Pager.nFrames)
// and plain integer fields that every accessor touches through the
// sync/atomic functions (the cache-line-padded shard statistics,
// padUint64.v). Both idioms are only race-free when they are total: one
// plain load or store of a word that other goroutines update atomically is
// a data race, and one that the race detector frequently cannot see
// because the plain access sits on a cold path (a reset, a snapshot, a
// struct-literal overwrite).
//
// The analyzer computes a module-wide fact set — every struct field whose
// address is ever passed to a sync/atomic function — and then reports, in
// any package of the module:
//
//  1. a plain read or write of such a field (the only sanctioned use is
//     `&x.f` as a sync/atomic call argument);
//  2. an assignment that overwrites a whole struct value containing such a
//     field, or containing a field of a sync/atomic value type — the
//     assignment stores over the atomic cell with plain MOVs
//     (`s.stats = statCounters{}` is this bug);
//  3. a value copy of a sync/atomic-typed field (reading `fr.pins` other
//     than to call its methods or take its address).
//
// Cross-function and cross-package mixes are the point: the atomic uses
// that make a field "atomic" are collected from the whole module, so a
// package that plainly reads an exported counter another package updates
// atomically is caught.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"segdiff/internal/analysis"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name:        "atomicmix",
	Doc:         "forbid plain access to fields that are accessed with sync/atomic anywhere in the module",
	Run:         run,
	ModuleFacts: moduleFacts,
}

// facts is the module-wide fact set.
type facts struct {
	// atomicFields maps a struct field to one sync/atomic call site that
	// takes its address (for the diagnostic message).
	atomicFields map[*types.Var]token.Pos
}

// moduleFacts collects every field whose address reaches a sync/atomic
// function anywhere in the module.
func moduleFacts(mod *analysis.Module) (any, error) {
	fs := &facts{atomicFields: map[*types.Var]token.Pos{}}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					if fld := addressedField(pkg.Info, arg); fld != nil {
						if _, seen := fs.atomicFields[fld]; !seen {
							fs.atomicFields[fld] = call.Pos()
						}
					}
				}
				return true
			})
		}
	}
	return fs, nil
}

// isAtomicCall reports whether call invokes a function of sync/atomic
// (the free functions; method calls on atomic value types go through
// Selections and are not package-qualified).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedField returns the struct field object when arg has the form
// `&expr.field`, and nil otherwise.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fld, _ := s.Obj().(*types.Var)
	return fld
}

// isAtomicValueType reports whether t is one of the sync/atomic value
// types (atomic.Int32, atomic.Bool, atomic.Uint64, ...).
func isAtomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// containsAtomic reports whether overwriting a value of type t with a
// plain store covers memory that is elsewhere accessed atomically: t is
// (or directly embeds, through structs and arrays — not through
// pointers, slices, or maps, which a store does not traverse) a
// fact-atomic field's struct or an atomic value type.
func containsAtomic(fs *facts, t types.Type, depth int) (string, bool) {
	if depth > 10 {
		return "", false
	}
	if isAtomicValueType(t) {
		return t.(*types.Named).Obj().Name(), true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if _, ok := fs.atomicFields[fld]; ok {
				return fld.Name(), true
			}
			if name, ok := containsAtomic(fs, fld.Type(), depth+1); ok {
				return fld.Name() + "." + name, true
			}
		}
	case *types.Array:
		return containsAtomic(fs, u.Elem(), depth+1)
	}
	return "", false
}

func run(pass *analysis.Pass) error {
	fs, ok := pass.ModuleFacts.(*facts)
	if !ok {
		return fmt.Errorf("atomicmix: missing module facts")
	}
	for _, f := range pass.Files {
		checkFile(pass, fs, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, fs *facts, f *ast.File) {
	// Walk with an explicit ancestor stack so a selector use can be
	// classified by its context (atomic call argument, method receiver,
	// address-of, plain).
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for _, lhs := range n.Lhs {
					checkStructOverwrite(pass, fs, lhs)
				}
			}
		case *ast.SelectorExpr:
			checkSelector(pass, fs, stack, n)
		}
		return true
	})
}

// checkStructOverwrite reports a plain `=` whose left-hand side is a
// struct (or array-of-struct) value containing atomic memory.
func checkStructOverwrite(pass *analysis.Pass, fs *facts, lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	tv, ok := pass.Info.Types[lhs]
	if !ok {
		return
	}
	// A direct assignment to the atomic field itself is reported by
	// checkSelector at the selector; only flag composite overwrites here.
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if fld, _ := s.Obj().(*types.Var); fld != nil {
				if _, atomic := fs.atomicFields[fld]; atomic {
					return
				}
			}
		}
	}
	if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
		if _, isArray := tv.Type.Underlying().(*types.Array); !isArray {
			return
		}
	}
	if path, ok := containsAtomic(fs, tv.Type, 0); ok {
		pass.Reportf(lhs.Pos(),
			"plain struct assignment overwrites atomic field %s; store its fields atomically instead", path)
	}
}

// checkSelector classifies one field selection against the atomic fact
// set. stack[len(stack)-1] is sel.
func checkSelector(pass *analysis.Pass, fs *facts, stack []ast.Node, sel *ast.SelectorExpr) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fld, _ := s.Obj().(*types.Var)
	if fld == nil {
		return
	}
	if pos, isAtomic := fs.atomicFields[fld]; isAtomic {
		if sanctionedPlainFieldUse(pass.Info, stack) {
			return
		}
		pass.Reportf(sel.Pos(),
			"plain access to field %s, which is accessed with sync/atomic (e.g. at %s); this is a data race",
			fld.Name(), pass.Fset.Position(pos))
		return
	}
	if isAtomicValueType(fld.Type()) && !sanctionedAtomicTypeUse(stack) {
		pass.Reportf(sel.Pos(),
			"value copy of %s field %s bypasses its atomicity; call its methods or take its address",
			fld.Type().(*types.Named).Obj().Name(), fld.Name())
	}
}

// parentOf returns the ancestor i levels above the node on top of stack.
func parentOf(stack []ast.Node, i int) ast.Node {
	if len(stack) <= i {
		return nil
	}
	return stack[len(stack)-1-i]
}

// sanctionedPlainFieldUse reports whether the selector on top of stack is
// used as `&x.f` passed directly to a sync/atomic function.
func sanctionedPlainFieldUse(info *types.Info, stack []ast.Node) bool {
	un, ok := parentOf(stack, 1).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := parentOf(stack, 2).(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}

// sanctionedAtomicTypeUse reports whether the atomic-typed field selection
// on top of stack is a method-call receiver (fr.pins.Add(1)) or has its
// address taken (&fr.pins).
func sanctionedAtomicTypeUse(stack []ast.Node) bool {
	switch p := parentOf(stack, 1).(type) {
	case *ast.SelectorExpr:
		// fr.pins.M — selecting a method (atomic value types export no
		// fields, so any further selection is a method).
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}
