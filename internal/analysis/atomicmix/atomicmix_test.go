package atomicmix_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/atomicmix"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "atomicmix")
}
