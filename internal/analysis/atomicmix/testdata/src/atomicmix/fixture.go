// Fixture for the atomicmix analyzer: counters mixing sync/atomic and
// plain access, modelled on the pager's padded shard statistics.
package atomicmix

import "sync/atomic"

// pad mirrors pager.padUint64: a plain word always accessed through the
// sync/atomic functions.
type pad struct {
	v uint64
	_ [56]byte
}

type counters struct {
	hits   pad
	misses pad
}

type shard struct {
	stats counters
	gen   uint32 // plain counter, never atomic: plain access is fine
}

type pool struct {
	nFrames atomic.Int64
	closed  atomic.Bool
}

// good: every touch of the atomic cells goes through sync/atomic, and
// atomic value types are used via methods.
func good(s *shard, p *pool) uint64 {
	atomic.AddUint64(&s.stats.hits.v, 1)
	n := atomic.LoadUint64(&s.stats.misses.v)
	p.nFrames.Add(1)
	p.closed.Store(true)
	s.gen++ // non-atomic field: no finding
	return n
}

// plainRead mixes a plain load into an atomically updated word.
func plainRead(s *shard) uint64 {
	return s.stats.hits.v // want `plain access to field v`
}

// plainWrite mixes a plain store into an atomically updated word.
func plainWrite(s *shard) {
	s.stats.hits.v = 0 // want `plain access to field v`
}

// plainIncrement is the classic lost-update race.
func plainIncrement(s *shard) {
	s.stats.misses.v++ // want `plain access to field v`
}

// structReset overwrites the atomic cells with plain stores through a
// composite assignment — the resetStats bug shape.
func structReset(s *shard) {
	s.stats = counters{} // want `plain struct assignment overwrites atomic field`
}

// valueCopy reads an atomic value type by copying it.
func valueCopy(p *pool) int64 {
	c := p.nFrames // want `value copy of Int64 field nFrames`
	return c.Load()
}

// addressIsFine takes the address of an atomic value type field, which
// preserves atomicity.
func addressIsFine(p *pool) *atomic.Int64 {
	return &p.nFrames
}

// suppressed shows a justified escape hatch: the constructor owns the
// value exclusively before it is shared.
func suppressed() *shard {
	s := &shard{}
	//segdifflint:ignore atomicmix the shard is not yet shared during construction
	s.stats.hits.v = 1
	return s
}
