// Package syncerr implements the segdifflint analyzer for discarded
// durability errors.
//
// Sync, Flush, Commit, Close and their batch/WAL relatives are the calls
// that make writes durable; an ignored error from them is silent data
// loss. The analyzer reports any statement that evaluates such a call
// purely for effect — a bare expression statement, `defer x.Close()`, or
// `go x.Flush()` — when the callee returns exactly one error and is a
// method of a type declared in this module (or *os.File).
//
// Consuming the error in any expression position (assignment, return,
// argument, condition) counts as handled; so does an explicit `_ = ...`
// discard, which at least documents the decision at the call site. The
// usual fix for `defer f.Close()` on a write path is a named-return
// helper that joins the close error into the function's error.
package syncerr

import (
	"go/ast"
	"go/types"
	"strings"

	"segdiff/internal/analysis"
)

// Analyzer is the syncerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc:  "forbid discarding errors from Sync/Flush/Commit/Close on durability paths",
	Run:  run,
}

// durabilityMethods are the method names whose errors must be consumed.
var durabilityMethods = map[string]bool{
	"Sync": true, "Flush": true, "Commit": true, "Close": true,
	"CommitBatch": true, "AbortBatch": true, "Abort": true,
	"Checkpoint": true, "Truncate": true, "Finish": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, kind = callOf(s.X), "discarded"
			case *ast.DeferStmt:
				call, kind = s.Call, "discarded by defer"
			case *ast.GoStmt:
				call, kind = s.Call, "discarded by go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := analysis.MethodOf(pass.Info, call)
			if fn == nil || !durabilityMethods[fn.Name()] {
				return true
			}
			sig := fn.Type().(*types.Signature)
			if sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
				return true
			}
			if !moduleReceiver(fn) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error from %s.%s %s: durability failures must be handled (or explicitly discarded with _ =)",
				analysis.ReceiverTypeName(sig.Recv().Type()), fn.Name(), kind)
			return true
		})
	}
	return nil
}

func callOf(e ast.Expr) *ast.CallExpr {
	call, _ := e.(*ast.CallExpr)
	return call
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// moduleReceiver reports whether fn is declared on a type we police:
// anything in this module, *os.File (whose Close/Sync back every durable
// write), and the analyzer's own fixture packages (loaded under the
// "fixture/" path prefix by analysistest).
func moduleReceiver(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return strings.HasPrefix(path, "segdiff") || path == "os" || strings.HasPrefix(path, "fixture/")
}
