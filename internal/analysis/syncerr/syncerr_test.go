package syncerr_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/suite"
	"segdiff/internal/analysis/syncerr"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, syncerr.Analyzer, "syncerr")
}

// TestInSuite fails if the analyzer is dropped from the segdifflint suite:
// the fixture's defects would then ship unnoticed.
func TestInSuite(t *testing.T) {
	for _, a := range suite.Analyzers() {
		if a == syncerr.Analyzer {
			return
		}
	}
	t.Fatal("syncerr analyzer is not registered in the segdifflint suite")
}
