// Package syncerr is the analyzer fixture: durability-method errors
// discarded by expression statements, defer and go, versus handled,
// acknowledged and out-of-scope calls.
package syncerr

// Log mirrors a durable resource with the policed method names.
type Log struct{}

func (l *Log) Sync() error   { return nil }
func (l *Log) Flush() error  { return nil }
func (l *Log) Commit() error { return nil }
func (l *Log) Close() error  { return nil }
func (l *Log) Len() int      { return 0 }
func (l *Log) Rotate() error { return nil } // not a durability name: exempt
func (l *Log) Discard() bool { return true }

func dropExpr(l *Log) {
	l.Sync() // want `error from Log.Sync discarded`
}

func dropDefer(l *Log) {
	defer l.Close() // want `error from Log.Close discarded by defer`
}

func dropGo(l *Log) {
	go l.Flush() // want `error from Log.Flush discarded by go`
}

func handled(l *Log) error {
	if err := l.Commit(); err != nil {
		return err
	}
	return l.Close()
}

func acknowledged(l *Log) {
	_ = l.Sync() // explicit discard is a documented decision
}

func outOfScope(l *Log) {
	l.Rotate() // not a durability method
	_ = l.Len()
	l.Discard() // no error result
}
