// Fixture for the workerlife analyzer: worker pools and background
// goroutines, modelled on the engine's exec fan-out and pager prefetch
// worker.
package workerlife

import "sync"

// goodPool is the bounded fan-out shape used by the executor: the jobs
// channel is closed by the spawner and every worker is joined.
func goodPool(n int) int {
	jobs := make(chan int)
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				mu.Lock()
				total += j
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return total
}

// prefetcher is the background-worker shape used by the pager: a
// long-lived goroutine stopped through a dedicated channel.
type prefetcher struct {
	pfStop chan struct{}
	pfWork chan int
	pfWG   sync.WaitGroup
	n      int
}

func newPrefetcher() *prefetcher {
	p := &prefetcher{pfStop: make(chan struct{}), pfWork: make(chan int, 8)}
	p.pfWG.Add(1)
	go p.worker()
	return p
}

func (p *prefetcher) worker() {
	defer p.pfWG.Done()
	for {
		select {
		case <-p.pfStop:
			return
		case j := <-p.pfWork:
			p.n += j
		}
	}
}

func (p *prefetcher) Close() {
	close(p.pfStop)
	p.pfWG.Wait()
}

// spinner never exits: no return, break, or stopping arm.
func spinner() {
	go func() { // want `goroutine can never exit`
		for {
		}
	}()
}

// consumer holds channels nothing ever signals.
type consumer struct {
	in   chan int
	stop chan struct{}
	sum  int
}

// drainForever ranges over a channel the module never closes, so the
// goroutine is joined with the heat death of the process.
func drainForever(c *consumer) {
	go func() { // want `exits only when channel "in" is closed, but nothing in the module closes it`
		for v := range c.in {
			c.sum += v
		}
	}()
}

// stopNeverSignalled has the right select shape, but its stop channel is
// never closed or sent to anywhere in the module.
func stopNeverSignalled(c *consumer) {
	go func() { // want `stop arm receives from channel "stop", but nothing in the module closes or sends to it`
		for {
			select {
			case <-c.stop:
				return
			case v := <-c.in2():
				c.sum += v
			}
		}
	}()
}

func (c *consumer) in2() chan int { return make(chan int) }

// doneWithoutWait signals a WaitGroup that nothing joins on.
var strayWG sync.WaitGroup

func doneWithoutWait() {
	strayWG.Add(1)
	go func() { // want `calls strayWG.Done, but nothing in the module calls Wait`
		defer strayWG.Done()
	}()
}

// orphanSend sends on a local channel with no receiver anywhere in the
// function: the send blocks forever.
func orphanSend() {
	ch := make(chan int)
	ch <- 1 // want `send on channel "ch", which is never received anywhere in orphanSend`
}

// handedOff passes the channel to another function, so the receive may
// happen elsewhere: no finding. The go statement's channel argument is
// mapped onto pump's parameter, so the close below satisfies its range.
func handedOff() {
	ch := make(chan int)
	go pump(ch)
	ch <- 1
	close(ch)
}

func pump(ch chan int) {
	for range ch {
	}
}

// suppressed shows the escape hatch for a deliberate fire-and-forget.
func suppressed() {
	//segdifflint:ignore workerlife metrics flusher runs for the process lifetime by design
	go func() {
		for {
		}
	}()
}
