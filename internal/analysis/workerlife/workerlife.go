// Package workerlife implements the segdifflint analyzer checking that
// every goroutine the engine starts has a reachable join/stop path, and
// that locally created channels with senders have receivers.
//
// The engine's goroutines follow two shapes: bounded worker pools
// (`wg.Add(1); go func() { defer wg.Done(); for i := range jobs {...} }()`
// with a `close(jobs)` and `wg.Wait()` in the spawning function) and
// long-lived background workers stopped through a dedicated channel
// (`go p.prefetchWorker()` selecting on `<-p.pfStop`, closed by Close).
// A goroutine outside these shapes leaks: it pins its stack and whatever
// it captured — in the pager's case an open file — for the process
// lifetime, and a send to it after its channels are abandoned blocks
// forever.
//
// For every `go` statement whose function body is resolvable (a literal,
// or a declared function/method found through the module call graph) the
// analyzer reports:
//
//  1. a body whose CFG exit is unreachable — the goroutine can never
//     return (for {} with no breaking path, a select with no returning
//     arm);
//  2. a body that exits only by ranging over a channel that nothing in
//     the module closes;
//  3. a body whose stop arm receives from a channel that nothing in the
//     module closes or sends to;
//  4. a wg.Done (deferred or direct) on a WaitGroup that nothing in the
//     module Waits on.
//
// Independent of go statements it also reports sends on channels that
// are created locally, never escape the function, and have no receive
// anywhere in it — a send with no guaranteed receiver.
//
// Channel and WaitGroup identity is by types.Object, so struct fields
// (p.pfStop) match across functions and packages, and locals match
// within their function including its literals.
package workerlife

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/callgraph"
	"segdiff/internal/analysis/cfg"
	"segdiff/internal/analysis/dataflow"
)

// Analyzer is the workerlife analyzer.
var Analyzer = &analysis.Analyzer{
	Name:        "workerlife",
	Doc:         "check that every started goroutine has a reachable join/stop path and every local channel send a receiver",
	Run:         run,
	ModuleFacts: moduleFacts,
}

// facts is the module-wide fact set.
type facts struct {
	graph *callgraph.Graph
	// closed holds channel objects ever passed to close().
	closed map[types.Object]bool
	// sent holds channel objects ever sent to.
	sent map[types.Object]bool
	// waited holds WaitGroup objects with a .Wait() call.
	waited map[types.Object]bool
}

func moduleFacts(mod *analysis.Module) (any, error) {
	fs := &facts{
		graph:  callgraph.Build(mod),
		closed: map[types.Object]bool{},
		sent:   map[types.Object]bool{},
		waited: map[types.Object]bool{},
	}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" &&
						pkg.Info.Uses[id] == types.Universe.Lookup("close") && len(n.Args) == 1 {
						if o := chanObj(pkg.Info, n.Args[0]); o != nil {
							fs.closed[o] = true
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						if o := waitGroupObj(pkg.Info, sel.X); o != nil {
							fs.waited[o] = true
						}
					}
				case *ast.SendStmt:
					if o := chanObj(pkg.Info, n.Chan); o != nil {
						fs.sent[o] = true
					}
				}
				return true
			})
		}
	}
	return fs, nil
}

// chanObj resolves expr to the object of a channel-typed variable or
// field: an identifier or a field selection. Other shapes return nil.
func chanObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		o := info.Uses[e]
		if o == nil {
			o = info.Defs[e]
		}
		if o != nil && isChan(o.Type()) {
			return o
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal && isChan(s.Obj().Type()) {
			return s.Obj()
		}
	}
	return nil
}

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// waitGroupObj resolves expr to the object of a sync.WaitGroup variable
// or field.
func waitGroupObj(info *types.Info, expr ast.Expr) types.Object {
	var o types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		o = info.Uses[e]
		if o == nil {
			o = info.Defs[e]
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			o = s.Obj()
		}
	}
	if o == nil || !isWaitGroup(o.Type()) {
		return nil
	}
	return o
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func run(pass *analysis.Pass) error {
	fs, ok := pass.ModuleFacts.(*facts)
	if !ok {
		return fmt.Errorf("workerlife: missing module facts")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, fs, g)
			}
			return true
		})
		analysis.FuncBodies(f, func(fd *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			if lit == nil { // literals are scanned as part of their declaring function
				checkOrphanSends(pass, fd)
			}
		})
	}
	return nil
}

// goBody resolves the function body a go statement starts: a literal's
// body, or the declaration of a statically resolved function/method. For
// a declared function it also returns a substitution from channel-typed
// parameter objects to the channel objects the go statement passes, so
// the body's exit conditions are checked against the caller's channels.
func goBody(pass *analysis.Pass, fs *facts, g *ast.GoStmt) (*ast.BlockStmt, map[types.Object]types.Object) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, nil
	}
	fn := callgraph.Callee(pass.Info, g.Call)
	if fn == nil {
		return nil, nil
	}
	n := fs.graph.NodeOf(fn)
	if n == nil {
		return nil, nil
	}
	// Every channel parameter gets a subst entry; the value is nil when
	// the argument is not a plain channel variable, which keeps the
	// checks silent rather than judging the callee's parameter object.
	subst := map[types.Object]types.Object{}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil {
		mappable := !sig.Variadic() && sig.Params().Len() == len(g.Call.Args)
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if !isChan(p.Type()) {
				continue
			}
			subst[p] = nil
			if mappable {
				subst[p] = chanObj(pass.Info, g.Call.Args[i])
			}
		}
	}
	return n.Decl.Body, subst
}

func checkGo(pass *analysis.Pass, fs *facts, g *ast.GoStmt) {
	body, subst := goBody(pass, fs, g)
	if body == nil {
		return // dynamic call: cannot see the body, stay silent
	}
	graph := cfg.New(body)
	if graph.HasGoto {
		return
	}
	if !dataflow.ExitReachable(graph) {
		pass.Reportf(g.Pos(), "goroutine can never exit: no return, break, or stopping select arm reaches the end of its body")
		return
	}
	// The body can exit structurally; verify the channels its exits
	// depend on are actually signalled somewhere in the module. A
	// parameter channel is judged through the argument this go statement
	// actually passes; an unmappable channel parameter stays silent.
	resolve := func(o types.Object) types.Object {
		if mapped, ok := subst[o]; ok {
			return mapped
		}
		return o
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && isChan(tv.Type) {
				if o := resolve(chanObj(pass.Info, n.X)); o != nil && !fs.closed[o] {
					pass.Reportf(g.Pos(),
						"goroutine exits only when channel %q is closed, but nothing in the module closes it", o.Name())
				}
			}
		case *ast.CommClause:
			if stopsGoroutine(n.Body) {
				if o := resolve(recvChan(pass.Info, n.Comm)); o != nil && !fs.closed[o] && !fs.sent[o] {
					pass.Reportf(g.Pos(),
						"goroutine's stop arm receives from channel %q, but nothing in the module closes or sends to it", o.Name())
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if o := waitGroupObj(pass.Info, sel.X); o != nil && !fs.waited[o] {
					pass.Reportf(g.Pos(),
						"goroutine calls %s.Done, but nothing in the module calls Wait on that WaitGroup", o.Name())
				}
			}
		}
		return true
	})
}

// recvChan extracts the channel object of a comm clause's receive
// (`<-ch` or `v := <-ch`), or nil for sends and defaults.
func recvChan(info *types.Info, comm ast.Stmt) types.Object {
	var expr ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		expr = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			expr = c.Rhs[0]
		}
	}
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return nil
	}
	return chanObj(info, un.X)
}

// stopsGoroutine reports whether a select arm's body terminates the
// goroutine: it contains a return, or an unlabeled/labeled break out of
// the arm (which the CFG already credits — break alone exits only the
// select, so it counts just when a return follows structurally; being
// permissive here only makes check 3 apply to fewer arms, never report
// more).
func stopsGoroutine(body []ast.Stmt) bool {
	for _, st := range body {
		if _, ok := st.(*ast.ReturnStmt); ok {
			return true
		}
		if br, ok := st.(*ast.BranchStmt); ok && br.Label != nil {
			return true // breaking a labeled outer loop ends the worker loop
		}
	}
	return false
}

// checkOrphanSends reports sends on channels that are created in fd,
// never escape it, and are received nowhere in it (including literals).
func checkOrphanSends(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Locals made by `make(chan ...)` in this function.
	made := map[types.Object]ast.Node{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(as.Lhs) <= i {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" || pass.Info.Uses[id] != types.Universe.Lookup("make") {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if o := pass.Info.Defs[lhs]; o != nil && isChan(o.Type()) {
				made[o] = as
			}
		}
		return true
	})
	if len(made) == 0 {
		return
	}

	escaped := map[types.Object]bool{}
	received := map[types.Object]bool{}
	sendPos := map[types.Object]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := pass.Info.Uses[id]
		if o == nil {
			if o = pass.Info.Defs[id]; o == nil {
				return true
			}
		}
		if _, tracked := made[o]; !tracked {
			return true
		}
		switch p := parentOf(stack, 1).(type) {
		case *ast.SendStmt:
			if p.Chan == id {
				if sendPos[o] == nil {
					sendPos[o] = p
				}
			} else {
				escaped[o] = true // the channel value itself is sent somewhere
			}
		case *ast.UnaryExpr:
			if p.Op == token.ARROW {
				received[o] = true
			} else {
				escaped[o] = true
			}
		case *ast.RangeStmt:
			if p.X == id {
				received[o] = true
			}
		case *ast.CallExpr:
			// close(ch) keeps the obligation local; any other call takes
			// the channel out of our sight.
			if fun, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && fun.Name == "close" &&
				pass.Info.Uses[fun] == types.Universe.Lookup("close") {
				break
			}
			escaped[o] = true
		case *ast.AssignStmt, *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
			// Reassignment, return, or storage: tracking ends.
			if as, ok := p.(*ast.AssignStmt); ok && len(made) > 0 {
				// The defining `ch := make(...)` itself is not an escape.
				if made[o] == ast.Node(as) {
					break
				}
			}
			escaped[o] = true
		}
		return true
	})
	for o, at := range sendPos {
		if !escaped[o] && !received[o] {
			pass.Reportf(at.Pos(),
				"send on channel %q, which is never received anywhere in %s and does not escape it", o.Name(), fd.Name.Name)
		}
	}
}

func parentOf(stack []ast.Node, i int) ast.Node {
	if len(stack) <= i {
		return nil
	}
	return stack[len(stack)-1-i]
}
