package workerlife_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/workerlife"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, workerlife.Analyzer, "workerlife")
}
