// Package lockcheck implements the segdifflint analyzer enforcing the
// DESIGN.md §6 lock discipline through two machine-readable conventions:
//
//   - A struct field whose doc or line comment contains "guarded by <mu>"
//     declares that <mu> (a sync.Mutex or sync.RWMutex field of the same
//     struct) must be held to touch the field.
//
//   - A function doc comment line "locks: <recv>.<mu>" (optionally with a
//     "(shared)" or "(any)" suffix) declares that the function must be
//     called with that mutex already held. <recv> names the function's
//     receiver or one of its parameters.
//
// With those declarations the analyzer reports:
//
//  1. self-deadlock: while a function holds a mutex — either via an
//     explicit Lock/RLock statement or via a locks: annotation — it must
//     not call a method of the same receiver that itself acquires that
//     mutex (Go mutexes are not reentrant, and recursive RLock is
//     forbidden while a writer is queued);
//
//  2. unguarded access: a function that touches a guarded field must
//     either acquire the mutex in its own body or carry a locks:
//     annotation;
//
//  3. malformed annotations: a locks: line naming an unknown receiver,
//     parameter, or non-mutex field.
//
// Calls made inside func literals are skipped by check 1: a literal often
// runs on another goroutine that does not inherit the caller's lock.
// Guarded-field accesses inside literals do inherit the enclosing
// function's context for check 2.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"segdiff/internal/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "enforce the guarded-field / locks:-annotation mutex discipline of DESIGN.md §6",
	Run:  run,
}

var (
	locksLine   = regexp.MustCompile(`^locks:\s+(\w+)\.(\w+)(?:\s+\((shared|any)\))?$`)
	guardedLine = regexp.MustCompile(`guarded by (\w+)`)
)

// annotation is one parsed "locks: r.mu" declaration.
type annotation struct {
	base  string // receiver or parameter name
	field string // mutex field name
	mode  string // "", "shared", or "any"
}

// structFacts records the mutex and guarded fields of one named struct type.
type structFacts struct {
	mutexes map[string]bool   // mutex/RWMutex field name -> true
	guarded map[string]string // guarded field name -> guarding mutex name
}

func run(pass *analysis.Pass) error {
	facts := collectStructFacts(pass)
	anns := collectAnnotations(pass, facts)
	selfLocking := collectSelfLocking(pass, facts)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSelfDeadlock(pass, fd, anns[fd], facts, selfLocking)
			checkGuardedAccess(pass, fd, anns[fd], facts)
		}
	}
	return nil
}

// namedStruct resolves t to (type name, struct facts) when t is a (pointer
// to a) named struct type declared in this package with recorded facts.
func namedStruct(facts map[string]*structFacts, t types.Type) (string, *structFacts) {
	name := analysis.ReceiverTypeName(t)
	if name == "" {
		return "", nil
	}
	sf := facts[name]
	if sf == nil {
		return name, nil
	}
	return name, sf
}

// collectStructFacts scans struct declarations for mutex fields and
// "guarded by" comments.
func collectStructFacts(pass *analysis.Pass) map[string]*structFacts {
	facts := map[string]*structFacts{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			sf := &structFacts{mutexes: map[string]bool{}, guarded: map[string]string{}}
			for _, field := range st.Fields.List {
				names := fieldNames(field)
				if isMutexType(pass.Info, field.Type) {
					for _, nm := range names {
						sf.mutexes[nm] = true
					}
				}
				if mu := guardComment(field); mu != "" {
					for _, nm := range names {
						sf.guarded[nm] = mu
					}
				}
			}
			if len(sf.mutexes) > 0 || len(sf.guarded) > 0 {
				facts[ts.Name.Name] = sf
			}
			return true
		})
	}
	// A "guarded by" comment naming a non-mutex field is a doc bug.
	for name, sf := range facts {
		for field, mu := range sf.guarded {
			if !sf.mutexes[mu] {
				pass.Reportf(structFieldPos(pass, name, field),
					"field %s.%s is declared guarded by %q, which is not a mutex field of %s", name, field, mu, name)
			}
		}
	}
	return facts
}

func fieldNames(field *ast.Field) []string {
	if len(field.Names) == 0 {
		// Embedded field: named after its type.
		t := field.Type
		if se, ok := t.(*ast.SelectorExpr); ok {
			return []string{se.Sel.Name}
		}
		if id, ok := t.(*ast.Ident); ok {
			return []string{id.Name}
		}
		return nil
	}
	var out []string
	for _, n := range field.Names {
		out = append(out, n.Name)
	}
	return out
}

func isMutexType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedLine.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func structFieldPos(pass *analysis.Pass, typeName, fieldName string) token.Pos {
	for _, f := range pass.Files {
		var pos token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != typeName {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, nm := range field.Names {
					if nm.Name == fieldName {
						pos = nm.Pos()
					}
				}
			}
			return false
		})
		if pos.IsValid() {
			return pos
		}
	}
	return token.NoPos
}

// collectAnnotations parses and validates locks: lines in function docs.
func collectAnnotations(pass *analysis.Pass, facts map[string]*structFacts) map[*ast.FuncDecl]*annotation {
	anns := map[*ast.FuncDecl]*annotation{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, line := range strings.Split(fd.Doc.Text(), "\n") {
				m := locksLine.FindStringSubmatch(strings.TrimSpace(line))
				if m == nil {
					continue
				}
				ann := &annotation{base: m[1], field: m[2], mode: m[3]}
				if !validAnnotation(pass, fd, ann, facts) {
					pass.Reportf(fd.Pos(),
						"locks: annotation %q does not name a mutex field of a receiver or parameter of %s",
						strings.TrimSpace(line), fd.Name.Name)
					continue
				}
				anns[fd] = ann
			}
		}
	}
	return anns
}

// validAnnotation checks that ann.base names the receiver or a parameter
// whose struct type has mutex field ann.field.
func validAnnotation(pass *analysis.Pass, fd *ast.FuncDecl, ann *annotation, facts map[string]*structFacts) bool {
	check := func(name *ast.Ident) bool {
		if name == nil || name.Name != ann.base {
			return false
		}
		obj := pass.Info.Defs[name]
		if obj == nil {
			return false
		}
		_, sf := namedStruct(facts, obj.Type())
		return sf != nil && sf.mutexes[ann.field]
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, nm := range field.Names {
				if check(nm) {
					return true
				}
			}
		}
	}
	for _, field := range fd.Type.Params.List {
		for _, nm := range field.Names {
			if check(nm) {
				return true
			}
		}
	}
	return false
}

// collectSelfLocking maps type name -> method name for methods that acquire
// a mutex of their own receiver directly in their body (outside literals).
func collectSelfLocking(pass *analysis.Pass, facts map[string]*structFacts) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			recvName, recvObj, sf := receiverOf(pass, fd, facts)
			if sf == nil {
				continue
			}
			for _, acq := range lockOps(pass, fd.Body, recvObj, sf) {
				if acq.acquire {
					if out[recvName] == nil {
						out[recvName] = map[string]bool{}
					}
					out[recvName][fd.Name.Name] = true
					break
				}
			}
		}
	}
	return out
}

func receiverOf(pass *analysis.Pass, fd *ast.FuncDecl, facts map[string]*structFacts) (string, types.Object, *structFacts) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return "", nil, nil
	}
	id := fd.Recv.List[0].Names[0]
	obj := pass.Info.Defs[id]
	if obj == nil {
		return "", nil, nil
	}
	name, sf := namedStruct(facts, obj.Type())
	return name, obj, sf
}

// lockOp is one r.mu.Lock/RLock/Unlock/RUnlock statement on the receiver.
type lockOp struct {
	pos      token.Pos
	acquire  bool
	deferred bool
}

// lockOps finds direct lock operations on recvObj's mutex fields in body,
// skipping func literals.
func lockOps(pass *analysis.Pass, body *ast.BlockStmt, recvObj types.Object, sf *structFacts) []lockOp {
	var ops []lockOp
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var call *ast.CallExpr
		deferred := false
		switch s := n.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, deferred = s.Call, true
		}
		if call == nil {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := sel.Sel.Name
		if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := muSel.X.(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recvObj || !sf.mutexes[muSel.Sel.Name] {
			return true
		}
		ops = append(ops, lockOp{
			pos:      call.Pos(),
			acquire:  op == "Lock" || op == "RLock",
			deferred: deferred,
		})
		return true
	})
	return ops
}

// holdIntervals derives the positional spans during which fd holds its
// receiver's mutex: an annotation covers the whole body; each explicit
// acquire extends to the next non-deferred release, or to the body end.
func holdIntervals(pass *analysis.Pass, fd *ast.FuncDecl, ann *annotation,
	recvObj types.Object, sf *structFacts) [][2]token.Pos {

	var spans [][2]token.Pos
	if ann != nil && recvObj != nil && fd.Recv != nil &&
		len(fd.Recv.List[0].Names) > 0 && fd.Recv.List[0].Names[0].Name == ann.base {
		spans = append(spans, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
	}
	ops := lockOps(pass, fd.Body, recvObj, sf)
	for i, op := range ops {
		if !op.acquire || op.deferred {
			continue
		}
		end := fd.Body.End()
		for _, rel := range ops[i+1:] {
			if !rel.acquire && !rel.deferred {
				end = rel.pos
				break
			}
		}
		spans = append(spans, [2]token.Pos{op.pos, end})
	}
	return spans
}

// checkSelfDeadlock flags calls to self-locking methods of the same
// receiver made while the receiver's mutex is held.
func checkSelfDeadlock(pass *analysis.Pass, fd *ast.FuncDecl, ann *annotation,
	facts map[string]*structFacts, selfLocking map[string]map[string]bool) {

	recvName, recvObj, sf := receiverOf(pass, fd, facts)
	if sf == nil || len(selfLocking[recvName]) == 0 {
		return
	}
	spans := holdIntervals(pass, fd, ann, recvObj, sf)
	if len(spans) == 0 {
		return
	}
	held := func(pos token.Pos) bool {
		for _, s := range spans {
			if s[0] <= pos && pos < s[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recvObj {
			return true
		}
		m := sel.Sel.Name
		if selfLocking[recvName][m] && held(call.Pos()) {
			pass.Reportf(call.Pos(),
				"self-deadlock: %s calls %s.%s, which acquires %s's mutex, while already holding it",
				fd.Name.Name, base.Name, m, base.Name)
		}
		return true
	})
}

// checkGuardedAccess flags guarded-field accesses in functions that neither
// acquire the guarding mutex nor declare a locks: annotation for it.
func checkGuardedAccess(pass *analysis.Pass, fd *ast.FuncDecl, ann *annotation,
	facts map[string]*structFacts) {

	// Types whose mutexes this function acquires anywhere in its body
	// (including literals — conservative), plus the annotated type.
	coveredType := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[muSel.X]
		if !ok {
			return true
		}
		if name, sf := namedStruct(facts, tv.Type); sf != nil && sf.mutexes[muSel.Sel.Name] {
			coveredType[name] = true
		}
		return true
	})
	if ann != nil {
		if obj := lookupBase(pass, fd, ann.base); obj != nil {
			if name, sf := namedStruct(facts, obj.Type()); sf != nil {
				coveredType[name] = true
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok {
			return true
		}
		name, sf := namedStruct(facts, tv.Type)
		if sf == nil {
			return true
		}
		mu, guarded := sf.guarded[sel.Sel.Name]
		if !guarded || coveredType[name] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s accesses %s.%s (guarded by %s.%s) without acquiring it or declaring a locks: annotation",
			fd.Name.Name, name, sel.Sel.Name, name, mu)
		return true
	})
}

func lookupBase(pass *analysis.Pass, fd *ast.FuncDecl, base string) types.Object {
	check := func(list *ast.FieldList) types.Object {
		if list == nil {
			return nil
		}
		for _, field := range list.List {
			for _, nm := range field.Names {
				if nm.Name == base {
					return pass.Info.Defs[nm]
				}
			}
		}
		return nil
	}
	if obj := check(fd.Recv); obj != nil {
		return obj
	}
	return check(fd.Type.Params)
}
