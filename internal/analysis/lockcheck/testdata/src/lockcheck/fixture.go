// Package lockcheck is the analyzer fixture: a guarded counter exercising
// the annotation grammar, unguarded access, self-deadlock and the two
// annotation-hygiene diagnostics.
package lockcheck

import "sync"

// Counter is the well-formed guarded type.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc acquires the mutex itself: fine.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bump relies on the caller's lock and says so.
//
// locks: c.mu
func (c *Counter) bump() { c.n++ }

// Add holds the lock across a call to the annotated helper: fine.
func (c *Counter) Add(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < k; i++ {
		c.bump()
	}
}

// Peek reads the guarded field with no lock and no annotation.
func (c *Counter) Peek() int {
	return c.n // want `Peek accesses Counter.n \(guarded by Counter.mu\) without acquiring`
}

// Double re-enters the self-locking Inc while already holding the mutex.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want `self-deadlock: Double calls c.Inc, which acquires c's mutex, while already holding it`
	c.Inc() // want `self-deadlock: Double calls c.Inc, which acquires c's mutex, while already holding it`
}

// Reset unlocks before re-entering: fine.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.Inc()
}

// phantom's annotation names a receiver that has no mutex field.
//
// locks: q.mu
func phantom(q int) int { return q } // want `locks: annotation "locks: q.mu" does not name a mutex field`

// Sloppy declares a guard that is not a mutex.
type Sloppy struct {
	state int
	v     int // want `field Sloppy.v is declared guarded by "state", which is not a mutex field of Sloppy` // guarded by state
}

// Engine mirrors sqlmini.DB's planner-statistics state: a guarded
// reference-typed catalog map plus a guarded dirty flag, written by the
// ingest path and read by a parameter-annotated planner function.
type Engine struct {
	mu    sync.RWMutex
	stats map[string]int // guarded by mu
	// dirty marks stats changed since the last save.
	dirty bool // guarded by mu
}

// note writes both guarded fields under the caller's exclusive lock.
//
// locks: e.mu
func (e *Engine) note(k string) {
	e.stats[k]++
	e.dirty = true
}

// plan is a free function reading guarded state through an annotated
// parameter, the shape of buildPlan(db, ...).
//
// locks: e.mu (any)
func plan(e *Engine, k string) int {
	return e.stats[k]
}

// flush resets the dirty flag under its own lock: fine.
func (e *Engine) flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dirty = false
}

// estimate reads the stats map with no lock and no annotation.
func (e *Engine) estimate(k string) int {
	return e.stats[k] // want `estimate accesses Engine.stats \(guarded by Engine.mu\) without acquiring`
}

// bucket mirrors pager.shard: one lock stripe of a sharded pool, with its
// own mutex guarding its own frame map and clock state.
type bucket struct {
	mu     sync.RWMutex
	frames map[uint32]int // guarded by mu
	hand   int            // guarded by mu
}

// pool is the sharded owner; the slice itself is immutable after
// construction, so only the per-bucket state is guarded.
type pool struct {
	buckets []bucket
}

// advance is a per-stripe helper relying on the caller's latch, the shape
// of the pager's makeRoom/insertFrame/removeFrame helpers.
//
// locks: b.mu
func (b *bucket) advance() int {
	b.hand = (b.hand + 1) % len(b.frames)
	return b.hand
}

// peek reads stripe state under either latch mode.
//
// locks: b.mu (any)
func peek(b *bucket, id uint32) int {
	return b.frames[id]
}

// lookup takes its own shared latch on one stripe: fine.
func (p *pool) lookup(id uint32) int {
	b := &p.buckets[id%uint32(len(p.buckets))]
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.frames[id]
}

// sweep is the lockAll shape: an ordered all-stripe latch acquired
// through an index expression, covering every stripe's guarded fields.
func (p *pool) sweep() int {
	n := 0
	for i := range p.buckets {
		p.buckets[i].mu.Lock()
	}
	for i := range p.buckets {
		n += len(p.buckets[i].frames)
	}
	for i := range p.buckets {
		p.buckets[i].mu.Unlock()
	}
	return n
}

// steal touches a stripe's clock hand with no latch and no annotation.
func (p *pool) steal(i int) int {
	return p.buckets[i].hand // want `steal accesses bucket.hand \(guarded by bucket.mu\) without acquiring`
}
