// Package lockcheck is the analyzer fixture: a guarded counter exercising
// the annotation grammar, unguarded access, self-deadlock and the two
// annotation-hygiene diagnostics.
package lockcheck

import "sync"

// Counter is the well-formed guarded type.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc acquires the mutex itself: fine.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bump relies on the caller's lock and says so.
//
// locks: c.mu
func (c *Counter) bump() { c.n++ }

// Add holds the lock across a call to the annotated helper: fine.
func (c *Counter) Add(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < k; i++ {
		c.bump()
	}
}

// Peek reads the guarded field with no lock and no annotation.
func (c *Counter) Peek() int {
	return c.n // want `Peek accesses Counter.n \(guarded by Counter.mu\) without acquiring`
}

// Double re-enters the self-locking Inc while already holding the mutex.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want `self-deadlock: Double calls c.Inc, which acquires c's mutex, while already holding it`
	c.Inc() // want `self-deadlock: Double calls c.Inc, which acquires c's mutex, while already holding it`
}

// Reset unlocks before re-entering: fine.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.Inc()
}

// phantom's annotation names a receiver that has no mutex field.
//
// locks: q.mu
func phantom(q int) int { return q } // want `locks: annotation "locks: q.mu" does not name a mutex field`

// Sloppy declares a guard that is not a mutex.
type Sloppy struct {
	state int
	v     int // want `field Sloppy.v is declared guarded by "state", which is not a mutex field of Sloppy` // guarded by state
}

// Engine mirrors sqlmini.DB's planner-statistics state: a guarded
// reference-typed catalog map plus a guarded dirty flag, written by the
// ingest path and read by a parameter-annotated planner function.
type Engine struct {
	mu    sync.RWMutex
	stats map[string]int // guarded by mu
	// dirty marks stats changed since the last save.
	dirty bool // guarded by mu
}

// note writes both guarded fields under the caller's exclusive lock.
//
// locks: e.mu
func (e *Engine) note(k string) {
	e.stats[k]++
	e.dirty = true
}

// plan is a free function reading guarded state through an annotated
// parameter, the shape of buildPlan(db, ...).
//
// locks: e.mu (any)
func plan(e *Engine, k string) int {
	return e.stats[k]
}

// flush resets the dirty flag under its own lock: fine.
func (e *Engine) flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dirty = false
}

// estimate reads the stats map with no lock and no annotation.
func (e *Engine) estimate(k string) int {
	return e.stats[k] // want `estimate accesses Engine.stats \(guarded by Engine.mu\) without acquiring`
}
