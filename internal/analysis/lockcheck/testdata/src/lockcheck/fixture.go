// Package lockcheck is the analyzer fixture: a guarded counter exercising
// the annotation grammar, unguarded access, self-deadlock and the two
// annotation-hygiene diagnostics.
package lockcheck

import "sync"

// Counter is the well-formed guarded type.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc acquires the mutex itself: fine.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bump relies on the caller's lock and says so.
//
// locks: c.mu
func (c *Counter) bump() { c.n++ }

// Add holds the lock across a call to the annotated helper: fine.
func (c *Counter) Add(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < k; i++ {
		c.bump()
	}
}

// Peek reads the guarded field with no lock and no annotation.
func (c *Counter) Peek() int {
	return c.n // want `Peek accesses Counter.n \(guarded by Counter.mu\) without acquiring`
}

// Double re-enters the self-locking Inc while already holding the mutex.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want `self-deadlock: Double calls c.Inc, which acquires c's mutex, while already holding it`
	c.Inc() // want `self-deadlock: Double calls c.Inc, which acquires c's mutex, while already holding it`
}

// Reset unlocks before re-entering: fine.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.Inc()
}

// phantom's annotation names a receiver that has no mutex field.
//
// locks: q.mu
func phantom(q int) int { return q } // want `locks: annotation "locks: q.mu" does not name a mutex field`

// Sloppy declares a guard that is not a mutex.
type Sloppy struct {
	state int
	v     int // want `field Sloppy.v is declared guarded by "state", which is not a mutex field of Sloppy` // guarded by state
}
