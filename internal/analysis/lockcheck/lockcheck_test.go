package lockcheck_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/lockcheck"
	"segdiff/internal/analysis/suite"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "lockcheck")
}

// TestInSuite fails if the analyzer is dropped from the segdifflint suite:
// the fixture's defects would then ship unnoticed.
func TestInSuite(t *testing.T) {
	for _, a := range suite.Analyzers() {
		if a == lockcheck.Analyzer {
			return
		}
	}
	t.Fatal("lockcheck analyzer is not registered in the segdifflint suite")
}
