// Package suite enumerates the segdifflint analyzers. It exists so that
// the cmd/segdifflint driver and the repo-wide self-check test run exactly
// the same set.
package suite

import (
	"segdiff/internal/analysis"
	"segdiff/internal/analysis/atomicmix"
	"segdiff/internal/analysis/batchabort"
	"segdiff/internal/analysis/floateq"
	"segdiff/internal/analysis/latchorder"
	"segdiff/internal/analysis/lockcheck"
	"segdiff/internal/analysis/pagehandle"
	"segdiff/internal/analysis/syncerr"
	"segdiff/internal/analysis/walorder"
	"segdiff/internal/analysis/workerlife"
)

// Analyzers is the full suite, in diagnostic-priority order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		pagehandle.Analyzer,
		atomicmix.Analyzer,
		walorder.Analyzer,
		workerlife.Analyzer,
		latchorder.Analyzer,
		lockcheck.Analyzer,
		batchabort.Analyzer,
		floateq.Analyzer,
		syncerr.Analyzer,
	}
}
