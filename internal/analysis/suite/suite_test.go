package suite_test

import (
	"testing"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/loader"
	"segdiff/internal/analysis/suite"
)

// TestRepoClean runs the full segdifflint suite over the module, so the
// engine invariants are enforced by `go test ./...` as well as by the CI
// lint step. Any finding here is a real defect or a missing annotation —
// fix the code or add a //segdifflint:ignore directive with a reason.
//
// The run is module-wide (analysis.RunModule), so the interprocedural
// analyzers see cross-package facts: a counter updated atomically in one
// package and read plainly in another is a finding here.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: repo-wide analysis recompiles the module")
	}
	pkgs, err := loader.Load("", "segdiff/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	analyzers := suite.Analyzers()
	if len(analyzers) != 9 {
		t.Fatalf("suite has %d analyzers, want 9", len(analyzers))
	}
	results, err := analysis.RunModule(&analysis.Module{Packages: pkgs}, analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, res := range results {
		for _, d := range res.Diags {
			t.Errorf("%s: [%s] %s", res.Pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
