package suite_test

import (
	"testing"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/loader"
	"segdiff/internal/analysis/suite"
)

// TestRepoClean runs the full segdifflint suite over the module, so the
// engine invariants are enforced by `go test ./...` as well as by the CI
// lint step. Any finding here is a real defect or a missing annotation —
// fix the code or add a //segdifflint:ignore directive with a reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: repo-wide analysis recompiles the module")
	}
	pkgs, err := loader.Load("", "segdiff/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	analyzers := suite.Analyzers()
	if len(analyzers) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(analyzers))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
