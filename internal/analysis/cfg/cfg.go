// Package cfg builds a statement-level control-flow graph for one function
// body. It is deliberately small: blocks hold the statements that execute
// unconditionally together, and edges carry the branch condition (with a
// negation flag) so that flow-sensitive analyzers such as pagehandle can
// distinguish the err != nil arm of an if from the fallthrough arm.
//
// goto is not modelled; a body containing goto sets Graph.HasGoto and
// callers are expected to skip it (the engine tree contains none).
package cfg

import "go/ast"

// Edge is a directed edge to a successor block. When Cond is non-nil the
// edge is taken iff Cond evaluates to true (Neg=false) or false (Neg=true).
// A nil Cond means the edge may always be taken (unconditional jumps, range
// loops, switch dispatch, select arms).
type Edge struct {
	To   *Block
	Cond ast.Expr
	Neg  bool
}

// Block is a maximal straight-line run of statements. Nodes contains the
// statements in execution order; branch conditions live on the outgoing
// Edges, not in Nodes.
type Block struct {
	Index int
	Nodes []ast.Stmt
	Succs []Edge
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // synthetic; reached by returns and by falling off the end
	Blocks []*Block
	// HasGoto reports that the body contains a goto (or a label used by
	// one); the graph is then incomplete and analyses should bail out.
	HasGoto bool
}

// builder carries the loop/switch context stacks during construction.
type builder struct {
	g   *Graph
	cur *Block
	// breakTargets / continueTargets are stacks; entry 0 is outermost.
	breaks    []target
	continues []target
}

type target struct {
	label string // "" for unlabeled
	block *Block
}

// New builds the CFG for body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmts(body.List, "")
	// Falling off the end of the body reaches Exit.
	b.edge(b.cur, g.Exit, nil, false)
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, neg bool) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Neg: neg})
}

// startDangling replaces the current block with a fresh unreachable one,
// used after terminators (return, break, continue).
func (b *builder) startDangling() {
	b.cur = b.newBlock()
}

func (b *builder) stmts(list []ast.Stmt, label string) {
	for i, s := range list {
		// Only the first statement can legitimately consume the label
		// (labels attach to single statements), but passing it through
		// is harmless: stmt ignores it for non-loop statements.
		l := ""
		if i == 0 {
			l = label
		}
		b.stmt(s, l)
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List, "")

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(head, then, s.Cond, false)
		b.cur = then
		b.stmts(s.Body.List, "")
		b.edge(b.cur, after, nil, false)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els, s.Cond, true)
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, after, nil, false)
		} else {
			b.edge(head, after, s.Cond, true)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head, nil, false)
		if s.Cond != nil {
			b.edge(head, body, s.Cond, false)
			b.edge(head, after, s.Cond, true)
		} else {
			b.edge(head, body, nil, false)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head, nil, false)
		}
		b.push(label, after, post)
		b.cur = body
		b.stmts(s.Body.List, "")
		b.edge(b.cur, post, nil, false)
		b.pop()
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		// The range statement itself (key/value assignment + iteration)
		// lives in the head block so analyses see its identifiers.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head, nil, false)
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		b.push(label, after, head)
		b.cur = body
		b.stmts(s.Body.List, "")
		b.edge(b.cur, head, nil, false)
		b.pop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, &ast.ExprStmt{X: s.Tag})
		}
		b.switchBody(s.Body, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchBody(s.Body, label, false)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.pushBreak(label, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.edge(head, blk, nil, false)
			b.cur = blk
			b.stmts(cc.Body, "")
			b.edge(b.cur, after, nil, false)
		}
		b.popBreak()
		b.cur = after

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit, nil, false)
		b.startDangling()

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if t := b.find(b.breaks, s.Label); t != nil {
				b.edge(b.cur, t.block, nil, false)
			}
			b.startDangling()
		case "continue":
			if t := b.find(b.continues, s.Label); t != nil && t.block != nil {
				b.edge(b.cur, t.block, nil, false)
			}
			b.startDangling()
		case "goto":
			b.g.HasGoto = true
			b.startDangling()
		case "fallthrough":
			// Handled structurally in switchBody via clause ordering;
			// record nothing here (the edge is added there).
		}

	default:
		// Plain statement: declarations, assignments, expressions, defer,
		// go, send, inc/dec, empty.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchBody lowers the clause list of a switch / type switch.
// allowFallthrough is true for expression switches only.
func (b *builder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool) {
	head := b.cur
	after := b.newBlock()
	b.pushBreak(label, after)
	var clauseBlocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock()
		clauseBlocks = append(clauseBlocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			// Case expressions are evaluated in the head block.
			head.Nodes = append(head.Nodes, &ast.ExprStmt{X: e})
		}
		b.edge(head, blk, nil, false)
	}
	if !hasDefault {
		b.edge(head, after, nil, false)
	}
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		b.cur = clauseBlocks[i]
		b.stmts(cc.Body, "")
		if allowFallthrough && endsInFallthrough(cc.Body) && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1], nil, false)
		} else {
			b.edge(b.cur, after, nil, false)
		}
	}
	b.popBreak()
	b.cur = after
}

func endsInFallthrough(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	br, ok := list[len(list)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// push registers the break and continue targets of a loop.
func (b *builder) push(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, target{label, brk})
	b.continues = append(b.continues, target{label, cont})
}

func (b *builder) pop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// pushBreak registers only a break target (switch / select): continue
// inside those still refers to the enclosing loop.
func (b *builder) pushBreak(label string, brk *Block) {
	b.breaks = append(b.breaks, target{label, brk})
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *builder) find(stack []target, label *ast.Ident) *target {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return &stack[len(stack)-1]
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return &stack[i]
		}
	}
	// Label not found on the stack: it belongs to a goto-style construct
	// we do not model.
	b.g.HasGoto = true
	return nil
}
