// Package callgraph builds a static call graph over every function
// declared in a loaded module, for the interprocedural segdifflint
// analyzers. Like the rest of internal/analysis it depends only on the
// standard library.
//
// The graph is deliberately simple: nodes are declared functions and
// methods (identified by their *types.Func), and an edge A → B exists
// when A's body contains a direct static call to B — a plain call, a
// package-qualified call, or a method call whose callee resolves through
// go/types. Calls through interface values, function values, and method
// values produce no edge (the analyzers treat such calls
// conservatively), and function literals are attributed to the declared
// function enclosing them: a call made inside a closure is an edge from
// the function that created the closure, which is the right attribution
// for the worker-pool and defer patterns the engine uses.
package callgraph

import (
	"go/ast"
	"go/types"

	"segdiff/internal/analysis"
)

// Node is one declared function or method of the module.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *analysis.Package
	// Callees are the module functions this node calls directly, without
	// duplicates, in first-call order.
	Callees []*Node
	// Callers is the reverse adjacency, without duplicates.
	Callers []*Node

	// Tarjan bookkeeping (BottomUp).
	index, lowlink int
	onStack        bool
}

// Graph is the module's call graph.
type Graph struct {
	// Nodes maps every declared function with a body to its node.
	Nodes map[*types.Func]*Node
	// order preserves declaration order for deterministic traversal.
	order []*Node
}

// Build constructs the call graph of mod.
func Build(mod *analysis.Module) *Graph {
	g := &Graph{Nodes: map[*types.Func]*Node{}}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	for _, n := range g.order {
		seen := map[*Node]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(n.Pkg.Info, call)
			if callee == nil {
				return true
			}
			target, ok := g.Nodes[callee]
			if !ok || seen[target] {
				return true
			}
			seen[target] = true
			n.Callees = append(n.Callees, target)
			target.Callers = append(target.Callers, n)
			return true
		})
	}
	return g
}

// NodeOf returns the node for fn, or nil when fn has no body in the
// module (imported, interface method, or declaration-only).
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

// Callee resolves the *types.Func a call statically invokes: a direct
// function call, a package-qualified call, or a method call (concrete or
// interface). Calls of function-typed values return nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.F).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// BottomUp returns the graph's strongly connected components in
// bottom-up order: every callee outside a component appears in an
// earlier component than its callers. Analyzers walk this order so a
// function's summary is computed before — or, within a cycle, alongside —
// the summaries of the functions calling it.
func (g *Graph) BottomUp() [][]*Node {
	// Iterative Tarjan over the deterministic declaration order; SCCs pop
	// in reverse topological order, which is exactly bottom-up.
	var (
		sccs  [][]*Node
		stack []*Node
		next  = 1
	)
	type frame struct {
		n  *Node
		ci int // next callee index to visit
	}
	for _, root := range g.order {
		if root.index != 0 {
			continue
		}
		work := []frame{{n: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.n
			if fr.ci == 0 {
				n.index, n.lowlink = next, next
				next++
				stack = append(stack, n)
				n.onStack = true
			}
			advanced := false
			for fr.ci < len(n.Callees) {
				c := n.Callees[fr.ci]
				fr.ci++
				if c.index == 0 {
					work = append(work, frame{n: c})
					advanced = true
					break
				}
				if c.onStack && c.lowlink < n.lowlink {
					n.lowlink = c.lowlink
				}
			}
			if advanced {
				continue
			}
			if n.lowlink == n.index {
				var scc []*Node
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					top.onStack = false
					scc = append(scc, top)
					if top == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if n.lowlink < parent.lowlink {
					parent.lowlink = n.lowlink
				}
			}
		}
	}
	return sccs
}
