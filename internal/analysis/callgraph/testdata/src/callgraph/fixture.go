// Fixture for the callgraph unit tests: a small call structure with a
// method call, a package-level call chain, a mutual-recursion cycle, and
// a function-value call that must NOT produce an edge.
package callgraph

type T struct{ n int }

func (t *T) Leaf() int { return t.n }

func Mid(t *T) int { return t.Leaf() }

func Top(t *T) int { return Mid(t) + Mid(t) }

func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

func Indirect(f func() int) int { return f() }

func Closure(t *T) int {
	g := func() int { return t.Leaf() }
	return g()
}
