package callgraph_test

import (
	"testing"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/callgraph"
	"segdiff/internal/analysis/loader"
)

func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	pkg, err := loader.LoadDir("", "testdata/src/callgraph", "fixture/callgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Build(&analysis.Module{Packages: []*analysis.Package{pkg}})
}

func nodeByName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

func calls(a, b *callgraph.Node) bool {
	for _, c := range a.Callees {
		if c == b {
			return true
		}
	}
	return false
}

func TestEdges(t *testing.T) {
	g := buildFixture(t)
	leaf := nodeByName(t, g, "Leaf")
	mid := nodeByName(t, g, "Mid")
	top := nodeByName(t, g, "Top")
	indirect := nodeByName(t, g, "Indirect")
	closure := nodeByName(t, g, "Closure")

	if !calls(mid, leaf) {
		t.Error("Mid should call Leaf (method call)")
	}
	if !calls(top, mid) {
		t.Error("Top should call Mid")
	}
	if len(top.Callees) != 1 {
		t.Errorf("Top calls Mid twice but should have one deduplicated edge, got %d", len(top.Callees))
	}
	if len(indirect.Callees) != 0 {
		t.Errorf("Indirect calls only a function value; want no edges, got %d", len(indirect.Callees))
	}
	if !calls(closure, leaf) {
		t.Error("Closure's literal calls Leaf; the edge belongs to Closure")
	}
	if len(leaf.Callers) != 2 {
		t.Errorf("Leaf should have callers Mid and Closure, got %d", len(leaf.Callers))
	}
}

func TestBottomUp(t *testing.T) {
	g := buildFixture(t)
	leaf := nodeByName(t, g, "Leaf")
	mid := nodeByName(t, g, "Mid")
	top := nodeByName(t, g, "Top")
	even := nodeByName(t, g, "Even")
	odd := nodeByName(t, g, "Odd")

	sccs := g.BottomUp()
	pos := map[*callgraph.Node]int{}
	sccOf := map[*callgraph.Node][]*callgraph.Node{}
	total := 0
	for i, scc := range sccs {
		for _, n := range scc {
			pos[n] = i
			sccOf[n] = scc
			total++
		}
	}
	if total != len(g.Nodes) {
		t.Fatalf("BottomUp covered %d nodes, graph has %d", total, len(g.Nodes))
	}
	if !(pos[leaf] < pos[mid] && pos[mid] < pos[top]) {
		t.Errorf("bottom-up order violated: Leaf@%d Mid@%d Top@%d", pos[leaf], pos[mid], pos[top])
	}
	if pos[even] != pos[odd] {
		t.Errorf("Even/Odd are mutually recursive and must share a component: %d vs %d", pos[even], pos[odd])
	}
	if len(sccOf[even]) != 2 {
		t.Errorf("Even's component should hold exactly Even and Odd, got %d nodes", len(sccOf[even]))
	}
}
