// Package analysistest runs a segdifflint analyzer over a source fixture
// and checks its diagnostics against `// want "regexp"` comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest but built on the
// repo's own offline loader.
//
// A fixture is a directory testdata/src/<name>/ below the analyzer's
// package; it is loaded under the import path "fixture/<name>" (which the
// syncerr analyzer treats as in-module). Every line that should produce a
// diagnostic carries a trailing comment:
//
//	p.Get(id) // want `leaked page handle`
//
// Multiple expectations on one line are written as successive quoted
// regexps. The test fails on any diagnostic with no matching want and on
// any want with no matching diagnostic — so a fixture with wants fails
// loudly if its analyzer is disabled or broken.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/loader"
)

// wantRE extracts the quoted regexps of one want comment. Both Go string
// syntaxes are accepted: "..." with escapes, or backquotes for regexps
// that themselves contain quotes.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<fixture> and reports, via t, every mismatch
// between the analyzer's diagnostics and the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := loader.LoadDir("", dir, "fixture/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, fixture, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches the message, reporting whether one was found.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment in the fixture.
func collectWants(pkg *analysis.Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRE.FindAllString(text, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					pattern, err := unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", pos, q, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	return out, nil
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
