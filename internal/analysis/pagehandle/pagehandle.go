// Package pagehandle implements the segdifflint analyzer that proves every
// pager page handle is released on all control-flow paths.
//
// A pager.Page pins a buffer-pool frame from pager.Get / pager.Allocate
// until Release is called; a handle that goes out of scope still pinned
// wedges clock eviction and eventually starves the pool (DESIGN.md §6).
// The analyzer tracks each acquisition `h, err := p.Get(...)` through the
// function's CFG and reports paths that reach a return (or the end of the
// function) with the handle still live.
//
// The analysis is flow-sensitive about the acquisition error: on the
// `err != nil` arm the handle is the zero Page and needs no release, so
// that arm is not walked (as long as err has not been reassigned).
//
// A handle that escapes — passed to a call, stored, returned, captured by
// address, or assigned to another variable — transfers the release
// obligation elsewhere and ends local tracking (conservatively silent).
package pagehandle

import (
	"go/ast"
	"go/token"
	"go/types"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/cfg"
)

// Analyzer is the pagehandle analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "pagehandle",
	Doc:  "check that every pager.Get/Allocate page handle is Released on all paths",
	Run:  run,
}

// benignMethods are Page methods that use the handle without consuming it.
var benignMethods = map[string]bool{"ID": true, "Data": true, "MarkDirty": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.FuncBodies(f, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			checkBody(pass, body)
		})
	}
	return nil
}

// acquisition is one tracked `h, err := pager.Get/Allocate(...)` site.
type acquisition struct {
	handle types.Object // the Page variable
	errObj types.Object // the error variable; nil when blank
	block  *cfg.Block
	idx    int // index of the acquiring statement in block.Nodes
	pos    token.Pos
	name   string // "Get" or "Allocate"
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	if g.HasGoto {
		return
	}
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			acq := acquisitionAt(pass, blk, i, n)
			if acq == nil {
				continue
			}
			if acq.handle == nil {
				pass.Reportf(acq.pos, "page handle from %s is discarded and can never be Released", acq.name)
				continue
			}
			walk(pass, g, acq)
		}
	}
}

// acquisitionAt recognises `h, err := X.Get(...)` / `X.Allocate()` where the
// receiver's named type is Pager and the first result's named type is Page.
// Matching is by type name, not import path, so analysistest fixtures can
// declare local stand-ins.
func acquisitionAt(pass *analysis.Pass, blk *cfg.Block, idx int, n ast.Stmt) *acquisition {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := analysis.MethodOf(pass.Info, call)
	if fn == nil {
		return nil
	}
	if fn.Name() != "Get" && fn.Name() != "Allocate" {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || analysis.ReceiverTypeName(sig.Recv().Type()) != "Pager" {
		return nil
	}
	if sig.Results().Len() != 2 || analysis.ReceiverTypeName(sig.Results().At(0).Type()) != "Page" {
		return nil
	}
	acq := &acquisition{block: blk, idx: idx, pos: as.Pos(), name: fn.Name()}
	if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
		acq.handle = objOf(pass.Info, id)
	}
	if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
		acq.errObj = objOf(pass.Info, id)
	}
	return acq
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// nodeFate classifies what one statement does to the tracked handle.
type nodeFate int

const (
	fateNone nodeFate = iota
	fateReleased
	fateEscaped
)

type visitKey struct {
	block    *cfg.Block
	errValid bool
}

// walk explores all paths from the acquisition; it reports at most one
// diagnostic per acquisition.
func walk(pass *analysis.Pass, g *cfg.Graph, acq *acquisition) {
	type state struct {
		block    *cfg.Block
		start    int
		errValid bool
	}
	seen := map[visitKey]bool{}
	stack := []state{{acq.block, acq.idx + 1, acq.errObj != nil}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		errValid := st.errValid
		leaked := false
		var leakPos token.Pos
		done := false
		for i := st.start; i < len(st.block.Nodes) && !done; i++ {
			n := st.block.Nodes[i]
			switch classify(pass.Info, n, acq.handle) {
			case fateReleased, fateEscaped:
				done = true
				continue
			}
			if reassigns(pass.Info, n, acq.handle) {
				done = true
				continue
			}
			if acq.errObj != nil && reassigns(pass.Info, n, acq.errObj) {
				errValid = false
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				leaked, leakPos = true, ret.Pos()
				done = true
			}
		}
		if leaked {
			report(pass, acq, leakPos)
			return
		}
		if done {
			continue
		}
		for _, e := range st.block.Succs {
			if e.To == g.Exit {
				// Fell off the end of the function with a live handle.
				report(pass, acq, token.NoPos)
				return
			}
			if errValid && analysis.ErrNonNilBranch(pass.Info, e.Cond, e.Neg, acq.errObj) {
				continue // handle is the zero Page on this arm
			}
			k := visitKey{e.To, errValid}
			if !seen[k] {
				seen[k] = true
				stack = append(stack, state{e.To, 0, errValid})
			}
		}
	}
}

func report(pass *analysis.Pass, acq *acquisition, at token.Pos) {
	if at.IsValid() {
		pass.Reportf(acq.pos, "page handle from %s may not be Released on the path to the return at %s",
			acq.name, pass.Fset.Position(at))
	} else {
		pass.Reportf(acq.pos, "page handle from %s may not be Released before the function returns", acq.name)
	}
}

// scanRoots returns the sub-nodes of n that execute as part of the CFG node
// itself. A RangeStmt appears as a loop-head node whose AST still contains
// the loop body; the body is lowered into separate blocks (and may run zero
// times), so only the range operands belong to the head.
func scanRoots(n ast.Stmt) []ast.Node {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return []ast.Node{n}
	}
	roots := []ast.Node{rs.X}
	if rs.Key != nil {
		roots = append(roots, rs.Key)
	}
	if rs.Value != nil {
		roots = append(roots, rs.Value)
	}
	return roots
}

// classify scans one statement for uses of the handle. Release (direct or
// inside a defer/closure) wins over escape; any other use is an escape.
func classify(info *types.Info, n ast.Stmt, handle types.Object) nodeFate {
	fate := fateNone
	for _, root := range scanRoots(n) {
		fate = classifyNode(info, root, handle, fate)
	}
	return fate
}

func classifyNode(info *types.Info, n ast.Node, handle types.Object, fate nodeFate) nodeFate {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, node)
		id, ok := node.(*ast.Ident)
		if !ok || info.Uses[id] != handle {
			return true
		}
		switch useOf(info, stack, id) {
		case fateReleased:
			fate = fateReleased
		case fateEscaped:
			if fate != fateReleased {
				fate = fateEscaped
			}
		}
		return true
	})
	return fate
}

// useOf classifies a single identifier occurrence given the ancestor stack
// (stack[len-1] == id).
func useOf(info *types.Info, stack []ast.Node, id *ast.Ident) nodeFate {
	if len(stack) < 2 {
		return fateEscaped
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || sel.X != id {
		// Any non-method use: argument, return value, assignment source,
		// composite literal, address-of, comparison, ...
		return fateEscaped
	}
	// h.M or h.M(...): a call to Release kills the obligation, the benign
	// accessors are neutral, anything else (method values included) is an
	// escape.
	if len(stack) >= 3 {
		if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
			switch sel.Sel.Name {
			case "Release":
				return fateReleased
			default:
				if benignMethods[sel.Sel.Name] {
					return fateNone
				}
				return fateEscaped
			}
		}
	}
	return fateEscaped
}

// reassigns reports whether n writes obj (ending the old value's tracking).
func reassigns(info *types.Info, n ast.Stmt, obj types.Object) bool {
	found := false
	for _, root := range scanRoots(n) {
		ast.Inspect(root, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && objOf(info, id) == obj {
					found = true
				}
			}
			return true
		})
	}
	return found
}
