// Package pagehandle implements the segdifflint analyzer that proves every
// pager page handle is released on all control-flow paths.
//
// A pager.Page pins a buffer-pool frame from pager.Get / pager.Allocate
// until Release is called; a handle that goes out of scope still pinned
// wedges clock eviction and eventually starves the pool (DESIGN.md §6).
// The analyzer tracks each acquisition `h, err := p.Get(...)` through the
// function's CFG and reports paths that reach a return (or the end of the
// function) with the handle still live.
//
// The analysis is interprocedural: a bottom-up pass over the module call
// graph summarizes, for every function, what it does to each Page-typed
// parameter — releases it on all paths, merely uses it (the caller keeps
// the obligation), or takes ownership (escape, tracking ends) — and
// whether it returns a freshly acquired live handle. Callers consume the
// summaries: `releaseHelper(h)` discharges the obligation, `use(&h)`
// keeps it (so a following return still leaks), and
// `h, err := wrapGet(p)` starts tracking exactly like a direct Get.
//
// The analysis is flow-sensitive about the acquisition error: on the
// `err != nil` arm the handle is the zero Page and needs no release, so
// that arm is not walked (as long as err has not been reassigned).
//
// A handle whose use defeats the summaries — stored, captured, returned,
// passed to an unresolvable or variadic call — escapes: the obligation
// transfers elsewhere and local tracking ends (conservatively silent).
package pagehandle

import (
	"go/ast"
	"go/token"
	"go/types"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/callgraph"
	"segdiff/internal/analysis/cfg"
	"segdiff/internal/analysis/dataflow"
)

// Analyzer is the pagehandle analyzer.
var Analyzer = &analysis.Analyzer{
	Name:        "pagehandle",
	Doc:         "check that every pager.Get/Allocate page handle is Released on all paths, across function boundaries",
	Run:         run,
	ModuleFacts: moduleFacts,
}

// benignMethods are Page methods that use the handle without consuming it.
var benignMethods = map[string]bool{"ID": true, "Data": true, "MarkDirty": true}

// paramFate is a function's summarized effect on one Page parameter. The
// zero value is the conservative one.
type paramFate int

const (
	// paramEscapes: the function stores, returns, or partially releases
	// the handle; ownership transfers and the caller's tracking ends.
	paramEscapes paramFate = iota
	// paramReleases: every path through the function releases the handle;
	// passing it in discharges the caller's obligation.
	paramReleases
	// paramLeaves: the function only uses the handle (benign methods);
	// the caller keeps the release obligation.
	paramLeaves
)

// fnSummary is the bottom-up fact for one function: the fate of each
// Page-typed parameter (indexed like Signature.Params) and, per result,
// whether it is a freshly acquired live handle.
type fnSummary struct {
	Params []paramFate
	Fresh  []bool
}

// facts is the module-wide fact set.
type facts struct {
	sums map[*types.Func]fnSummary
}

// lookup resolves a function's summary; !ok means unknown (external or
// unresolved), which callers treat as an escape.
type lookup func(fn *types.Func) (fnSummary, bool)

func moduleFacts(mod *analysis.Module) (any, error) {
	g := callgraph.Build(mod)
	fs := &facts{sums: map[*types.Func]fnSummary{}}
	raw := dataflow.Summaries(g, func(n *callgraph.Node, get dataflow.Getter) any {
		lk := func(fn *types.Func) (fnSummary, bool) {
			s, ok := get(fn).(fnSummary)
			return s, ok
		}
		return summarize(n, lk)
	})
	for fn, s := range raw {
		if sum, ok := s.(fnSummary); ok {
			fs.sums[fn] = sum
		}
	}
	return fs, nil
}

// isPage reports whether t is the Page handle type (or a pointer to it).
// Matching is by type name, not import path, so analysistest fixtures can
// declare local stand-ins.
func isPage(t types.Type) bool {
	return analysis.ReceiverTypeName(t) == "Page"
}

// summarize computes one function's summary given the current summaries
// of its callees.
func summarize(n *callgraph.Node, lk lookup) fnSummary {
	sig := n.Fn.Type().(*types.Signature)
	sum := fnSummary{
		Params: make([]paramFate, sig.Params().Len()),
		Fresh:  make([]bool, sig.Results().Len()),
	}
	if n.Decl == nil || n.Decl.Body == nil {
		return sum
	}
	g := cfg.New(n.Decl.Body)
	if g.HasGoto {
		return sum
	}
	info := n.Pkg.Info

	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isPage(p.Type()) || p.Name() == "" || p.Name() == "_" {
			continue
		}
		out := walkPaths(info, lk, g, &acquisition{handle: p, block: g.Entry, idx: -1})
		switch {
		case out.anyEscape, out.anyRelease && out.anyLeak:
			sum.Params[i] = paramEscapes
		case out.anyRelease:
			sum.Params[i] = paramReleases
		case out.anyLeak:
			sum.Params[i] = paramLeaves
		default:
			sum.Params[i] = paramEscapes // no path reaches an exit: stay silent
		}
	}

	// A result is fresh when some return statement returns a handle that
	// was acquired in this function (directly or through a fresh callee),
	// or forwards an acquiring call's results directly.
	acquired := acquiredHandles(info, lk, g)
	ast.Inspect(n.Decl.Body, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := nn.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 1 {
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if v := freshVector(info, lk, call); len(v) == len(sum.Fresh) {
					for i, fr := range v {
						sum.Fresh[i] = sum.Fresh[i] || fr
					}
				}
				return true
			}
		}
		if len(ret.Results) != len(sum.Fresh) {
			return true
		}
		for i, r := range ret.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && acquired[objOf(info, id)] {
				sum.Fresh[i] = true
			}
		}
		return true
	})
	return sum
}

// acquiredHandles collects the handle objects acquired anywhere in g.
func acquiredHandles(info *types.Info, lk lookup, g *cfg.Graph) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if acq := acquisitionAt(info, lk, blk, i, n); acq != nil && acq.handle != nil {
				out[acq.handle] = true
			}
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	fs, _ := pass.ModuleFacts.(*facts)
	lk := func(fn *types.Func) (fnSummary, bool) {
		if fs == nil {
			return fnSummary{}, false
		}
		s, ok := fs.sums[fn]
		return s, ok
	}
	for _, f := range pass.Files {
		analysis.FuncBodies(f, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			checkBody(pass, lk, body)
		})
	}
	return nil
}

// acquisition is one tracked `h, err := pager.Get/Allocate(...)` site (or
// a call to a function summarized as returning a fresh handle). A param
// pseudo-acquisition uses idx -1 on the entry block.
type acquisition struct {
	handle types.Object // the Page variable
	errObj types.Object // the error variable; nil when blank
	block  *cfg.Block
	idx    int // index of the acquiring statement in block.Nodes
	pos    token.Pos
	name   string // "Get", "Allocate", or the wrapper's name
}

func checkBody(pass *analysis.Pass, lk lookup, body *ast.BlockStmt) {
	g := cfg.New(body)
	if g.HasGoto {
		return
	}
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			acq := acquisitionAt(pass.Info, lk, blk, i, n)
			if acq == nil {
				continue
			}
			if acq.handle == nil {
				pass.Reportf(acq.pos, "page handle from %s is discarded and can never be Released", acq.name)
				continue
			}
			out := walkPaths(pass.Info, lk, g, acq)
			if out.anyLeak {
				report(pass, acq, out.leakPos)
			}
		}
	}
}

// freshVector returns, per result of the call, whether it is a live page
// handle: {true, false} for Pager.Get / Pager.Allocate, the callee's
// Fresh summary for module functions, nil when the call produces none.
func freshVector(info *types.Info, lk lookup, call *ast.CallExpr) []bool {
	fn := analysis.MethodOf(info, call)
	if fn == nil {
		fn = callgraph.Callee(info, call)
	}
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if (fn.Name() == "Get" || fn.Name() == "Allocate") &&
		sig.Recv() != nil && analysis.ReceiverTypeName(sig.Recv().Type()) == "Pager" &&
		sig.Results().Len() == 2 && isPage(sig.Results().At(0).Type()) {
		return []bool{true, false}
	}
	if sum, ok := lk(fn); ok && len(sum.Fresh) > 0 && sum.Fresh[0] &&
		sig.Results().Len() == len(sum.Fresh) && isPage(sig.Results().At(0).Type()) {
		return sum.Fresh
	}
	return nil
}

// acquisitionAt recognises `h, err := X.Get(...)` / `X.Allocate()` and
// `h[, err] := wrapper(...)` where wrapper's summary returns a fresh
// handle in result 0.
func acquisitionAt(info *types.Info, lk lookup, blk *cfg.Block, idx int, n ast.Stmt) *acquisition {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fresh := freshVector(info, lk, call)
	if fresh == nil || !fresh[0] || len(as.Lhs) != len(fresh) {
		return nil
	}
	name := "call"
	if fn := analysis.MethodOf(info, call); fn != nil {
		name = fn.Name()
	} else if fn := callgraph.Callee(info, call); fn != nil {
		name = fn.Name()
	}
	acq := &acquisition{block: blk, idx: idx, pos: as.Pos(), name: name}
	if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
		acq.handle = objOf(info, id)
	}
	if len(as.Lhs) == 2 {
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			if o := objOf(info, id); o != nil && types.Identical(o.Type(), types.Universe.Lookup("error").Type()) {
				acq.errObj = o
			}
		}
	}
	return acq
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// nodeFate classifies what one statement does to the tracked handle.
type nodeFate int

const (
	fateNone nodeFate = iota
	fateReleased
	fateEscaped
)

type visitKey struct {
	block    *cfg.Block
	errValid bool
}

// walkOutcome aggregates what happened to the handle over all explored
// paths.
type walkOutcome struct {
	anyLeak    bool
	anyRelease bool
	anyEscape  bool
	leakPos    token.Pos // first leaking return; NoPos when falling off the end
}

// walkPaths explores all paths from the acquisition and classifies each:
// released, escaped, or leaked (reaching a return or the function end
// with the handle live).
func walkPaths(info *types.Info, lk lookup, g *cfg.Graph, acq *acquisition) walkOutcome {
	type state struct {
		block    *cfg.Block
		start    int
		errValid bool
	}
	var out walkOutcome
	leak := func(at token.Pos) {
		if !out.anyLeak {
			out.leakPos = at
		}
		out.anyLeak = true
	}
	seen := map[visitKey]bool{}
	stack := []state{{acq.block, acq.idx + 1, acq.errObj != nil}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		errValid := st.errValid
		done := false
		for i := st.start; i < len(st.block.Nodes) && !done; i++ {
			n := st.block.Nodes[i]
			switch classify(info, lk, n, acq.handle) {
			case fateReleased:
				out.anyRelease = true
				done = true
				continue
			case fateEscaped:
				out.anyEscape = true
				done = true
				continue
			}
			if reassigns(info, n, acq.handle) {
				// The variable is overwritten while live: the old handle
				// is unreachable from here on; treat as an escape so the
				// summary stays conservative.
				out.anyEscape = true
				done = true
				continue
			}
			if acq.errObj != nil && reassigns(info, n, acq.errObj) {
				errValid = false
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				leak(ret.Pos())
				done = true
			}
		}
		if done {
			continue
		}
		for _, e := range st.block.Succs {
			if e.To == g.Exit {
				leak(token.NoPos) // fell off the end with a live handle
				continue
			}
			if errValid && analysis.ErrNonNilBranch(info, e.Cond, e.Neg, acq.errObj) {
				continue // handle is the zero Page on this arm
			}
			k := visitKey{e.To, errValid}
			if !seen[k] {
				seen[k] = true
				stack = append(stack, state{e.To, 0, errValid})
			}
		}
	}
	return out
}

func report(pass *analysis.Pass, acq *acquisition, at token.Pos) {
	if at.IsValid() {
		pass.Reportf(acq.pos, "page handle from %s may not be Released on the path to the return at %s",
			acq.name, pass.Fset.Position(at))
	} else {
		pass.Reportf(acq.pos, "page handle from %s may not be Released before the function returns", acq.name)
	}
}

// scanRoots returns the sub-nodes of n that execute as part of the CFG node
// itself. A RangeStmt appears as a loop-head node whose AST still contains
// the loop body; the body is lowered into separate blocks (and may run zero
// times), so only the range operands belong to the head.
func scanRoots(n ast.Stmt) []ast.Node {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return []ast.Node{n}
	}
	roots := []ast.Node{rs.X}
	if rs.Key != nil {
		roots = append(roots, rs.Key)
	}
	if rs.Value != nil {
		roots = append(roots, rs.Value)
	}
	return roots
}

// classify scans one statement for uses of the handle. Release (direct,
// deferred, or through a callee summarized as releasing) wins over
// escape; a use by a callee that leaves the obligation with the caller is
// neutral; any other use is an escape.
func classify(info *types.Info, lk lookup, n ast.Stmt, handle types.Object) nodeFate {
	fate := fateNone
	for _, root := range scanRoots(n) {
		fate = classifyNode(info, lk, root, handle, fate)
	}
	return fate
}

func classifyNode(info *types.Info, lk lookup, n ast.Node, handle types.Object, fate nodeFate) nodeFate {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, node)
		id, ok := node.(*ast.Ident)
		if !ok || info.Uses[id] != handle {
			return true
		}
		switch useOf(info, lk, stack, id) {
		case fateReleased:
			fate = fateReleased
		case fateEscaped:
			if fate != fateReleased {
				fate = fateEscaped
			}
		}
		return true
	})
	return fate
}

// useOf classifies a single identifier occurrence given the ancestor stack
// (stack[len-1] == id).
func useOf(info *types.Info, lk lookup, stack []ast.Node, id *ast.Ident) nodeFate {
	if len(stack) < 2 {
		return fateEscaped
	}
	if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == id {
		// h.M or h.M(...): a call to Release kills the obligation, the
		// benign accessors are neutral, anything else (method values
		// included) is an escape.
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
				switch sel.Sel.Name {
				case "Release":
					return fateReleased
				default:
					if benignMethods[sel.Sel.Name] {
						return fateNone
					}
					return fateEscaped
				}
			}
		}
		return fateEscaped
	}
	// Call-argument use: f(h) or f(&h) resolves through the callee's
	// parameter summary. The call sits one level above the argument
	// expression: stack[len-2] for a bare h, stack[len-3] for &h.
	arg := ast.Expr(id)
	callAt := 2
	if un, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == ast.Expr(id) {
		arg = un
		callAt = 3
	}
	if len(stack) >= callAt {
		if call, ok := stack[len(stack)-callAt].(*ast.CallExpr); ok && ast.Node(call.Fun) != ast.Node(arg) {
			if fate, ok := argFate(info, lk, call, arg); ok {
				return fate
			}
		}
	}
	// Any other use: return value, assignment source, composite literal,
	// comparison, capture, ...
	return fateEscaped
}

// argFate maps an argument position to the callee's parameter fate.
func argFate(info *types.Info, lk lookup, call *ast.CallExpr, arg ast.Expr) (nodeFate, bool) {
	fn := callgraph.Callee(info, call)
	if fn == nil {
		return fateNone, false
	}
	sum, ok := lk(fn)
	if !ok {
		return fateNone, false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Variadic() || sig.Params().Len() != len(call.Args) {
		return fateNone, false
	}
	for i, a := range call.Args {
		if a != arg {
			continue
		}
		switch sum.Params[i] {
		case paramReleases:
			return fateReleased, true
		case paramLeaves:
			return fateNone, true
		default:
			return fateEscaped, true
		}
	}
	return fateNone, false
}

// reassigns reports whether n writes obj (ending the old value's tracking).
func reassigns(info *types.Info, n ast.Stmt, obj types.Object) bool {
	found := false
	for _, root := range scanRoots(n) {
		ast.Inspect(root, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && objOf(info, id) == obj {
					found = true
				}
			}
			return true
		})
	}
	return found
}
