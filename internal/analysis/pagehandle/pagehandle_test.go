package pagehandle_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/pagehandle"
	"segdiff/internal/analysis/suite"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, pagehandle.Analyzer, "pagehandle")
}

// TestInSuite fails if the analyzer is dropped from the segdifflint suite:
// the fixture's defects would then ship unnoticed.
func TestInSuite(t *testing.T) {
	for _, a := range suite.Analyzers() {
		if a == pagehandle.Analyzer {
			return
		}
	}
	t.Fatal("pagehandle analyzer is not registered in the segdifflint suite")
}
