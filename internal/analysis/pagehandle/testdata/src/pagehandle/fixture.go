// Package pagehandle is the analyzer fixture: local Pager/Page types with
// the same shape as internal/storage/pager, exercising released, leaked,
// escaped and discarded handles.
package pagehandle

import "errors"

// Page mirrors the engine's pinned page handle.
type Page struct{ id int }

func (pg *Page) ID() int      { return pg.id }
func (pg *Page) Data() []byte { return nil }
func (pg *Page) MarkDirty()   {}
func (pg *Page) Release()     {}

// Pager mirrors the engine's buffer pool.
type Pager struct{}

func (p *Pager) Get(id int) (Page, error) { return Page{id: id}, nil }
func (p *Pager) Allocate() (Page, error)  { return Page{}, nil }

var errEmpty = errors.New("empty")

// goodDefer releases on every path via defer.
func goodDefer(p *Pager) error {
	pg, err := p.Get(1)
	if err != nil {
		return err
	}
	defer pg.Release()
	_ = pg.Data()
	return nil
}

// goodStraight releases explicitly after use.
func goodStraight(p *Pager) (int, error) {
	pg, err := p.Allocate()
	if err != nil {
		return 0, err
	}
	id := pg.ID()
	pg.MarkDirty()
	pg.Release()
	return id, nil
}

// goodEscape hands the handle to another function, which takes over
// ownership: the analyzer stops tracking it.
func goodEscape(p *Pager) error {
	pg, err := p.Get(1)
	if err != nil {
		return err
	}
	consume(pg)
	return nil
}

func consume(pg Page) { pg.Release() }

// leakOnError releases on the happy path but leaks when the mid-function
// check bails out.
func leakOnError(p *Pager) ([]byte, error) {
	pg, err := p.Get(1) // want `page handle from Get may not be Released`
	if err != nil {
		return nil, err
	}
	data := pg.Data()
	if len(data) == 0 {
		return nil, errEmpty
	}
	pg.Release()
	return data, nil
}

// leakEverywhere never releases at all.
func leakEverywhere(p *Pager) error {
	pg, err := p.Allocate() // want `page handle from Allocate may not be Released`
	if err != nil {
		return err
	}
	_ = pg.ID()
	return nil
}

// discarded throws the handle away at the acquisition itself.
func discarded(p *Pager) error {
	_, err := p.Get(1) // want `page handle from Get is discarded and can never be Released`
	return err
}
