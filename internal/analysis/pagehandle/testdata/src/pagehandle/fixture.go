// Package pagehandle is the analyzer fixture: local Pager/Page types with
// the same shape as internal/storage/pager, exercising released, leaked,
// escaped and discarded handles.
package pagehandle

import "errors"

// Page mirrors the engine's pinned page handle.
type Page struct{ id int }

func (pg *Page) ID() int      { return pg.id }
func (pg *Page) Data() []byte { return nil }
func (pg *Page) MarkDirty()   {}
func (pg *Page) Release()     {}

// Pager mirrors the engine's buffer pool.
type Pager struct{}

func (p *Pager) Get(id int) (Page, error) { return Page{id: id}, nil }
func (p *Pager) Allocate() (Page, error)  { return Page{}, nil }

var errEmpty = errors.New("empty")

// goodDefer releases on every path via defer.
func goodDefer(p *Pager) error {
	pg, err := p.Get(1)
	if err != nil {
		return err
	}
	defer pg.Release()
	_ = pg.Data()
	return nil
}

// goodStraight releases explicitly after use.
func goodStraight(p *Pager) (int, error) {
	pg, err := p.Allocate()
	if err != nil {
		return 0, err
	}
	id := pg.ID()
	pg.MarkDirty()
	pg.Release()
	return id, nil
}

// goodEscape hands the handle to another function, which takes over
// ownership: the analyzer stops tracking it.
func goodEscape(p *Pager) error {
	pg, err := p.Get(1)
	if err != nil {
		return err
	}
	consume(pg)
	return nil
}

func consume(pg Page) { pg.Release() }

// leakOnError releases on the happy path but leaks when the mid-function
// check bails out.
func leakOnError(p *Pager) ([]byte, error) {
	pg, err := p.Get(1) // want `page handle from Get may not be Released`
	if err != nil {
		return nil, err
	}
	data := pg.Data()
	if len(data) == 0 {
		return nil, errEmpty
	}
	pg.Release()
	return data, nil
}

// leakEverywhere never releases at all.
func leakEverywhere(p *Pager) error {
	pg, err := p.Allocate() // want `page handle from Allocate may not be Released`
	if err != nil {
		return err
	}
	_ = pg.ID()
	return nil
}

// discarded throws the handle away at the acquisition itself.
func discarded(p *Pager) error {
	_, err := p.Get(1) // want `page handle from Get is discarded and can never be Released`
	return err
}

// ---- interprocedural summaries ----

// releaseHelper releases its parameter on every path: callers passing a
// handle in discharge their obligation.
func releaseHelper(pg Page) { pg.Release() }

// goodHelperRelease hands the handle to a releasing helper on every path.
func goodHelperRelease(p *Pager) error {
	pg, err := p.Get(2)
	if err != nil {
		return err
	}
	releaseHelper(pg)
	return nil
}

// writeMeta mirrors btree's meta-page writer: it mutates through the
// handle but does not release it — the caller keeps the obligation.
func writeMeta(pg *Page) { pg.MarkDirty() }

// goodMetaRoundTrip keeps the obligation across the helper call and
// discharges it afterwards.
func goodMetaRoundTrip(p *Pager) error {
	pg, err := p.Get(0)
	if err != nil {
		return err
	}
	writeMeta(&pg)
	pg.Release()
	return nil
}

// leakThroughHelper is the cross-function leak the intraprocedural
// analyzer missed: the helper only borrows the handle, so returning
// without a release still leaks the pin.
func leakThroughHelper(p *Pager) error {
	pg, err := p.Get(0) // want `page handle from Get may not be Released`
	if err != nil {
		return err
	}
	writeMeta(&pg)
	return nil
}

// borrow is a value-parameter borrower: same caller obligation.
func borrow(pg Page) int { return pg.ID() }

// leakThroughBorrow leaks past a by-value borrowing helper.
func leakThroughBorrow(p *Pager) error {
	pg, err := p.Allocate() // want `page handle from Allocate may not be Released`
	if err != nil {
		return err
	}
	_ = borrow(pg)
	return nil
}

// wrapGet returns a freshly acquired live handle: callers must release
// it exactly as if they had called Get themselves.
func wrapGet(p *Pager, id int) (Page, error) {
	pg, err := p.Get(id)
	if err != nil {
		return Page{}, err
	}
	return pg, nil
}

// forwardGet forwards the acquiring call's results directly.
func forwardGet(p *Pager) (Page, error) {
	return p.Get(9)
}

// goodWrapped releases a wrapper-acquired handle.
func goodWrapped(p *Pager) error {
	pg, err := wrapGet(p, 3)
	if err != nil {
		return err
	}
	defer pg.Release()
	_ = pg.Data()
	return nil
}

// leakWrapped leaks a wrapper-acquired handle: the acquisition is only
// visible through wrapGet's summary.
func leakWrapped(p *Pager) error {
	pg, err := wrapGet(p, 4) // want `page handle from wrapGet may not be Released`
	if err != nil {
		return err
	}
	_ = pg.ID()
	return nil
}

// leakForwarded leaks a handle acquired through a result-forwarding
// wrapper.
func leakForwarded(p *Pager) error {
	pg, err := forwardGet(p) // want `page handle from forwardGet may not be Released`
	if err != nil {
		return err
	}
	_ = pg.ID()
	return nil
}

// takeOwnership stores the handle; ownership escapes and callers are not
// reported.
var stash []Page

func takeOwnership(pg Page) { stash = append(stash, pg) }

// goodOwnershipTransfer hands the handle to an owner.
func goodOwnershipTransfer(p *Pager) error {
	pg, err := p.Get(5)
	if err != nil {
		return err
	}
	takeOwnership(pg)
	return nil
}

// suppressedLeak shows the escape hatch.
func suppressedLeak(p *Pager) error {
	//segdifflint:ignore pagehandle the pin is intentionally held until process exit
	pg, err := p.Get(6)
	if err != nil {
		return err
	}
	writeMeta(&pg)
	return nil
}
