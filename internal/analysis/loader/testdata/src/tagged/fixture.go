// Loader fixture: the selected implementation of a build-tagged pair.
package tagged

// PageSize is the tuned default.
const PageSize = 8192

// Impl reports which file was selected.
func Impl() string { return "default" }
