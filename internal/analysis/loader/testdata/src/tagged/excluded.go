//go:build segdiff_never_enabled

// This file's tag is never satisfied; if the loader fails to apply build
// constraints, its declarations collide with fixture.go's and the package
// no longer type-checks.
package tagged

const PageSize = 4096

func Impl() string { return "excluded" }
