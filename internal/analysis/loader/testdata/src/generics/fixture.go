// Loader fixture: generic declarations must parse and type-check, and the
// types.Info maps must cover instantiated identifiers.
package generics

// Number constrains the summable types the engine's aggregates use.
type Number interface {
	~int | ~int64 | ~float64
}

// Ring is a generic fixed-capacity ring, shaped like the pager's frame
// ring but parameterized.
type Ring[T any] struct {
	buf  []T
	head int
}

// Push appends, overwriting the oldest element when full.
func (r *Ring[T]) Push(v T) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// Sum folds any Number slice.
func Sum[T Number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

// UseAll instantiates both so the checker records Instances.
func UseAll() float64 {
	r := Ring[int]{buf: make([]int, 0, 4)}
	r.Push(1)
	return Sum([]float64{1.5, 2.5}) + float64(Sum(r.buf))
}
