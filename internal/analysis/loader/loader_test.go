package loader_test

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"segdiff/internal/analysis/loader"
)

// TestLoadDirGenerics loads a fixture full of type parameters and checks
// the types.Info maps cover the instantiated code: analyzers rely on
// Uses/Defs/Types being populated for generic functions and methods.
func TestLoadDirGenerics(t *testing.T) {
	pkg, err := loader.LoadDir("", "testdata/src/generics", "fixture/generics")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Types.Name() != "generics" {
		t.Fatalf("package name = %q, want %q", pkg.Types.Name(), "generics")
	}
	scope := pkg.Types.Scope()
	for _, name := range []string{"Ring", "Sum", "UseAll"} {
		if scope.Lookup(name) == nil {
			t.Errorf("scope is missing %s", name)
		}
	}
	// Every identifier inside UseAll must resolve through Uses/Defs, and
	// every expression must have a recorded type — generic instantiation
	// included.
	for _, f := range pkg.Files {
		pkgName := f.Name
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name == "_" || id == pkgName {
				return true
			}
			if pkg.Info.Uses[id] == nil && pkg.Info.Defs[id] == nil && pkg.Info.Types[id].Type == nil {
				t.Errorf("identifier %q at %s resolved to nothing", id.Name, pkg.Fset.Position(id.Pos()))
			}
			return true
		})
	}
}

// TestLoadDirBuildTags loads a directory holding a build-tag-excluded
// file whose declarations collide with the selected file's. The loader
// must skip it the way `go list` would; failing to do so is a duplicate
// declaration type error.
func TestLoadDirBuildTags(t *testing.T) {
	pkg, err := loader.LoadDir("", "testdata/src/tagged", "fixture/tagged")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if n := len(pkg.Files); n != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go must be skipped)", n)
	}
	name := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	if !strings.HasSuffix(name, "fixture.go") {
		t.Fatalf("loaded %s, want fixture.go", name)
	}
	c, ok := pkg.Types.Scope().Lookup("PageSize").(*types.Const)
	if !ok {
		t.Fatal("PageSize missing from package scope")
	}
	if got := c.Val().ExactString(); got != "8192" {
		t.Fatalf("PageSize = %s, want 8192 (excluded.go's 4096 must not win)", got)
	}
}
