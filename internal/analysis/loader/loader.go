// Package loader loads and type-checks packages for the segdifflint
// analyzers without depending on golang.org/x/tools/go/packages.
//
// It shells out to `go list -deps -export -json`, which emits (compiling on
// demand into the build cache) a gc export-data file for every dependency.
// Target packages are then parsed from source with comments and
// type-checked against those export files via go/importer's lookup mode.
// This works fully offline: everything needed is produced by the local
// toolchain.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"segdiff/internal/analysis"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns from moduleDir (the directory holding go.mod; "" means
// derive it from the current directory) and returns the matched non-test
// packages, parsed and type-checked, sorted by import path.
func Load(moduleDir string, patterns ...string) ([]*analysis.Package, error) {
	if moduleDir == "" {
		var err error
		moduleDir, err = ModuleDir()
		if err != nil {
			return nil, err
		}
	}
	pkgs, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{} // import path -> export file
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*analysis.Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses and type-checks the .go files of a single directory that
// is not part of the module's package graph (an analyzer test fixture),
// registering it under the given import path. Imports are resolved by
// listing them from moduleDir, so fixtures may import the standard library
// (and module packages) but nothing else.
func LoadDir(moduleDir, dir, importPath string) (*analysis.Package, error) {
	if moduleDir == "" {
		var err error
		moduleDir, err = ModuleDir()
		if err != nil {
			return nil, err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// Respect build constraints (//go:build lines and _GOOS/_GOARCH
		// file suffixes) the same way `go list` does for real packages;
		// without this a tag-excluded file's declarations would collide
		// with the selected file's at type-check time.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil {
			return nil, fmt.Errorf("loader: matching %s: %w", e.Name(), err)
		} else if !ok {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no .go files in %s", dir)
	}

	exports := map[string]string{}
	if len(importSet) > 0 {
		var imports []string
		for path := range importSet {
			imports = append(imports, path)
		}
		sort.Strings(imports)
		pkgs, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: newExportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &analysis.Package{
		PkgPath: importPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// ModuleDir locates the enclosing module root by walking up from the
// working directory to the first go.mod.
func ModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newExportImporter returns an importer that resolves import paths through
// the export files go list reported.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, imp types.Importer, lp *listPkg) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	return &analysis.Package{
		PkgPath: lp.ImportPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
