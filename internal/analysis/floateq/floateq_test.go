package floateq_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/floateq"
	"segdiff/internal/analysis/suite"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "floateq")
}

// TestInSuite fails if the analyzer is dropped from the segdifflint suite:
// the fixture's defects would then ship unnoticed.
func TestInSuite(t *testing.T) {
	for _, a := range suite.Analyzers() {
		if a == floateq.Analyzer {
			return
		}
	}
	t.Fatal("floateq analyzer is not registered in the segdifflint suite")
}
