// Package floateq implements the segdifflint analyzer forbidding exact
// float comparison in the ε-geometry packages.
//
// The paper's no-false-negative guarantee (Theorem 1) rests on the ε-shift
// of segment endpoints and the Table 2 slope case analysis; both are
// computed in float64, where `==`/`!=` silently turns rounding noise into
// wrong classifications. Inside segdiff/internal/feature and
// segdiff/internal/segment any `==` or `!=` whose operands contain a
// floating-point component (directly, or via struct fields / array
// elements such as feature.Point) is reported. Compare against an explicit
// tolerance, restructure to ordered comparisons, or — where bit-exact
// identity is genuinely intended — isolate the comparison in a helper with
// an ignore directive explaining why.
//
// Packages outside the segdiff module prefix (the analyzer's own test
// fixtures) are always checked.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"segdiff/internal/analysis"
)

// Analyzer is the floateq analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point values in the ε-geometry packages",
	Run:  run,
}

// checkedPkgs are the module packages in scope; everything else in the
// module is exempt (benchmarks legitimately compare exact results).
var checkedPkgs = map[string]bool{
	"segdiff/internal/feature": true,
	"segdiff/internal/segment": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if strings.HasPrefix(path, "segdiff") && !checkedPkgs[path] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			tv, ok := pass.Info.Types[bin.X]
			if !ok {
				return true
			}
			if part := floatPart(tv.Type, nil); part != "" {
				pass.Reportf(bin.OpPos,
					"exact %s on %s (%s): float comparison breaks the ε-shift guarantee; use a tolerance or an ordered comparison",
					bin.Op, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), part)
			}
			return true
		})
	}
	return nil
}

// floatPart returns a description of the floating-point component of t, or
// "" when t contains none. seen guards against recursive types.
func floatPart(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Float32, types.Float64, types.Complex64, types.Complex128,
			types.UntypedFloat, types.UntypedComplex:
			return u.Name()
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if part := floatPart(f.Type(), seen); part != "" {
				return "field " + f.Name() + " is " + part
			}
		}
	case *types.Array:
		if part := floatPart(u.Elem(), seen); part != "" {
			return "element is " + part
		}
	}
	return ""
}
