// Package floateq is the analyzer fixture: exact float comparisons, float
// fields reached through structs and arrays, exempt integer comparisons,
// and a justified ignore directive.
package floateq

// Point mirrors the feature-space points of internal/feature.
type Point struct {
	Dt int64
	Dv float64
}

type pair [2]float64

func eqScalar(x, y float64) bool {
	return x == y // want `exact == on float64`
}

func neScalar(x, y float64) bool {
	return x != y // want `exact != on float64`
}

func eqStruct(a, b Point) bool {
	return a == b // want `exact == on Point .*Dv`
}

func eqArray(a, b pair) bool {
	return a == b // want `exact == on pair`
}

func eqInt(a, b int64) bool { return a == b }

func eqString(a, b string) bool { return a == b }

func eqJustified(a, b Point) bool {
	//segdifflint:ignore floateq fixture: bit-identical copies of one computation
	return a == b
}
