// Fixture for the walorder analyzer: WAL-before-flush ordering, latch
// acquisition order, and map-ordered durable writes, modelled on the
// engine's pager/wal commit path.
package walorder

// The type and method names mirror the engine's APIs: walorder matches
// primitives by receiver type name and method name.

type Page struct{ dirty bool }

func (p *Page) MarkDirty() { p.dirty = true }
func (p *Page) Release()   {}

type Pager struct{}

func (pg *Pager) Get(id int) (*Page, error)                         { return &Page{}, nil }
func (pg *Pager) Allocate() (*Page, error)                          { return &Page{}, nil }
func (pg *Pager) LogDirty(fn func(id int, data []byte) error) error { return nil }
func (pg *Pager) Flush() error                                      { return nil }
func (pg *Pager) Sync() error                                       { return nil }

type Log struct{}

func (l *Log) Stage(file uint16, page uint32, data []byte) error      { return nil }
func (l *Log) AppendPage(file uint16, page uint32, data []byte) error { return nil }
func (l *Log) Commit() error                                          { return nil }

// goodCommit is the engine's commit shape: mark, stage through LogDirty,
// group-commit, then checkpoint. The flush is reached clean.
func goodCommit(pg *Pager, l *Log, p *Page) error {
	p.MarkDirty()
	if err := pg.LogDirty(func(id int, data []byte) error {
		return l.Stage(0, uint32(id), data)
	}); err != nil {
		return err
	}
	if err := l.Commit(); err != nil {
		return err
	}
	return pg.Sync()
}

// goodBranch appends on the only branch that dirties, so the join at the
// flush is clean.
func goodBranch(pg *Pager, l *Log, p *Page, cond bool) error {
	if cond {
		p.MarkDirty()
		if err := l.AppendPage(0, 0, nil); err != nil {
			return err
		}
	}
	return pg.Flush()
}

// badDirect flushes a page it just dirtied without touching the WAL.
func badDirect(pg *Pager, p *Page) error {
	p.MarkDirty()
	return pg.Flush() // want `flush reachable while a page is marked dirty but not WAL-appended`
}

// badBranch may reach the flush dirty: the join of the two arms is
// may-dirty.
func badBranch(pg *Pager, p *Page, cond bool) error {
	if cond {
		p.MarkDirty()
	}
	return pg.Flush() // want `flush reachable while a page is marked dirty but not WAL-appended`
}

// dirtyHelper dirties a page on the caller's behalf; its summary carries
// the may-dirty state back out.
func dirtyHelper(p *Page) { p.MarkDirty() }

// badAcrossCalls marks through a helper and flushes locally: the mark
// and the flush are in different functions.
func badAcrossCalls(pg *Pager, p *Page) error {
	dirtyHelper(p)
	return pg.Sync() // want `flush reachable while a page is marked dirty but not WAL-appended`
}

// flushHelper is clean in isolation; it only violates when entered with
// an unlogged dirty page.
func flushHelper(pg *Pager) error { return pg.Flush() }

// badCallFlushes marks locally and flushes through a callee: the
// violation is reported at the call site, against the callee's summary.
func badCallFlushes(pg *Pager, p *Page) error {
	p.MarkDirty()
	return flushHelper(pg) // want `call to flushHelper flushes pages, but a page marked dirty on this path has not been WAL-appended`
}

// badAllocate: a freshly allocated page is born dirty and must reach the
// WAL before any flush.
func badAllocate(pg *Pager) error {
	p, err := pg.Allocate()
	if err != nil {
		return err
	}
	p.Release()
	return pg.Sync() // want `flush reachable while a page is marked dirty but not WAL-appended`
}

// suppressedFlush shows the escape hatch for WAL-less standalone tools.
func suppressedFlush(pg *Pager, p *Page) error {
	p.MarkDirty()
	//segdifflint:ignore walorder standalone tool runs without a WAL
	return pg.Flush()
}

// The latch-acquisition-order and map-ordered-durable-write conventions
// are enforced by the companion latchorder analyzer and its fixture.
